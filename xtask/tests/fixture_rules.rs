//! Fixture corpus: each rule family exercised on violation, clean and
//! waived miniature workspaces under `tests/fixtures/`.

use std::path::PathBuf;
use xtask::findings::Finding;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str, rule: &str) -> Vec<Finding> {
    xtask::lint(&fixture(name), Some(rule))
}

#[test]
fn hash_iter_flags_for_loops_method_iters_and_drain() {
    let f = lint("hash_iter_violation", "hash-iter");
    assert_eq!(f.len(), 3, "{f:#?}");
    assert!(f.iter().all(|x| x.rule == "hash-iter"));
    assert!(f.iter().all(|x| x.path.ends_with("crates/core/src/lib.rs")));
    let msgs: Vec<&str> = f.iter().map(|x| x.msg.as_str()).collect();
    assert!(msgs
        .iter()
        .any(|m| m.contains("`buckets`") || m.contains("buckets.iter()")));
    assert!(msgs.iter().any(|m| m.contains("`seen`")));
    assert!(msgs.iter().any(|m| m.contains("drain")));
}

#[test]
fn hash_iter_passes_probes_vecs_and_cfg_test() {
    let f = lint("hash_iter_clean", "hash-iter");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn hash_iter_honours_reasoned_waivers() {
    let f = lint("hash_iter_waived", "hash-iter");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn hasher_ban_flags_defaulthasher() {
    let f = lint("hasher_violation", "hasher");
    assert_eq!(f.len(), 2, "use + constructor: {f:#?}");
    assert!(f.iter().all(|x| x.msg.contains("DefaultHasher")));
}

#[test]
fn metrics_ok_fixture_is_clean() {
    let f = lint("metrics_ok", "metrics");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn metrics_field_dropped_from_merge_is_red() {
    let f = lint("metrics_merge_drift", "metrics");
    assert_eq!(f.len(), 1, "{f:#?}");
    assert!(f[0].msg.contains("`io_reads`") && f[0].msg.contains("fn merge"));
    assert!(f[0].path.ends_with("metrics.rs"));
}

#[test]
fn metrics_field_dropped_from_the_emitter_is_red() {
    let f = lint("metrics_emit_drift", "metrics");
    assert_eq!(f.len(), 1, "{f:#?}");
    assert!(f[0].msg.contains("`io_reads`") && f[0].msg.contains("fn to_json"));
    assert!(f[0].path.ends_with("jsonbench.rs"));
}

#[test]
fn panic_ratchet_passes_at_the_baseline() {
    let f = lint("panic_ok", "panic-path");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn panic_ratchet_rejects_growth() {
    let f = lint("panic_regression", "panic-path");
    assert_eq!(f.len(), 1, "{f:#?}");
    assert!(f[0]
        .msg
        .contains("grew its panic paths: 2 sites vs baseline 1"));
}

#[test]
fn panic_ratchet_rejects_a_stale_high_baseline() {
    let f = lint("panic_stale", "panic-path");
    assert_eq!(f.len(), 1, "{f:#?}");
    assert!(f[0].msg.contains("below baseline (0 vs 1)"));
}

#[test]
fn panic_waiver_keeps_the_count_at_baseline() {
    let f = lint("panic_waived", "panic-path");
    assert!(f.is_empty(), "{f:#?}");
}

/// The process fence: rogue lib code spawning (`Command` + `Stdio`) and
/// exiting is flagged site by site, while the IPC supervisor module next
/// to it uses the same APIs exempt.
#[test]
fn process_api_banned_outside_the_ipc_modules() {
    let f = lint("process_violation", "process");
    assert_eq!(f.len(), 3, "{f:#?}");
    assert!(f.iter().all(|x| x.rule == "process"));
    assert!(f.iter().all(|x| x.path.ends_with("crates/core/src/lib.rs")));
    assert!(f.iter().any(|x| x.msg.contains("`Command`")));
    assert!(f.iter().any(|x| x.msg.contains("`process::exit`")));
}

#[test]
fn process_waiver_passes() {
    let f = lint("process_waived", "process");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn time_source_banned_outside_bench() {
    let f = lint("time_violation", "time-source");
    assert_eq!(f.len(), 1, "core flagged, bench exempt: {f:#?}");
    assert!(f[0].path.starts_with("crates/core"));
}

#[test]
fn time_source_waiver_passes() {
    let f = lint("time_waived", "time-source");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn catch_unwind_banned_outside_the_executor() {
    let f = lint("unwind_violation", "unwind");
    assert_eq!(f.len(), 1, "lib.rs flagged, executor.rs exempt: {f:#?}");
    assert!(f[0].path.ends_with("crates/core/src/lib.rs"));
    assert!(f[0].msg.contains("executor"));
}

#[test]
fn catch_unwind_waiver_passes() {
    let f = lint("unwind_waived", "unwind");
    assert!(f.is_empty(), "{f:#?}");
}

/// The streaming repair path must not grow its own panic isolation: a
/// `catch_unwind` in `streaming.rs` is flagged while the executor module
/// next to it stays exempt — delta repair rides the one audited ladder.
#[test]
fn streaming_module_cannot_catch_its_own_panics() {
    let f = lint("unwind_streaming_violation", "unwind");
    assert_eq!(f.len(), 1, "{f:#?}");
    assert!(f[0].path.ends_with("crates/core/src/streaming.rs"));
    assert!(f[0].msg.contains("executor"));
}

/// Streaming-style promote code with reasoned waivers keeps the crate at
/// its baseline: the ratchet admits the new module without loosening.
#[test]
fn streaming_module_waivers_hold_the_panic_baseline() {
    let f = lint("panic_streaming_waived", "panic-path");
    assert!(f.is_empty(), "{f:#?}");
}

/// The CLI contract CI relies on: exit 0 on clean, 1 on findings, and the
/// findings on stdout as `path:line: [rule] msg`.
#[test]
fn cli_exit_codes_and_output_shape() {
    let bin = env!("CARGO_BIN_EXE_xtask");
    let run = |root: &str, rule: &str| {
        std::process::Command::new(bin)
            .args(["lint", "--root"])
            .arg(fixture(root))
            .args(["--rule", rule])
            .output()
            .expect("spawn xtask")
    };
    let bad = run("hash_iter_violation", "hash-iter");
    assert_eq!(bad.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("crates/core/src/lib.rs"), "{stdout}");
    assert!(stdout.contains("[hash-iter]"), "{stdout}");

    let good = run("hash_iter_waived", "hash-iter");
    assert_eq!(good.status.code(), Some(0));
    assert!(good.stdout.is_empty());

    let drift = run("metrics_emit_drift", "metrics");
    assert_eq!(drift.status.code(), Some(1));
}

//! Fixture: engine-crate code observing hash order three ways.
use std::collections::{HashMap, HashSet};

pub struct Index {
    buckets: HashMap<u64, Vec<u32>>,
}

pub fn emit_all(ix: &Index) -> Vec<u32> {
    let mut out = Vec::new();
    for (_, v) in ix.buckets.iter() {
        out.extend_from_slice(v);
    }
    out
}

pub fn first_key(seen: &HashSet<u32>) -> Option<u32> {
    for x in seen {
        return Some(*x);
    }
    None
}

pub fn drain_ids(m: &mut HashMap<u32, u32>) -> Vec<(u32, u32)> {
    m.drain().collect()
}

pub fn put_metrics(buf: &mut Vec<u8>, m: &Metrics) {
    put_u64(buf, m.dominance_checks);
    put_u64(buf, m.io_reads);
    put_u64(buf, m.cpu.as_nanos() as u64);
}

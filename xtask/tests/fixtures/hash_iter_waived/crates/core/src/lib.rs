//! Fixture: the same iteration, waived with a reason.
use std::collections::HashMap;

pub fn sorted_keys(m: &HashMap<u64, u32>) -> Vec<u64> {
    // lint:allow(hash-iter): collected keys are sorted on the next line
    let mut ks: Vec<u64> = m.keys().copied().collect();
    ks.sort_unstable();
    ks
}

pub fn get(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

pub struct Metrics {
    pub dominance_checks: u64,
    pub io_reads: u64,
    pub cpu: std::time::Duration,
}

impl Metrics {
    pub fn merge(&self, o: &Metrics) -> Metrics {
        Metrics {
            dominance_checks: self.dominance_checks + o.dominance_checks,
            cpu: self.cpu + o.cpu,
        }
    }
}

pub fn to_json(rows: &[(u64, u64, u128)]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&format!(
            "{{\"dominance_checks\": {}, \"io_reads\": {}, \"wall_ns\": {}}}",
            r.0, r.1, r.2
        ));
    }
    out
}

fn dynamic_point(ms: &[crate::Metrics]) -> (u64, u64, std::time::Duration) {
    let mut dominance_checks = 0;
    let mut io_reads = 0;
    let mut cpu = std::time::Duration::ZERO;
    for m in ms {
        dominance_checks += m.dominance_checks;
        io_reads += m.io_reads;
        cpu += m.cpu;
    }
    (dominance_checks, io_reads, cpu)
}

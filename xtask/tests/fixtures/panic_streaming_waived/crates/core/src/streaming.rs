// Streaming delta repair in miniature: the promote step indexes with
// ids the candidate screen just produced, so the lookups cannot miss —
// each carries a reasoned waiver and the crate stays at baseline 0.
pub fn promote(survivors: &[usize], table: &[u32]) -> Vec<u32> {
    survivors
        .iter()
        .map(|&id| {
            // lint:allow(panic-path): id was screened out of this table one phase ago
            *table.get(id).expect("screened id")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_stay_exempt_without_waivers() {
        assert_eq!(super::promote(&[0], &[7]).first().copied().unwrap(), 7);
    }
}

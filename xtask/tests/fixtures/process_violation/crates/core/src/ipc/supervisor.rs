use std::process::{Child, Command, Stdio};

pub fn spawn(program: &str) -> std::io::Result<Child> {
    Command::new(program)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
}

pub fn rogue_spawn() {
    let _ = std::process::Command::new("worker")
        .stdin(std::process::Stdio::piped())
        .spawn();
    std::process::exit(3);
}

pub fn get(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}

pub fn brand_new_code(x: Option<u32>) -> u32 {
    x.expect("new unhandled error path")
}

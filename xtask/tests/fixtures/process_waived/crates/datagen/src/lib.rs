pub fn usage_error(msg: &str) -> ! {
    eprintln!("{msg}");
    // lint:allow(process): CLI usage errors must abort before any output
    std::process::exit(2)
}

//! Fixture: explicit use of the unstable std hasher.
use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;

pub fn digest(xs: &[u64]) -> u64 {
    let mut h = DefaultHasher::new();
    for &x in xs {
        h.write_u64(x);
    }
    h.finish()
}

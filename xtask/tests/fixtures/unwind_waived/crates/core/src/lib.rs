pub fn boundary(job: impl FnOnce() + std::panic::UnwindSafe) {
    // lint:allow(unwind): fixture — an isolation boundary outside the executor
    let _ = std::panic::catch_unwind(job);
}

pub fn get(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}

pub fn brand_new_code(x: Option<u32>) -> u32 {
    // lint:allow(panic-path): caller guarantees presence via check_domains
    x.expect("waived")
}

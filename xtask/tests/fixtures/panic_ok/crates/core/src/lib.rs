pub fn get(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        Some(1u32).unwrap();
        assert!(std::panic::catch_unwind(|| panic!("t")).is_err());
    }
}

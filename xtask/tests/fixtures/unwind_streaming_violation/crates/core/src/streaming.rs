// A streaming repair tempted to isolate its own shard panics instead of
// routing them through the executor's audited retry/fallback ladder.
pub fn repair_member(shards: Vec<fn()>) {
    for job in shards {
        let _ = std::panic::catch_unwind(job);
    }
}

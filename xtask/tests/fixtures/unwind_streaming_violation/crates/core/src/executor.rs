// The one sanctioned isolation boundary — exempt by path.
pub fn run_shard(job: impl FnOnce() + std::panic::UnwindSafe) {
    let _ = std::panic::catch_unwind(job);
}

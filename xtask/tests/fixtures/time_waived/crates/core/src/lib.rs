pub struct Run {
    start: std::time::Instant,
}

impl Run {
    pub fn begin() -> Run {
        Run {
            // lint:allow(time-source): Metrics.cpu timing site — fixture
            start: std::time::Instant::now(),
        }
    }
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }
}

pub fn ladder(job: impl FnOnce() + std::panic::UnwindSafe) {
    let _ = std::panic::catch_unwind(job);
}

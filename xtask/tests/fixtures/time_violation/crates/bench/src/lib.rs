pub fn measured() -> std::time::Instant {
    std::time::Instant::now()
}

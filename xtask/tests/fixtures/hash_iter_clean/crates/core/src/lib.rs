//! Fixture: probe-only hash use plus ordered-container iteration.
use std::collections::HashMap;

pub fn lookup(m: &HashMap<u64, u32>, keys: &[u64]) -> Vec<u32> {
    let mut out = Vec::new();
    for k in keys {
        if let Some(v) = m.get(k) {
            out.push(*v);
        }
    }
    out
}

pub fn sum(v: &[u32]) -> u32 {
    v.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_free_assert_is_fine() {
        let m: HashMap<u64, u32> = HashMap::new();
        assert!(m.values().all(|&v| v > 0));
    }
}

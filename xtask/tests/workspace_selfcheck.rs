//! The pass over the real workspace, inside `cargo test`: the same gate CI
//! runs, so a contract regression fails the test suite even before the
//! dedicated lint job sees it.

use xtask::{default_root, lint, ALL_RULES};

#[test]
fn the_workspace_is_lint_clean() {
    let findings = lint(&default_root(), None);
    assert!(
        findings.is_empty(),
        "xtask lint found {} violation(s) in the workspace:\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_rule_family_actually_scans_the_workspace() {
    // Guard against a silently empty pass (wrong root, empty file set):
    // per rule, the run must be clean AND the rule must be exercised on a
    // known-bad probe under the same configuration.
    for rule in ALL_RULES {
        let findings = lint(&default_root(), Some(rule));
        assert!(findings.is_empty(), "[{rule}] {findings:#?}");
    }
    // The panic baseline must cover every current crate (a new crate must
    // be enrolled in the ratchet, not forgotten).
    let counts = xtask::rules::panics::count(&default_root());
    let baseline = xtask::rules::panics::read_baseline(&default_root()).expect("baseline parses");
    assert_eq!(
        counts.keys().collect::<Vec<_>>(),
        baseline.keys().collect::<Vec<_>>(),
        "panic_baseline.txt out of sync with the crate set"
    );
}

#[test]
fn the_metrics_struct_is_where_the_rule_expects_it() {
    // The metrics rule reads fixed paths; if the struct moves, this test
    // points at the rule configuration rather than a cryptic finding.
    let root = default_root();
    for p in [
        "crates/core/src/metrics.rs",
        "crates/bench/src/jsonbench.rs",
        "crates/bench/src/bin/harness.rs",
    ] {
        assert!(root.join(p).is_file(), "metrics-rule sink moved: {p}");
    }
}

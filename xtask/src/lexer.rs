//! A lightweight Rust tokenizer — just enough lexical structure for the
//! lint rules: identifiers, punctuation and literals with line numbers,
//! comments kept separately (they carry the waiver syntax), string/char
//! contents never confused for code.
//!
//! This is deliberately not a parser. The rules pattern-match short token
//! sequences (`Instant :: now`, `name . keys (`), which is robust against
//! formatting and cheap to maintain, at the cost of being name-based
//! rather than type-based — see the README's "Static analysis" section for
//! the resulting waiver etiquette.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// String/char/numeric literal. `text` keeps the raw contents so rules
    /// may search inside (the metrics rule matches JSON key strings).
    Literal,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// A token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True iff this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True iff this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment with the line it starts on (`//…` and `/*…*/` alike, markers
/// stripped are NOT — the raw text including `//` is kept).
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// Tokenized file: code tokens plus the comment stream.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Unterminated constructs are tolerated (the tail is
/// swallowed into the open literal/comment) — lint rules must not panic on
/// fixture or in-progress code.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    let count_lines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count() as u32;

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let (start, start_line) = (i, line);
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: b[start..i].iter().collect(),
                    line: start_line,
                });
            }
            '"' => {
                let start_line = line;
                let mut text = String::new();
                i += 1;
                while i < n && b[i] != '"' {
                    if b[i] == '\\' && i + 1 < n {
                        text.push(b[i]);
                        text.push(b[i + 1]);
                        line += count_lines(&b[i..i + 2]);
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        text.push(b[i]);
                        i += 1;
                    }
                }
                i += 1; // closing quote
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text,
                    line: start_line,
                });
            }
            'r' | 'b' if raw_string_start(&b, i).is_some() => {
                let (body_start, hashes) = raw_string_start(&b, i).unwrap();
                let start_line = line;
                let closer: String = std::iter::once('"')
                    .chain("#".repeat(hashes).chars())
                    .collect();
                let closer: Vec<char> = closer.chars().collect();
                let mut j = body_start;
                while j < n && b[j..].len() >= closer.len() && b[j..j + closer.len()] != closer[..]
                {
                    if b[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: b[body_start..j.min(n)].iter().collect(),
                    line: start_line,
                });
                i = (j + closer.len()).min(n);
            }
            '\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'x'`, `'\n'`).
                let is_lifetime = i + 1 < n
                    && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                    && !(i + 2 < n && b[i + 2] == '\'');
                if is_lifetime {
                    let start = i + 1;
                    i += 1;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: b[start..i].iter().collect(),
                        line,
                    });
                } else {
                    let start_line = line;
                    let mut text = String::new();
                    i += 1;
                    while i < n && b[i] != '\'' {
                        if b[i] == '\\' && i + 1 < n {
                            text.push(b[i]);
                            text.push(b[i + 1]);
                            i += 2;
                        } else {
                            if b[i] == '\n' {
                                line += 1;
                            }
                            text.push(b[i]);
                            i += 1;
                        }
                    }
                    i += 1;
                    out.toks.push(Tok {
                        kind: TokKind::Literal,
                        text,
                        line: start_line,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                // Loose number scan: digits, `_`, `.` (not `..`), exponent
                // signs and type suffixes — precision is irrelevant to the
                // rules, not splitting mid-literal is what matters.
                while i < n
                    && (b[i].is_alphanumeric()
                        || b[i] == '_'
                        || (b[i] == '.' && i + 1 < n && b[i + 1].is_ascii_digit()))
                {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            other => {
                out.toks.push(Tok {
                    kind: TokKind::Punct(other),
                    text: other.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// If position `i` starts a raw (byte) string (`r"`, `r#"`, `br##"` …),
/// returns `(index of first body char, hash count)`.
fn raw_string_start(b: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != 'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while j < b.len() && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j < b.len() && b[j] == '"' {
        Some((j + 1, hashes))
    } else {
        None
    }
}

/// Token-index ranges (half-open) of `#[cfg(test)] mod … { … }` bodies.
/// Rules that lint only shipping code subtract these ranges; test modules
/// get to `unwrap` and to iterate hash maps in order-independent asserts.
pub fn cfg_test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].is_punct('#')
            && toks[i + 1].is_punct('[')
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct('(')
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(')')
            && toks[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes, then require an item with a brace
        // body (`mod tests { … }`, or a `#[cfg(test)] fn`/`impl`).
        let mut j = i + 7;
        while j + 1 < toks.len() && toks[j].is_punct('#') && toks[j + 1].is_punct('[') {
            let mut depth = 0;
            j += 1;
            while j < toks.len() {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Find the opening brace of the item (stop at `;` — e.g.
        // `#[cfg(test)] use …;` has no body to skip).
        let mut k = j;
        let mut open = None;
        while k < toks.len() {
            if toks[k].is_punct('{') {
                open = Some(k);
                break;
            }
            if toks[k].is_punct(';') {
                break;
            }
            k += 1;
        }
        let Some(open) = open else {
            i = k + 1;
            continue;
        };
        let mut depth = 0;
        let mut end = toks.len();
        for (idx, t) in toks.iter().enumerate().skip(open) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    end = idx + 1;
                    break;
                }
            }
        }
        ranges.push((i, end));
        i = end;
    }
    ranges
}

/// True iff token index `i` falls inside any of `ranges`.
pub fn in_ranges(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(a, b)| (a..b).contains(&i))
}

/// The token range (half-open, body braces included) of the first
/// `fn <name>` item, or `None`. Enough for the metrics rule, which needs
/// "somewhere inside this function" granularity.
pub fn fn_body(toks: &[Tok], name: &str) -> Option<(usize, usize)> {
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn") && toks[i + 1].is_ident(name) {
            let mut j = i + 2;
            // Skip the signature: the body brace is the first `{` outside
            // any parens/brackets/angles. Angle depth needs `->` care-free
            // handling; `<`/`>` as comparison can't appear in a signature.
            let (mut par, mut ang) = (0i32, 0i32);
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') => par += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') => par -= 1,
                    TokKind::Punct('<') => ang += 1,
                    // `->` is an arrow, not an angle close.
                    TokKind::Punct('>') if !(j > 0 && toks[j - 1].is_punct('-')) => ang -= 1,
                    TokKind::Punct('{') if par == 0 && ang <= 0 => break,
                    TokKind::Punct(';') if par == 0 => return None, // trait decl
                    _ => {}
                }
                j += 1;
            }
            let open = j;
            let mut depth = 0;
            for (idx, t) in toks.iter().enumerate().skip(open) {
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return Some((i, idx + 1));
                    }
                }
            }
            return Some((i, toks.len()));
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let l = lex("let x = \"HashMap // not a comment\"; // real comment\nfoo();");
        assert!(l
            .toks
            .iter()
            .all(|t| t.kind != TokKind::Ident || t.text != "HashMap"));
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("real comment"));
        assert!(l.toks.iter().any(|t| t.is_ident("foo") && t.line == 2));
    }

    #[test]
    fn literal_contents_are_searchable() {
        let l = lex("emit(\"dominance_checks\")");
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text == "dominance_checks"));
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let l = lex("r#\"no \" escape\"# 'a' '\\n' fn f<'a>(x: &'a str) {}");
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text.contains("escape")));
        assert_eq!(
            l.toks
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            2
        );
        assert!(l.toks.iter().any(|t| t.is_ident("str")));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ ident");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.toks.len(), 1);
        assert!(l.toks[0].is_ident("ident"));
    }

    #[test]
    fn cfg_test_mod_is_ranged_out() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn tail() {}";
        let l = lex(src);
        let ranges = cfg_test_ranges(&l.toks);
        assert_eq!(ranges.len(), 1);
        let outside: Vec<&str> = l
            .toks
            .iter()
            .enumerate()
            .filter(|(i, t)| !in_ranges(&ranges, *i) && t.kind == TokKind::Ident)
            .map(|(_, t)| t.text.as_str())
            .collect();
        assert!(outside.contains(&"live") && outside.contains(&"tail"));
        assert!(!outside.contains(&"y"));
        assert_eq!(outside.iter().filter(|s| **s == "unwrap").count(), 1);
    }

    #[test]
    fn fn_body_spans_the_braces() {
        let src = "impl M { fn merge(&self, o: &M) -> M { self.a + o.a } }\nfn merge_other() {}";
        let l = lex(src);
        let (a, b) = fn_body(&l.toks, "merge").unwrap();
        let body: Vec<&str> = l.toks[a..b]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(body.contains(&"a"));
        assert!(!body.contains(&"merge_other"));
    }
}

//! CLI: `cargo run -p xtask -- lint [--rule R] [--root DIR] [--write-panic-baseline]`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("lint") => {}
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [--rule {}] [--root DIR] [--write-panic-baseline]",
                xtask::ALL_RULES.join("|"));
            return ExitCode::from(2);
        }
    }
    let mut rule: Option<String> = None;
    let mut root = xtask::default_root();
    let mut write_baseline = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rule" => match it.next() {
                Some(r) if xtask::ALL_RULES.contains(&r.as_str()) => rule = Some(r.clone()),
                Some(r) => {
                    eprintln!(
                        "unknown rule {r:?}; expected one of {}",
                        xtask::ALL_RULES.join(", ")
                    );
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("--rule requires a rule id");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(d) => root = PathBuf::from(d),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--write-panic-baseline" => write_baseline = true,
            other => {
                eprintln!("unknown flag {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    if write_baseline {
        let counts = xtask::rules::panics::count(&root);
        let path = root.join(xtask::rules::panics::BASELINE_FILE);
        if let Err(e) = std::fs::write(&path, xtask::rules::panics::render_baseline(&counts)) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("wrote {} ({} crates)", path.display(), counts.len());
    }

    let findings = xtask::lint(&root, rule.as_deref());
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!(
            "xtask lint: clean ({} checked)",
            rule.as_deref().unwrap_or("all rules")
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

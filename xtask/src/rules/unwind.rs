//! Rule family 6 — unwind fencing.
//!
//! Panic isolation is the shard executor's job, and *only* its job:
//! `crates/core/src/executor.rs` wraps each shard attempt in
//! `std::panic::catch_unwind` and owns the retry/fallback ladder that
//! makes a caught panic recoverable. A `catch_unwind` anywhere else
//! would silently swallow a bug instead of surfacing it through the
//! executor's `ShardError` channel (or the panic ratchet), so the token
//! is banned outside that one module. A genuinely new isolation
//! boundary carries `// lint:allow(unwind): <why>`.

use crate::findings::{Finding, Waivers};
use crate::lexer::Lexed;
use std::path::Path;

/// The one module allowed to catch panics: the shard executor.
const ALLOWED_FILES: &[&str] = &["crates/core/src/executor.rs"];

pub fn allowed(rel: &Path) -> bool {
    let s = rel.to_string_lossy().replace('\\', "/");
    ALLOWED_FILES.iter().any(|f| s == *f)
}

pub fn check(rel: &Path, lexed: &Lexed, out: &mut Vec<Finding>) {
    if allowed(rel) {
        return;
    }
    let waivers = Waivers::parse(&lexed.comments);
    for tok in &lexed.toks {
        if !tok.is_ident("catch_unwind") {
            continue;
        }
        if waivers.covers("unwind", tok.line) {
            continue;
        }
        out.push(Finding {
            path: rel.to_path_buf(),
            line: tok.line,
            rule: "unwind",
            msg: "`catch_unwind` outside the shard executor — panic isolation \
                  lives in crates/core/src/executor.rs so recovery stays on one \
                  audited ladder; a genuinely new isolation boundary carries \
                  `// lint:allow(unwind): <why>`"
                .to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use std::path::PathBuf;

    #[test]
    fn flags_catch_unwind_outside_the_executor() {
        let l = lex("let r = std::panic::catch_unwind(|| job());");
        let mut out = Vec::new();
        check(&PathBuf::from("crates/core/src/parallel.rs"), &l, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unwind");
    }

    #[test]
    fn the_executor_and_waivers_pass() {
        let l = lex("let r = std::panic::catch_unwind(|| job());");
        let mut out = Vec::new();
        check(&PathBuf::from("crates/core/src/executor.rs"), &l, &mut out);
        assert!(out.is_empty());

        let l = lex("// lint:allow(unwind): ffi boundary must not unwind\n\
             let r = std::panic::catch_unwind(|| job());");
        check(&PathBuf::from("crates/core/src/stss.rs"), &l, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn mentions_in_strings_and_comments_are_fine() {
        let l = lex("// catch_unwind is banned here\nlet s = \"catch_unwind\";");
        let mut out = Vec::new();
        check(&PathBuf::from("crates/core/src/stss.rs"), &l, &mut out);
        assert!(out.is_empty());
    }
}

//! Rule family 1 — determinism.
//!
//! `hash-iter`: in the engine crates, iterating a `HashMap`/`HashSet`
//! (`for … in`, `.iter()`, `.keys()`, `.values()`, `.drain()`, …) observes
//! the hasher's arbitrary order, which is exactly the nondeterminism the
//! worker-count/shard-plan byte-identity contract (PR 4/5) forbids. Probing
//! (`get`, `contains_key`, `insert`, `entry`) is fine. A site whose order
//! provably cannot leak (sorted immediately, unique-min reduction, …)
//! carries `// lint:allow(hash-iter): <why>`.
//!
//! `hasher`: `DefaultHasher`/`RandomState` are banned everywhere — digests
//! and fingerprints must use the pinned `poset::Fnv64` (PR 4) so hashes are
//! stable across rustc releases and processes.
//!
//! Detection is name-based and file-scoped (no type inference): any name
//! declared with a `HashMap`/`HashSet` type ascription or initialized from
//! `HashMap::…`/`HashSet::…` in a file is tracked for that whole file.
//! Shadowing a tracked name with a non-hash binding in the same file will
//! false-positive — rename the binding (cheap) rather than waive.

use crate::findings::{Finding, Waivers};
use crate::lexer::{cfg_test_ranges, in_ranges, Lexed, Tok, TokKind};
use std::collections::HashSet; // lint:allow(hash-iter): xtask is not an engine crate; kept probe-only anyway
use std::path::Path;

/// Methods whose call on a hash collection observes iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "into_iter",
    "drain",
    "retain",
];

/// Crates whose results feed the byte-identity contract.
pub const ENGINE_CRATES: &[&str] = &["core", "sdc", "skyline", "rtree", "poset"];

pub fn hash_iter(path: &Path, rel: &Path, lexed: &Lexed, out: &mut Vec<Finding>) {
    let _ = path;
    let toks = &lexed.toks;
    let waivers = Waivers::parse(&lexed.comments);
    let test_ranges = cfg_test_ranges(toks);
    let tracked = tracked_names(toks);
    if tracked.is_empty() {
        return;
    }
    let mut flagged_lines: HashSet<u32> = HashSet::new();
    let mut push = |line: u32, msg: String, out: &mut Vec<Finding>| {
        if waivers.covers("hash-iter", line) || !flagged_lines.insert(line) {
            return;
        }
        out.push(Finding {
            path: rel.to_path_buf(),
            line,
            rule: "hash-iter",
            msg,
        });
    };

    for i in 0..toks.len() {
        if in_ranges(&test_ranges, i) {
            continue;
        }
        // `name . iter (` and friends.
        if i + 3 < toks.len()
            && toks[i].kind == TokKind::Ident
            && tracked.contains(toks[i].text.as_str())
            && toks[i + 1].is_punct('.')
            && toks[i + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i + 2].text.as_str())
            && toks[i + 3].is_punct('(')
        {
            push(
                toks[i + 2].line,
                format!(
                    "`{}.{}()` iterates a hash collection in arbitrary order; make the order \
                     explicit (sort / BTreeMap) or waive with a reason",
                    toks[i].text,
                    toks[i + 2].text
                ),
                out,
            );
        }
        // `for … in <expr mentioning a tracked name> {`.
        if toks[i].is_ident("for") {
            let Some(in_ix) = (i + 1..toks.len().min(i + 24)).find(|&j| toks[j].is_ident("in"))
            else {
                continue;
            };
            let mut depth = 0i32;
            for j in in_ix + 1..toks.len() {
                match toks[j].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                    TokKind::Punct('{') if depth == 0 => break,
                    TokKind::Punct(';') if depth == 0 => break,
                    TokKind::Ident
                        if tracked.contains(toks[j].text.as_str())
                            // Probes like `for x in ids { if m.contains_key(x) }`
                            // only arise past the loop brace, so any mention
                            // in the header is an iteration source — unless
                            // it is a probe call `m.get(..)` feeding the
                            // loop, which yields Option iteration (ordered).
                            && !(j + 1 < toks.len()
                                && toks[j + 1].is_punct('.')
                                && j + 2 < toks.len()
                                && matches!(
                                    toks[j + 2].text.as_str(),
                                    "get" | "get_mut" | "contains_key" | "contains" | "len"
                                )) =>
                    {
                        push(
                            toks[j].line,
                            format!(
                                "`for … in` over `{}` iterates a hash collection in arbitrary \
                                 order; make the order explicit or waive with a reason",
                                toks[j].text
                            ),
                            out,
                        );
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Bans `DefaultHasher`/`RandomState` mentions (idents, so comments and
/// strings never trip it).
pub fn hasher_ban(rel: &Path, lexed: &Lexed, out: &mut Vec<Finding>) {
    let waivers = Waivers::parse(&lexed.comments);
    for t in &lexed.toks {
        if t.kind == TokKind::Ident && (t.text == "DefaultHasher" || t.text == "RandomState") {
            if waivers.covers("hasher", t.line) {
                continue;
            }
            out.push(Finding {
                path: rel.to_path_buf(),
                line: t.line,
                rule: "hasher",
                msg: format!(
                    "`{}` is unstable across rustc releases; use the pinned `poset::Fnv64`",
                    t.text
                ),
            });
        }
    }
}

/// Names declared in this file with a hash-collection type (ascription or
/// `HashMap::new()`-style initializer).
fn tracked_names(toks: &[Tok]) -> HashSet<&str> {
    let mut names = HashSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        if let Some(name) = owner_name(toks, i) {
            names.insert(name);
        }
    }
    names
}

/// Walks backwards from a `HashMap`/`HashSet` token to the name it types:
/// `name: …HashMap…` (field, param, let ascription) or
/// `let [mut] name = HashMap::…` (initializer). Path separators (`::`) are
/// stepped over; statement boundaries end the search.
fn owner_name(toks: &[Tok], hash_ix: usize) -> Option<&str> {
    let mut j = hash_ix;
    let mut steps = 0;
    while j > 0 && steps < 24 {
        j -= 1;
        steps += 1;
        match toks[j].kind {
            TokKind::Punct(':') => {
                // `::` path separator — skip the pair.
                if j > 0 && toks[j - 1].is_punct(':') {
                    j -= 1;
                    continue;
                }
                if j + 1 < toks.len() && toks[j + 1].is_punct(':') {
                    continue;
                }
                return (toks[j - 1].kind == TokKind::Ident).then(|| toks[j - 1].text.as_str());
            }
            TokKind::Punct('=') => {
                // `let [mut] name = HashMap::new()` — only if the `=` is a
                // plain assignment of a fresh binding.
                if j >= 1 && toks[j - 1].kind == TokKind::Ident {
                    let name = toks[j - 1].text.as_str();
                    let kw = toks.get(j.wrapping_sub(2)).map(|t| t.text.as_str());
                    if matches!(kw, Some("let") | Some("mut")) {
                        return Some(name);
                    }
                }
                return None;
            }
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => return None,
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use std::path::PathBuf;

    fn run_hash_iter(src: &str) -> Vec<Finding> {
        let l = lex(src);
        let mut out = Vec::new();
        hash_iter(Path::new("x.rs"), &PathBuf::from("x.rs"), &l, &mut out);
        out
    }

    #[test]
    fn tracks_fields_params_lets_and_initializers() {
        let src = "struct S { index: HashMap<String, u32> }\n\
                   fn f(seen: &mut HashSet<u32>) { let cache = HashMap::new();\n\
                   let mut by_key: std::collections::HashMap<u64, u8> = std::collections::HashMap::new(); }";
        let l = lex(src);
        let names = tracked_names(&l.toks);
        for n in ["index", "seen", "cache", "by_key"] {
            assert!(names.contains(n), "missing {n}");
        }
    }

    #[test]
    fn flags_iteration_not_probes() {
        let f = run_hash_iter(
            "fn f(m: &HashMap<u32, u32>) {\n\
             m.get(&1);\n\
             m.insert(1, 2);\n\
             for (k, v) in m.iter() { use_(k, v); }\n\
             let ks: Vec<_> = m.keys().collect();\n\
             }",
        );
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0].line, 4);
        assert_eq!(f[1].line, 5);
    }

    #[test]
    fn flags_bare_for_loop() {
        let f = run_hash_iter("fn f(set: HashSet<u32>) { for x in &set { go(x); } }");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn waiver_and_cfg_test_silence() {
        let f = run_hash_iter(
            "fn f(m: &HashMap<u32, u32>) {\n\
             // lint:allow(hash-iter): drained into a sort two lines down\n\
             let mut v: Vec<_> = m.keys().collect();\n\
             v.sort();\n\
             }\n\
             #[cfg(test)]\nmod tests { fn t(m: &HashMap<u32,u32>) { for k in m.keys() { q(k); } } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn vec_with_same_method_names_is_not_flagged() {
        let f = run_hash_iter("fn f(v: Vec<u32>) { for x in v.iter() { go(x); } }");
        assert!(f.is_empty());
    }

    #[test]
    fn hasher_ban_ignores_comments_and_strings() {
        let l = lex("// DefaultHasher is banned\nlet s = \"RandomState\";\nuse std::collections::hash_map::DefaultHasher;");
        let mut out = Vec::new();
        hasher_ban(&PathBuf::from("x.rs"), &l, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
    }
}

//! Rule family 7 — process fencing.
//!
//! Spawning, killing and exiting processes is the out-of-process
//! executor's job, and *only* its job: `crates/core/src/ipc/supervisor.rs`
//! owns `Command`/`Child` (worker pool lifecycle, kill-on-timeout) and
//! `crates/core/src/ipc/worker.rs` owns the fault-instructed
//! `process::exit` of a worker serving a seeded kill. A process API call
//! anywhere else would create an unsupervised child (no deadline, no
//! crash accounting, no ShardError mapping) or skip destructors behind
//! the executor's back, so the tokens are banned outside those modules
//! and the worker entry points (the harness binary's `tss-worker`
//! subcommand and the facade's `tss-worker` bin — which also exit on CLI
//! errors). A genuinely new process-management site carries
//! `// lint:allow(process): <why>`.

use crate::findings::{Finding, Waivers};
use crate::lexer::Lexed;
use std::path::Path;

/// Modules allowed to manage processes: the supervisor, the worker loop,
/// and the two worker entry binaries.
const ALLOWED_FILES: &[&str] = &[
    "crates/core/src/ipc/supervisor.rs",
    "crates/core/src/ipc/worker.rs",
    "crates/bench/src/bin/harness.rs",
    "src/bin/tss-worker.rs",
];

/// Process-lifecycle type idents that mark a spawn site.
const SPAWN_TYPES: &[&str] = &["Command", "Child", "ChildStdin", "ChildStdout", "Stdio"];

pub fn allowed(rel: &Path) -> bool {
    let s = rel.to_string_lossy().replace('\\', "/");
    ALLOWED_FILES.iter().any(|f| s == *f)
}

pub fn check(rel: &Path, lexed: &Lexed, out: &mut Vec<Finding>) {
    if allowed(rel) {
        return;
    }
    let toks = &lexed.toks;
    let waivers = Waivers::parse(&lexed.comments);
    let mut flag = |line: u32, what: &str| {
        if waivers.covers("process", line) {
            return;
        }
        out.push(Finding {
            path: rel.to_path_buf(),
            line,
            rule: "process",
            msg: format!(
                "`{what}` outside the supervised executor — process management \
                 lives in crates/core/src/ipc/ and the tss-worker entry points \
                 so every child has a deadline, crash accounting and a \
                 ShardError mapping; a genuinely new site carries \
                 `// lint:allow(process): <why>`"
            ),
        });
    };
    for i in 0..toks.len() {
        let t = &toks[i];
        if SPAWN_TYPES.iter().any(|ty| t.is_ident(ty)) {
            flag(t.line, t.text.as_str());
            continue;
        }
        // `process::exit` (however qualified) skips destructors and kills
        // the process; `ExitCode` returns from main normally and is fine.
        if t.is_ident("process")
            && i + 3 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("exit")
        {
            flag(toks[i + 3].line, "process::exit");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use std::path::PathBuf;

    #[test]
    fn flags_spawn_types_and_exit_outside_the_executor() {
        let l = lex("let c = Command::new(\"worker\").stdin(Stdio::piped());\n\
             std::process::exit(3);");
        let mut out = Vec::new();
        check(&PathBuf::from("crates/core/src/parallel.rs"), &l, &mut out);
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out.iter().all(|f| f.rule == "process"));
    }

    #[test]
    fn the_ipc_modules_and_entry_points_pass() {
        let l = lex("let mut child = Command::new(p).stdout(Stdio::piped()).spawn()?;");
        let mut out = Vec::new();
        for file in ALLOWED_FILES {
            check(&PathBuf::from(file), &l, &mut out);
        }
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn waivers_and_exit_code_pass() {
        let l = lex("// lint:allow(process): CLI usage error must abort\n\
             std::process::exit(2);");
        let mut out = Vec::new();
        check(&PathBuf::from("crates/datagen/src/lib.rs"), &l, &mut out);
        assert!(out.is_empty(), "{out:?}");

        let l = lex("use std::process::ExitCode;\nfn main() -> ExitCode { ExitCode::SUCCESS }");
        check(&PathBuf::from("xtask/src/main.rs"), &l, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn mentions_in_strings_and_comments_are_fine() {
        let l = lex("// Command is banned here\nlet s = \"std::process::exit\";");
        let mut out = Vec::new();
        check(&PathBuf::from("crates/core/src/stss.rs"), &l, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}

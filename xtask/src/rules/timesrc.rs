//! Rule family 4 — time-source fencing.
//!
//! `Metrics` counters are the paper's machine-independent currency; the
//! only wall-clock in the system is `Metrics.cpu`. `Instant::now` /
//! `SystemTime::now` are therefore allowed in the `bench` crate (whose job
//! is measuring) and at the explicitly waived `Metrics.cpu` timing sites —
//! nowhere else, so no counter, cache decision or plan can ever depend on
//! the clock. Waive a legitimate timing site with
//! `// lint:allow(time-source): <why>`.

use crate::findings::{Finding, Waivers};
use crate::lexer::Lexed;
use std::path::Path;

/// Workspace-relative path prefixes where the clock is the whole point.
/// The IPC supervisor is the one core module with a clock: per-attempt
/// deadlines over worker processes. Its contract keeps the clock away
/// from results — a deadline decides *which recovery path ran*, never
/// what a shard returns — so the counters stay wall-clock-free even
/// though the module times.
const ALLOWED_PREFIXES: &[&str] = &[
    "crates/bench/",
    "xtask/",
    "crates/core/src/ipc/supervisor.rs",
];

pub fn allowed(rel: &Path) -> bool {
    let s = rel.to_string_lossy().replace('\\', "/");
    ALLOWED_PREFIXES.iter().any(|p| s.starts_with(p))
}

pub fn check(rel: &Path, lexed: &Lexed, out: &mut Vec<Finding>) {
    if allowed(rel) {
        return;
    }
    let toks = &lexed.toks;
    let waivers = Waivers::parse(&lexed.comments);
    for i in 0..toks.len().saturating_sub(3) {
        let src = &toks[i];
        if !(src.is_ident("Instant") || src.is_ident("SystemTime")) {
            continue;
        }
        if toks[i + 1].is_punct(':') && toks[i + 2].is_punct(':') && toks[i + 3].is_ident("now") {
            let line = toks[i + 3].line;
            if waivers.covers("time-source", line) {
                continue;
            }
            out.push(Finding {
                path: rel.to_path_buf(),
                line,
                rule: "time-source",
                msg: format!(
                    "`{}::now` outside the bench crate — counters must stay wall-clock-free; \
                     a genuine Metrics.cpu timing site carries \
                     `// lint:allow(time-source): <why>`",
                    src.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use std::path::PathBuf;

    #[test]
    fn flags_both_clocks_outside_bench() {
        let l = lex("let a = Instant::now();\nlet b = std::time::SystemTime::now();");
        let mut out = Vec::new();
        check(&PathBuf::from("crates/core/src/x.rs"), &l, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn bench_and_waivers_pass() {
        let l = lex("let a = Instant::now();");
        let mut out = Vec::new();
        check(&PathBuf::from("crates/bench/src/runner.rs"), &l, &mut out);
        assert!(out.is_empty());

        let l =
            lex("// lint:allow(time-source): Metrics.cpu timing site\nlet t0 = Instant::now();");
        check(&PathBuf::from("crates/core/src/stss.rs"), &l, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn elapsed_on_a_passed_instant_is_fine() {
        let l = lex("fn f(t0: Instant) -> Duration { t0.elapsed() }");
        let mut out = Vec::new();
        check(&PathBuf::from("crates/core/src/x.rs"), &l, &mut out);
        assert!(out.is_empty());
    }
}

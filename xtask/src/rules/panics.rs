//! Rule family 3 — panic-path ratchet.
//!
//! Library code reaching `unwrap`/`expect`/`panic!`/`unreachable!` is a
//! crash path a production query service cannot afford. Existing sites are
//! grandfathered in `xtask/panic_baseline.txt`; per crate the count may
//! only go DOWN. New code handles its errors, carries a
//! `// lint:allow(panic-path): <why>` waiver, or does not merge. A count
//! below the baseline is also a finding — ratchet the file down (or run
//! `cargo run -p xtask -- lint --write-panic-baseline`) so progress locks.
//!
//! `#[cfg(test)]` modules, `tests/` and `benches/` are exempt: asserting
//! by unwrapping is what tests are for.

use crate::findings::{Finding, Waivers};
use crate::lexer::{cfg_test_ranges, in_ranges, lex};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

pub const BASELINE_FILE: &str = "xtask/panic_baseline.txt";

/// Per-crate panic-site counts, keyed by workspace-relative crate dir
/// (`crates/core`, …; the facade is `src`).
pub fn count(root: &Path) -> BTreeMap<String, u64> {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut tally = |key: &str, dir: PathBuf| {
        let mut n = 0u64;
        for file in crate::findings::rust_files(&dir) {
            let Ok(src) = std::fs::read_to_string(&file) else {
                continue;
            };
            n += count_file(&src);
        }
        counts.insert(key.to_string(), n);
    };
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for d in dirs.into_iter().filter(|d| d.join("src").is_dir()) {
            let name = d
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .to_string();
            tally(&format!("crates/{name}"), d.join("src"));
        }
    }
    if root.join("src").is_dir() {
        tally("src", root.join("src"));
    }
    counts
}

/// Unwaived panic sites in one file's shipping code.
fn count_file(src: &str) -> u64 {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let waivers = Waivers::parse(&lexed.comments);
    let test_ranges = cfg_test_ranges(toks);
    let mut n = 0;
    for i in 0..toks.len() {
        if in_ranges(&test_ranges, i) {
            continue;
        }
        let t = &toks[i];
        let next = toks.get(i + 1);
        let is_site = match t.text.as_str() {
            // Exact idents only: `unwrap_or_else` handles its error.
            "unwrap" | "expect" => {
                next.is_some_and(|n| n.is_punct('(')) && i > 0 && toks[i - 1].is_punct('.')
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                next.is_some_and(|n| n.is_punct('!'))
            }
            _ => false,
        };
        if is_site && !waivers.covers("panic-path", t.line) {
            n += 1;
        }
    }
    n
}

/// Reads `xtask/panic_baseline.txt` (`<crate-dir> <count>` per line, `#`
/// comments allowed).
pub fn read_baseline(root: &Path) -> Result<BTreeMap<String, u64>, String> {
    let path = root.join(BASELINE_FILE);
    let src =
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read {BASELINE_FILE}: {e}"))?;
    let mut base = BTreeMap::new();
    for (ix, line) in src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(key), Some(count), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "{BASELINE_FILE}:{}: expected `<crate> <count>`",
                ix + 1
            ));
        };
        let count: u64 = count
            .parse()
            .map_err(|_| format!("{BASELINE_FILE}:{}: bad count {count:?}", ix + 1))?;
        base.insert(key.to_string(), count);
    }
    Ok(base)
}

/// Serializes counts in baseline-file format.
pub fn render_baseline(counts: &BTreeMap<String, u64>) -> String {
    let mut out = String::from(
        "# Panic-path ratchet baseline: unwaived unwrap/expect/panic!/unreachable! sites\n\
         # per library crate (tests excluded). Counts may only decrease; regenerate with\n\
         #   cargo run -p xtask -- lint --write-panic-baseline\n",
    );
    for (k, v) in counts {
        out.push_str(&format!("{k} {v}\n"));
    }
    out
}

pub fn check(root: &Path, out: &mut Vec<Finding>) {
    let counts = count(root);
    let base = match read_baseline(root) {
        Ok(b) => b,
        Err(msg) => {
            out.push(Finding {
                path: PathBuf::from(BASELINE_FILE),
                line: 0,
                rule: "panic-path",
                msg,
            });
            return;
        }
    };
    for (key, &now) in &counts {
        match base.get(key) {
            None => out.push(Finding {
                path: PathBuf::from(BASELINE_FILE),
                line: 0,
                rule: "panic-path",
                msg: format!("crate `{key}` ({now} sites) missing from the baseline"),
            }),
            Some(&b) if now > b => out.push(Finding {
                path: PathBuf::from(BASELINE_FILE),
                line: 0,
                rule: "panic-path",
                msg: format!(
                    "crate `{key}` grew its panic paths: {now} sites vs baseline {b} — handle \
                     the error or waive with `// lint:allow(panic-path): <why>`"
                ),
            }),
            Some(&b) if now < b => out.push(Finding {
                path: PathBuf::from(BASELINE_FILE),
                line: 0,
                rule: "panic-path",
                msg: format!(
                    "crate `{key}` is below baseline ({now} vs {b}) — lock the progress in: \
                     cargo run -p xtask -- lint --write-panic-baseline"
                ),
            }),
            Some(_) => {}
        }
    }
    for key in base.keys() {
        if !counts.contains_key(key) {
            out.push(Finding {
                path: PathBuf::from(BASELINE_FILE),
                line: 0,
                rule: "panic-path",
                msg: format!("baseline lists `{key}`, which no longer exists in the workspace"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_exact_sites_only() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   x.unwrap_or(0);\n\
                   x.unwrap_or_else(|| panic!(\"boom\"));\n\
                   x.expect(\"present\")\n\
                   }";
        // unwrap_or / unwrap_or_else are handlers (0), panic! inside the
        // closure is a site (1), .expect is a site (1).
        assert_eq!(count_file(src), 2);
    }

    #[test]
    fn waivers_and_tests_are_exempt() {
        let src = "fn f(x: Option<u32>) {\n\
                   // lint:allow(panic-path): capacity asserted by the caller\n\
                   x.unwrap();\n\
                   }\n\
                   #[cfg(test)]\nmod tests { fn t() { None::<u32>.unwrap(); panic!(\"t\"); } }";
        assert_eq!(count_file(src), 0);
    }

    #[test]
    fn macros_in_strings_do_not_count() {
        assert_eq!(count_file("fn f() { log(\"panic! unwrap()\"); }"), 0);
    }

    #[test]
    fn baseline_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("crates/core".to_string(), 42u64);
        let rendered = render_baseline(&m);
        assert!(rendered.contains("crates/core 42"));
    }
}

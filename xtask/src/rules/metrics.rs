//! Rule family 2 — metrics exhaustiveness.
//!
//! `Metrics` is the paper's §III-A accounting: every counter must survive
//! three plumbing points or benchmark rows silently under-report (the
//! PR 6 motivating drift: `label_cache_hits`/`label_cache_misses` missing
//! from every `BENCH_*.json` row). The rule parses the struct's field list
//! and requires each field to appear in:
//!
//! 1. `Metrics::merge` (`crates/core/src/metrics.rs`) — the parallel
//!    executors' counter combiner;
//! 2. the `jsonbench` row emitter (`fn to_json`,
//!    `crates/bench/src/jsonbench.rs`) — JSON key strings count, and
//!    `cpu` is emitted under its row name `wall_ns`;
//! 3. the bench report aggregation (`fn dynamic_point`,
//!    `crates/bench/src/bin/harness.rs`) — the seed-averaging fold behind
//!    the dynamic figures;
//! 4. the IPC wire codec (`fn put_metrics`,
//!    `crates/core/src/ipc/protocol.rs`) — a field missing there would
//!    silently zero on every subprocess-executor row.
//!
//! Not waivable: a counter that genuinely should skip a sink still has to
//! be listed there (emit it, or a compile-visible comment token won't do —
//! restructure instead).

use crate::findings::Finding;
use crate::lexer::{fn_body, lex, Lexed, TokKind};
use std::path::{Path, PathBuf};

/// `(relative file, function, field aliases)` for each required sink.
struct Sink {
    file: &'static str,
    func: &'static str,
    /// `(field, accepted stand-in)` pairs — e.g. `cpu` is serialized as
    /// `wall_ns` in bench rows.
    aliases: &'static [(&'static str, &'static str)],
}

const STRUCT_FILE: &str = "crates/core/src/metrics.rs";

const SINKS: &[Sink] = &[
    Sink {
        file: "crates/core/src/metrics.rs",
        func: "merge",
        aliases: &[],
    },
    Sink {
        file: "crates/bench/src/jsonbench.rs",
        func: "to_json",
        aliases: &[("cpu", "wall_ns")],
    },
    Sink {
        file: "crates/bench/src/bin/harness.rs",
        func: "dynamic_point",
        aliases: &[],
    },
    // The IPC wire codec: a field missing here would silently zero on
    // every subprocess-executor row (the PR 10 motivating drift).
    Sink {
        file: "crates/core/src/ipc/protocol.rs",
        func: "put_metrics",
        aliases: &[],
    },
];

pub fn check(root: &Path, out: &mut Vec<Finding>) {
    let struct_path = root.join(STRUCT_FILE);
    let Ok(src) = std::fs::read_to_string(&struct_path) else {
        out.push(Finding {
            path: PathBuf::from(STRUCT_FILE),
            line: 0,
            rule: "metrics",
            msg: "cannot read the Metrics struct definition".into(),
        });
        return;
    };
    let lexed = lex(&src);
    let fields = struct_fields(&lexed, "Metrics");
    if fields.is_empty() {
        out.push(Finding {
            path: PathBuf::from(STRUCT_FILE),
            line: 0,
            rule: "metrics",
            msg: "no `struct Metrics` with named fields found".into(),
        });
        return;
    }

    for sink in SINKS {
        let path = root.join(sink.file);
        let Ok(src) = std::fs::read_to_string(&path) else {
            out.push(Finding {
                path: PathBuf::from(sink.file),
                line: 0,
                rule: "metrics",
                msg: format!("cannot read metrics sink (`fn {}`)", sink.func),
            });
            continue;
        };
        let sink_lexed = lex(&src);
        let Some((a, b)) = fn_body(&sink_lexed.toks, sink.func) else {
            out.push(Finding {
                path: PathBuf::from(sink.file),
                line: 0,
                rule: "metrics",
                msg: format!("metrics sink `fn {}` not found", sink.func),
            });
            continue;
        };
        let body = &sink_lexed.toks[a..b];
        let line = body.first().map_or(0, |t| t.line);
        for field in &fields {
            let wanted = sink
                .aliases
                .iter()
                .find(|(f, _)| f == field)
                .map(|&(_, alias)| alias)
                .unwrap_or(field.as_str());
            let present = body.iter().any(|t| match t.kind {
                TokKind::Ident => t.text == wanted,
                // JSON key strings in the emitter count as coverage.
                TokKind::Literal => t.text.contains(wanted),
                _ => false,
            });
            if !present {
                out.push(Finding {
                    path: PathBuf::from(sink.file),
                    line,
                    rule: "metrics",
                    msg: format!(
                        "Metrics field `{field}` is not plumbed through `fn {}`{} — every \
                         counter must reach merge, the JSON rows and the report aggregation",
                        sink.func,
                        if wanted != field {
                            format!(" (as `{wanted}`)")
                        } else {
                            String::new()
                        },
                    ),
                });
            }
        }
    }
}

/// Named fields of `struct <name> { … }`: idents directly followed by `:`
/// at struct-brace depth 1 (doc comments are not tokens, so attribute-free
/// field lists parse cleanly; `pub` markers are skipped implicitly).
fn struct_fields(lexed: &Lexed, name: &str) -> Vec<String> {
    let toks = &lexed.toks;
    let mut fields = Vec::new();
    let Some(start) = (0..toks.len().saturating_sub(2))
        .find(|&i| toks[i].is_ident("struct") && toks[i + 1].is_ident(name))
    else {
        return fields;
    };
    let Some(open) = (start..toks.len()).find(|&i| toks[i].is_punct('{')) else {
        return fields;
    };
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1
            && toks[i].kind == TokKind::Ident
            && i + 1 < toks.len()
            && toks[i + 1].is_punct(':')
            && !(i + 2 < toks.len() && toks[i + 2].is_punct(':'))
        {
            fields.push(toks[i].text.clone());
            // Skip the type until the field separator at depth 1 (commas
            // inside generics sit at angle depth, tracked separately).
            let mut ang = 0i32;
            i += 2;
            while i < toks.len() {
                match toks[i].kind {
                    TokKind::Punct('<') => ang += 1,
                    TokKind::Punct('>') => ang -= 1,
                    TokKind::Punct(',') if ang == 0 => break,
                    TokKind::Punct('}') if ang == 0 => {
                        i -= 1; // let the outer loop close the struct
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        i += 1;
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_real_field_shapes() {
        let l = lex(
            "pub struct Metrics {\n/// doc\npub dominance_checks: u64,\npub cpu: Duration,\n\
             pub nested: Vec<(u64, u64)>,\n}",
        );
        assert_eq!(
            struct_fields(&l, "Metrics"),
            vec!["dominance_checks", "cpu", "nested"]
        );
    }

    #[test]
    fn ignores_other_structs_and_paths() {
        let l = lex("struct Other { a: u64 }\nstruct Metrics { b: std::time::Duration }");
        assert_eq!(struct_fields(&l, "Metrics"), vec!["b"]);
    }
}

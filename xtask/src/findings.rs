//! Finding and waiver plumbing shared by every rule pass.

use crate::lexer::Comment;
use std::collections::HashMap; // lint:allow(hash-iter): xtask is not an engine crate; kept probe-only anyway
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding, keyed for stable, diffable output.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: PathBuf,
    /// 1-based line (0 for whole-file/whole-crate findings).
    pub line: u32,
    /// Rule id — also the waiver key (`lint:allow(<rule>)`).
    pub rule: &'static str,
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.msg
        )
    }
}

/// Waivers parsed out of one file's line comments:
/// `// lint:allow(<rule>): <non-empty reason>`, effective on its own line
/// and the line directly below (so it can sit above the flagged statement).
#[derive(Debug, Default)]
pub struct Waivers {
    /// line -> rule ids waived there.
    by_line: HashMap<u32, Vec<String>>,
}

impl Waivers {
    pub fn parse(comments: &[Comment]) -> Self {
        let mut w = Waivers::default();
        for c in comments {
            // A comment block may hold several waivers (multi-line `//`
            // runs arrive as separate comments, so this is one marker).
            let Some(rest) = c.text.split("lint:allow(").nth(1) else {
                continue;
            };
            let Some((rule, reason)) = rest.split_once(')') else {
                continue;
            };
            // The reason is mandatory: a waiver without a why is itself
            // drift. `): ` then at least one word.
            let reason = reason.trim_start_matches(':').trim();
            if reason.is_empty() {
                continue;
            }
            w.by_line
                .entry(c.line)
                .or_default()
                .push(rule.trim().to_string());
        }
        w
    }

    /// True iff `rule` is waived for a finding on `line`.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        let at = |l: u32| {
            self.by_line
                .get(&l)
                .is_some_and(|rules| rules.iter().any(|r| r == rule))
        };
        at(line) || (line > 0 && at(line - 1))
    }
}

/// Recursively collects `.rs` files under `dir`, skipping build output and
/// the vendored stand-ins. Sorted for deterministic findings order.
pub fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    collect(dir, &mut out);
    out.sort();
    out
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            let name = e.file_name();
            let name = name.to_string_lossy();
            if name == "target" || name == "vendor" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn waiver_needs_a_reason_and_reaches_one_line_down() {
        let l = lex(
            "// lint:allow(hash-iter): probe order irrelevant\nx();\n// lint:allow(hasher):\ny();",
        );
        let w = Waivers::parse(&l.comments);
        assert!(w.covers("hash-iter", 1));
        assert!(w.covers("hash-iter", 2));
        assert!(!w.covers("hash-iter", 3));
        assert!(!w.covers("hasher", 3), "empty reason is not a waiver");
        assert!(!w.covers("hasher", 4));
    }

    #[test]
    fn same_line_trailing_waiver() {
        let l = lex("let v = m.keys(); // lint:allow(hash-iter): sorted below");
        let w = Waivers::parse(&l.comments);
        assert!(w.covers("hash-iter", 1));
    }
}

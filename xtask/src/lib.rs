//! In-repo static analysis for the TSS workspace.
//!
//! `cargo run -p xtask -- lint` runs seven rule families that turn the
//! repo's doc-comment contracts into red builds:
//!
//! | rule          | contract it guards                                          |
//! |---------------|-------------------------------------------------------------|
//! | `hash-iter`   | engine crates never observe `HashMap`/`HashSet` order       |
//! | `hasher`      | no `DefaultHasher`/`RandomState` (pinned FNV-1a everywhere) |
//! | `metrics`     | every `Metrics` field reaches merge + JSON rows + reports   |
//! | `panic-path`  | per-crate unwrap/expect/panic! counts only ratchet down     |
//! | `process`     | `Command`/`process::exit` only in `core::ipc` + worker bins |
//! | `time-source` | wall clocks only in `bench` and waived Metrics.cpu sites    |
//! | `unwind`      | `catch_unwind` only inside the shard executor module        |
//!
//! Waiver syntax (line comment on the finding's line or the line above,
//! reason mandatory): `// lint:allow(<rule>): <why>`.

#![forbid(unsafe_code)]

pub mod findings;
pub mod lexer;
pub mod rules {
    pub mod determinism;
    pub mod metrics;
    pub mod panics;
    pub mod process;
    pub mod timesrc;
    pub mod unwind;
}

use findings::Finding;
use std::path::{Path, PathBuf};

/// Every rule family id, in report order.
pub const ALL_RULES: &[&str] = &[
    "hash-iter",
    "hasher",
    "metrics",
    "panic-path",
    "process",
    "time-source",
    "unwind",
];

/// Runs the requested rule families (`None` = all) over the workspace at
/// `root`. Findings come back sorted by `(path, line, rule)`.
pub fn lint(root: &Path, only: Option<&str>) -> Vec<Finding> {
    let run = |rule: &str| only.is_none_or(|r| r == rule);
    let mut out = Vec::new();

    // File-scoped rules share one lex per file.
    for file in workspace_files(root) {
        let Ok(src) = std::fs::read_to_string(&file) else {
            continue;
        };
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let lexed = lexer::lex(&src);
        if run("hash-iter") && in_engine_crate_src(&rel) {
            rules::determinism::hash_iter(&file, &rel, &lexed, &mut out);
        }
        if run("hasher") {
            rules::determinism::hasher_ban(&rel, &lexed, &mut out);
        }
        if run("process") {
            rules::process::check(&rel, &lexed, &mut out);
        }
        if run("time-source") {
            rules::timesrc::check(&rel, &lexed, &mut out);
        }
        if run("unwind") {
            rules::unwind::check(&rel, &lexed, &mut out);
        }
    }
    if run("metrics") {
        rules::metrics::check(root, &mut out);
    }
    if run("panic-path") {
        rules::panics::check(root, &mut out);
    }

    out.sort();
    out.dedup();
    out
}

/// All lintable `.rs` files: the crates, the facade (`src/`, `tests/`,
/// `examples/`) and xtask's own sources. `vendor/` and `target/` are never
/// linted (offline stand-ins, build output), nor are test fixtures.
fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for dir in ["crates", "src", "tests", "examples", "xtask/src"] {
        files.extend(findings::rust_files(&root.join(dir)));
    }
    files.sort();
    files
}

/// True iff `rel` is shipping source of an engine crate — the scope of the
/// `hash-iter` determinism contract (PR 4/5 byte-identity).
fn in_engine_crate_src(rel: &Path) -> bool {
    let s = rel.to_string_lossy().replace('\\', "/");
    rules::determinism::ENGINE_CRATES
        .iter()
        .any(|c| s.starts_with(&format!("crates/{c}/src/")))
}

/// Workspace root when running via `cargo run -p xtask` (the manifest dir's
/// parent).
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits one level below the workspace root") // lint:allow(panic-path): compile-time layout invariant
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_crate_scope() {
        assert!(in_engine_crate_src(Path::new("crates/core/src/stss.rs")));
        assert!(in_engine_crate_src(Path::new("crates/poset/src/dag.rs")));
        assert!(!in_engine_crate_src(Path::new(
            "crates/bench/src/runner.rs"
        )));
        assert!(!in_engine_crate_src(Path::new("crates/datagen/src/lib.rs")));
        assert!(!in_engine_crate_src(Path::new(
            "crates/rtree/tests/dynamic_and_buffer.rs"
        )));
    }
}

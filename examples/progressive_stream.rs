//! Progressiveness head-to-head (Fig. 11): stream skyline points out of
//! sTSS and SDC+ on an anti-correlated workload and print when each
//! algorithm reaches 10%, 25%, 50%, 75% and 100% of the result set, under
//! the paper's 5 ms/IO cost model.
//!
//! Run with: `cargo run --release --example progressive_stream`

use tss::core::{CostModel, ProgressSample, Stss, StssConfig, Table};
use tss::datagen::{gen_po_matrix, gen_to_matrix, Distribution, TupleConfig};
use tss::poset::generator::{subset_lattice, DensityMode, LatticeParams};
use tss::sdc::{SdcConfig, SdcIndex, Variant};

fn main() {
    let n = 30_000;
    let dag = subset_lattice(LatticeParams {
        height: 6,
        density: 0.8,
        seed: 42,
        mode: DensityMode::Literal,
    })
    .unwrap();
    let to = gen_to_matrix(TupleConfig {
        n,
        dims: 2,
        domain: 10_000,
        dist: Distribution::AntiCorrelated,
        seed: 42,
    });
    let po = gen_po_matrix(n, &[dag.len() as u32], 43);
    let table = Table::from_parts(2, 1, to, po).unwrap();
    println!(
        "workload: N={n}, anti-correlated, |V|={} (h=6, d=0.8)\n",
        dag.len()
    );

    // --- sTSS --------------------------------------------------------------
    let stss = Stss::build(table.clone(), vec![dag.clone()], StssConfig::default()).unwrap();
    let (run, log) = stss.run_progressive();
    let tss_samples = log.samples.clone();

    // --- SDC+ --------------------------------------------------------------
    let idx = SdcIndex::build(table, vec![dag], Variant::SdcPlus, SdcConfig::default()).unwrap();
    let mut sdc_samples: Vec<ProgressSample> = Vec::new();
    let sdc_run = idx.run_with(&mut |_, s| sdc_samples.push(s));

    assert_eq!(run.skyline.len(), sdc_run.skyline.len());
    let total = run.skyline.len();
    println!(
        "skyline size: {total}  (SDC+ strata: {:?})\n",
        sdc_run.per_stratum
    );

    let model = CostModel::default();
    let at = |samples: &[ProgressSample], frac: f64| {
        let ix = (((total as f64) * frac).ceil() as usize).clamp(1, total) - 1;
        samples[ix].elapsed_total(model)
    };
    println!("results retrieved | sTSS (simulated) | SDC+ (simulated)");
    println!("------------------+------------------+-----------------");
    for pct in [10, 25, 50, 75, 100] {
        let f = pct as f64 / 100.0;
        println!(
            "             {pct:>3}% | {:>15.3?} | {:>15.3?}",
            at(&tss_samples, f),
            at(&sdc_samples, f)
        );
    }
    println!(
        "\ntotals: sTSS {} reads / {} checks; SDC+ {} reads / {} checks",
        run.metrics.io_reads,
        run.metrics.dominance_checks,
        sdc_run.metrics.io_reads,
        sdc_run.metrics.dominance_checks
    );
}

//! Five-minute tour of the TSS library: define a partial order, load a few
//! tuples, compute the skyline progressively, and inspect the metrics.
//!
//! Run with: `cargo run --example quickstart`

use tss::core::{CostModel, Stss, StssConfig, Table};
use tss::poset::PartialOrderBuilder;

fn main() {
    // --- 1. A partially ordered attribute: laptop brand preference. ------
    // "thinkpad" beats both "mac" and "framework"; everything beats
    // "noname"; "mac" and "framework" are incomparable.
    let mut prefs = PartialOrderBuilder::new();
    prefs.values(["thinkpad", "mac", "framework", "noname"]);
    prefs.prefer("thinkpad", "mac").unwrap();
    prefs.prefer("thinkpad", "framework").unwrap();
    prefs.prefer("mac", "noname").unwrap();
    prefs.prefer("framework", "noname").unwrap();
    let brands = prefs.build().unwrap();
    let brand = |label: &str| brands.id_of(label).unwrap().0;

    // --- 2. Tuples: (price, weight_grams) totally ordered + the brand. ---
    let mut table = Table::new(2, 1);
    let laptops = [
        ("A", 1200, 1400, "thinkpad"),
        ("B", 900, 1900, "mac"),
        ("C", 900, 1900, "framework"),
        ("D", 850, 2100, "noname"),
        ("E", 1500, 1100, "mac"),
        ("F", 1200, 1500, "framework"),
        ("G", 700, 2400, "thinkpad"),
        ("H", 1600, 1300, "noname"),
    ];
    for (_, price, weight, b) in laptops {
        table.push(&[price, weight], &[brand(b)]);
    }

    // --- 3. Build the sTSS operator and stream the skyline. --------------
    let stss = Stss::build(table, vec![brands], StssConfig::default()).expect("valid input");
    println!("skyline (streamed in mindist order):");
    let metrics = stss.run_with(|point, sample| {
        let name = laptops[point.record as usize].0;
        println!(
            "  #{:<2} {}  price={:<5} weight={:<5} brand={}",
            sample.results, name, point.to[0], point.to[1], laptops[point.record as usize].3,
        );
    });

    // --- 4. Metrics under the paper's 5 ms/IO cost model. ----------------
    let model = CostModel::default();
    println!("\nmetrics:");
    println!("  results          : {}", metrics.results);
    println!("  dominance checks : {}", metrics.dominance_checks);
    println!("  page reads       : {}", metrics.io_reads);
    println!("  heap pops        : {}", metrics.heap_pops);
    println!("  simulated total  : {:?}", model.total_time(&metrics));
}

//! Dynamic skyline queries (§V): the data is indexed once; every query
//! brings its own partial order. Reproduces the two-query session of
//! Fig. 5 / Fig. 6 and shows the effect of the §V-B optimizations.
//!
//! Run with: `cargo run --example dynamic_preferences`

use tss::core::{Dtss, DtssConfig, DtssRun, PoQuery, Table};
use tss::poset::PartialOrderBuilder;
use tss::sdc::{DynamicSdc, SdcConfig};

fn data() -> Table {
    // Fig. 5(a): (A1, A2) totally ordered, A3 ∈ {a, b, c} partially ordered.
    let mut t = Table::new(2, 1);
    for (a1, a2, a3) in [
        (1, 2, 0),
        (3, 1, 0),
        (3, 4, 0),
        (4, 5, 0),
        (2, 2, 1),
        (1, 5, 1),
        (2, 5, 2),
        (3, 4, 2),
        (4, 4, 2),
        (5, 2, 2),
    ] {
        t.push(&[a1, a2], &[a3]);
    }
    t
}

fn query(prefs: &[(&str, &str)]) -> PoQuery {
    let mut b = PartialOrderBuilder::new();
    b.values(["a", "b", "c"]);
    for &(x, y) in prefs {
        b.prefer(x, y).unwrap();
    }
    PoQuery::new(vec![b.build().unwrap()])
}

fn show(name: &str, run: &DtssRun) {
    let points: Vec<String> = run
        .skyline
        .iter()
        .map(|p| format!("p{}", p.record + 1))
        .collect();
    println!(
        "  {name}: {{{}}}  — {}/{} groups dismissed, {} page reads{}",
        points.join(", "),
        run.groups_skipped,
        run.groups_total,
        run.metrics.io_reads,
        if run.from_cache {
            ", served from cache"
        } else {
            ""
        },
    );
}

fn main() {
    let dtss = Dtss::build(
        data(),
        vec![3],
        DtssConfig {
            cache: true,
            ..Default::default()
        },
    )
    .unwrap();
    println!(
        "Indexed {} tuples into {} PO-value groups (built once, reused by every query).\n",
        dtss.table().len(),
        dtss.group_count()
    );

    println!("Query 1 — 'b is better than c' (Fig. 5):");
    let q1 = query(&[("b", "c")]);
    show("dTSS", &dtss.query(&q1).unwrap());

    println!("\nQuery 2 — 'a and c are both better than b' (Fig. 6):");
    let q2 = query(&[("a", "b"), ("c", "b")]);
    show("dTSS", &dtss.query(&q2).unwrap());

    println!("\nQuery 1 again — the digest cache answers instantly:");
    show("dTSS", &dtss.query(&q1).unwrap());

    // The baseline must rebuild its interval labels, strata and R-trees for
    // every single query; the rebuild passes are charged as IOs.
    println!("\nThe SDC+ baseline pays a full rebuild per query:");
    let baseline = DynamicSdc::new(data(), SdcConfig::default());
    for (name, q) in [("query 1", &q1), ("query 2", &q2)] {
        let run = baseline.query(q.dags()).unwrap();
        let pts: Vec<String> = run.skyline.iter().map(|r| format!("p{}", r + 1)).collect();
        println!(
            "  {name}: {{{}}} — {} reads + {} writes",
            pts.join(", "),
            run.metrics.io_reads,
            run.metrics.io_writes
        );
    }
}

//! The paper's motivating example (Fig. 1 + Table I): a flight reservation
//! system where Price and Stops are totally ordered but the Airline
//! preference is partial — and different for every user.
//!
//! Run with: `cargo run --example flight_booking`

use tss::core::{Stss, StssConfig, Table};
use tss::poset::{Dag, PartialOrderBuilder};

const TICKETS: [(&str, u32, u32, &str); 10] = [
    ("p1", 1800, 0, "a"),
    ("p2", 2000, 0, "a"),
    ("p3", 1800, 0, "b"),
    ("p4", 1200, 1, "b"),
    ("p5", 1400, 1, "a"),
    ("p6", 1000, 1, "b"),
    ("p7", 1000, 1, "d"),
    ("p8", 1800, 1, "c"),
    ("p9", 500, 2, "d"),
    ("p10", 1200, 2, "c"),
];

fn table(dag: &Dag) -> Table {
    let mut t = Table::new(2, 1);
    for (_, price, stops, airline) in TICKETS {
        t.push(&[price, stops], &[dag.id_of(airline).unwrap().0]);
    }
    t
}

fn report(title: &str, dag: Dag) {
    let stss = Stss::build(table(&dag), vec![dag], StssConfig::default()).unwrap();
    let run = stss.run();
    let names: Vec<&str> = run
        .skyline
        .iter()
        .map(|p| TICKETS[p.record as usize].0)
        .collect();
    println!("{title}");
    println!("  skyline tickets: {}", names.join(", "));
    println!(
        "  ({} dominance checks, {} page reads)\n",
        run.metrics.dominance_checks, run.metrics.io_reads
    );
}

fn main() {
    println!("Ticket catalogue (Price, Stops, Airline):");
    for (name, price, stops, airline) in TICKETS {
        println!("  {name:<4} {price:>5}  {stops}  {airline}");
    }
    println!();

    // Table I, row 1: a over b and c, any company over d, b ~ c.
    let mut b1 = PartialOrderBuilder::new();
    b1.values(["a", "b", "c", "d"]);
    b1.prefer("a", "b").unwrap();
    b1.prefer("a", "c").unwrap();
    b1.prefer("b", "d").unwrap();
    b1.prefer("c", "d").unwrap();
    report(
        "User 1 prefers a over b and c, anything over d (Table I, row 1):",
        b1.build().unwrap(),
    );

    // Table I, row 2: only b over a.
    let mut b2 = PartialOrderBuilder::new();
    b2.values(["a", "b", "c", "d"]);
    b2.prefer("b", "a").unwrap();
    report(
        "User 2 only prefers b over a (Table I, row 2):",
        b2.build().unwrap(),
    );

    // No airline preference at all: the two PO-free dimensions plus an
    // antichain domain — every airline stands on its own.
    let free = {
        let mut b = PartialOrderBuilder::new();
        b.values(["a", "b", "c", "d"]);
        b.build().unwrap()
    };
    report("No airline preference (antichain order):", free);
}

//! Sliding-window skyline maintenance over a housing stream — the classic
//! streaming-skyline demo (a random-housing feed with per-city prices),
//! with the partially ordered twist this paper adds: *city* is a PO
//! attribute under a buyer's preference DAG, not a number.
//!
//! 100 houses arrive one by one; only the 40 freshest stay live
//! (a count-based sliding window). Every arrival updates the maintained
//! skyline incrementally — an insert screens the newcomer against the
//! current skyline, a window eviction of a skyline member triggers a
//! bounded delta *repair* instead of a recompute — and snapshot cursors
//! serve consistent reads at any point, stamped with the store epoch they
//! saw.
//!
//! Run with: `cargo run --example sliding_window`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tss::core::{
    brute_force_po_skyline, PoDomain, SkylineCursor, StreamingConfig, StreamingSkyline, Table,
    WindowPolicy,
};
use tss::poset::PartialOrderBuilder;

/// Mean price per m² in each city.
const CITY_PRICES: [(&str, f64); 3] =
    [("Bordeaux", 4045.0), ("Lyon", 4547.0), ("Toulouse", 3278.0)];

/// Sizes are scored as `SIZE_CAP - size` so that *bigger is better* under
/// the engine's smaller-is-better totally ordered dominance.
const SIZE_CAP: u32 = 500;

const WINDOW: usize = 40;
const ARRIVALS: usize = 100;

/// ~N(0,1) via the sum of 12 uniforms (Irwin–Hall) — good enough for a
/// demo stream, and fully deterministic under the seeded generator.
fn gauss(rng: &mut StdRng) -> f64 {
    (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0
}

fn main() {
    // The buyer's partial order on cities: Bordeaux preferred over Lyon,
    // Toulouse incomparable to both — exactly what a total order cannot
    // express and the paper's t-dominance can.
    let mut b = PartialOrderBuilder::new();
    b.values(CITY_PRICES.map(|(name, _)| name));
    b.prefer("Bordeaux", "Lyon").unwrap();
    let dag = b.build().unwrap();
    let city_id: Vec<u32> = CITY_PRICES
        .iter()
        .map(|(name, _)| dag.id_of(name).unwrap().0)
        .collect();

    let mut s = StreamingSkyline::new(
        2,
        vec![PoDomain::new(dag)],
        StreamingConfig {
            window: WindowPolicy::Count(WINDOW),
            ..StreamingConfig::default()
        },
    );

    let mut rng = StdRng::seed_from_u64(42);
    println!("streaming {ARRIVALS} houses through a {WINDOW}-house sliding window\n");
    for i in 0..ARRIVALS {
        let city = rng.gen_range(0..CITY_PRICES.len());
        let size = (200.0 + 50.0 * gauss(&mut rng)).round().clamp(60.0, 400.0) as u32;
        let price = (rng.gen_range(0.8..1.2) * CITY_PRICES[city].1 * size as f64).round() as u32;
        s.insert(&[price, SIZE_CAP - size], &[city_id[city]]);

        if (i + 1) % 25 == 0 {
            // A snapshot cursor: owns its points and the epoch it saw, so
            // later inserts/expiries can never invalidate the read.
            let cursor = s.cursor();
            println!(
                "after {:3} arrivals: {:2} live houses, skyline {:2} (snapshot @ epoch {})",
                i + 1,
                s.live_len(),
                cursor.len(),
                cursor.generation()
            );
        }
    }

    println!("\nmaintained skyline of the {WINDOW} freshest houses:");
    let mut cursor = s.cursor();
    while let Some(p) = cursor.next() {
        let city = CITY_PRICES
            .iter()
            .zip(&city_id)
            .find(|&(_, &id)| id == p.po[0])
            .map(|((name, _), _)| *name)
            .unwrap();
        println!(
            "  {:9} {:3} m²  {:7} EUR",
            city,
            SIZE_CAP - p.to[1],
            p.to[0]
        );
    }

    let m = s.metrics();
    println!(
        "\nmaintenance: {} inserts, {} expirations, {} member repairs \
         ({} candidates screened, {} dominance checks total)",
        m.stream_inserts,
        m.stream_expirations,
        m.stream_repairs,
        m.repair_candidates,
        m.dominance_checks
    );

    // The whole point of delta maintenance: the maintained skyline is
    // byte-identical to a from-scratch recompute of the surviving window.
    let mut window = Table::new(2, 1);
    for id in s.store().live_ids() {
        window.push(s.store().to(id), s.store().po(id));
    }
    let recomputed = brute_force_po_skyline(s.domains(), &window);
    assert_eq!(recomputed.len(), s.skyline_records().len());
    println!(
        "cross-check: from-scratch recompute of the window agrees ({} points)",
        recomputed.len()
    );
}

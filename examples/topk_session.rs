//! The pull-based serving path: top-k skyline prefixes off live cursors,
//! and a `QuerySession` amortizing per-user preference DAGs across repeated
//! dynamic queries.
//!
//! Run with: `cargo run --release --example topk_session`

use tss::core::{
    CostModel, Dtss, DtssConfig, PoQuery, QuerySession, SkylineCursor, SkylineEngine, Stss,
    StssConfig, Table,
};
use tss::datagen::{gen_po_matrix, gen_to_matrix, Distribution, TupleConfig};
use tss::poset::generator::{subset_lattice, DensityMode, LatticeParams};
use tss::poset::Dag;

/// A different preference order with the same shape: the DAG with its node
/// identities permuted (what a changed user preference looks like).
fn permute(dag: &Dag, salt: u32) -> Dag {
    let n = dag.len() as u32;
    let map = |v: u32| (v + salt) % n;
    let edges: Vec<(u32, u32)> = dag.edges().map(|(u, v)| (map(u.0), map(v.0))).collect();
    Dag::from_edges(n, &edges).expect("relabeling preserves acyclicity")
}

fn main() {
    let n = 30_000;
    let dag = subset_lattice(LatticeParams {
        height: 5,
        density: 0.8,
        seed: 42,
        mode: DensityMode::Literal,
    })
    .unwrap();
    let to = gen_to_matrix(TupleConfig {
        n,
        dims: 2,
        domain: 10_000,
        dist: Distribution::AntiCorrelated,
        seed: 42,
    });
    let po = gen_po_matrix(n, &[dag.len() as u32], 43);
    let table = Table::from_parts(2, 1, to, po).unwrap();
    let model = CostModel::default();
    println!("workload: N={n}, anti-correlated, |V|={}\n", dag.len());

    // --- Top-k off an sTSS cursor -----------------------------------------
    // A result page wants 10 options, not the whole skyline: pull 10 and
    // stop. The unexpanded subtrees are never read.
    let stss = Stss::build(table.clone(), vec![dag.clone()], StssConfig::default()).unwrap();
    let full = stss.run();
    let mut cursor = stss.open();
    let top10 = cursor.take_k(10);
    println!(
        "sTSS top-10: {} of {} results pulled — {} page reads vs {} for the full run ({:.1}%)",
        top10.len(),
        full.skyline.len(),
        cursor.metrics().io_reads,
        full.metrics.io_reads,
        100.0 * cursor.metrics().io_reads as f64 / full.metrics.io_reads as f64
    );
    println!(
        "  simulated latency to 10th result: {:?} (full run {:?})\n",
        cursor.progress().elapsed_total(model),
        model.total_time(&full.metrics),
    );

    // --- A query session over dTSS ----------------------------------------
    // One user, three queries: their preference DAG is labeled once and
    // reused; switching preferences labels the new DAG and caches it too.
    let dtss = Dtss::build(table, vec![dag.len() as u32], DtssConfig::default()).unwrap();
    let mut session = QuerySession::new(&dtss);
    let monday = PoQuery::new(vec![dag.clone()]);
    // The same preferences resubmitted as a fresh object on tuesday…
    let tuesday = PoQuery::new(vec![dag.clone()]);
    // …and genuinely changed preferences (the permuted DAG) on friday.
    let friday = PoQuery::new(vec![permute(&dag, 99)]);

    for (label, q) in [
        ("monday (new DAG)", &monday),
        ("tuesday (same preferences)", &tuesday),
        ("friday (changed preferences)", &friday),
    ] {
        let run = session.query(q).unwrap();
        println!(
            "dTSS {label}: {} results, labeling cache {} hit(s) / {} miss(es)",
            run.metrics.results, run.metrics.label_cache_hits, run.metrics.label_cache_misses
        );
    }
    let stats = session.stats();
    println!(
        "\nsession totals: {} hits / {} misses, {} labelings cached",
        stats.hits, stats.misses, stats.entries
    );

    // Top-k works on the dynamic path too.
    let mut c = session.cursor(&monday).unwrap();
    let top5 = c.take_k(5);
    println!(
        "dTSS top-5 off a session cursor: {} results after {} page reads",
        top5.len(),
        c.metrics().io_reads
    );
}

//! Fully dynamic skyline queries (§V-B): each query specifies *both* a
//! partial order per PO attribute and an ideal value per TO attribute.
//! Dominance is evaluated on the folded coordinates |x − ideal|, so "best"
//! means *closest to what this user asked for* — and the dTSS group trees
//! are still reused untouched.
//!
//! Run with: `cargo run --example fully_dynamic`

use tss::core::{Dtss, DtssConfig, PoQuery, Table};
use tss::poset::PartialOrderBuilder;

const APARTMENTS: [(&str, u32, u32, &str); 8] = [
    // (name, size m², floor, heating)
    ("A", 45, 1, "gas"),
    ("B", 70, 3, "heat-pump"),
    ("C", 70, 3, "oil"),
    ("D", 95, 5, "gas"),
    ("E", 55, 2, "heat-pump"),
    ("F", 80, 7, "oil"),
    ("G", 62, 3, "gas"),
    ("H", 88, 1, "heat-pump"),
];

fn main() {
    // Heating domain: fixed value ids shared by the data and every query.
    let heating_names = ["heat-pump", "gas", "oil"];
    let heating_id = |name: &str| heating_names.iter().position(|&n| n == name).unwrap() as u32;

    let mut table = Table::new(2, 1);
    for (_, size, floor, heating) in APARTMENTS {
        table.push(&[size, floor], &[heating_id(heating)]);
    }
    let dtss = Dtss::build(table, vec![3], DtssConfig::default()).unwrap();
    println!(
        "{} apartments in {} heating groups; each query below brings its own\n\
         heating preference AND its own ideal (size, floor).\n",
        APARTMENTS.len(),
        dtss.group_count()
    );

    let order = |prefs: &[(&str, &str)]| {
        let mut b = PartialOrderBuilder::new();
        b.values(heating_names);
        for &(x, y) in prefs {
            b.prefer(x, y).unwrap();
        }
        PoQuery::new(vec![b.build().unwrap()])
    };

    let scenarios = [
        (
            "Young couple: ~65 m², low floor, eco heating",
            order(&[("heat-pump", "gas"), ("gas", "oil")]),
            [65u32, 1u32],
        ),
        (
            "Family: ~90 m², ~3rd floor, no opinion on gas vs heat pump",
            order(&[("heat-pump", "oil"), ("gas", "oil")]),
            [90, 3],
        ),
        (
            "Investor: ~70 m², top floors, indifferent heating",
            order(&[]),
            [70, 7],
        ),
    ];

    for (who, q, ideal) in scenarios {
        let run = dtss.query_fully_dynamic(&q, &ideal).unwrap();
        let names: Vec<&str> = run
            .skyline
            .iter()
            .map(|p| APARTMENTS[p.record as usize].0)
            .collect();
        println!("{who}");
        println!(
            "  ideal (size, floor) = {ideal:?}  ->  skyline: {}  ({} groups dismissed)",
            names.join(", "),
            run.groups_skipped
        );
        for p in &run.skyline {
            let (name, size, floor, heating) = APARTMENTS[p.record as usize];
            println!(
                "    {name}: {size} m² (Δ{}), floor {floor} (Δ{}), {heating}",
                size.abs_diff(ideal[0]),
                floor.abs_diff(ideal[1])
            );
        }
        println!();
    }
}

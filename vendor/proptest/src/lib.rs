//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of the proptest API its test suites use: the [`proptest!`] macro
//! (with `#![proptest_config]`), [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range / tuple / [`collection::vec`] / [`bool`](mod@bool) strategies,
//! and the `prop_assert*` macros.
//!
//! Semantics: each test runs `cases` deterministic random inputs (seeded from
//! the test name, so failures reproduce run-to-run). There is **no
//! shrinking** — a failing case panics with the standard assertion message.

pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic case source, seeded from the test's name.
    pub struct TestRng(pub(crate) rand::rngs::StdRng);

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(<rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(h))
        }
    }
}

pub mod strategy {
    use rand::Rng as _;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// simply produces a fresh value per case.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) whence: &'static str,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 1000 consecutive values",
                self.whence
            )
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut crate::test_runner::TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut crate::test_runner::TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut crate::test_runner::TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut crate::test_runner::TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use super::strategy::Strategy;

    /// Lengths accepted by [`vec`](fn@vec): an exact `usize` or a
    /// `Range<usize>`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec` — a vector of `size` elements of `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> Vec<S::Value> {
            let len = (self.size.lo..self.size.hi_exclusive).generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use rand::Rng as _;

    /// Fair coin flip.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> bool {
            rng.0.gen::<bool>()
        }
    }

    /// `true` with probability `p`.
    #[derive(Clone, Copy, Debug)]
    pub struct Weighted(pub f64);

    pub fn weighted(p: f64) -> Weighted {
        Weighted(p)
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> bool {
            rng.0.gen_bool(self.0)
        }
    }
}

pub mod num {
    // Range strategies are implemented directly on core ranges in
    // `crate::strategy`; this module exists for API-shape compatibility.
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The test-defining macro. Supports the two shapes this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_test(x in 0u32..10, v in proptest::collection::vec(0u32..5, 1..9)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                $body
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

/// Assertion that reports the failing case; no shrinking, so it simply
/// panics like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges_and_vecs");
        let s = crate::collection::vec((0u32..10, 0u32..5), 1..20);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..20).contains(&v.len()));
            assert!(v.iter().all(|&(a, b)| a < 10 && b < 5));
        }
    }

    #[test]
    fn flat_map_and_map() {
        let mut rng = crate::test_runner::TestRng::deterministic("flat_map_and_map");
        let s = (2usize..=6)
            .prop_flat_map(|n| crate::collection::vec(0u32..4, n).prop_map(move |v| (n, v)));
        for _ in 0..200 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_smoke(x in 0u32..100, flip in crate::bool::ANY, v in collection::vec(0u32..7, 0..5)) {
            prop_assert!(x < 100);
            let _ = flip;
            prop_assert!(v.len() < 5);
            prop_assert_eq!(v.iter().filter(|&&e| e >= 7).count(), 0);
        }
    }
}

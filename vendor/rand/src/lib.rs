//! Offline stand-in for [`rand`](https://crates.io/crates/rand) 0.8.
//!
//! The build environment has no network access, so the workspace vendors the
//! small slice of the rand API it actually uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] / [`Rng::gen_range`] over
//! integer and float ranges, and [`seq::SliceRandom::shuffle`].
//!
//! Streams are deterministic (xoshiro256** seeded through SplitMix64) but do
//! **not** bit-match the real `StdRng` (ChaCha12); nothing in this workspace
//! depends on the exact stream, only on seeded reproducibility.

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Wrapping add keeps signed ranges correct: the offset may
                // exceed the positive half of the type, but two's-complement
                // wrap-around lands on the right value.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1) & (u64::MAX as u128);
                if span == 0 {
                    // Full-width range: every value of the type is fair.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing sampling interface (blanket-implemented for every
/// [`RngCore`], mirroring rand 0.8).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, Range: SampleRange<T>>(&mut self, range: Range) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 — a deterministic, statistically
    /// solid stand-in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Random-order operations on slices (the `shuffle` subset).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0..=4);
            assert!(y <= 4);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_signed_and_full_width() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&y));
        }
        // Full-width inclusive ranges must not panic (span wraps to 0).
        let _: u64 = rng.gen_range(0..=u64::MAX);
        let _: i64 = rng.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn unit_floats() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left slice unchanged"
        );
    }
}

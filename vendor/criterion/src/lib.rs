//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of the Criterion API its benches use: [`Criterion`] with the
//! builder knobs of `benches/common/mod.rs`, [`BenchmarkGroup`] /
//! `bench_function`, [`Bencher::iter`], [`black_box`], and
//! [`criterion_main!`].
//!
//! Measurement is intentionally simple — warm up for `warm_up_time`, then
//! time `sample_size` samples and print min/median/mean — enough for the
//! relative comparisons the benches make, with zero dependencies.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver (builder subset of the real API).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, &id, f);
        self
    }

    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(self.criterion, &id, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; `iter` does the timing.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also estimates a per-iteration cost so one sample can
        // batch enough iterations to be measurable.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(warm_iters.max(1) as u32)
            .unwrap_or_default();
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u32
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, id: &str, mut f: F) {
    let mut b = Bencher {
        sample_size: c.sample_size,
        warm_up_time: c.warm_up_time,
        measurement_time: c.measurement_time,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<48} (no samples — closure never called iter)");
        return;
    }
    b.samples.sort_unstable();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{id:<48} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        min,
        median,
        mean,
        b.samples.len()
    );
}

/// Mirrors `criterion_main!`: each argument is a function that runs benches.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Mirrors `criterion_group!`: defines a function running each bench with a
/// default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("g");
        let mut calls = 0u64;
        group.bench_function("work", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0, "routine was never invoked");
    }
}

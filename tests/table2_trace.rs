//! Reproduces the paper's §IV-A worked example end to end: the data set of
//! Fig. 3(a), the hand-drawn R-tree of Fig. 3(c) (node capacity 3), and the
//! step-by-step execution of Table II.
//!
//! The trace is deterministic given (i) L1 mindist ordering, (ii) FIFO
//! tie-breaking among equal mindists — both guaranteed by `rtree` — so we
//! can assert the emission order, the number of heap pops (16: the root
//! plus the 15 table steps) and the exact page reads (6 of the 8 nodes;
//! N4 and N7 are pruned unread).

use tss::core::{RangeStrategy, Stss, StssConfig, Table};
use tss::poset::Dag;
use tss::rtree::{BuildNode, RTree};

/// Fig. 3(a): (A1, A2) tuples; A2 ids: a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8.
fn fig3_table() -> Table {
    let mut t = Table::new(1, 1);
    for (a1, a2) in [
        (2u32, 2u32), // p1  c
        (3, 3),       // p2  d
        (1, 7),       // p3  h
        (8, 0),       // p4  a
        (6, 4),       // p5  e
        (7, 2),       // p6  c
        (9, 1),       // p7  b
        (4, 8),       // p8  i
        (2, 5),       // p9  f
        (3, 6),       // p10 g
        (5, 6),       // p11 g
        (7, 5),       // p12 f
        (9, 7),       // p13 h
    ] {
        t.push(&[a1], &[a2]);
    }
    t
}

/// Fig. 3(c), with points already in the transformed A1 × A_TO space
/// (ordinals are alphabetical: a=1 … i=9).
fn fig3_tree() -> RTree {
    let n2 = BuildNode::Leaf(vec![(vec![2, 3], 0), (vec![3, 4], 1), (vec![6, 5], 4)]);
    let n4 = BuildNode::Leaf(vec![(vec![2, 6], 8), (vec![3, 7], 9)]);
    let n5 = BuildNode::Leaf(vec![(vec![1, 8], 2), (vec![4, 9], 7)]);
    let n6 = BuildNode::Leaf(vec![(vec![8, 1], 3), (vec![7, 3], 5), (vec![9, 2], 6)]);
    let n7 = BuildNode::Leaf(vec![(vec![5, 7], 10), (vec![7, 6], 11), (vec![9, 8], 12)]);
    let n1 = BuildNode::Inner(vec![n2, n4, n5]);
    let n3 = BuildNode::Inner(vec![n6, n7]);
    RTree::from_structure(2, 3, BuildNode::Inner(vec![n1, n3]))
}

#[test]
fn table2_step_by_step() {
    let stss = Stss::with_tree(
        fig3_table(),
        vec![Dag::paper_example()],
        fig3_tree(),
        StssConfig::default(),
    )
    .unwrap();
    let run = stss.run();

    // Final skyline: p1..p5, emitted in ascending mindist. p3 and p4 tie at
    // mindist 9 and are mutually incomparable; Table II shows p3 first, but
    // its own tie order is not FIFO-consistent (p5/e7/p7 at mindist 11 are
    // FIFO), so either of the two admissible orders is correct. Our FIFO
    // rule emits p4 (en-heaped at step 8) before p3 (step 9).
    let recs = run.skyline_records();
    assert_eq!(recs[..2], [0, 1]);
    assert_eq!(recs[4], 4);
    let mut mid = recs[2..4].to_vec();
    mid.sort_unstable();
    assert_eq!(mid, vec![2, 3]);

    // 16 heap pops: the root plus one per table step.
    assert_eq!(run.metrics.heap_pops, 16);

    // Page reads: R, N1, N2, N3, N6, N5 are expanded; N4 (step 7) and N7
    // (step 14) are t-dominated and pruned without being read.
    assert_eq!(run.metrics.io_reads, 6);

    assert_eq!(run.metrics.results, 5);
}

#[test]
fn table2_emission_mindists() {
    // The mindists at which results pop: p1 at 5, p2 at 7, p3 at 9, p4 at
    // 9, p5 at 11 (the ⟨entry, mindist⟩ pairs of Table II).
    let stss = Stss::with_tree(
        fig3_table(),
        vec![Dag::paper_example()],
        fig3_tree(),
        StssConfig::default(),
    )
    .unwrap();
    let run = stss.run();
    let mindists: Vec<u64> = run
        .skyline
        .iter()
        .map(|p| {
            // Transformed point: A1 + ordinal (= id + 1 alphabetically).
            (p.to[0] + p.po[0] + 1) as u64
        })
        .collect();
    assert_eq!(mindists, vec![5, 7, 9, 9, 11]);
}

#[test]
fn bulk_loaded_tree_gives_same_skyline() {
    // The STR-built index differs from the hand-drawn one, but the result —
    // and optimal progressiveness in mindist order — must not.
    let stss = Stss::build(
        fig3_table(),
        vec![Dag::paper_example()],
        StssConfig {
            node_capacity: Some(3),
            ..Default::default()
        },
    )
    .unwrap();
    let run = stss.run();
    let mut recs = run.skyline_records();
    recs.sort_unstable();
    assert_eq!(recs, vec![0, 1, 2, 3, 4]);
}

#[test]
fn fast_check_and_multi_cover_reproduce_the_trace_results() {
    for cfg in [
        StssConfig {
            fast_check: true,
            ..Default::default()
        },
        StssConfig {
            multi_cover_mbb: true,
            ..Default::default()
        },
        StssConfig {
            range_strategy: RangeStrategy::Naive,
            ..Default::default()
        },
        StssConfig {
            range_strategy: RangeStrategy::Full,
            ..Default::default()
        },
    ] {
        let stss =
            Stss::with_tree(fig3_table(), vec![Dag::paper_example()], fig3_tree(), cfg).unwrap();
        let mut recs = stss.run().skyline_records();
        recs.sort_unstable();
        assert_eq!(recs, vec![0, 1, 2, 3, 4], "{cfg:?}");
    }
}

//! The pull-based execution model, end to end: every engine in the
//! workspace is drivable through `SkylineEngine::open` / `SkylineCursor`,
//! cursors agree with the push-based `run()` paths, early termination is
//! sound (a `k`-prefix equals the progressive order's prefix) and cheaper
//! (strictly fewer page reads than a full run), and `QuerySession` reuses
//! DAG labelings across dynamic queries.

use tss::core::{
    ClassicAlgo, ClassicEngine, Dtss, DtssConfig, PoQuery, QuerySession, SkylineCursor,
    SkylineEngine, Stss, StssConfig, Table,
};
use tss::datagen::{gen_po_matrix, gen_to_matrix, Distribution, TupleConfig};
use tss::poset::generator::{subset_lattice, DensityMode, LatticeParams};
use tss::poset::Dag;
use tss::sdc::{SdcConfig, SdcIndex, Variant};

const SCALED_CAPACITY: usize = 32;

fn workload(n: usize, seed: u64) -> (Table, Dag) {
    let dag = subset_lattice(LatticeParams {
        height: 5,
        density: 0.8,
        seed,
        mode: DensityMode::Literal,
    })
    .unwrap();
    let to = gen_to_matrix(TupleConfig {
        n,
        dims: 2,
        domain: 1000,
        dist: Distribution::Independent,
        seed,
    });
    let po = gen_po_matrix(n, &[dag.len() as u32], seed + 7);
    (Table::from_parts(2, 1, to, po).unwrap(), dag)
}

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

fn drain(engine: &dyn SkylineEngine) -> Vec<u32> {
    let mut c = engine.open();
    let mut out = Vec::new();
    while let Some(p) = c.next() {
        out.push(p.record);
    }
    out
}

/// Every engine, one workload: the cursor's collected result set equals the
/// engine's own push/eager `run()` result set.
#[test]
fn cursor_equals_run_for_every_engine() {
    let (table, dag) = workload(1500, 3);

    // sTSS.
    let stss = Stss::build(
        table.clone(),
        vec![dag.clone()],
        StssConfig {
            node_capacity: Some(SCALED_CAPACITY),
            ..Default::default()
        },
    )
    .unwrap();
    let expect = stss.run().skyline_records();
    assert_eq!(drain(&stss), expect, "sTSS cursor vs run");
    assert!(!expect.is_empty());

    // dTSS, bound to a query over the same DAG.
    let dtss = Dtss::build(table.clone(), vec![dag.len() as u32], DtssConfig::default()).unwrap();
    let q = PoQuery::new(vec![dag.clone()]);
    let engine = dtss.engine(q.clone()).unwrap();
    let d_expect = dtss.query(&q).unwrap().skyline_records();
    assert_eq!(drain(&engine), d_expect, "dTSS cursor vs query");
    assert_eq!(
        sorted(d_expect),
        sorted(expect.clone()),
        "static and dynamic TSS agree on the same order"
    );

    // The three m-dominance baselines.
    for variant in [Variant::BbsPlus, Variant::Sdc, Variant::SdcPlus] {
        let idx = SdcIndex::build(
            table.clone(),
            vec![dag.clone()],
            variant,
            SdcConfig {
                node_capacity: Some(SCALED_CAPACITY),
                ..Default::default()
            },
        )
        .unwrap();
        let s_expect = idx.run().skyline;
        assert_eq!(drain(&idx), s_expect, "{variant:?} cursor vs run");
        assert_eq!(sorted(s_expect), sorted(expect.clone()), "{variant:?}");
    }

    // The classic TO algorithms over the TO projection of the same table —
    // the store's flat TO block is the columnar input, zero-copy.
    let data = tss::skyline::PointBlock::from_flat(table.to_dims(), table.to_block().to_vec());
    let to_expect = sorted(tss::skyline::brute_force(&data));
    for algo in [
        ClassicAlgo::Brute,
        ClassicAlgo::Bnl { window: 16 },
        ClassicAlgo::Sfs,
        ClassicAlgo::Salsa,
        ClassicAlgo::Bbs {
            node_capacity: SCALED_CAPACITY,
        },
        ClassicAlgo::Bitmap,
        ClassicAlgo::Index,
    ] {
        let engine = ClassicEngine::new(data.clone(), algo);
        assert_eq!(sorted(drain(&engine)), to_expect, "{algo:?}");
    }
}

/// The batched dominance kernels must do the *same pair work* as the seed's
/// scalar loops, just faster: on the fixed `workload(1500, 3)` the seed
/// (pre-columnar) implementation performed exactly 10 839 sTSS and 11 218
/// dTSS scalar `t_dominates` calls. The kernels examine pairs in the same
/// order with the same early exit, so their `dominance_checks` may never
/// exceed those ceilings — and every check must now flow through a batched
/// kernel invocation (`dominance_batch_calls > 0`).
#[test]
fn batched_kernel_spends_no_more_checks_than_the_seed_scalar_path() {
    const SEED_STSS_SCALAR_CHECKS: u64 = 10_839;
    const SEED_DTSS_SCALAR_CHECKS: u64 = 11_218;
    let (table, dag) = workload(1500, 3);

    let stss = Stss::build(
        table.clone(),
        vec![dag.clone()],
        StssConfig {
            node_capacity: Some(SCALED_CAPACITY),
            ..Default::default()
        },
    )
    .unwrap();
    let m = stss.run().metrics;
    assert!(
        m.dominance_checks <= SEED_STSS_SCALAR_CHECKS,
        "sTSS batched kernel examined {} pairs, seed scalar path paid {}",
        m.dominance_checks,
        SEED_STSS_SCALAR_CHECKS
    );
    assert!(
        m.dominance_batch_calls > 0,
        "sTSS must use the batched kernel"
    );
    assert!(
        m.dominance_batch_calls <= m.dominance_checks + m.results,
        "kernel calls are per-candidate, checks per pair examined"
    );

    let dtss = Dtss::build(table, vec![dag.len() as u32], DtssConfig::default()).unwrap();
    let mut c = dtss.query_cursor(&PoQuery::new(vec![dag])).unwrap();
    while c.next().is_some() {}
    let dm = c.metrics();
    assert!(
        dm.dominance_checks <= SEED_DTSS_SCALAR_CHECKS,
        "dTSS batched kernel examined {} pairs, seed scalar path paid {}",
        dm.dominance_checks,
        SEED_DTSS_SCALAR_CHECKS
    );
    assert!(
        dm.dominance_batch_calls > 0,
        "dTSS must use the batched kernel"
    );
}

/// Early-termination soundness: for the progressive engines, the first `k`
/// pulled points are exactly the first `k` of the full progressive order.
#[test]
fn k_prefix_is_a_prefix_of_the_progressive_order() {
    let (table, dag) = workload(2000, 11);
    let k = 7;

    let stss = Stss::build(
        table.clone(),
        vec![dag.clone()],
        StssConfig {
            node_capacity: Some(SCALED_CAPACITY),
            ..Default::default()
        },
    )
    .unwrap();
    let full = stss.run().skyline_records();
    let prefix: Vec<u32> = stss.cursor().take_k(k).iter().map(|p| p.record).collect();
    assert_eq!(prefix, full[..k], "sTSS prefix");

    let dtss = Dtss::build(table, vec![dag.len() as u32], DtssConfig::default()).unwrap();
    let q = PoQuery::new(vec![dag]);
    let d_full = dtss.query(&q).unwrap().skyline_records();
    let d_prefix: Vec<u32> = dtss
        .query_cursor(&q)
        .unwrap()
        .take_k(k)
        .iter()
        .map(|p| p.record)
        .collect();
    assert_eq!(d_prefix, d_full[..k], "dTSS prefix");
}

/// The acceptance property: pulling `k` results off an sTSS cursor performs
/// strictly fewer node accesses than a full run.
#[test]
fn k_pull_reads_strictly_fewer_pages_than_a_full_run() {
    let (table, dag) = workload(3000, 23);
    let stss = Stss::build(
        table,
        vec![dag],
        StssConfig {
            node_capacity: Some(SCALED_CAPACITY),
            ..Default::default()
        },
    )
    .unwrap();
    let full = stss.run();
    assert!(full.skyline.len() > 10, "need a non-trivial skyline");
    let mut cursor = stss.cursor();
    let pulled = cursor.take_k(5);
    assert_eq!(pulled.len(), 5);
    let prefix_reads = cursor.metrics().io_reads;
    assert!(
        prefix_reads < full.metrics.io_reads,
        "5-prefix must read strictly fewer pages: {} vs {}",
        prefix_reads,
        full.metrics.io_reads
    );
}

/// The acceptance property: a repeated-DAG dTSS query through
/// `QuerySession` reports a labeling-cache hit and skips relabeling.
#[test]
fn query_session_reuses_labelings_across_queries() {
    let (table, dag) = workload(1500, 31);
    let dtss = Dtss::build(table, vec![dag.len() as u32], DtssConfig::default()).unwrap();
    let mut session = QuerySession::new(&dtss);

    let q = PoQuery::new(vec![dag.clone()]);
    let cold = session.query(&q).unwrap();
    assert_eq!(cold.metrics.label_cache_misses, 1, "first sight labels");
    assert_eq!(cold.metrics.label_cache_hits, 0);

    // The "same" DAG arriving as a fresh object (a user re-submitting their
    // preferences) hits the cache — no relabeling.
    let resubmitted = PoQuery::new(vec![dag.clone()]);
    let warm = session.query(&resubmitted).unwrap();
    assert_eq!(warm.metrics.label_cache_hits, 1, "repeat skips relabeling");
    assert_eq!(warm.metrics.label_cache_misses, 0);
    assert_eq!(cold.skyline_records(), warm.skyline_records());

    // Cursors draw from the same cache.
    let mut c = session.cursor(&q).unwrap();
    assert_eq!(c.metrics().label_cache_hits, 1);
    let first = c.next().unwrap();
    assert_eq!(first.record, cold.skyline_records()[0]);

    assert_eq!(session.stats().hits, 2);
    assert_eq!(session.stats().misses, 1);
    assert_eq!(session.stats().entries, 1);
}

/// Engines are uniform: the same workload through the trait-object API
/// yields one agreed-upon skyline for all five PO-capable engines.
#[test]
fn trait_object_engines_agree() {
    let (table, dag) = workload(1000, 43);
    let stss = Stss::build(table.clone(), vec![dag.clone()], StssConfig::default()).unwrap();
    let dtss = Dtss::build(table.clone(), vec![dag.len() as u32], DtssConfig::default()).unwrap();
    let bound = dtss.engine(PoQuery::new(vec![dag.clone()])).unwrap();
    let sdc: Vec<SdcIndex> = [Variant::BbsPlus, Variant::Sdc, Variant::SdcPlus]
        .into_iter()
        .map(|v| {
            SdcIndex::build(table.clone(), vec![dag.clone()], v, SdcConfig::default()).unwrap()
        })
        .collect();
    let mut engines: Vec<&dyn SkylineEngine> = vec![&stss, &bound];
    engines.extend(sdc.iter().map(|i| i as &dyn SkylineEngine));

    let baseline = sorted(drain(engines[0]));
    assert!(!baseline.is_empty());
    for engine in &engines {
        let (pts, metrics) = engine.collect_skyline();
        let got = sorted(pts.iter().map(|p| p.record).collect());
        assert_eq!(got, baseline, "{}", engine.name());
        assert_eq!(
            metrics.results as usize,
            baseline.len(),
            "{}",
            engine.name()
        );
    }
}

//! Cross-algorithm agreement on generated workloads: every algorithm in the
//! workspace — sTSS in all configurations, the three SDC baselines, dTSS in
//! all configurations, and the brute-force oracle — must produce the same
//! skyline on the paper's synthetic data.

use tss::core::{
    brute_force_po_skyline, Dtss, DtssConfig, PoDomain, PoQuery, RangeStrategy, Stss, StssConfig,
    Table,
};
use tss::datagen::{gen_po_matrix, gen_to_matrix, Distribution, TupleConfig};
use tss::poset::generator::{subset_lattice, DensityMode, LatticeParams};
use tss::poset::Dag;
use tss::sdc::{SdcConfig, SdcIndex, Variant};

fn workload(
    n: usize,
    to_dims: usize,
    po_dims: usize,
    height: u32,
    dist: Distribution,
    seed: u64,
) -> (Table, Vec<Dag>) {
    let dags: Vec<Dag> = (0..po_dims)
        .map(|d| {
            subset_lattice(LatticeParams {
                height,
                density: 0.8,
                seed: seed + d as u64,
                mode: DensityMode::Literal,
            })
            .unwrap()
        })
        .collect();
    let to = gen_to_matrix(TupleConfig {
        n,
        dims: to_dims,
        domain: 100,
        dist,
        seed,
    });
    let sizes: Vec<u32> = dags.iter().map(|d| d.len() as u32).collect();
    let po = gen_po_matrix(n, &sizes, seed + 99);
    (Table::from_parts(to_dims, po_dims, to, po).unwrap(), dags)
}

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

fn check_all(table: &Table, dags: &[Dag], label: &str) {
    let domains: Vec<PoDomain> = dags.iter().cloned().map(PoDomain::new).collect();
    let expect = sorted(brute_force_po_skyline(&domains, table));

    for cfg in [
        StssConfig::default(),
        StssConfig {
            fast_check: true,
            ..Default::default()
        },
        StssConfig {
            multi_cover_mbb: true,
            range_strategy: RangeStrategy::Naive,
            ..Default::default()
        },
        StssConfig {
            range_strategy: RangeStrategy::Full,
            ..Default::default()
        },
    ] {
        let stss = Stss::build(table.clone(), dags.to_vec(), cfg).unwrap();
        assert_eq!(
            sorted(stss.run().skyline_records()),
            expect,
            "{label}: sTSS {cfg:?}"
        );
    }

    for variant in [Variant::BbsPlus, Variant::Sdc, Variant::SdcPlus] {
        let idx =
            SdcIndex::build(table.clone(), dags.to_vec(), variant, SdcConfig::default()).unwrap();
        assert_eq!(sorted(idx.run().skyline), expect, "{label}: {variant:?}");
    }

    let sizes: Vec<u32> = dags.iter().map(|d| d.len() as u32).collect();
    for cfg in [
        DtssConfig::default(),
        DtssConfig {
            fast_check: true,
            precompute_local: true,
            ..Default::default()
        },
        DtssConfig {
            filter_dominators: true,
            ..Default::default()
        },
    ] {
        let dtss = Dtss::build(table.clone(), sizes.clone(), cfg).unwrap();
        let run = dtss.query(&PoQuery::new(dags.to_vec())).unwrap();
        assert_eq!(
            sorted(run.skyline_records()),
            expect,
            "{label}: dTSS {cfg:?}"
        );
    }
}

#[test]
fn independent_one_po_dim() {
    let (t, dags) = workload(600, 2, 1, 4, Distribution::Independent, 1);
    check_all(&t, &dags, "indep 2+1");
}

#[test]
fn anti_correlated_one_po_dim() {
    let (t, dags) = workload(500, 2, 1, 4, Distribution::AntiCorrelated, 2);
    check_all(&t, &dags, "anti 2+1");
}

#[test]
fn independent_two_po_dims() {
    let (t, dags) = workload(400, 2, 2, 3, Distribution::Independent, 3);
    check_all(&t, &dags, "indep 2+2");
}

#[test]
fn anti_correlated_three_to_dims() {
    let (t, dags) = workload(400, 3, 1, 5, Distribution::AntiCorrelated, 4);
    check_all(&t, &dags, "anti 3+1");
}

#[test]
fn correlated_tall_sparse_dag() {
    let (t, dags) = workload(500, 2, 1, 6, Distribution::Correlated, 5);
    check_all(&t, &dags, "corr 2+1 h=6");
}

#[test]
fn tiny_edge_cases() {
    // Single tuple; all-duplicate table; single-value domain.
    let dag = Dag::from_edges(1, &[]).unwrap();
    let mut t = Table::new(1, 1);
    t.push(&[5], &[0]);
    check_all(&t, std::slice::from_ref(&dag), "single tuple");

    let mut t2 = Table::new(1, 1);
    for _ in 0..7 {
        t2.push(&[3], &[0]);
    }
    check_all(&t2, &[dag], "all duplicates");
}

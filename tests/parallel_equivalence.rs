//! Facade acceptance for the sharded parallel execution layer: for random
//! stores, random partial-order domains and every shard count 1..=8, the
//! parallel skyline record-id set equals the single-threaded result for
//! every engine, and the merged [`Metrics`] are the exact componentwise
//! sum of the per-shard locals plus the merge phase — nothing estimated,
//! nothing dependent on the worker count.

use proptest::prelude::*;
use tss::core::parallel::{parallel_classic_skyline, sharded_skyline, sum_metrics};
use tss::core::{
    brute_force_po_skyline, ClassicAlgo, ClassicEngine, Dtss, DtssConfig, Metrics, PoDomain,
    PoQuery, SkylineEngine, Stss, StssConfig, Table,
};
use tss::poset::Dag;
use tss::sdc::{SdcConfig, SdcIndex, Variant};
use tss::skyline::PointBlock;

/// A random 5-value partial order from a 10-bit forward-edge mask (forward
/// edges only, hence acyclic).
fn mask_dag(edge_mask: u32) -> Dag {
    let mut edges = Vec::new();
    let mut bit = 0;
    for i in 0..5u32 {
        for j in (i + 1)..5u32 {
            if edge_mask >> bit & 1 == 1 {
                edges.push((i, j));
            }
            bit += 1;
        }
    }
    Dag::from_edges(5, &edges).expect("forward edges are acyclic")
}

/// The exactness identity every [`ParallelRun`] must satisfy: total
/// metrics are the merge-fold of the per-shard locals plus the merge
/// phase, with `results` reporting the final merged skyline (a plain sum
/// would double-count shard-local confirmations).
fn assert_exact_sum(run: &tss::core::ParallelRun) {
    let mut by_hand = sum_metrics(&run.shard_metrics).merge(&run.merge_metrics);
    by_hand.results = run.records.len() as u64;
    assert_eq!(run.metrics(), by_hand);
}

/// Count-bearing fields that must be invariant to the worker count.
fn work_counts(m: &Metrics) -> (u64, u64, u64, u64, u64) {
    (
        m.dominance_checks,
        m.dominance_batch_calls,
        m.io_reads,
        m.heap_pops,
        m.results,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mixed TO/PO stores through sTSS, SDC+ and dTSS, one engine per
    /// shard: the merged record set equals both the single-thread sharded
    /// run and the ground-truth oracle, for every shard count.
    #[test]
    fn po_engines_shard_merge_equivalence(
        rows in proptest::collection::vec((0u32..12, 0u32..12, 0u32..5), 1..48),
        edge_mask in 0u32..1024,
        shards in 1usize..=8,
        threads in 2usize..=4,
    ) {
        let mut t = Table::new(2, 1);
        for &(a, b, v) in &rows {
            t.push(&[a, b], &[v]);
        }
        let dag = mask_dag(edge_mask);
        let domains = vec![PoDomain::new(dag.clone())];
        let mut expect = brute_force_po_skyline(&domains, &t);
        expect.sort_unstable();

        type ShardRunner<'a> = Box<dyn Fn(usize, &tss::core::ShardView<'_>) -> (Vec<u32>, Metrics) + Sync + 'a>;
        let query = PoQuery::new(vec![dag.clone()]);
        let engines: Vec<(&str, ShardRunner<'_>)> = vec![
            ("sTSS", Box::new(|_, view: &tss::core::ShardView<'_>| {
                let stss = Stss::build(view.to_store(), vec![dag.clone()], StssConfig::default())
                    .expect("shard build");
                let r = stss.run();
                (r.skyline_records(), r.metrics)
            })),
            ("SDC+", Box::new(|_, view: &tss::core::ShardView<'_>| {
                let idx = SdcIndex::build(
                    view.to_store(),
                    vec![dag.clone()],
                    Variant::SdcPlus,
                    SdcConfig::default(),
                )
                .expect("shard build");
                let r = idx.run();
                (r.skyline, r.metrics)
            })),
            ("dTSS", Box::new(|_, view: &tss::core::ShardView<'_>| {
                let dtss = Dtss::build(view.to_store(), vec![5], DtssConfig::default())
                    .expect("shard build");
                let r = dtss.query(&query).expect("valid query");
                (r.skyline_records(), r.metrics)
            })),
        ];
        for (name, run_shard) in &engines {
            let single = sharded_skyline(&t, &domains, shards, 1, run_shard);
            let multi = sharded_skyline(&t, &domains, shards, threads, run_shard);
            // Parallel set == single-thread set == oracle.
            prop_assert_eq!(&multi.records, &single.records, "{}", name);
            prop_assert_eq!(&multi.locals, &single.locals, "{}", name);
            let mut got = multi.records.clone();
            got.sort_unstable();
            prop_assert_eq!(&got, &expect, "{} shards={}", name, shards);
            // Merged metrics are the exact per-shard sum, worker-invariant.
            assert_exact_sum(&single);
            assert_exact_sum(&multi);
            prop_assert_eq!(
                work_counts(&multi.metrics()),
                work_counts(&single.metrics()),
                "{}", name
            );
            prop_assert_eq!(multi.shard_metrics.len(), shards.min(t.len()));
        }
    }

    /// TO-only stores through the classic algorithms.
    #[test]
    fn classic_shard_merge_equivalence(
        rows in proptest::collection::vec((0u32..15, 0u32..15), 1..60),
        algo_ix in 0usize..4,
        shards in 1usize..=8,
        threads in 2usize..=4,
    ) {
        let mut t = Table::new(2, 0);
        for &(a, b) in &rows {
            t.push(&[a, b], &[]);
        }
        let algo = [
            ClassicAlgo::Brute,
            ClassicAlgo::Bnl { window: 4 },
            ClassicAlgo::Sfs,
            ClassicAlgo::Salsa,
        ][algo_ix];
        let block = PointBlock::from_flat(2, t.to_block().to_vec());
        let engine = ClassicEngine::new(block, algo);
        let mut expect: Vec<u32> = engine
            .collect_skyline()
            .0
            .iter()
            .map(|p| p.record)
            .collect();
        expect.sort_unstable();

        let single = parallel_classic_skyline(&t, algo, shards, 1);
        let multi = parallel_classic_skyline(&t, algo, shards, threads);
        prop_assert_eq!(&multi.records, &single.records);
        let mut got = multi.records.clone();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
        assert_exact_sum(&multi);
        prop_assert_eq!(
            work_counts(&multi.metrics()),
            work_counts(&single.metrics())
        );
    }
}

//! Facade acceptance for the sharded parallel execution layer: for random
//! stores, random partial-order domains and every shard count 1..=8, the
//! parallel skyline record-id set equals the single-threaded result for
//! every engine, and the merged [`Metrics`] are the exact componentwise
//! sum of the per-shard locals plus the merge phase — nothing estimated,
//! nothing dependent on the worker count.

use proptest::prelude::*;
use tss::core::parallel::{
    all_pairs_merge_bound, merge_shard_skylines, merge_shard_skylines_all_pairs,
    parallel_classic_skyline, sharded_skyline, sum_metrics,
};
use tss::core::{
    brute_force_po_skyline, ClassicAlgo, ClassicEngine, Dtss, DtssConfig, Metrics, PoDomain,
    PoQuery, RecordId, ShardPlan, SkylineEngine, Stss, StssConfig, Table,
};
use tss::datagen::{Distribution, ExperimentParams};
use tss::poset::Dag;
use tss::sdc::{SdcConfig, SdcIndex, Variant};
use tss::skyline::PointBlock;

/// A random 5-value partial order from a 10-bit forward-edge mask (forward
/// edges only, hence acyclic).
fn mask_dag(edge_mask: u32) -> Dag {
    let mut edges = Vec::new();
    let mut bit = 0;
    for i in 0..5u32 {
        for j in (i + 1)..5u32 {
            if edge_mask >> bit & 1 == 1 {
                edges.push((i, j));
            }
            bit += 1;
        }
    }
    Dag::from_edges(5, &edges).expect("forward edges are acyclic")
}

/// The exactness identity every [`ParallelRun`] must satisfy: total
/// metrics are the merge-fold of the per-shard locals plus the merge
/// phase, with `results` reporting the final merged skyline (a plain sum
/// would double-count shard-local confirmations).
fn assert_exact_sum(run: &tss::core::ParallelRun) {
    let mut by_hand = sum_metrics(&run.shard_metrics).merge(&run.merge_metrics);
    by_hand.results = run.records.len() as u64;
    assert_eq!(run.metrics(), by_hand);
}

/// Count-bearing fields that must be invariant to the worker count.
fn work_counts(m: &Metrics) -> (u64, u64, u64, u64, u64) {
    (
        m.dominance_checks,
        m.dominance_batch_calls,
        m.io_reads,
        m.heap_pops,
        m.results,
    )
}

/// Per-shard local skylines by brute force (global ids) — the inputs the
/// merge-phase tests feed the merge functions directly.
fn brute_locals(t: &Table, domains: &[PoDomain], shards: usize) -> Vec<Vec<RecordId>> {
    t.shards(shards)
        .iter()
        .map(|v| {
            let sub = v.to_store();
            brute_force_po_skyline(domains, &sub)
                .into_iter()
                .map(|r| r + v.start())
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mixed TO/PO stores through sTSS, SDC+ and dTSS, one engine per
    /// shard: the merged record set equals both the single-thread sharded
    /// run and the ground-truth oracle, for every shard count.
    #[test]
    fn po_engines_shard_merge_equivalence(
        rows in proptest::collection::vec((0u32..12, 0u32..12, 0u32..5), 1..48),
        edge_mask in 0u32..1024,
        shards in 1usize..=8,
        threads in 2usize..=4,
    ) {
        let mut t = Table::new(2, 1);
        for &(a, b, v) in &rows {
            t.push(&[a, b], &[v]);
        }
        let dag = mask_dag(edge_mask);
        let domains = vec![PoDomain::new(dag.clone())];
        let mut expect = brute_force_po_skyline(&domains, &t);
        expect.sort_unstable();

        type ShardRunner<'a> = Box<dyn Fn(tss::core::ShardCtx, &tss::core::ShardView<'_>) -> (Vec<u32>, Metrics) + Sync + 'a>;
        let query = PoQuery::new(vec![dag.clone()]);
        let engines: Vec<(&str, ShardRunner<'_>)> = vec![
            ("sTSS", Box::new(|_ctx, view: &tss::core::ShardView<'_>| {
                let stss = Stss::build(view.to_store(), vec![dag.clone()], StssConfig::default())
                    .expect("shard build");
                let r = stss.run();
                (r.skyline_records(), r.metrics)
            })),
            ("SDC+", Box::new(|_ctx, view: &tss::core::ShardView<'_>| {
                let idx = SdcIndex::build(
                    view.to_store(),
                    vec![dag.clone()],
                    Variant::SdcPlus,
                    SdcConfig::default(),
                )
                .expect("shard build");
                let r = idx.run();
                (r.skyline, r.metrics)
            })),
            ("dTSS", Box::new(|_ctx, view: &tss::core::ShardView<'_>| {
                let dtss = Dtss::build(view.to_store(), vec![5], DtssConfig::default())
                    .expect("shard build");
                let r = dtss.query(&query).expect("valid query");
                (r.skyline_records(), r.metrics)
            })),
        ];
        for (name, run_shard) in &engines {
            let single = sharded_skyline(&t, &domains, shards, 1, run_shard)
                .expect("no faults active in this test");
            let multi = sharded_skyline(&t, &domains, shards, threads, run_shard)
                .expect("no faults active in this test");
            // Parallel set == single-thread set == oracle.
            prop_assert_eq!(&multi.records, &single.records, "{}", name);
            prop_assert_eq!(&multi.locals, &single.locals, "{}", name);
            let mut got = multi.records.clone();
            got.sort_unstable();
            prop_assert_eq!(&got, &expect, "{} shards={}", name, shards);
            // Merged metrics are the exact per-shard sum, worker-invariant.
            assert_exact_sum(&single);
            assert_exact_sum(&multi);
            prop_assert_eq!(
                work_counts(&multi.metrics()),
                work_counts(&single.metrics()),
                "{}", name
            );
            prop_assert_eq!(multi.shard_metrics.len(), shards.min(t.len()));
        }
    }

    /// TO-only stores through the classic algorithms.
    #[test]
    fn classic_shard_merge_equivalence(
        rows in proptest::collection::vec((0u32..15, 0u32..15), 1..60),
        algo_ix in 0usize..4,
        shards in 1usize..=8,
        threads in 2usize..=4,
    ) {
        let mut t = Table::new(2, 0);
        for &(a, b) in &rows {
            t.push(&[a, b], &[]);
        }
        let algo = [
            ClassicAlgo::Brute,
            ClassicAlgo::Bnl { window: 4 },
            ClassicAlgo::Sfs,
            ClassicAlgo::Salsa,
        ][algo_ix];
        let block = PointBlock::from_flat(2, t.to_block().to_vec());
        let engine = ClassicEngine::new(block, algo);
        let mut expect: Vec<u32> = engine
            .collect_skyline()
            .0
            .iter()
            .map(|p| p.record)
            .collect();
        expect.sort_unstable();

        let single = parallel_classic_skyline(&t, algo, shards, 1)
            .expect("no faults active in this test");
        let multi = parallel_classic_skyline(&t, algo, shards, threads)
            .expect("no faults active in this test");
        prop_assert_eq!(&multi.records, &single.records);
        let mut got = multi.records.clone();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
        assert_exact_sum(&multi);
        prop_assert_eq!(
            work_counts(&multi.metrics()),
            work_counts(&single.metrics())
        );
    }

    /// Merge-focused equivalence: for random stores, DAGs, shard counts
    /// and merge thread counts — duplicates included — the sorted parallel
    /// merge, the all-pairs merge and the single-shard oracle agree on the
    /// record set; the sorted merge's record *vector* and metrics are
    /// invariant to both the thread count and the shard partition; and its
    /// pair work never exceeds the all-pairs bound
    /// `Σᵢ |localᵢ| · Σⱼ≠ᵢ |localⱼ|`.
    #[test]
    fn sorted_merge_equivalence(
        rows in proptest::collection::vec((0u32..10, 0u32..10, 0u32..5), 1..40),
        dup in (0usize..8, 1usize..4),
        edge_mask in 0u32..1024,
        shards in 1usize..=8,
        threads in 1usize..=4,
    ) {
        let mut t = Table::new(2, 1);
        for &(a, b, v) in &rows {
            t.push(&[a, b], &[v]);
        }
        // Exact duplicates of one row, appended at the end so they tend to
        // land in a different shard than the original.
        let (dup_row, dup_count) = dup;
        let src = dup_row % rows.len();
        for _ in 0..dup_count {
            t.push(t.to_row(src).to_vec().as_slice(), t.po_row(src).to_vec().as_slice());
        }
        let dag = mask_dag(edge_mask);
        let domains = vec![PoDomain::new(dag)];

        // Per-shard local skylines by brute force (the merge inputs).
        let locals = brute_locals(&t, &domains, shards);

        let mut oracle = brute_force_po_skyline(&domains, &t);
        oracle.sort_unstable();

        let (old, old_m) = merge_shard_skylines_all_pairs(&t, &domains, &locals);
        let mut old_sorted = old.clone();
        old_sorted.sort_unstable();
        prop_assert_eq!(&old_sorted, &oracle, "all-pairs merge vs oracle");

        let (one, one_m) = merge_shard_skylines(&t, &domains, &locals, 1);
        let (new, new_m) = merge_shard_skylines(&t, &domains, &locals, threads);
        prop_assert_eq!(&new, &one, "merge threads change nothing");
        prop_assert_eq!(new_m, one_m, "merge metrics invariant to threads");
        let mut new_sorted = new.clone();
        new_sorted.sort_unstable();
        prop_assert_eq!(&new_sorted, &oracle, "sorted merge vs oracle");

        // Pair-work pin: never above the all-pairs bound, and the bound
        // also caps the all-pairs fold's own examined count.
        let bound = all_pairs_merge_bound(&locals);
        prop_assert!(new_m.merge_pair_checks <= bound,
            "sorted {} > bound {}", new_m.merge_pair_checks, bound);
        prop_assert!(old_m.merge_pair_checks <= bound);
        prop_assert_eq!(new_m.results, old_m.results);

        // Plan invariance: a different partition of the same store merges
        // to the byte-identical record vector ((score, id) emission order).
        let other_shards = shards % 8 + 1;
        let other_locals = brute_locals(&t, &domains, other_shards);
        let (other, _) = merge_shard_skylines(&t, &domains, &other_locals, threads);
        prop_assert_eq!(&other, &new,
            "shard plans {} and {} must emit identical vectors", shards, other_shards);
    }
}

/// Acceptance: on an anti-correlated fig07-style workload (the paper's
/// §VI stress case, where almost every tuple is skyline and merge cost
/// dominates), the sorted merge does strictly less pair work than the
/// all-pairs fold — and the adaptive planner reacts by picking fewer
/// shards than the fixed default.
#[test]
fn anti_correlated_merge_does_less_pair_work() {
    let mut p = ExperimentParams::paper_static_default(Distribution::AntiCorrelated, 42);
    p.n = 4000;
    p.dag_height = 4;
    let (table, dags) = p.materialize();
    let domains: Vec<PoDomain> = dags.iter().cloned().map(PoDomain::new).collect();
    let shards = 8usize;
    let locals: Vec<Vec<RecordId>> = table
        .shards(shards)
        .iter()
        .map(|v| {
            let sub = v.to_store();
            let stss = Stss::build(sub, dags.clone(), StssConfig::default()).expect("shard build");
            stss.run()
                .skyline_records()
                .into_iter()
                .map(|r| r + v.start())
                .collect()
        })
        .collect();
    let total: usize = locals.iter().map(Vec::len).sum();
    assert!(total > 500, "anti-correlated locals must be skyline-heavy");

    let (old, old_m) = merge_shard_skylines_all_pairs(&table, &domains, &locals);
    for threads in [1usize, 2, 4] {
        let (new, new_m) = merge_shard_skylines(&table, &domains, &locals, threads);
        let mut a = old.clone();
        let mut b = new.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "same merged skyline");
        assert!(
            new_m.merge_pair_checks < old_m.merge_pair_checks,
            "threads={threads}: sorted {} must beat all-pairs {}",
            new_m.merge_pair_checks,
            old_m.merge_pair_checks
        );
        assert!(new_m.merge_pair_checks < all_pairs_merge_bound(&locals));
        assert!(new_m.merge_strata > 0);
    }

    // The cost model sees the skyline-heavy sample (merge cost ~ s·(s-1)·k̂²
    // dwarfs the ⌈s/w⌉ run saving) and shrinks the partition.
    let plan = ShardPlan::adaptive(&table, &domains, 8, 4);
    assert!(plan.adaptive);
    assert!(
        plan.shards < 8,
        "anti-correlated data must plan fewer shards, got {}",
        plan.shards
    );
    assert!(plan.est_merge_checks > 0 && plan.workers == 4);
}

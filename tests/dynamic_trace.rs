//! Reproduces the paper's §V-A dynamic-skyline walkthrough: the data set of
//! Fig. 5(a), its three PO-value groups, and the two successive queries
//! (Fig. 5 and Fig. 6), including the group-dismissal behavior.

use tss::core::{Dtss, DtssConfig, PoQuery, Table};
use tss::poset::PartialOrderBuilder;
use tss::sdc::{DynamicSdc, SdcConfig};

/// Fig. 5(a): (A1, A2, A3); A3 ∈ {a=0, b=1, c=2}.
fn fig5_table() -> Table {
    let mut t = Table::new(2, 1);
    for (a1, a2, a3) in [
        (1, 2, 0), // p1
        (3, 1, 0), // p2
        (3, 4, 0), // p3
        (4, 5, 0), // p4
        (2, 2, 1), // p5
        (1, 5, 1), // p6
        (2, 5, 2), // p7
        (3, 4, 2), // p8
        (4, 4, 2), // p9
        (5, 2, 2), // p10
    ] {
        t.push(&[a1, a2], &[a3]);
    }
    t
}

fn query(prefs: &[(&str, &str)]) -> PoQuery {
    let mut b = PartialOrderBuilder::new();
    b.values(["a", "b", "c"]);
    for &(x, y) in prefs {
        b.prefer(x, y).unwrap();
    }
    PoQuery::new(vec![b.build().unwrap()])
}

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

#[test]
fn first_query_b_over_c() {
    // §V-A: Ga yields p1, p2; Gb yields p5, p6; Gc is dismissed wholesale
    // ("the execution terminates without considering the group's R-tree
    // entries at all").
    let dtss = Dtss::build(fig5_table(), vec![3], DtssConfig::default()).unwrap();
    assert_eq!(dtss.group_count(), 3);
    let run = dtss.query(&query(&[("b", "c")])).unwrap();
    assert_eq!(sorted(run.skyline_records()), vec![0, 1, 4, 5]);
    assert_eq!(run.groups_skipped, 1);
    // Emission order respects the group precedence: Ga (ordinal 1 value)
    // before Gb.
    assert_eq!(run.skyline_records()[..2], [0, 1]);
}

#[test]
fn second_query_a_c_over_b() {
    // Fig. 6: skyline p7, p8, p10 (Gc) and p1, p2 (Ga); Gb dismissed — "the
    // R-tree associated with this group is not examined".
    let dtss = Dtss::build(fig5_table(), vec![3], DtssConfig::default()).unwrap();
    let run = dtss.query(&query(&[("a", "b"), ("c", "b")])).unwrap();
    assert_eq!(sorted(run.skyline_records()), vec![0, 1, 6, 7, 9]);
    assert_eq!(run.groups_skipped, 1);
}

#[test]
fn no_rebuild_between_queries() {
    // dTSS's defining property: the second query reuses the group trees.
    // Its IO cost must therefore be a handful of node reads, while the
    // dynamic SDC+ baseline pays full data passes per query.
    let dtss = Dtss::build(fig5_table(), vec![3], DtssConfig::default()).unwrap();
    let r1 = dtss.query(&query(&[("b", "c")])).unwrap();
    let r2 = dtss.query(&query(&[("a", "b"), ("c", "b")])).unwrap();

    let dsdc = DynamicSdc::new(fig5_table(), SdcConfig::default());
    let b1 = dsdc.query(query(&[("b", "c")]).dags()).unwrap();
    let b2 = dsdc.query(query(&[("a", "b"), ("c", "b")]).dags()).unwrap();

    // Same skylines.
    assert_eq!(sorted(r1.skyline_records()), sorted(b1.skyline.clone()));
    assert_eq!(sorted(r2.skyline_records()), sorted(b2.skyline.clone()));
    // dTSS never writes; the baseline rebuilds per query.
    assert_eq!(r1.metrics.io_writes + r2.metrics.io_writes, 0);
    assert!(b1.metrics.io_writes > 0 && b2.metrics.io_writes > 0);
    assert!(b1.metrics.io_total() > r1.metrics.io_total());
}

#[test]
fn optimizations_do_not_change_results() {
    let queries = [
        query(&[("b", "c")]),
        query(&[("a", "b"), ("c", "b")]),
        query(&[]),
        query(&[("a", "b"), ("b", "c")]),
        query(&[("c", "a")]),
    ];
    let plain = Dtss::build(fig5_table(), vec![3], DtssConfig::default()).unwrap();
    for cfg in [
        DtssConfig {
            fast_check: true,
            ..Default::default()
        },
        DtssConfig {
            precompute_local: true,
            ..Default::default()
        },
        DtssConfig {
            filter_dominators: true,
            ..Default::default()
        },
        DtssConfig {
            cache: true,
            ..Default::default()
        },
        DtssConfig {
            fast_check: true,
            precompute_local: true,
            cache: true,
            ..Default::default()
        },
    ] {
        let tuned = Dtss::build(fig5_table(), vec![3], cfg).unwrap();
        for q in &queries {
            let a = plain.query(q).unwrap();
            let b = tuned.query(q).unwrap();
            assert_eq!(
                sorted(a.skyline_records()),
                sorted(b.skyline_records()),
                "{cfg:?}"
            );
        }
    }
}

#[test]
fn local_skyline_optimization_reduces_work() {
    // §V-B: with precomputed local skylines, only local-skyline points are
    // examined — fewer dominance checks on a group-heavy workload.
    let mut t = fig5_table();
    // Inflate Gc with locally dominated points.
    for i in 0..40u32 {
        t.push(&[6 + i % 5, 6 + i % 7], &[2]);
    }
    let q = query(&[("a", "b"), ("c", "b")]);
    let plain = Dtss::build(t.clone(), vec![3], DtssConfig::default()).unwrap();
    let local = Dtss::build(
        t,
        vec![3],
        DtssConfig {
            precompute_local: true,
            ..Default::default()
        },
    )
    .unwrap();
    let rp = plain.query(&q).unwrap();
    let rl = local.query(&q).unwrap();
    assert_eq!(sorted(rp.skyline_records()), sorted(rl.skyline_records()));
    assert!(
        rl.metrics.dominance_checks < rp.metrics.dominance_checks,
        "local {} vs plain {}",
        rl.metrics.dominance_checks,
        rp.metrics.dominance_checks
    );
}

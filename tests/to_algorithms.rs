//! All seven totally ordered skyline algorithms (§II-A substrate) must agree
//! on the paper's generated workloads — including the R-tree-based BBS — and
//! exhibit their signature efficiency properties.

use tss::datagen::{gen_to_matrix, Distribution, TupleConfig};
use tss::rtree::RTree;
use tss::skyline::{bbs, bitmap, bnl, brute_force, index_skyline, salsa, sfs, PointBlock};

fn workload(n: usize, dims: usize, domain: u32, dist: Distribution, seed: u64) -> PointBlock {
    // The generated flat matrix is the columnar layout already: zero-copy.
    PointBlock::from_flat(
        dims,
        gen_to_matrix(TupleConfig {
            n,
            dims,
            domain,
            dist,
            seed,
        }),
    )
}

fn tree_of(data: &PointBlock) -> RTree {
    let ids: Vec<u32> = (0..data.len() as u32).collect();
    RTree::bulk_load_flat(data.dims(), 16, data.flat(), &ids)
}

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

#[test]
fn all_algorithms_agree() {
    for (dist, seed) in [
        (Distribution::Independent, 1u64),
        (Distribution::AntiCorrelated, 2),
        (Distribution::Correlated, 3),
    ] {
        for dims in [2usize, 3, 4] {
            let data = workload(800, dims, 50, dist, seed);
            let expect = brute_force(&data);
            assert_eq!(sorted(bnl(&data, 16).0), expect, "BNL {dist:?} d={dims}");
            assert_eq!(sorted(sfs(&data).0), expect, "SFS {dist:?} d={dims}");
            assert_eq!(sorted(salsa(&data).0), expect, "SaLSa {dist:?} d={dims}");
            assert_eq!(sorted(bitmap(&data).0), expect, "Bitmap {dist:?} d={dims}");
            assert_eq!(
                sorted(index_skyline(&data).0),
                expect,
                "Index {dist:?} d={dims}"
            );
            assert_eq!(
                sorted(bbs(&tree_of(&data)).0),
                expect,
                "BBS {dist:?} d={dims}"
            );
        }
    }
}

#[test]
fn sorted_algorithms_do_fewer_checks_than_bnl() {
    // Precedence saves work: SFS never re-examines, BNL's window churns.
    let data = workload(4000, 2, 1000, Distribution::AntiCorrelated, 7);
    let (_, bnl_stats) = bnl(&data, 32);
    let (_, sfs_stats) = sfs(&data);
    assert!(
        sfs_stats.dominance_checks < bnl_stats.dominance_checks,
        "SFS {} vs BNL {}",
        sfs_stats.dominance_checks,
        bnl_stats.dominance_checks
    );
}

#[test]
fn bbs_is_io_frugal_on_clustered_data() {
    // Correlated data: a tight skyline near the origin lets BBS prune
    // nearly the whole tree.
    let data = workload(5000, 2, 10_000, Distribution::Correlated, 11);
    let tree = tree_of(&data);
    let (sky, stats) = bbs(&tree);
    assert!(!sky.is_empty());
    assert!(
        (stats.io_reads as usize) < tree.node_count() / 2,
        "BBS read {} of {} pages",
        stats.io_reads,
        tree.node_count()
    );
}

#[test]
fn bitmap_uses_constant_checks_per_point() {
    let data = workload(2000, 3, 20, Distribution::Independent, 13);
    let (_, stats) = bitmap(&data);
    assert_eq!(stats.dominance_checks, 2000);
}

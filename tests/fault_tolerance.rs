//! Facade acceptance for fault-tolerant shard execution and work budgets:
//! for random stores, partial orders, seeded [`FaultPlan`]s (seeds ×
//! rates × shard counts 1..=8) and worker counts, a fault-injected run
//! recovers to the **byte-identical** skyline record-id vector of the
//! fault-free run with every non-fault counter identical — injected
//! panics and corrupted local skylines are observable only through
//! `shard_retries` / `shard_fallbacks` / `faults_injected`. And for
//! every budgeted run, an `Exhausted { confirmed_prefix }` outcome is a
//! *true prefix* of the exact cursor emission — sound, never wrong, just
//! shorter (the anytime guarantee).

use proptest::prelude::*;
use tss::core::{
    brute_force_po_skyline, sharded_skyline_exec, Budget, BudgetOutcome, ExecPolicy, FaultPlan,
    Metrics, PoDomain, ShardSpec, SkylineEngine, Stss, StssConfig, Table,
};
use tss::poset::Dag;
use tss::sdc::{SdcConfig, SdcIndex, Variant};

/// A random 5-value partial order from a 10-bit forward-edge mask (forward
/// edges only, hence acyclic).
fn mask_dag(edge_mask: u32) -> Dag {
    let mut edges = Vec::new();
    let mut bit = 0;
    for i in 0..5u32 {
        for j in (i + 1)..5u32 {
            if edge_mask >> bit & 1 == 1 {
                edges.push((i, j));
            }
            bit += 1;
        }
    }
    Dag::from_edges(5, &edges).expect("forward edges are acyclic")
}

fn table_of(rows: &[(u32, u32, u32)]) -> Table {
    let mut t = Table::new(2, 1);
    for &(a, b, v) in rows {
        t.push(&[a, b], &[v]);
    }
    t
}

/// Every counter except the wall clock and the fault-recovery trio — the
/// set that must be byte-identical between fault-injected and fault-free
/// runs.
fn non_fault_counts(m: &Metrics) -> Metrics {
    let mut m = *m;
    m.cpu = std::time::Duration::ZERO;
    m.shard_retries = 0;
    m.shard_fallbacks = 0;
    m.faults_injected = 0;
    m
}

/// The sTSS-per-shard job every sharded test here runs: honors
/// `ctx.kernel` so fallback attempts genuinely recompute on the scalar
/// oracle.
fn stss_shard(
    dag: &Dag,
) -> impl Fn(tss::core::ShardCtx, &tss::core::ShardView<'_>) -> (Vec<u32>, Metrics) + Sync + '_ {
    move |ctx, view| {
        let stss = Stss::build(
            view.to_store().with_kernel(ctx.kernel),
            vec![dag.clone()],
            StssConfig::default(),
        )
        .expect("shard build");
        let r = stss.run();
        (r.skyline_records(), r.metrics)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The recovery contract: whatever a seeded fault plan injects —
    /// panics, corrupted local skylines, at any rate, under any shard
    /// partition and worker count — the recovered run emits the
    /// byte-identical record-id vector, identical per-shard locals and
    /// identical non-fault counters as the fault-free run of the same
    /// jobs.
    #[test]
    fn fault_injected_runs_recover_byte_identically(
        rows in proptest::collection::vec((0u32..12, 0u32..12, 0u32..5), 1..40),
        edge_mask in 0u32..1024,
        seed in 0u64..u64::MAX,
        rate_ppm in 50_000u32..=1_000_000,
        shards in 1usize..=8,
        threads in 1usize..=4,
    ) {
        let t = table_of(&rows);
        let dag = mask_dag(edge_mask);
        let domains = vec![PoDomain::new(dag.clone())];
        let run_shard = stss_shard(&dag);

        let clean = sharded_skyline_exec(
            &t, &domains, ShardSpec::Fixed(shards), threads,
            ExecPolicy::fault_free(), Budget::UNLIMITED, &run_shard,
        ).expect("fault-free runs cannot fail");
        let faulty = sharded_skyline_exec(
            &t, &domains, ShardSpec::Fixed(shards), threads,
            ExecPolicy::with_faults(Some(FaultPlan { seed, rate_ppm })),
            Budget::UNLIMITED, &run_shard,
        ).expect("every injected fault must be recovered");

        prop_assert_eq!(&faulty.records, &clean.records,
            "recovered skyline must be byte-identical");
        prop_assert_eq!(&faulty.locals, &clean.locals,
            "recovered per-shard locals must be identical");
        prop_assert_eq!(
            non_fault_counts(&faulty.metrics()),
            non_fault_counts(&clean.metrics()),
            "non-fault counters must not see the faults"
        );
        let fm = faulty.metrics();
        let cm = clean.metrics();
        prop_assert_eq!(cm.faults_injected, 0);
        prop_assert_eq!(cm.shard_retries, 0);
        prop_assert_eq!(cm.shard_fallbacks, 0);
        // Every injected fault forced a retry (or the fallback), and
        // recovery work is only ever counted when something was injected.
        prop_assert!(fm.shard_retries + fm.shard_fallbacks >= fm.faults_injected.min(1));
        if fm.faults_injected == 0 {
            prop_assert_eq!(fm.shard_retries, 0);
            prop_assert_eq!(fm.shard_fallbacks, 0);
        }
        // Determinism of the injection itself: the same plan replays to
        // the same recovery counters.
        let replay = sharded_skyline_exec(
            &t, &domains, ShardSpec::Fixed(shards), threads,
            ExecPolicy::with_faults(Some(FaultPlan { seed, rate_ppm })),
            Budget::UNLIMITED, &run_shard,
        ).expect("replay recovers too");
        prop_assert_eq!(non_fault_counts(&replay.metrics()), non_fault_counts(&fm));
        prop_assert_eq!(replay.metrics().faults_injected, fm.faults_injected);
        prop_assert_eq!(replay.metrics().shard_retries, fm.shard_retries);
        prop_assert_eq!(replay.metrics().shard_fallbacks, fm.shard_fallbacks);
    }

    /// The anytime guarantee, cursor side: for the sTSS and SDC+ engines,
    /// every `Exhausted { confirmed_prefix }` outcome equals the first
    /// `len` points of the untruncated emission sequence, and a complete
    /// outcome equals the whole skyline.
    #[test]
    fn exhausted_outcomes_are_true_prefixes(
        rows in proptest::collection::vec((0u32..12, 0u32..12, 0u32..5), 1..40),
        edge_mask in 0u32..1024,
        numer in 0u64..=4,
    ) {
        let t = table_of(&rows);
        let dag = mask_dag(edge_mask);
        let stss = Stss::build(t.clone(), vec![dag.clone()], StssConfig::default())
            .expect("valid workload");
        let sdc = SdcIndex::build(t, vec![dag], Variant::SdcPlus, SdcConfig::default())
            .expect("valid workload");
        let engines: [&dyn SkylineEngine; 2] = [&stss, &sdc];
        for engine in engines {
            let (full, full_m) = engine.collect_skyline();
            // Limits spanning 0 .. the full cost (numer/4 of it).
            let limit = full_m.dominance_checks * numer / 4;
            let out = engine.collect_budgeted(Budget::pair_checks(limit));
            let got = out.points();
            prop_assert!(got.len() <= full.len());
            prop_assert_eq!(got, &full[..got.len()],
                "{}: budgeted emission must prefix the exact one", engine.name());
            if out.is_complete() {
                prop_assert_eq!(got.len(), full.len());
            }
            let complete = engine.collect_budgeted(
                Budget::pair_checks(full_m.dominance_checks + 1),
            );
            prop_assert!(complete.is_complete(), "{}", engine.name());
            prop_assert_eq!(complete.points(), &full[..]);
            match engine.collect_budgeted(Budget::UNLIMITED) {
                BudgetOutcome::Complete { skyline, .. } =>
                    prop_assert_eq!(&skyline[..], &full[..]),
                BudgetOutcome::Exhausted { .. } =>
                    prop_assert!(false, "unlimited budgets never exhaust"),
            }
        }
    }

    /// The anytime guarantee, sharded side: a budgeted
    /// `sharded_skyline_exec` whose allowance runs out mid-merge reports
    /// `exhausted` and a record vector that is a true prefix of the
    /// unbudgeted merged emission — under faults or not.
    #[test]
    fn budgeted_sharded_runs_emit_sound_prefixes(
        rows in proptest::collection::vec((0u32..12, 0u32..12, 0u32..5), 1..40),
        edge_mask in 0u32..1024,
        seed in 0u64..u64::MAX,
        inject in proptest::bool::ANY,
        numer in 0u64..=4,
        shards in 1usize..=8,
        threads in 1usize..=4,
    ) {
        let t = table_of(&rows);
        let dag = mask_dag(edge_mask);
        let domains = vec![PoDomain::new(dag.clone())];
        let run_shard = stss_shard(&dag);
        let policy = || if inject {
            ExecPolicy::with_faults(Some(FaultPlan::new(seed, 0.5)))
        } else {
            ExecPolicy::fault_free()
        };

        let full = sharded_skyline_exec(
            &t, &domains, ShardSpec::Fixed(shards), threads,
            policy(), Budget::UNLIMITED, &run_shard,
        ).expect("recovers");
        prop_assert!(!full.exhausted, "unlimited budgets never exhaust");

        let total = full.metrics().dominance_checks;
        let limit = total * numer / 4;
        let budgeted = sharded_skyline_exec(
            &t, &domains, ShardSpec::Fixed(shards), threads,
            policy(), Budget::pair_checks(limit), &run_shard,
        ).expect("recovers");
        prop_assert!(budgeted.records.len() <= full.records.len());
        prop_assert_eq!(
            &budgeted.records[..],
            &full.records[..budgeted.records.len()],
            "budgeted merge must prefix the exact emission"
        );
        if !budgeted.exhausted {
            prop_assert_eq!(budgeted.records.len(), full.records.len());
        }
        // Sound: every confirmed record really is skyline.
        let oracle = brute_force_po_skyline(&domains, &t);
        for &r in &budgeted.records {
            prop_assert!(oracle.contains(&r), "record {} is not skyline", r);
        }
    }
}

/// Acceptance: a saturating fault plan (rate 1.0 — every attempt of every
/// shard faults until the ladder's scalar fallback, which is never
/// injected) still recovers the exact skyline, and the recovery counters
/// say exactly what happened.
#[test]
fn saturated_fault_plan_recovers_through_the_fallback() {
    let rows: Vec<(u32, u32, u32)> = (0..40u32).map(|i| (i % 13, (40 - i) % 11, i % 5)).collect();
    let t = table_of(&rows);
    let dag = mask_dag(0b1010101010);
    let domains = vec![PoDomain::new(dag.clone())];
    let run_shard = stss_shard(&dag);
    let shards = 4usize;

    let clean = sharded_skyline_exec(
        &t,
        &domains,
        ShardSpec::Fixed(shards),
        2,
        ExecPolicy::fault_free(),
        Budget::UNLIMITED,
        &run_shard,
    )
    .expect("fault-free");
    for threads in [1usize, 2, 4] {
        let faulty = sharded_skyline_exec(
            &t,
            &domains,
            ShardSpec::Fixed(shards),
            threads,
            ExecPolicy::with_faults(Some(FaultPlan::new(7, 1.0))),
            Budget::UNLIMITED,
            &run_shard,
        )
        .expect("the fallback is never injected");
        assert_eq!(faulty.records, clean.records, "threads={threads}");
        assert_eq!(
            non_fault_counts(&faulty.metrics()),
            non_fault_counts(&clean.metrics())
        );
        let m = faulty.metrics();
        assert_eq!(
            m.shard_retries,
            shards as u64 * (ExecPolicy::DEFAULT_RETRIES as u64 + 1),
            "every shard exhausts its ladder"
        );
        assert_eq!(m.shard_fallbacks, shards as u64);
        assert_eq!(m.faults_injected, m.shard_retries);
    }
}

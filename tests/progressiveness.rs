//! Progressiveness properties (§III-A, Fig. 11): sTSS is *optimally
//! progressive* — every emission happens the moment its point pops — while
//! SDC+ can only release non-exact strata at stratum boundaries. We assert
//! the paper's qualitative claim: at 50% of the results, TSS has spent a
//! fraction of the work SDC+ has.

use tss::core::{CostModel, Stss, StssConfig, Table};
use tss::datagen::{gen_po_matrix, gen_to_matrix, Distribution, TupleConfig};
use tss::poset::generator::{subset_lattice, DensityMode, LatticeParams};
use tss::sdc::{SdcConfig, SdcIndex, Variant};

fn workload(n: usize, dist: Distribution, seed: u64) -> (Table, tss::poset::Dag) {
    let dag = subset_lattice(LatticeParams {
        height: 5,
        density: 0.8,
        seed,
        mode: DensityMode::Literal,
    })
    .unwrap();
    let to = gen_to_matrix(TupleConfig { n, dims: 2, domain: 1000, dist, seed });
    let po = gen_po_matrix(n, &[dag.len() as u32], seed + 7);
    (Table::from_parts(2, 1, to, po).unwrap(), dag)
}

#[test]
fn stss_emits_before_completion() {
    let (table, dag) = workload(3000, Distribution::Independent, 11);
    let stss = Stss::build(table, vec![dag], StssConfig::default()).unwrap();
    let (run, log) = stss.run_progressive();
    assert!(run.skyline.len() > 5, "need a non-trivial skyline");
    // The first result must arrive long before the run's total IO is spent.
    let first = log.samples.first().unwrap();
    assert!(
        first.io_reads * 4 <= run.metrics.io_reads,
        "first result after {} of {} reads",
        first.io_reads,
        run.metrics.io_reads
    );
    // Monotone, complete log.
    assert_eq!(log.samples.len(), run.skyline.len());
}

#[test]
fn stss_reaches_half_results_faster_than_sdc_plus() {
    let (table, dag) = workload(4000, Distribution::AntiCorrelated, 23);

    let stss = Stss::build(table.clone(), vec![dag.clone()], StssConfig::default()).unwrap();
    let (t_run, t_log) = stss.run_progressive();

    let idx = SdcIndex::build(table, vec![dag], Variant::SdcPlus, SdcConfig::default()).unwrap();
    let mut s_samples = Vec::new();
    let s_run = idx.run_with(&mut |_, s| s_samples.push(s));

    // Same result cardinality (different order permitted).
    assert_eq!(t_run.skyline.len(), s_run.skyline.len());

    // Compare IO spent at the 50% emission mark (IO is the paper's dominant
    // cost; using it avoids wall-clock flakiness).
    let half = t_log.samples.len() / 2;
    let tss_io_half = t_log.samples[half].io_reads;
    let sdc_io_half = s_samples[half].io_reads;
    assert!(
        tss_io_half <= sdc_io_half,
        "TSS {tss_io_half} IOs vs SDC+ {sdc_io_half} IOs at 50% results"
    );

    // And the simulated-time view used by Fig. 11 agrees directionally.
    let model = CostModel::default();
    let tss_t = t_log.samples[half].elapsed_total(model);
    let sdc_t = s_samples[half].elapsed_total(model);
    assert!(
        tss_t <= sdc_t,
        "TSS {tss_t:?} vs SDC+ {sdc_t:?} at 50% results"
    );
}

#[test]
fn sdc_plus_releases_in_stratum_bursts() {
    // The signature "jumps" of Fig. 11: consecutive non-exact confirmations
    // share identical io_reads because they flush at a stratum boundary.
    let (table, dag) = workload(3000, Distribution::Independent, 31);
    let idx = SdcIndex::build(table, vec![dag], Variant::SdcPlus, SdcConfig::default()).unwrap();
    let mut samples = Vec::new();
    let run = idx.run_with(&mut |_, s| samples.push(s));
    assert!(run.per_stratum.len() > 1, "need multiple strata");
    // At least one burst: two consecutive emissions with the same IO count.
    let bursts = samples
        .windows(2)
        .filter(|w| w[0].io_reads == w[1].io_reads && w[0].elapsed_cpu == w[0].elapsed_cpu)
        .count();
    assert!(bursts > 0, "expected stratum-boundary bursts");
}

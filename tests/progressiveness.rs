//! Progressiveness properties (§III-A, Fig. 11): sTSS is *optimally
//! progressive* — every emission happens the moment its point pops — while
//! SDC+ can only release non-exact strata at stratum boundaries. We assert
//! the paper's qualitative claim at test scale: SDC+ may keep pace while its
//! exact level-0 stratum streams, but once the stratified flushes start TSS
//! is strictly ahead, and TSS finishes on a fraction of SDC+'s total cost.

use tss::core::{CostModel, Stss, StssConfig, Table};
use tss::datagen::{gen_po_matrix, gen_to_matrix, Distribution, TupleConfig};
use tss::poset::generator::{subset_lattice, DensityMode, LatticeParams};
use tss::sdc::{SdcConfig, SdcIndex, Variant};

/// The paper's experiments run 100k–10M tuples against 4KB pages (capacity
/// ~145), giving trees several levels deep. These tests are scaled to a few
/// thousand tuples, so they shrink the node capacity alongside to preserve
/// the tree-depth ratio — with paper-sized pages a 4k-tuple tree is two
/// levels and every IO-curve assertion degenerates into coin flips.
const SCALED_CAPACITY: usize = 32;

fn stss_config() -> StssConfig {
    StssConfig {
        node_capacity: Some(SCALED_CAPACITY),
        ..Default::default()
    }
}

fn sdc_config() -> SdcConfig {
    SdcConfig {
        node_capacity: Some(SCALED_CAPACITY),
        ..Default::default()
    }
}

fn workload(n: usize, dist: Distribution, seed: u64) -> (Table, tss::poset::Dag) {
    let dag = subset_lattice(LatticeParams {
        height: 5,
        density: 0.8,
        seed,
        mode: DensityMode::Literal,
    })
    .unwrap();
    let to = gen_to_matrix(TupleConfig {
        n,
        dims: 2,
        domain: 1000,
        dist,
        seed,
    });
    let po = gen_po_matrix(n, &[dag.len() as u32], seed + 7);
    (Table::from_parts(2, 1, to, po).unwrap(), dag)
}

#[test]
fn stss_emits_before_completion() {
    let (table, dag) = workload(3000, Distribution::Independent, 11);
    let stss = Stss::build(table, vec![dag], stss_config()).unwrap();
    let (run, log) = stss.run_progressive();
    assert!(run.skyline.len() > 5, "need a non-trivial skyline");
    // The first result must arrive long before the run's total IO is spent.
    let first = log.samples.first().unwrap();
    assert!(
        first.io_reads * 4 <= run.metrics.io_reads,
        "first result after {} of {} reads",
        first.io_reads,
        run.metrics.io_reads
    );
    // Monotone, complete log.
    assert_eq!(log.samples.len(), run.skyline.len());
}

#[test]
fn stss_overtakes_sdc_plus_once_strata_defer() {
    let (table, dag) = workload(4000, Distribution::AntiCorrelated, 23);

    let stss = Stss::build(table.clone(), vec![dag.clone()], stss_config()).unwrap();
    let (t_run, t_log) = stss.run_progressive();

    let idx = SdcIndex::build(table, vec![dag], Variant::SdcPlus, sdc_config()).unwrap();
    let mut s_samples = Vec::new();
    let s_run = idx.run_with(&mut |_, s| s_samples.push(s));

    // Same result cardinality (different order permitted).
    assert_eq!(t_run.skyline.len(), s_run.skyline.len());

    // Compare IO spent at the 90% emission mark (IO is the paper's dominant
    // cost; using it avoids wall-clock flakiness). At test scale SDC+ keeps
    // pace early — its exact stratum 0 holds over half the skyline and
    // streams from a tree smaller than TSS's — but by 90% it has paid for
    // the deferred stratum flushes and TSS is strictly ahead.
    let at = |fraction_num: u64| (t_log.samples.len() as u64 * fraction_num / 100) as usize;
    let tss_io_late = t_log.samples[at(90)].io_reads;
    let sdc_io_late = s_samples[at(90)].io_reads;
    assert!(
        tss_io_late < sdc_io_late,
        "TSS {tss_io_late} IOs vs SDC+ {sdc_io_late} IOs at 90% results"
    );

    // Total cost: TSS finishes the skyline on a fraction of SDC+'s IO …
    let tss_total = t_run.metrics.io_reads;
    let sdc_total = s_run.metrics.io_reads;
    assert!(
        tss_total * 3 <= sdc_total * 2,
        "TSS total {tss_total} IOs must undercut SDC+ {sdc_total} by at least a third"
    );

    // … and the simulated-time view used by Fig. 11 agrees at completion.
    let model = CostModel::default();
    let tss_t = t_log.samples.last().unwrap().elapsed_total(model);
    let sdc_t = s_samples.last().unwrap().elapsed_total(model);
    assert!(
        tss_t < sdc_t,
        "TSS {tss_t:?} vs SDC+ {sdc_t:?} at completion"
    );
}

#[test]
fn sdc_plus_releases_in_stratum_bursts() {
    // The signature "jumps" of Fig. 11: consecutive non-exact confirmations
    // share identical io_reads because they flush at a stratum boundary.
    let (table, dag) = workload(3000, Distribution::Independent, 31);
    let idx = SdcIndex::build(table, vec![dag], Variant::SdcPlus, SdcConfig::default()).unwrap();
    let mut samples = Vec::new();
    let run = idx.run_with(&mut |_, s| samples.push(s));
    assert!(run.per_stratum.len() > 1, "need multiple strata");
    // At least one burst: two consecutive emissions with the same IO count.
    let bursts = samples
        .windows(2)
        .filter(|w| w[0].io_reads == w[1].io_reads && w[0].elapsed_cpu == w[0].elapsed_cpu)
        .count();
    assert!(bursts > 0, "expected stratum-boundary bursts");
}

//! Facade acceptance for streaming skyline maintenance: for random
//! insert/expire sequences (with deliberately duplicated rows), random
//! partial orders, repair-shard counts 1..=8, worker counts 1..=4, both
//! dominance kernels and seeded fault plans, the delta-maintained skyline
//! is **byte-identical after every operation** to a from-scratch
//! recompute on the surviving window — records and every non-fault
//! counter. And on the fig07-style anti-correlated stream at n = 100 000,
//! the repair path examines strictly fewer candidates than even a lower
//! bound on what recompute-on-every-expiry would pay.

use proptest::prelude::*;
use tss::core::{
    brute_force_po_skyline, Budget, ExecPolicy, FaultPlan, Kernel, Metrics, PoDomain, RecordId,
    StreamingConfig, StreamingSkyline, Stss, StssConfig, Table, WindowPolicy,
};
use tss::datagen::{Distribution, ExperimentParams};
use tss::poset::Dag;

/// A random 5-value partial order from a 10-bit forward-edge mask (forward
/// edges only, hence acyclic).
fn mask_dag(edge_mask: u32) -> Dag {
    let mut edges = Vec::new();
    let mut bit = 0;
    for i in 0..5u32 {
        for j in (i + 1)..5u32 {
            if edge_mask >> bit & 1 == 1 {
                edges.push((i, j));
            }
            bit += 1;
        }
    }
    Dag::from_edges(5, &edges).expect("forward edges are acyclic")
}

/// Every counter except the wall clock and the fault-recovery trio — the
/// set that must be byte-identical across threads, shards, kernels and
/// fault plans.
fn non_fault_counts(m: &Metrics) -> Metrics {
    let mut m = *m;
    m.cpu = std::time::Duration::ZERO;
    m.shard_retries = 0;
    m.shard_fallbacks = 0;
    m.faults_injected = 0;
    m
}

/// From-scratch oracle: brute-force skyline of the surviving window,
/// mapped from live ranks back to the maintainer's record ids (the
/// mapping survives compaction renumbering by construction).
fn recompute(s: &StreamingSkyline) -> Vec<RecordId> {
    let mut window = Table::new(s.store().to_dims(), s.store().po_dims());
    let live: Vec<RecordId> = s.store().live_ids().collect();
    for &id in &live {
        window.push(s.store().to(id), s.store().po(id));
    }
    brute_force_po_skyline(s.domains(), &window)
        .into_iter()
        .map(|local| live[local as usize])
        .collect()
}

fn window_of(sel: u32) -> WindowPolicy {
    match sel {
        0 => WindowPolicy::Count(6),
        1 => WindowPolicy::Count(12),
        _ => WindowPolicy::Unbounded,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The maintenance contract, end to end through the facade: a
    /// single-threaded unsharded scalar fault-free maintainer is the
    /// reference; a lane-kernel maintainer with arbitrary `threads`,
    /// `repair_shards` and (optionally) a saturating-rate fault plan must
    /// track it byte-for-byte — and both must equal the from-scratch
    /// recompute of the surviving window after **every** operation.
    ///
    /// Each op inserts one (often duplicated) row, then `sel` picks the
    /// expiry flavor: nothing, the oldest live tuple, or a current
    /// skyline *member* (the delta-repair path).
    #[test]
    fn every_operation_matches_a_from_scratch_recompute(
        ops in proptest::collection::vec((0u32..6, 0u32..6, 0u32..5, 0u32..4), 1..48),
        edge_mask in 0u32..1024,
        window_sel in 0u32..4,
        seed in 0u64..u64::MAX,
        rate_ppm in 50_000u32..=1_000_000,
        shards in 1usize..=8,
        threads in 1usize..=4,
        inject in proptest::bool::ANY,
    ) {
        let dag = mask_dag(edge_mask);
        let window = window_of(window_sel);
        let reference_cfg = StreamingConfig {
            window,
            threads: 1,
            repair_shards: 1,
            budget: Budget::UNLIMITED,
            exec: ExecPolicy::fault_free(),
        };
        let variant_cfg = StreamingConfig {
            window,
            threads,
            repair_shards: shards,
            budget: Budget::UNLIMITED,
            exec: if inject {
                ExecPolicy::with_faults(Some(FaultPlan { seed, rate_ppm }))
            } else {
                ExecPolicy::fault_free()
            },
        };
        let mut reference =
            StreamingSkyline::new(2, vec![PoDomain::new(dag.clone())], reference_cfg)
                .with_kernel(Kernel::Scalar);
        let mut variant = StreamingSkyline::new(2, vec![PoDomain::new(dag)], variant_cfg)
            .with_kernel(Kernel::Lanes);

        for &(a, b, v, sel) in &ops {
            reference.insert(&[a, b], &[v]);
            variant.insert(&[a, b], &[v]);
            match sel {
                2 => {
                    let r = reference.expire_oldest();
                    let w = variant.expire_oldest();
                    prop_assert_eq!(r, w, "expire_oldest must pick the same tuple");
                }
                3 => {
                    // Expire a current member: the repair path. The two
                    // maintainers were identical after the last op and
                    // insert is deterministic, so picking off the
                    // reference is well-defined for both.
                    let members = reference.skyline_records();
                    if !members.is_empty() {
                        let id = members[members.len() / 2];
                        prop_assert!(reference.expire(id));
                        prop_assert!(variant.expire(id));
                    }
                }
                _ => {}
            }
            let expect = recompute(&reference);
            prop_assert_eq!(
                reference.skyline_records(), &expect[..],
                "maintained skyline must equal the from-scratch recompute"
            );
            prop_assert_eq!(
                variant.skyline_records(), reference.skyline_records(),
                "threads={} shards={} inject={}: records must be byte-identical",
                threads, shards, inject
            );
            prop_assert_eq!(
                non_fault_counts(&variant.metrics()),
                non_fault_counts(&reference.metrics()),
                "threads={} shards={} inject={}: counters must be invariant",
                threads, shards, inject
            );
        }
        let vm = variant.metrics();
        if inject {
            // Injected faults are observable only through the recovery trio.
            prop_assert!(vm.shard_retries + vm.shard_fallbacks >= vm.faults_injected.min(1));
        } else {
            prop_assert_eq!(vm.faults_injected, 0);
            prop_assert_eq!(vm.shard_retries, 0);
            prop_assert_eq!(vm.shard_fallbacks, 0);
        }
    }
}

/// Acceptance: the fig07-style §VI-C stress stream — anti-correlated
/// tuples at the paper's dynamic-study shape (|TO| = 3, |PO| = 1,
/// h = 6, d = 0.8), n = 100 000 arrivals through a count-256 sliding
/// window. The pin: the repair path's total candidate examinations stay
/// **strictly below** what recompute-on-every-member-expiry would pay,
/// measured two ways:
///
/// * against a per-step *lower bound* — any sorted-filter recompute of a
///   `w`-tuple window examines at least `w − 1` pairs (every tuple after
///   the first is checked against a non-empty partial skyline), summed
///   over all repair steps;
/// * against the *exact* sTSS recompute cost on a deterministic
///   subsample of repair steps, where the per-step margin is far wider.
#[test]
fn anti_correlated_stream_repairs_beat_recompute_on_expiry() {
    let mut p = ExperimentParams::paper_dynamic_default(Distribution::AntiCorrelated, 42);
    p.n = 100_000;
    const WINDOW: usize = 256;

    let dags = p.build_dags();
    let to = p.gen_to();
    let po = p.gen_po(&dags);
    let domains: Vec<PoDomain> = dags.iter().cloned().map(PoDomain::new).collect();
    let mut s = StreamingSkyline::new(
        p.to_dims,
        domains,
        StreamingConfig {
            window: WindowPolicy::Count(WINDOW),
            ..StreamingConfig::default()
        },
    );

    let mut recompute_floor = 0u64;
    let mut sampled_exact = 0u64;
    let mut sampled_cands = 0u64;
    let mut samples = 0u32;
    for i in 0..p.n {
        let before = s.metrics();
        s.insert(
            &to[i * p.to_dims..(i + 1) * p.to_dims],
            &po[i * p.po_dims..(i + 1) * p.po_dims],
        );
        let after = s.metrics();
        if after.stream_repairs > before.stream_repairs {
            // The evicted tuple was a member: recompute-on-expiry would
            // rebuild the whole surviving window here.
            recompute_floor += s.live_len() as u64 - 1;
            if after.stream_repairs.is_multiple_of(64) && samples < 64 {
                samples += 1;
                sampled_cands += after.repair_candidates - before.repair_candidates;
                let mut window = Table::new(s.store().to_dims(), s.store().po_dims());
                for id in s.store().live_ids() {
                    window.push(s.store().to(id), s.store().po(id));
                }
                let run = Stss::build(window, dags.clone(), StssConfig::default())
                    .expect("window recompute builds")
                    .run();
                sampled_exact += run.metrics.dominance_checks;
            }
        }
    }

    let m = s.metrics();
    assert_eq!(m.stream_inserts, p.n as u64);
    assert!(
        m.stream_repairs >= 500,
        "anti-correlated windows must expire members often, got {}",
        m.stream_repairs
    );
    assert!(
        m.repair_candidates < recompute_floor,
        "total repair candidates {} must stay strictly below even the \
         recompute lower bound {}",
        m.repair_candidates,
        recompute_floor
    );
    assert!(samples > 0, "the exact subsample must have fired");
    assert!(
        sampled_cands < sampled_exact,
        "sampled repair candidates {} must stay strictly below the exact \
         sampled recompute cost {}",
        sampled_cands,
        sampled_exact
    );

    // And after 100k arrivals the maintained skyline still equals the
    // from-scratch recompute of the surviving window.
    assert_eq!(s.skyline_records(), &recompute(&s)[..]);
    assert_eq!(s.live_len(), WINDOW);
}

//! Workspace smoke test: one end-to-end sTSS and one dTSS query through the
//! `tss` facade. Fast on purpose — if a manifest regression breaks the
//! facade's re-exports or the crate wiring, this is the test that catches it
//! before the heavier suites even build their workloads.

use tss::core::{Dtss, DtssConfig, PoQuery, Stss, StssConfig, Table};
use tss::poset::PartialOrderBuilder;

/// Table I's airline preference: a over b and c, everything over d.
fn airline_dag() -> tss::poset::Dag {
    let mut b = PartialOrderBuilder::new();
    for label in ["a", "b", "c", "d"] {
        b.value(label);
    }
    b.prefer("a", "b").unwrap();
    b.prefer("a", "c").unwrap();
    b.prefer("b", "d").unwrap();
    b.prefer("c", "d").unwrap();
    b.build().unwrap()
}

fn tickets(dag: &tss::poset::Dag) -> Table {
    let id = |s: &str| dag.id_of(s).unwrap().0;
    let mut t = Table::new(1, 1);
    t.push(&[300], &[id("d")]); // 0: cheap but worst airline
    t.push(&[300], &[id("a")]); // 1: same price, best airline — dominates 0
    t.push(&[250], &[id("b")]); // 2: cheaper, b
    t.push(&[250], &[id("c")]); // 3: same price, c — incomparable with 2
    t.push(&[400], &[id("c")]); // 4: dominated by 3
    t
}

#[test]
fn stss_end_to_end_through_facade() {
    let dag = airline_dag();
    let table = tickets(&dag);
    let stss = Stss::build(table, vec![dag], StssConfig::default()).unwrap();
    let mut sky = stss.run().skyline_records();
    sky.sort_unstable();
    assert_eq!(sky, vec![1, 2, 3]);
}

#[test]
fn dtss_end_to_end_through_facade() {
    let data_dag = airline_dag();
    let table = tickets(&data_dag);
    let sizes = vec![data_dag.len() as u32];
    let dtss = Dtss::build(table, sizes, DtssConfig::default()).unwrap();

    // Same preferences as the static run: identical skyline.
    let run = dtss.query(&PoQuery::new(vec![airline_dag()])).unwrap();
    let mut sky: Vec<u32> = run.skyline.iter().map(|p| p.record).collect();
    sky.sort_unstable();
    assert_eq!(sky, vec![1, 2, 3]);

    // A query that inverts the airline order (d best, a worst): the cheap
    // d-ticket now wins, and the expensive c-ticket stays dominated by the
    // cheaper one.
    let mut b = PartialOrderBuilder::new();
    for label in ["a", "b", "c", "d"] {
        b.value(label);
    }
    b.prefer("d", "b").unwrap();
    b.prefer("d", "c").unwrap();
    b.prefer("b", "a").unwrap();
    b.prefer("c", "a").unwrap();
    let run = dtss.query(&PoQuery::new(vec![b.build().unwrap()])).unwrap();
    let mut sky: Vec<u32> = run.skyline.iter().map(|p| p.record).collect();
    sky.sort_unstable();
    assert_eq!(sky, vec![0, 2, 3]);
}

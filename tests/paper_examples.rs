//! End-to-end reproduction of the paper's motivating example: the flight
//! reservation data of Fig. 1 and the two airline partial orders of
//! Table I, evaluated by every algorithm in the workspace.

use tss::core::{
    brute_force_po_skyline, Dtss, DtssConfig, PoDomain, PoQuery, Stss, StssConfig, Table,
};
use tss::poset::{Dag, PartialOrderBuilder};
use tss::sdc::{SdcConfig, SdcIndex, Variant};

/// Fig. 1(a): (Price, Stops, Airline) with airlines a=0 b=1 c=2 d=3.
fn tickets() -> Table {
    let mut t = Table::new(2, 1);
    for (price, stops, airline) in [
        (1800, 0, 0), // p1 a
        (2000, 0, 0), // p2 a
        (1800, 0, 1), // p3 b
        (1200, 1, 1), // p4 b
        (1400, 1, 0), // p5 a
        (1000, 1, 1), // p6 b
        (1000, 1, 3), // p7 d
        (1800, 1, 2), // p8 c
        (500, 2, 3),  // p9 d
        (1200, 2, 2), // p10 c
    ] {
        t.push(&[price, stops], &[airline]);
    }
    t
}

/// Table I, row 1: a over b and c; any company over d; b ~ c.
fn order_one() -> Dag {
    let mut b = PartialOrderBuilder::new();
    b.values(["a", "b", "c", "d"]);
    b.prefer("a", "b").unwrap();
    b.prefer("a", "c").unwrap();
    b.prefer("b", "d").unwrap();
    b.prefer("c", "d").unwrap();
    b.build().unwrap()
}

/// Table I, row 2: the only preference is b over a.
fn order_two() -> Dag {
    let mut b = PartialOrderBuilder::new();
    b.values(["a", "b", "c", "d"]);
    b.prefer("b", "a").unwrap();
    b.build().unwrap()
}

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

#[test]
fn fig1b_totally_ordered_skyline() {
    // Ignoring airlines: skyline tickets are p1, p3, p6, p7, p9. The TO
    // block of the store is the columnar input, zero-copy.
    let tickets = tickets();
    let data = tss::skyline::PointBlock::from_flat(tickets.to_dims(), tickets.to_block().to_vec());
    assert_eq!(tss::skyline::brute_force(&data), vec![0, 2, 5, 6, 8]);
}

#[test]
fn table1_row1_all_algorithms() {
    // Skyline tickets: p1, p5, p6, p9, p10 -> records {0, 4, 5, 8, 9}.
    let expect = vec![0u32, 4, 5, 8, 9];
    let dag = order_one();

    let oracle = brute_force_po_skyline(&[PoDomain::new(dag.clone())], &tickets());
    assert_eq!(sorted(oracle), expect);

    let stss = Stss::build(tickets(), vec![dag.clone()], StssConfig::default()).unwrap();
    assert_eq!(sorted(stss.run().skyline_records()), expect);

    for variant in [Variant::BbsPlus, Variant::Sdc, Variant::SdcPlus] {
        let idx =
            SdcIndex::build(tickets(), vec![dag.clone()], variant, SdcConfig::default()).unwrap();
        assert_eq!(sorted(idx.run().skyline), expect, "{variant:?}");
    }

    let dtss = Dtss::build(tickets(), vec![4], DtssConfig::default()).unwrap();
    let run = dtss.query(&PoQuery::new(vec![dag])).unwrap();
    assert_eq!(sorted(run.skyline_records()), expect);
}

#[test]
fn table1_row2_all_algorithms() {
    // Skyline tickets: p3, p6, p7, p8, p9, p10 -> {2, 5, 6, 7, 8, 9}.
    let expect = vec![2u32, 5, 6, 7, 8, 9];
    let dag = order_two();

    let oracle = brute_force_po_skyline(&[PoDomain::new(dag.clone())], &tickets());
    assert_eq!(sorted(oracle), expect);

    let stss = Stss::build(tickets(), vec![dag.clone()], StssConfig::default()).unwrap();
    assert_eq!(sorted(stss.run().skyline_records()), expect);

    for variant in [Variant::BbsPlus, Variant::Sdc, Variant::SdcPlus] {
        let idx =
            SdcIndex::build(tickets(), vec![dag.clone()], variant, SdcConfig::default()).unwrap();
        assert_eq!(sorted(idx.run().skyline), expect, "{variant:?}");
    }

    let dtss = Dtss::build(tickets(), vec![4], DtssConfig::default()).unwrap();
    let run = dtss.query(&PoQuery::new(vec![dag])).unwrap();
    assert_eq!(sorted(run.skyline_records()), expect);
}

#[test]
fn changing_the_order_changes_the_skyline() {
    // The paper's point: p3, p7 leave and p5, p10 enter between "no
    // preference" (Fig. 1(b) + any-airline) and order one.
    let dtss = Dtss::build(
        tickets(),
        vec![4],
        DtssConfig {
            cache: true,
            ..Default::default()
        },
    )
    .unwrap();
    let free = Dag::from_edges(4, &[]).unwrap();
    let r_free = dtss.query(&PoQuery::new(vec![free])).unwrap();
    let r_one = dtss.query(&PoQuery::new(vec![order_one()])).unwrap();
    let s_free = sorted(r_free.skyline_records());
    let s_one = sorted(r_one.skyline_records());
    assert!(s_free.contains(&2) && s_free.contains(&6)); // p3, p7 in
    assert!(!s_one.contains(&2) && !s_one.contains(&6)); // p3, p7 out
    assert!(s_one.contains(&4) && s_one.contains(&9)); // p5, p10 in
}

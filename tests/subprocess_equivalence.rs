//! Facade acceptance for out-of-process shard execution: for random
//! stores, partial orders, shard counts and worker-pool sizes, the
//! [`SubprocessExecutor`] (real `tss-worker` subprocesses behind the
//! length-prefixed checksummed pipe protocol) produces **byte-identical**
//! per-shard records and non-wall, non-IPC counters to the in-process
//! [`ThreadShardExecutor`] — and keeps doing so when seeded process
//! faults kill workers mid-task, stall them past the attempt deadline or
//! flip response bytes, when the worker binary is garbage that echoes or
//! truncates frames, and when the pool cannot spawn at all (degradation
//! to fully in-process execution). Process-fault recovery is observable
//! only through `worker_crashes` / `worker_timeouts` / `frames_corrupted`
//! / `ipc_bytes` and the existing recovery trio, and is invariant to the
//! pool size.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use tss::core::ipc::local_skyline_job;
use tss::core::{
    Budget, ExecPolicy, FaultPlan, Kernel, Metrics, PoDomain, ShardExecutor, ShardJob,
    ShardOutcome, StreamingConfig, StreamingSkyline, SubprocessExecutor, Table,
    ThreadShardExecutor, WindowPolicy, WorkerSpec,
};
use tss::poset::Dag;

/// The real worker binary this package ships — the same entry a
/// production `TSS_EXECUTOR=subprocess` run re-execs.
fn worker_spec() -> WorkerSpec {
    WorkerSpec::new(env!("CARGO_BIN_EXE_tss-worker"), Vec::<String>::new())
}

/// A random 5-value partial order from a 10-bit forward-edge mask (forward
/// edges only, hence acyclic).
fn mask_dag(edge_mask: u32) -> Dag {
    let mut edges = Vec::new();
    let mut bit = 0;
    for i in 0..5u32 {
        for j in (i + 1)..5u32 {
            if edge_mask >> bit & 1 == 1 {
                edges.push((i, j));
            }
            bit += 1;
        }
    }
    Dag::from_edges(5, &edges).expect("forward edges are acyclic")
}

fn table_of(rows: &[(u32, u32, u32)]) -> Table {
    let mut t = Table::new(2, 1);
    for &(a, b, v) in rows {
        t.push(&[a, b], &[v]);
    }
    t
}

/// Every counter that must be byte-identical across executors, pool
/// sizes and fault plans: the wall clock, the fault-recovery trio and
/// the IPC quartet are the only observables of *how* a shard was
/// computed.
fn portable_counts(m: &Metrics) -> Metrics {
    let mut m = *m;
    m.cpu = Duration::ZERO;
    m.shard_retries = 0;
    m.shard_fallbacks = 0;
    m.faults_injected = 0;
    m.worker_crashes = 0;
    m.worker_timeouts = 0;
    m.frames_corrupted = 0;
    m.ipc_bytes = 0;
    m
}

/// The same metrics with only the wall clock zeroed — what deterministic
/// replay and pool-size invariance pin, recovery counters included.
fn wallless(m: &Metrics) -> Metrics {
    let mut m = *m;
    m.cpu = Duration::ZERO;
    m
}

/// Fans the store's shard windows as local-skyline jobs (in-process
/// closure + wire payload) across the executor and unwraps every shard —
/// recovery is part of the contract under test.
fn run_all(
    exec: &dyn ShardExecutor,
    t: &Table,
    domains: &[PoDomain],
    shards: usize,
) -> Vec<ShardOutcome> {
    let jobs: Vec<ShardJob<'_>> = t
        .shards(shards)
        .into_iter()
        .map(|v| local_skyline_job(v, domains))
        .collect();
    exec.execute(t, domains, &jobs)
        .into_iter()
        .map(|r| r.expect("every shard must recover"))
        .collect()
}

fn merged(outcomes: &[ShardOutcome]) -> Metrics {
    outcomes
        .iter()
        .fold(Metrics::default(), |m, o| m.merge(&o.metrics))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The byte-identity contract, fault-free: real worker subprocesses
    /// return the same per-shard records and portable counters as the
    /// in-process executor, at any shard count, pool size and kernel —
    /// and the only traces of the pipe are `ipc_bytes` (nonzero) and a
    /// clean crash/timeout/corruption scoreboard.
    #[test]
    fn subprocess_results_are_byte_identical_to_in_process(
        rows in proptest::collection::vec((0u32..12, 0u32..12, 0u32..5), 1..40),
        edge_mask in 0u32..1024,
        shards in 1usize..=6,
        workers in 1usize..=3,
        lanes in proptest::bool::ANY,
    ) {
        let kernel = if lanes { Kernel::Lanes } else { Kernel::Scalar };
        let t = table_of(&rows).with_kernel(kernel);
        let domains = vec![PoDomain::new(mask_dag(edge_mask))];

        let thread = ThreadShardExecutor::with_policy(2, ExecPolicy::fault_free());
        let sub = SubprocessExecutor::with_policy(
            worker_spec(), workers, ExecPolicy::fault_free(),
        );
        let local = run_all(&thread, &t, &domains, shards);
        let remote = run_all(&sub, &t, &domains, shards);

        prop_assert_eq!(local.len(), remote.len());
        for (i, (l, r)) in local.iter().zip(&remote).enumerate() {
            prop_assert_eq!(&l.records, &r.records,
                "shard {} records must be byte-identical", i);
            prop_assert_eq!(
                portable_counts(&l.metrics), portable_counts(&r.metrics),
                "shard {} portable counters must be byte-identical", i
            );
        }
        let rm = merged(&remote);
        prop_assert!(rm.ipc_bytes > 0, "the pipe must actually have been used");
        prop_assert_eq!(rm.worker_crashes, 0);
        prop_assert_eq!(rm.worker_timeouts, 0);
        prop_assert_eq!(rm.frames_corrupted, 0);
        prop_assert_eq!(merged(&local).ipc_bytes, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The recovery contract over real processes: a seeded plan that
    /// kills workers mid-task, stalls them past the attempt deadline and
    /// flips response bytes still recovers every shard to the
    /// byte-identical records and portable counters of a fault-free
    /// in-process run. Injection is keyed by `(shard, attempt)`, so the
    /// full recovery scoreboard — crashes, timeouts, corrupted frames,
    /// bytes moved — replays identically and is invariant to the pool
    /// size.
    #[test]
    fn process_fault_grids_recover_byte_identically(
        rows in proptest::collection::vec((0u32..12, 0u32..12, 0u32..5), 1..32),
        edge_mask in 0u32..1024,
        seed in 0u64..u64::MAX,
        rate_ppm in 50_000u32..=500_000,
        shards in 1usize..=4,
    ) {
        let t = table_of(&rows);
        let domains = vec![PoDomain::new(mask_dag(edge_mask))];
        let policy = ExecPolicy::with_faults(Some(FaultPlan { seed, rate_ppm }))
            .with_deadline(Duration::from_millis(400));

        let clean = run_all(
            &ThreadShardExecutor::with_policy(2, ExecPolicy::fault_free()),
            &t, &domains, shards,
        );
        let solo = run_all(
            &SubprocessExecutor::with_policy(worker_spec(), 1, policy),
            &t, &domains, shards,
        );
        let pooled = run_all(
            &SubprocessExecutor::with_policy(worker_spec(), 3, policy),
            &t, &domains, shards,
        );
        let replay = run_all(
            &SubprocessExecutor::with_policy(worker_spec(), 3, policy),
            &t, &domains, shards,
        );

        for (i, (c, s)) in clean.iter().zip(&solo).enumerate() {
            prop_assert_eq!(&c.records, &s.records,
                "shard {} must recover to the fault-free records", i);
            prop_assert_eq!(
                portable_counts(&c.metrics), portable_counts(&s.metrics),
                "shard {} portable counters must not see the faults", i
            );
        }
        // Pool-size invariance and deterministic replay: everything but
        // the wall clock — the recovery scoreboard included — is pinned
        // per shard.
        for (i, (s, p)) in solo.iter().zip(&pooled).enumerate() {
            prop_assert_eq!(&s.records, &p.records);
            prop_assert_eq!(wallless(&s.metrics), wallless(&p.metrics),
                "shard {} scoreboard must be pool-size invariant", i);
        }
        for (p, r) in pooled.iter().zip(&replay) {
            prop_assert_eq!(&p.records, &r.records);
            prop_assert_eq!(wallless(&p.metrics), wallless(&r.metrics));
        }
        let m = merged(&solo);
        prop_assert_eq!(
            m.faults_injected,
            m.worker_crashes + m.worker_timeouts + m.frames_corrupted,
            "every injected process fault surfaces as exactly one defect"
        );
        if m.faults_injected == 0 {
            prop_assert_eq!(m.shard_retries, 0);
            prop_assert_eq!(m.shard_fallbacks, 0);
        }
    }
}

/// Acceptance: a saturating process-fault plan (rate 1.0 — every remote
/// attempt of every shard faults) exhausts the remote ladder on each
/// shard and recovers through the in-process scalar fallback, still
/// byte-identical to the fault-free in-process run.
#[test]
fn saturated_process_faults_recover_through_the_fallback() {
    let rows: Vec<(u32, u32, u32)> = (0..40u32).map(|i| (i % 13, (40 - i) % 11, i % 5)).collect();
    let t = table_of(&rows);
    let domains = vec![PoDomain::new(mask_dag(0b1010101010))];
    let shards = 4usize;

    let clean = run_all(
        &ThreadShardExecutor::with_policy(2, ExecPolicy::fault_free()),
        &t,
        &domains,
        shards,
    );
    let policy = ExecPolicy::with_faults(Some(FaultPlan::new(7, 1.0)))
        .with_deadline(Duration::from_millis(250));
    for workers in [1usize, 3] {
        let faulty = run_all(
            &SubprocessExecutor::with_policy(worker_spec(), workers, policy),
            &t,
            &domains,
            shards,
        );
        for (c, f) in clean.iter().zip(&faulty) {
            assert_eq!(c.records, f.records, "workers={workers}");
            assert_eq!(portable_counts(&c.metrics), portable_counts(&f.metrics));
        }
        let m = merged(&faulty);
        assert_eq!(
            m.shard_retries,
            shards as u64 * (ExecPolicy::DEFAULT_RETRIES as u64 + 1),
            "every shard exhausts its remote ladder"
        );
        assert_eq!(m.shard_fallbacks, shards as u64);
        assert_eq!(m.faults_injected, m.shard_retries);
        assert_eq!(
            m.faults_injected,
            m.worker_crashes + m.worker_timeouts + m.frames_corrupted
        );
    }
}

/// A worker binary that echoes every request back verbatim (`/bin/cat`)
/// produces well-framed, correctly checksummed garbage — the supervisor
/// must reject it as frame corruption on every attempt and still deliver
/// the exact results through the fallback.
#[test]
fn echo_worker_is_detected_as_frame_corruption() {
    if !std::path::Path::new("/bin/cat").exists() {
        return;
    }
    let rows: Vec<(u32, u32, u32)> = (0..24u32).map(|i| (i % 7, (24 - i) % 9, i % 5)).collect();
    let t = table_of(&rows);
    let domains = vec![PoDomain::new(mask_dag(0b0110011001))];
    let shards = 3usize;

    let clean = run_all(&ThreadShardExecutor::new(2), &t, &domains, shards);
    let spec = WorkerSpec::new("/bin/cat", Vec::<String>::new());
    let policy = ExecPolicy::fault_free().with_deadline(Duration::from_secs(5));
    let echoed = run_all(
        &SubprocessExecutor::with_policy(spec, 2, policy),
        &t,
        &domains,
        shards,
    );
    for (c, e) in clean.iter().zip(&echoed) {
        assert_eq!(c.records, e.records);
        assert_eq!(portable_counts(&c.metrics), portable_counts(&e.metrics));
    }
    let m = merged(&echoed);
    assert!(m.frames_corrupted > 0, "echoed frames must be distrusted");
    assert_eq!(m.worker_timeouts, 0);
    assert_eq!(m.shard_fallbacks, shards as u64);
}

/// A worker that writes a truncated frame and exits (`printf abc`) is a
/// mid-frame crash: the supervisor sees EOF (or a failed request write),
/// counts a worker death per attempt and recovers through the fallback.
#[test]
fn truncating_worker_is_detected_as_a_crash() {
    if !std::path::Path::new("/bin/sh").exists() {
        return;
    }
    let rows: Vec<(u32, u32, u32)> = (0..24u32).map(|i| ((i * 3) % 11, i % 8, i % 5)).collect();
    let t = table_of(&rows);
    let domains = vec![PoDomain::new(mask_dag(0b1100110010))];
    let shards = 3usize;

    let clean = run_all(&ThreadShardExecutor::new(2), &t, &domains, shards);
    let spec = WorkerSpec::new("/bin/sh", ["-c", "printf abc"]);
    let policy = ExecPolicy::fault_free().with_deadline(Duration::from_secs(5));
    let truncated = run_all(
        &SubprocessExecutor::with_policy(spec, 2, policy),
        &t,
        &domains,
        shards,
    );
    for (c, x) in clean.iter().zip(&truncated) {
        assert_eq!(c.records, x.records);
        assert_eq!(portable_counts(&c.metrics), portable_counts(&x.metrics));
    }
    let m = merged(&truncated);
    assert!(m.worker_crashes > 0, "truncated frames are worker deaths");
    assert_eq!(m.shard_fallbacks, shards as u64);
}

/// A pool that cannot spawn at all (nonexistent worker binary) degrades
/// the whole batch to the in-process ladder: byte-identical outcomes,
/// every IPC counter zero — out-of-process execution is an accelerant,
/// never a dependency.
#[test]
fn unspawnable_pool_degrades_to_in_process_execution() {
    let rows: Vec<(u32, u32, u32)> = (0..30u32).map(|i| (i % 9, (30 - i) % 7, i % 5)).collect();
    let t = table_of(&rows);
    let domains = vec![PoDomain::new(mask_dag(0b0011100110))];
    let shards = 4usize;

    let clean = run_all(&ThreadShardExecutor::new(2), &t, &domains, shards);
    let spec = WorkerSpec::new("/nonexistent/tss-worker-gone", Vec::<String>::new());
    let degraded = run_all(
        &SubprocessExecutor::with_policy(spec, 2, ExecPolicy::fault_free()),
        &t,
        &domains,
        shards,
    );
    for (c, d) in clean.iter().zip(&degraded) {
        assert_eq!(c.records, d.records);
        assert_eq!(portable_counts(&c.metrics), portable_counts(&d.metrics));
    }
    let m = merged(&degraded);
    assert_eq!(m.ipc_bytes, 0, "degraded batches never touch the pipe");
    assert_eq!(m.worker_crashes, 0);
    assert_eq!(m.worker_timeouts, 0);
    assert_eq!(m.frames_corrupted, 0);
    assert_eq!(m.shard_retries, 0);
    assert_eq!(m.shard_fallbacks, 0);
}

/// The executor seam end to end: a streaming maintainer whose repair
/// jobs run on an injected subprocess pool tracks the default in-process
/// maintainer byte-for-byte after every operation — inserts, oldest
/// expiry and member expiry (the delta-repair path that actually fans
/// candidate screens across the pipe).
#[test]
fn streaming_repairs_over_subprocess_pool_match_in_process() {
    let dag = mask_dag(0b1001011010);
    let cfg = StreamingConfig {
        window: WindowPolicy::Unbounded,
        threads: 2,
        repair_shards: 3,
        budget: Budget::UNLIMITED,
        exec: ExecPolicy::fault_free(),
    };
    let mut reference = StreamingSkyline::new(2, vec![PoDomain::new(dag.clone())], cfg);
    let mut variant =
        StreamingSkyline::new(2, vec![PoDomain::new(dag)], cfg).with_executor(Arc::new(
            SubprocessExecutor::with_policy(worker_spec(), 2, ExecPolicy::fault_free()),
        ));

    for i in 0..36u32 {
        // Anti-correlated members plus points they dominate, so member
        // expiry leaves candidates for the sharded screen to examine.
        let (a, b) = if i % 2 == 0 {
            (i % 12, 12 - i % 12)
        } else {
            (i % 12 + 2, 14 - i % 12)
        };
        reference.insert(&[a, b], &[i % 5]);
        variant.insert(&[a, b], &[i % 5]);
        if i % 3 == 2 {
            let members = reference.skyline_records();
            if !members.is_empty() {
                let id = members[members.len() / 2];
                assert!(reference.expire(id));
                assert!(variant.expire(id));
            }
        }
        assert_eq!(
            variant.skyline_records(),
            reference.skyline_records(),
            "op {i}: maintained skylines must be byte-identical"
        );
        assert_eq!(
            portable_counts(&variant.metrics()),
            portable_counts(&reference.metrics()),
            "op {i}: portable counters must be byte-identical"
        );
    }
    let vm = variant.metrics();
    let rm = reference.metrics();
    assert!(vm.stream_repairs > 0, "member expiry must have repaired");
    assert!(vm.ipc_bytes > 0, "repairs must actually cross the pipe");
    assert_eq!(rm.ipc_bytes, 0);
    assert_eq!(vm.worker_crashes, 0);
    assert_eq!(vm.worker_timeouts, 0);
    assert_eq!(vm.frames_corrupted, 0);
}

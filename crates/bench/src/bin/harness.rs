//! Regenerates every table and figure of the paper's evaluation (§VI) as
//! text tables.
//!
//! ```text
//! cargo run --release -p bench --bin harness -- all        # everything
//! cargo run --release -p bench --bin harness -- fig7       # one figure
//! TSS_FULL_SCALE=1 cargo run --release -p bench --bin harness -- fig7
//! ```
//!
//! Absolute numbers differ from the paper's 2009 testbed; the *shapes* —
//! who wins, by what factor, and how gaps grow with each parameter — are
//! the reproduction targets, recorded side by side in EXPERIMENTS.md.

use bench::params;
use bench::report::{comparison_cells, comparison_header, TextTable};
use bench::runner::{
    dtss_time_to_k, generate, progressive_sdc_plus, progressive_stss, run_dtss, run_dynamic_sdc,
    run_sdc_plus, run_stss, sdc_plus_time_to_k, stss_time_to_k,
};
use datagen::{Distribution, ExperimentParams};
use tss_core::{CostModel, DtssConfig, RangeStrategy, StssConfig};

fn main() {
    let cmd = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    // Hidden worker entry: under `TSS_EXECUTOR=subprocess` the sharded
    // runners re-exec this binary with `tss-worker` and speak the frame
    // protocol over stdin/stdout. Handled before anything that could
    // write to stdout, which belongs to the supervisor.
    if cmd == "tss-worker" {
        if let Err(e) = bench::ipcbench::serve_worker() {
            eprintln!("tss-worker: {e}");
            std::process::exit(1);
        }
        return;
    }
    let t0 = std::time::Instant::now();
    match cmd.as_str() {
        "fig7" => fig7(),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "fig12" => fig12(),
        "fig13" => fig13(),
        "fig14" => fig14(),
        "ablations" => ablations(),
        "cursors" => cursors(),
        "smoke" => smoke(),
        "bench" => bench_json(&std::env::args().skip(2).collect::<Vec<_>>()),
        "all" => {
            fig7();
            fig8();
            fig9();
            fig10();
            fig11();
            fig12();
            fig13();
            fig14();
            ablations();
            cursors();
        }
        other => {
            eprintln!(
                "unknown figure {other:?}; expected fig7..fig14, ablations, cursors, smoke, \
                 bench or all"
            );
            std::process::exit(2);
        }
    }
    eprintln!("[harness completed in {:?}]", t0.elapsed());
}

fn model() -> CostModel {
    CostModel::default()
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
    if !params::full_scale() {
        println!("(laptop scale; TSS_FULL_SCALE=1 restores Table III values)");
    }
}

/// Fig. 7: static total time vs. data cardinality.
fn fig7() {
    for dist in params::distributions() {
        banner(&format!(
            "Fig 7 — static: total time vs N ({})",
            dist.short()
        ));
        let mut t = TextTable::new(&comparison_header("N"));
        for n in params::cardinalities() {
            let mut p = params::static_params(dist, 42);
            p.n = n;
            let w = generate(&p);
            let sdc = run_sdc_plus(&w);
            let tss = run_stss(&w, StssConfig::default());
            assert_eq!(sdc.skyline, tss.skyline);
            t.row(comparison_cells(n.to_string(), &sdc, &tss, model()));
        }
        print!("{}", t.render());
    }
}

/// Fig. 8: static total time vs. dimensionality.
fn fig8() {
    for dist in params::distributions() {
        banner(&format!(
            "Fig 8 — static: total time vs (|TO|,|PO|) ({})",
            dist.short()
        ));
        let mut t = TextTable::new(&comparison_header("dims"));
        for (to_d, po_d) in params::dimensionalities() {
            let mut p = params::static_params(dist, 42);
            p.to_dims = to_d;
            p.po_dims = po_d;
            let w = generate(&p);
            let sdc = run_sdc_plus(&w);
            let tss = run_stss(&w, StssConfig::default());
            assert_eq!(sdc.skyline, tss.skyline);
            t.row(comparison_cells(
                format!("({to_d},{po_d})"),
                &sdc,
                &tss,
                model(),
            ));
        }
        print!("{}", t.render());
    }
}

/// Fig. 9: static total time vs. DAG height.
fn fig9() {
    for dist in params::distributions() {
        banner(&format!(
            "Fig 9 — static: total time vs DAG height ({})",
            dist.short()
        ));
        let mut t = TextTable::new(&comparison_header("h"));
        for h in params::heights() {
            let mut p = params::static_params(dist, 42);
            p.dag_height = h;
            let w = generate(&p);
            let sdc = run_sdc_plus(&w);
            let tss = run_stss(&w, StssConfig::default());
            assert_eq!(sdc.skyline, tss.skyline);
            t.row(comparison_cells(h.to_string(), &sdc, &tss, model()));
        }
        print!("{}", t.render());
    }
}

/// Fig. 10: static total time vs. DAG density.
fn fig10() {
    for dist in params::distributions() {
        banner(&format!(
            "Fig 10 — static: total time vs DAG density ({})",
            dist.short()
        ));
        let mut t = TextTable::new(&comparison_header("d"));
        for d in params::densities() {
            let mut p = params::static_params(dist, 42);
            p.dag_density = d;
            let w = generate(&p);
            let sdc = run_sdc_plus(&w);
            let tss = run_stss(&w, StssConfig::default());
            assert_eq!(sdc.skyline, tss.skyline);
            t.row(comparison_cells(format!("{d:.1}"), &sdc, &tss, model()));
        }
        print!("{}", t.render());
    }
}

/// Fig. 11: progressiveness — simulated time to retrieve x% of the skyline.
fn fig11() {
    for dist in params::distributions() {
        banner(&format!(
            "Fig 11 — static: progressiveness ({})",
            dist.short()
        ));
        let mut p = params::static_params(dist, 42);
        p.n = params::progressive_n();
        let w = generate(&p);
        let (tss_s, tss_m) = progressive_stss(&w);
        let (sdc_s, sdc_m) = progressive_sdc_plus(&w);
        assert_eq!(tss_s.len(), sdc_s.len());
        let total = tss_s.len();
        println!("skyline size: {total}");
        let mut t = TextTable::new(&["results %", "SDC+ (s)", "TSS (s)", "speedup"]);
        for pct in (10..=100).step_by(10) {
            let ix = ((total * pct).div_ceil(100)).clamp(1, total) - 1;
            let (a, b) = (
                sdc_s[ix].elapsed_total(model()).as_secs_f64(),
                tss_s[ix].elapsed_total(model()).as_secs_f64(),
            );
            t.row(vec![
                format!("{pct}"),
                format!("{a:.3}"),
                format!("{b:.3}"),
                format!("{:.2}x", a / b.max(1e-9)),
            ]);
        }
        print!("{}", t.render());
        println!(
            "totals: SDC+ {} reads / {} checks; TSS {} reads / {} checks",
            sdc_m.io_reads, sdc_m.dominance_checks, tss_m.io_reads, tss_m.dominance_checks
        );
    }
}

/// Shared body of the dynamic sweeps: averages a few query orders.
fn dynamic_point(p: &ExperimentParams) -> (bench::runner::AlgoResult, bench::runner::AlgoResult) {
    let w = generate(p);
    let seeds = [11u64, 22, 33];
    let mut sdc_sum = tss_core::Metrics::default();
    let mut tss_sum = tss_core::Metrics::default();
    let mut sky = 0usize;
    for &s in &seeds {
        let a = run_dynamic_sdc(&w, s);
        let b = run_dtss(&w, s, DtssConfig::default());
        assert_eq!(a.skyline, b.skyline);
        sky = b.skyline;
        sdc_sum = sdc_sum.merge(&a.metrics);
        tss_sum = tss_sum.merge(&b.metrics);
    }
    let div = |m: tss_core::Metrics| tss_core::Metrics {
        dominance_checks: m.dominance_checks / seeds.len() as u64,
        dominance_batch_calls: m.dominance_batch_calls / seeds.len() as u64,
        kernel_chunks: m.kernel_chunks / seeds.len() as u64,
        io_reads: m.io_reads / seeds.len() as u64,
        io_writes: m.io_writes / seeds.len() as u64,
        heap_pops: m.heap_pops / seeds.len() as u64,
        results: m.results / seeds.len() as u64,
        label_cache_hits: m.label_cache_hits / seeds.len() as u64,
        label_cache_misses: m.label_cache_misses / seeds.len() as u64,
        merge_pair_checks: m.merge_pair_checks / seeds.len() as u64,
        merge_strata: m.merge_strata / seeds.len() as u64,
        shard_retries: m.shard_retries / seeds.len() as u64,
        shard_fallbacks: m.shard_fallbacks / seeds.len() as u64,
        faults_injected: m.faults_injected / seeds.len() as u64,
        stream_inserts: m.stream_inserts / seeds.len() as u64,
        stream_expirations: m.stream_expirations / seeds.len() as u64,
        stream_repairs: m.stream_repairs / seeds.len() as u64,
        repair_candidates: m.repair_candidates / seeds.len() as u64,
        worker_crashes: m.worker_crashes / seeds.len() as u64,
        worker_timeouts: m.worker_timeouts / seeds.len() as u64,
        frames_corrupted: m.frames_corrupted / seeds.len() as u64,
        ipc_bytes: m.ipc_bytes / seeds.len() as u64,
        cpu: m.cpu / seeds.len() as u32,
    };
    (
        bench::runner::AlgoResult {
            name: "SDC+",
            metrics: div(sdc_sum),
            skyline: sky,
            records: None, // averaged over seeds
            plan: None,
        },
        bench::runner::AlgoResult {
            name: "TSS",
            metrics: div(tss_sum),
            skyline: sky,
            records: None, // averaged over seeds
            plan: None,
        },
    )
}

/// Fig. 12: dynamic total time vs. data cardinality.
fn fig12() {
    for dist in params::distributions() {
        banner(&format!(
            "Fig 12 — dynamic: total time vs N ({})",
            dist.short()
        ));
        let mut t = TextTable::new(&comparison_header("N"));
        for n in params::cardinalities() {
            let mut p = params::dynamic_params(dist, 42);
            p.n = n;
            let (sdc, tss) = dynamic_point(&p);
            t.row(comparison_cells(n.to_string(), &sdc, &tss, model()));
        }
        print!("{}", t.render());
    }
}

/// Fig. 13: dynamic total time vs. dimensionality.
fn fig13() {
    for dist in params::distributions() {
        banner(&format!(
            "Fig 13 — dynamic: total time vs (|TO|,|PO|) ({})",
            dist.short()
        ));
        let mut t = TextTable::new(&comparison_header("dims"));
        for (to_d, po_d) in params::dimensionalities() {
            let mut p = params::dynamic_params(dist, 42);
            p.to_dims = to_d;
            p.po_dims = po_d;
            let (sdc, tss) = dynamic_point(&p);
            t.row(comparison_cells(
                format!("({to_d},{po_d})"),
                &sdc,
                &tss,
                model(),
            ));
        }
        print!("{}", t.render());
    }
}

/// Fig. 14: dynamic total time vs. DAG structure (Anti-correlated).
fn fig14() {
    let dist = Distribution::AntiCorrelated;
    banner("Fig 14(a) — dynamic: total time vs DAG height (anti)");
    let mut t = TextTable::new(&comparison_header("h"));
    for h in params::heights() {
        let mut p = params::dynamic_params(dist, 42);
        p.dag_height = h;
        let (sdc, tss) = dynamic_point(&p);
        t.row(comparison_cells(h.to_string(), &sdc, &tss, model()));
    }
    print!("{}", t.render());

    banner("Fig 14(b) — dynamic: total time vs DAG density (anti)");
    let mut t = TextTable::new(&comparison_header("d"));
    for d in params::densities() {
        let mut p = params::dynamic_params(dist, 42);
        p.dag_density = d;
        let (sdc, tss) = dynamic_point(&p);
        t.row(comparison_cells(format!("{d:.1}"), &sdc, &tss, model()));
    }
    print!("{}", t.render());
}

/// Pull-based consumption: time-to-first-result and time-to-k measured
/// directly off live [`tss_core::SkylineCursor`]s — the serving-path view
/// of Fig. 11's progressiveness claim. TSS confirms its prefix on a
/// fraction of SDC+'s work because precedence lets it stop mid-traversal.
fn cursors() {
    let k = 10usize;
    for dist in params::distributions() {
        banner(&format!(
            "Cursors — static: time to first / to k={k} ({})",
            dist.short()
        ));
        let mut p = params::static_params(dist, 42);
        p.n = params::progressive_n();
        let w = generate(&p);
        let mut t = TextTable::new(&[
            "engine",
            "first (s)",
            &format!("k={k} (s)"),
            "reads@first",
            &format!("reads@{k}"),
        ]);
        for timings in [
            sdc_plus_time_to_k(&w, k),
            stss_time_to_k(&w, StssConfig::default(), k),
        ] {
            t.row(vec![
                timings.name.to_string(),
                format!("{:.3}", timings.time_to_first(model())),
                format!("{:.3}", timings.time_to_k(model())),
                timings.first.io_reads.to_string(),
                timings.at_k.io_reads.to_string(),
            ]);
        }
        print!("{}", t.render());
    }
    banner(&format!(
        "Cursors — dynamic: time to first / to k={k} (indep)"
    ));
    let p = params::dynamic_params(Distribution::Independent, 42);
    let w = generate(&p);
    let timings = dtss_time_to_k(&w, 11, DtssConfig::default(), k);
    println!(
        "dTSS: first {:.3}s ({} reads) -> k={} {:.3}s ({} reads)",
        timings.time_to_first(model()),
        timings.first.io_reads,
        timings.pulled,
        timings.time_to_k(model()),
        timings.at_k.io_reads,
    );
}

/// CI smoke: one tiny parameter point through every measurement path —
/// static, dynamic, progressive and cursor — with the cross-engine
/// agreement assertions on. Finishes in seconds.
fn smoke() {
    banner("Smoke — tiny grid across every path");
    let mut p = ExperimentParams::paper_static_default(Distribution::Independent, 7);
    p.n = 2000;
    p.dag_height = 4;
    let w = generate(&p);
    let sdc = run_sdc_plus(&w);
    let tss = run_stss(&w, StssConfig::default());
    assert_eq!(sdc.skyline, tss.skyline, "static engines must agree");
    println!(
        "static n={}: skyline {} | SDC+ {:.3}s vs TSS {:.3}s",
        p.n,
        tss.skyline,
        sdc.total_secs(model()),
        tss.total_secs(model())
    );
    let (t_samples, _) = progressive_stss(&w);
    assert_eq!(t_samples.len(), tss.skyline, "one sample per result");
    let k = 5.min(tss.skyline);
    let prefix = stss_time_to_k(&w, StssConfig::default(), k);
    assert_eq!(prefix.pulled, k);
    assert!(
        prefix.at_k.io_reads <= tss.metrics.io_reads,
        "a k-prefix must not read more than the full run"
    );
    println!(
        "cursor: first result after {} reads, k={} after {} reads (full run {})",
        prefix.first.io_reads, k, prefix.at_k.io_reads, tss.metrics.io_reads
    );

    let mut p = ExperimentParams::paper_dynamic_default(Distribution::Independent, 7);
    p.n = 2000;
    p.dag_height = 4;
    let wd = generate(&p);
    let a = run_dtss(&wd, 5, DtssConfig::default());
    let b = run_dynamic_sdc(&wd, 5);
    assert_eq!(a.skyline, b.skyline, "dynamic engines must agree");
    let d_prefix = dtss_time_to_k(&wd, 5, DtssConfig::default(), 5);
    assert!(d_prefix.pulled > 0, "dynamic cursor must stream");
    println!(
        "dynamic n={}: skyline {} | dTSS {:.3}s vs rebuild-SDC+ {:.3}s | cursor first after {} reads",
        p.n,
        a.skyline,
        a.total_secs(model()),
        b.total_secs(model()),
        d_prefix.first.io_reads
    );
    println!("smoke OK");
}

/// `harness bench --json [--smoke] [--stream] [--threads N[,N…]]
/// [--out FILE]`: the fixed perf-trajectory grid (see
/// [`bench::jsonbench`]), written as JSON rows to stdout or `FILE`.
/// `--stream` switches to the streaming-maintenance grid (see
/// [`bench::streambench`]): sliding-window maintained skylines measured
/// while a snapshot cursor serves reads, with updates/sec, time-to-repair
/// percentiles and the maintained-vs-recompute check columns per row; the
/// committed `BENCH_PR9.json` is a full-scale `--stream --threads 1,2`
/// run of this subcommand (its wall-clock columns carry the same
/// `available_parallelism: 1` caveat as the earlier artifacts). `--threads` re-runs every grid point through
/// the sharded parallel executors once per listed worker count (one shard
/// plan per workload, so all rows but `wall_ns` are asserted identical
/// across counts). The shard plan comes from the `BENCH_SHARDS`
/// environment variable — set it for a fixed count, leave it unset for
/// the adaptive sampling planner; either way the first worker count is
/// cross-checked byte-for-byte against the other plan while measuring.
/// The committed `BENCH_PR5.json` is a full-grid `--threads 1,2,4`
/// adaptive run of this subcommand (`BENCH_PR4.json` its fixed-8-shard,
/// all-pairs-merge predecessor); `BENCH_PR7.json` is the same grid under
/// the lane-chunked kernels and the cost-model planner, with the kernel
/// variant, per-pair-check calibration, and planner estimates recorded in
/// every row (machine caveats stay machine-checkable: rows with
/// `available_parallelism: 1` prove determinism, not speedup, and
/// `pair_check_picos` pins the measuring CPU's kernel speed).
fn bench_json(args: &[String]) {
    let mut smoke = false;
    let mut stream = false;
    let mut out: Option<String> = None;
    let mut threads: Vec<usize> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {} // the only supported format; accepted for clarity
            "--smoke" => smoke = true,
            "--stream" => stream = true,
            "--threads" => {
                let list = it.next().unwrap_or_else(|| {
                    eprintln!("--threads requires N or a comma list like 1,2,4");
                    std::process::exit(2);
                });
                threads = list
                    .split(',')
                    .map(|s| {
                        let n = s.trim().parse::<usize>().unwrap_or(0);
                        if n == 0 {
                            eprintln!(
                                "--threads: {s:?} is not a worker count (>= 1; serial rows \
                                 are always emitted)"
                            );
                            std::process::exit(2);
                        }
                        n
                    })
                    .collect();
            }
            "--out" => {
                out = Some(
                    it.next()
                        .unwrap_or_else(|| {
                            eprintln!("--out requires a path");
                            std::process::exit(2);
                        })
                        .clone(),
                );
            }
            other => {
                eprintln!(
                    "unknown bench flag {other:?}; expected --json, --smoke, --stream, \
                     --threads LIST, --out FILE"
                );
                std::process::exit(2);
            }
        }
    }
    let (json, rows) = if stream {
        let rows = bench::streambench::stream_grid(smoke, &threads);
        (bench::streambench::stream_to_json(&rows), rows.len())
    } else {
        let rows = bench::jsonbench::grid(smoke, &threads, bench::runner::bench_shard_spec());
        (bench::jsonbench::to_json(&rows), rows.len())
    };
    match out {
        Some(path) => {
            std::fs::write(&path, json).expect("writable --out path");
            eprintln!("[bench grid written to {path} ({rows} rows)]");
        }
        None => print!("{json}"),
    }
}

/// Ablations over the design choices DESIGN.md calls out (§IV-B, §V-B).
fn ablations() {
    banner("Ablation — sTSS optimizations (independent, defaults)");
    let p = params::static_params(Distribution::Independent, 42);
    let w = generate(&p);
    let mut t = TextTable::new(&["configuration", "total (s)", "checks", "reads"]);
    for (name, cfg) in [
        ("paper default (dyadic, list checks)", StssConfig::default()),
        (
            "naive range merging",
            StssConfig {
                range_strategy: RangeStrategy::Naive,
                ..Default::default()
            },
        ),
        (
            "full range table",
            StssConfig {
                range_strategy: RangeStrategy::Full,
                ..Default::default()
            },
        ),
        (
            "fast Tm check",
            StssConfig {
                fast_check: true,
                ..Default::default()
            },
        ),
        (
            "multi-cover MBB",
            StssConfig {
                multi_cover_mbb: true,
                ..Default::default()
            },
        ),
    ] {
        let r = run_stss(&w, cfg);
        t.row(vec![
            name.to_string(),
            format!("{:.3}", r.total_secs(model())),
            r.metrics.dominance_checks.to_string(),
            r.metrics.io_reads.to_string(),
        ]);
    }
    print!("{}", t.render());

    banner("Ablation — dTSS optimizations (independent, defaults, 1 query)");
    let p = params::dynamic_params(Distribution::Independent, 42);
    let w = generate(&p);
    let mut t = TextTable::new(&["configuration", "total (s)", "checks", "reads"]);
    for (name, cfg) in [
        ("paper default (plain)", DtssConfig::default()),
        (
            "local skylines",
            DtssConfig {
                precompute_local: true,
                ..Default::default()
            },
        ),
        (
            "fast Tm check",
            DtssConfig {
                fast_check: true,
                ..Default::default()
            },
        ),
        (
            "dominator prefilter",
            DtssConfig {
                filter_dominators: true,
                ..Default::default()
            },
        ),
    ] {
        let r = run_dtss(&w, 11, cfg);
        t.row(vec![
            name.to_string(),
            format!("{:.3}", r.total_secs(model())),
            r.metrics.dominance_checks.to_string(),
            r.metrics.io_reads.to_string(),
        ]);
    }
    print!("{}", t.render());

    banner("Ablation — LRU page buffer amortizes repeat queries (static indep)");
    // Within one BBS run every node is read at most once, so a buffer
    // cannot help a single query; what it buys (the paper's §VI-B remark)
    // is amortization ACROSS queries on the same index. We run the same
    // query twice against a warm buffer sized to the tree.
    let p = params::static_params(Distribution::Independent, 42);
    let w = generate(&p);
    let mut t = TextTable::new(&[
        "algorithm",
        "cold reads",
        "warm reads",
        "cold (s)",
        "warm (s)",
    ]);
    {
        let stss = tss_core::Stss::build(
            w.table.clone(),
            w.dags.clone(),
            StssConfig {
                buffer_pages: Some(100_000),
                ..Default::default()
            },
        )
        .unwrap();
        let cold = stss.run();
        let warm = stss.run();
        t.row(vec![
            "TSS".into(),
            cold.metrics.io_reads.to_string(),
            warm.metrics.io_reads.to_string(),
            format!("{:.3}", model().total_time(&cold.metrics).as_secs_f64()),
            format!("{:.3}", model().total_time(&warm.metrics).as_secs_f64()),
        ]);
        let idx = sdc::SdcIndex::build(
            w.table.clone(),
            w.dags.clone(),
            sdc::Variant::SdcPlus,
            sdc::SdcConfig {
                buffer_pages: Some(100_000),
                ..Default::default()
            },
        )
        .unwrap();
        let cold = idx.run();
        let warm = idx.run();
        t.row(vec![
            "SDC+".into(),
            cold.metrics.io_reads.to_string(),
            warm.metrics.io_reads.to_string(),
            format!("{:.3}", model().total_time(&cold.metrics).as_secs_f64()),
            format!("{:.3}", model().total_time(&warm.metrics).as_secs_f64()),
        ]);
    }
    print!("{}", t.render());

    banner("Ablation — dTSS query cache (repeat query)");
    let sizes: Vec<u32> = w.dags.iter().map(|d| d.len() as u32).collect();
    let dtss = tss_core::Dtss::build(
        w.table.clone(),
        sizes,
        DtssConfig {
            cache: true,
            ..Default::default()
        },
    )
    .unwrap();
    let q = tss_core::PoQuery::new(
        w.dags
            .iter()
            .map(|d| bench::runner::permuted_order(d, 11))
            .collect(),
    );
    let cold = dtss.query(&q).unwrap();
    let warm = dtss.query(&q).unwrap();
    println!(
        "cold: {:?} ({} reads) -> warm: {:?} ({} reads, from_cache={})",
        model().total_time(&cold.metrics),
        cold.metrics.io_reads,
        model().total_time(&warm.metrics),
        warm.metrics.io_reads,
        warm.from_cache
    );
}

//! Out-of-process execution for the bench grid: the `TSS_EXECUTOR` axis.
//!
//! The sharded runners in [`crate::runner`] evaluate their shards through
//! the [`tss_core::ShardExecutor`] seam, so swapping the in-process
//! [`tss_core::ThreadShardExecutor`] for the supervised
//! [`tss_core::SubprocessExecutor`] is a policy decision, not a rewrite.
//! This module supplies the two halves that decision needs:
//!
//! * **engine task codecs** (tags [`TASK_STSS`]..[`TASK_DYNAMIC_SDC`],
//!   disjoint from the builtin codecs of `tss_core::ipc::tasks`): a shard's
//!   wire payload carries its global start offset, its record window, the
//!   data DAGs, and — for the dynamic engines — the query seed, from which
//!   a worker process rebuilds the exact engine the in-process closure
//!   would have built (default configs, the request's kernel) and runs it.
//!   Both sides construct the engine from the same blocks and run the same
//!   deterministic code, so records and counters are byte-identical across
//!   executors — the property the CI subprocess smoke diff enforces.
//! * **environment knobs**: `TSS_EXECUTOR=inproc|subprocess` picks the
//!   executor of the sharded bench rows (unset → in-process), and
//!   `TSS_DEADLINE_MS` overrides the supervisor's per-attempt deadline.
//!   Both are read per call, like `BENCH_SHARDS`, so tests probe the pure
//!   mappings without mutating the process environment.
//!
//! The harness binary hides the matching worker entry behind a
//! `tss-worker` sentinel argument ([`serve_worker`] composes these codecs
//! with the builtin ones), and the runners re-exec the current binary
//! with that argument — no second binary to ship or locate.

use crate::runner::permuted_order;
use poset::Dag;
use sdc::{DynamicSdc, SdcConfig, SdcIndex, Variant};
use std::time::Duration;
use tss_core::ipc::protocol::{get_window, put_u32, put_u64, put_window, DecodeError, Reader};
use tss_core::ipc::tasks::dispatch_builtin;
use tss_core::ipc::worker::serve_io;
use tss_core::{Dtss, DtssConfig, Metrics, PoQuery, ShardCtx, ShardView, Stss, StssConfig};

/// Wire tag of a sharded sTSS run (build the index, emit the skyline).
pub const TASK_STSS: u8 = 16;
/// Wire tag of a sharded SDC+ run.
pub const TASK_SDC_PLUS: u8 = 17;
/// Wire tag of a sharded dTSS dynamic query (payload adds the query seed).
pub const TASK_DTSS: u8 = 18;
/// Wire tag of a sharded rebuild-SDC+ dynamic query.
pub const TASK_DYNAMIC_SDC: u8 = 19;

/// Which [`tss_core::ShardExecutor`] the sharded bench rows run through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorChoice {
    /// Scoped threads in this process ([`tss_core::ThreadShardExecutor`]).
    InProc,
    /// A supervised pool of re-exec'd worker processes
    /// ([`tss_core::SubprocessExecutor`]).
    Subprocess,
}

impl ExecutorChoice {
    /// Row label (`"inproc"` / `"subprocess"`).
    pub fn name(self) -> &'static str {
        match self {
            ExecutorChoice::InProc => "inproc",
            ExecutorChoice::Subprocess => "subprocess",
        }
    }
}

/// The executor the bench grid runs its sharded rows through, from the
/// `TSS_EXECUTOR` environment variable (unset → in-process).
pub fn bench_executor() -> ExecutorChoice {
    executor_from(std::env::var("TSS_EXECUTOR").ok().as_deref())
}

/// The pure mapping behind [`bench_executor`].
fn executor_from(var: Option<&str>) -> ExecutorChoice {
    match var.map(str::trim) {
        None | Some("") | Some("inproc") => ExecutorChoice::InProc,
        Some("subprocess") => ExecutorChoice::Subprocess,
        // lint:allow(panic-path): a misspelled executor name must abort the bench run loudly, not silently measure the wrong backend
        Some(v) => panic!("TSS_EXECUTOR must be inproc or subprocess, got {v:?}"),
    }
}

/// The supervisor's per-attempt deadline override, from the
/// `TSS_DEADLINE_MS` environment variable (unset → the supervisor's
/// [`tss_core::ipc::DEFAULT_DEADLINE`]).
pub fn bench_deadline() -> Option<Duration> {
    deadline_from(std::env::var("TSS_DEADLINE_MS").ok().as_deref())
}

/// The pure mapping behind [`bench_deadline`].
fn deadline_from(var: Option<&str>) -> Option<Duration> {
    var.map(|v| {
        let ms = v.trim().parse::<u64>().unwrap_or_else(|_| {
            // lint:allow(panic-path): a malformed deadline must abort the bench run loudly, not silently run undeadlined
            panic!("TSS_DEADLINE_MS must be milliseconds, got {v:?}")
        });
        Duration::from_millis(ms.max(1))
    })
}

/// Appends the data DAGs as raw structure (vertex count + edge pairs) —
/// the same layout as `tss_core::ipc::protocol::put_dags`, minus the
/// domain wrapper: the engines consume [`Dag`]s and derive their own
/// labelings.
fn put_engine_dags(buf: &mut Vec<u8>, dags: &[Dag]) {
    put_u32(buf, dags.len() as u32);
    for dag in dags {
        put_u32(buf, dag.len() as u32);
        put_u32(buf, dag.num_edges() as u32);
        for (u, v) in dag.edges() {
            put_u32(buf, u.idx() as u32);
            put_u32(buf, v.idx() as u32);
        }
    }
}

/// Inverse of [`put_engine_dags`]. Labels are regenerated; every derived
/// structure (labelings, reachability) is a deterministic function of the
/// edge structure, so dominance decisions and examined-pair counts match
/// the sender's.
fn get_engine_dags(r: &mut Reader<'_>) -> Result<Vec<Dag>, DecodeError> {
    let count = r.u32()? as usize;
    let mut dags = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        let n = r.u32()?;
        let edges = r.u32()? as usize;
        let mut pairs = Vec::with_capacity(edges.min(1 << 20));
        for _ in 0..edges {
            let u = r.u32()?;
            let v = r.u32()?;
            pairs.push((u, v));
        }
        dags.push(Dag::from_edges(n, &pairs).map_err(|_| "dag edges")?);
    }
    Ok(dags)
}

/// Encodes one sharded engine task: tag, the shard's global start, its
/// record window, the data DAGs, and — for the dynamic tags — the query
/// seed. The worker rebuilds the engine the in-process closure builds
/// (default configs; the request's kernel) over the identical window.
pub fn encode_engine_task(
    tag: u8,
    view: &ShardView<'_>,
    dags: &[Dag],
    query_seed: Option<u64>,
) -> Vec<u8> {
    debug_assert!(matches!(
        tag,
        TASK_STSS | TASK_SDC_PLUS | TASK_DTSS | TASK_DYNAMIC_SDC
    ));
    let store = view.store();
    let mut t = Vec::new();
    t.push(tag);
    put_u32(&mut t, view.start());
    put_window(
        &mut t,
        store.to_dims(),
        store.po_dims(),
        view.to_block(),
        view.po_block(),
    );
    put_engine_dags(&mut t, dags);
    if let Some(seed) = query_seed {
        put_u64(&mut t, seed);
    }
    t
}

/// Decodes and runs one engine task; returns global record ids (shard
/// start applied) plus the run's metrics — the worker-side mirror of the
/// closures the sharded runners build.
fn run_engine(tag: u8, body: &[u8], ctx: ShardCtx) -> Result<(Vec<u32>, Metrics), String> {
    let mut r = Reader::new(body);
    let start = r.u32().map_err(str::to_string)?;
    let store = get_window(&mut r)
        .map_err(str::to_string)?
        .with_kernel(ctx.kernel);
    let dags = get_engine_dags(&mut r).map_err(str::to_string)?;
    let seed = match tag {
        TASK_DTSS | TASK_DYNAMIC_SDC => Some(r.u64().map_err(str::to_string)?),
        _ => None,
    };
    if r.remaining() != 0 {
        return Err("trailing task bytes".to_string());
    }
    let (local, metrics) = match (tag, seed) {
        (TASK_STSS, None) => {
            let stss = Stss::build(store, dags, StssConfig::default())
                .map_err(|e| format!("stss build: {e}"))?;
            let run = stss.run();
            (run.skyline_records(), run.metrics)
        }
        (TASK_SDC_PLUS, None) => {
            let idx = SdcIndex::build(store, dags, Variant::SdcPlus, SdcConfig::default())
                .map_err(|e| format!("sdc build: {e}"))?;
            let run = idx.run();
            (run.skyline.clone(), run.metrics)
        }
        (TASK_DTSS, Some(seed)) => {
            let sizes: Vec<u32> = dags.iter().map(|d| d.len() as u32).collect();
            let dtss = Dtss::build(store, sizes, DtssConfig::default())
                .map_err(|e| format!("dtss build: {e}"))?;
            let query = PoQuery::new(dags.iter().map(|d| permuted_order(d, seed)).collect());
            let run = dtss.query(&query).map_err(|e| format!("dtss query: {e}"))?;
            (run.skyline_records(), run.metrics)
        }
        (TASK_DYNAMIC_SDC, Some(seed)) => {
            let dsdc = DynamicSdc::new(store, SdcConfig::default());
            let query: Vec<Dag> = dags.iter().map(|d| permuted_order(d, seed)).collect();
            let run = dsdc.query(&query).map_err(|e| format!("sdc query: {e}"))?;
            (run.skyline.clone(), run.metrics)
        }
        _ => return Err(format!("unknown engine task tag {tag}")),
    };
    Ok((local.into_iter().map(|id| id + start).collect(), metrics))
}

/// The harness worker's dispatch: the bench engine codecs layered over the
/// builtin ones (`tss_core::ipc::tasks`), so one worker binary serves both
/// the bench grid and the core task shapes.
pub fn dispatch(task: &[u8], ctx: ShardCtx) -> Result<(Vec<u32>, Metrics), String> {
    match task.first().copied() {
        Some(tag @ (TASK_STSS | TASK_SDC_PLUS | TASK_DTSS | TASK_DYNAMIC_SDC)) => {
            run_engine(tag, &task[1..], ctx)
        }
        _ => dispatch_builtin(task, ctx),
    }
}

/// Serves the composed dispatch over stdin/stdout — the body of the
/// harness's hidden `tss-worker` subcommand.
pub fn serve_worker() -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_io(&mut stdin.lock(), &mut stdout.lock(), dispatch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{generate, run_dtss_sharded, run_stss_sharded};
    use datagen::{Distribution, ExperimentParams};
    use skyline::Kernel;
    use tss_core::ShardSpec;

    fn tiny_static() -> ExperimentParams {
        let mut p = ExperimentParams::paper_static_default(Distribution::Independent, 7);
        p.n = 1200;
        p.dag_height = 4;
        p
    }

    #[test]
    fn executor_mapping_covers_set_and_unset() {
        assert_eq!(executor_from(None), ExecutorChoice::InProc);
        assert_eq!(executor_from(Some("")), ExecutorChoice::InProc);
        assert_eq!(executor_from(Some("inproc")), ExecutorChoice::InProc);
        assert_eq!(
            executor_from(Some(" subprocess ")),
            ExecutorChoice::Subprocess
        );
        assert_eq!(ExecutorChoice::Subprocess.name(), "subprocess");
    }

    #[test]
    fn deadline_mapping_covers_set_and_unset() {
        assert_eq!(deadline_from(None), None);
        assert_eq!(deadline_from(Some("250")), Some(Duration::from_millis(250)));
        assert_eq!(deadline_from(Some("0")), Some(Duration::from_millis(1)));
    }

    /// The worker-side decode path must reproduce the in-process closures
    /// byte for byte: run each engine codec directly against the sharded
    /// runner's per-shard outcome.
    #[test]
    fn engine_codecs_match_the_in_process_closures() {
        let w = generate(&tiny_static());
        let views = w.table.shards(3);
        let serial = run_stss_sharded(&w, StssConfig::default(), ShardSpec::Fixed(3), 1);
        let mut remote: Vec<u32> = Vec::new();
        for view in &views {
            let task = encode_engine_task(TASK_STSS, view, &w.dags, None);
            let ctx = ShardCtx {
                shard: 0,
                attempt: 0,
                kernel: Kernel::Scalar,
            };
            let (records, m) = dispatch(&task, ctx).expect("stss task runs");
            assert!(m.dominance_checks > 0 || records.is_empty());
            remote.extend(records);
        }
        // The runner merges local skylines; the raw locals are a superset
        // of the final skyline and every final record appears in them.
        for r in serial.records.as_deref().unwrap_or(&[]) {
            assert!(remote.contains(r), "merged record {r} missing from locals");
        }
    }

    /// Dynamic codecs ship the query seed; the worker's permuted query
    /// must agree with the in-process runner's.
    #[test]
    fn dynamic_codecs_rebuild_the_query_from_its_seed() {
        let mut p = ExperimentParams::paper_dynamic_default(Distribution::Independent, 7);
        p.n = 1200;
        p.dag_height = 4;
        let w = generate(&p);
        let serial = run_dtss_sharded(&w, 5, DtssConfig::default(), ShardSpec::Fixed(2), 1);
        let views = w.table.shards(2);
        let mut remote: Vec<u32> = Vec::new();
        for view in &views {
            let task = encode_engine_task(TASK_DTSS, view, &w.dags, Some(5));
            let ctx = ShardCtx {
                shard: 1,
                attempt: 0,
                kernel: Kernel::Lanes,
            };
            let (records, _) = dispatch(&task, ctx).expect("dtss task runs");
            remote.extend(records);
        }
        for r in serial.records.as_deref().unwrap_or(&[]) {
            assert!(remote.contains(r), "merged record {r} missing from locals");
        }
        assert_eq!(serial.skyline, serial.records.as_ref().unwrap().len());
    }

    #[test]
    fn malformed_engine_tasks_are_reported_not_panicked() {
        let ctx = ShardCtx {
            shard: 0,
            attempt: 0,
            kernel: Kernel::Scalar,
        };
        assert!(dispatch(&[TASK_STSS], ctx).is_err(), "truncated body");
        assert!(
            dispatch(&[TASK_DTSS, 1, 2, 3], ctx).is_err(),
            "torn dynamic body"
        );
        let w = generate(&tiny_static());
        let views = w.table.shards(2);
        let mut task = encode_engine_task(TASK_SDC_PLUS, &views[0], &w.dags, None);
        task.push(0xFF);
        assert!(
            dispatch(&task, ctx).unwrap_err().contains("trailing"),
            "trailing bytes are rejected"
        );
    }

    #[test]
    fn bench_knob_readers_do_not_panic_on_the_ambient_environment() {
        // Whatever CI exports, the readers resolve (the pure-mapping tests
        // above pin the interesting cases).
        let _ = bench_executor();
        let _ = bench_deadline();
    }
}

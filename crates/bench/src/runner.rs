//! Workload construction and algorithm runners shared by the harness binary
//! and the Criterion benches.

use crate::ipcbench::{
    bench_deadline, bench_executor, encode_engine_task, ExecutorChoice, TASK_DTSS,
    TASK_DYNAMIC_SDC, TASK_SDC_PLUS, TASK_STSS,
};
use datagen::ExperimentParams;
use poset::Dag;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sdc::{DynamicSdc, SdcConfig, SdcIndex, Variant};
use std::sync::Mutex;
use std::time::Instant;
use tss_core::parallel::merge_jobs_exec;
use tss_core::{
    Budget, CostModel, Dtss, DtssConfig, ExecPolicy, Kernel, Metrics, PoDomain, PoQuery,
    ProgressSample, ShardJob, ShardPlan, ShardSpec, ShardView, SkylineCursor, Stss, StssConfig,
    SubprocessExecutor, Table, ThreadShardExecutor, WorkerSpec,
};

/// A generated workload: the table plus its PO domains.
pub struct Workload {
    pub table: Table,
    pub dags: Vec<Dag>,
    pub params: ExperimentParams,
}

/// Generates the workload for one parameter setting, materialized directly
/// into the columnar store.
pub fn generate(params: &ExperimentParams) -> Workload {
    let (table, dags) = params.materialize();
    Workload {
        table,
        dags,
        params: *params,
    }
}

/// One algorithm's measured run.
#[derive(Debug, Clone)]
pub struct AlgoResult {
    pub name: &'static str,
    pub metrics: Metrics,
    pub skyline: usize,
    /// Skyline record ids in emission order, when the runner kept them
    /// (`None` for aggregated results) — what the bench grid's
    /// byte-identity assertions compare across worker counts and shard
    /// plans.
    pub records: Option<Vec<u32>>,
    /// The shard-count decision of a sharded run (`None` for the serial
    /// engines) — recorded into every JSON bench row.
    pub plan: Option<ShardPlan>,
}

impl AlgoResult {
    /// Simulated total seconds under the paper's cost model.
    pub fn total_secs(&self, model: CostModel) -> f64 {
        model.total_time(&self.metrics).as_secs_f64()
    }

    /// CPU share of the simulated total.
    pub fn cpu_share(&self, model: CostModel) -> f64 {
        model.cpu_fraction(&self.metrics)
    }
}

/// Builds the sTSS index (untimed — both systems index offline in the
/// static experiments) and measures one run.
pub fn run_stss(w: &Workload, cfg: StssConfig) -> AlgoResult {
    let stss = Stss::build(w.table.clone(), w.dags.clone(), cfg).expect("valid workload");
    let run = stss.run();
    AlgoResult {
        name: "TSS",
        metrics: run.metrics,
        skyline: run.skyline.len(),
        records: Some(run.skyline_records()),
        plan: None,
    }
}

/// Builds the SDC+ strata (untimed) and measures one run.
pub fn run_sdc_plus(w: &Workload) -> AlgoResult {
    let idx = SdcIndex::build(
        w.table.clone(),
        w.dags.clone(),
        Variant::SdcPlus,
        SdcConfig::default(),
    )
    .expect("valid workload");
    let run = idx.run();
    AlgoResult {
        name: "SDC+",
        metrics: run.metrics,
        skyline: run.skyline.len(),
        records: Some(run.skyline.clone()),
        plan: None,
    }
}

/// Default shard budget of the sharded parallel runners: the fixed count
/// when `BENCH_SHARDS` is pinned, the planner's cap when it is not.
/// Deliberately decoupled from the worker count: for a given plan every
/// `--threads N` run partitions the data identically and does identical
/// work, so skyline record sets and dominance-check counts are
/// byte-for-byte comparable across `N` — only the wall clock moves.
pub const BENCH_SHARDS: usize = 8;

/// The shard spec the bench grid runs under, from the `BENCH_SHARDS`
/// environment variable: set → that fixed shard count; unset → the
/// cost-model planner ([`tss_core::ShardPlan`]) capped at [`BENCH_SHARDS`]
/// and costed under this machine's observed parallelism. The planner is
/// deterministic given `(store, max, workers)`, so grid rows are
/// reproducible per machine class; the worker input is recorded in every
/// row (`plan_workers`).
pub fn bench_shard_spec() -> ShardSpec {
    shard_spec_from(
        std::env::var("BENCH_SHARDS").ok().as_deref(),
        crate::jsonbench::available_parallelism(),
    )
}

/// The pure mapping behind [`bench_shard_spec`]: `None` (variable unset)
/// → adaptive under `workers`, `Some(count)` → fixed.
fn shard_spec_from(var: Option<&str>, workers: usize) -> ShardSpec {
    match var {
        Some(v) => {
            let n = v
                .trim()
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("BENCH_SHARDS must be a shard count, got {v:?}"));
            assert!(n >= 1, "BENCH_SHARDS must be >= 1, got {n}");
            ShardSpec::Fixed(n)
        }
        None => ShardSpec::Adaptive {
            max: BENCH_SHARDS,
            workers,
        },
    }
}

/// Measured cost of one pair check under the session's active dominance
/// kernel, in **picoseconds** — the calibration input that turns the
/// planner's pair-check estimates into time estimates when reading bench
/// rows. Measured once per process from a short warmup (a synthetic
/// 4-dim block scanned end to end, ≥ 2²⁰ pairs); the planner itself never
/// consumes this — its decisions stay clock-free — so the value is
/// reporting metadata, dropped by the CI row diffs.
pub fn pair_check_picos() -> u64 {
    use skyline::PointBlock;
    use std::sync::OnceLock;
    static CAL: OnceLock<u64> = OnceLock::new();
    *CAL.get_or_init(|| {
        const DIMS: usize = 4;
        const ROWS: usize = 4096;
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut block = PointBlock::new(DIMS);
        let mut row = [0u32; DIMS];
        for _ in 0..ROWS {
            for c in &mut row {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = (state >> 33) as u32 % 1000 + 1;
            }
            block.push(&row);
        }
        // The all-zero candidate is dominated by nothing, so every call
        // scans all ROWS pairs with no early exit.
        let cand = [0u32; DIMS];
        let t0 = Instant::now();
        let mut pairs = 0u64;
        let mut hits = 0u64;
        while pairs < 1 << 20 {
            let (hit, examined) = block.dominated(&cand);
            hits += u64::from(hit);
            pairs += examined;
        }
        let elapsed = std::hint::black_box((t0.elapsed(), hits)).0;
        ((elapsed.as_nanos() as u64).saturating_mul(1000) / pairs.max(1)).max(1)
    })
}

/// The bench grid's pair-check [`Budget`], from the `TSS_BUDGET`
/// environment variable (an allowance in `dominance_checks` units; unset
/// → unlimited). Read per call, like `BENCH_SHARDS`, so tests can probe
/// the mapping without mutating the process environment.
pub fn bench_budget() -> Budget {
    budget_from(std::env::var("TSS_BUDGET").ok().as_deref())
}

/// The pure mapping behind [`bench_budget`].
fn budget_from(var: Option<&str>) -> Budget {
    match var {
        Some(v) => Budget::pair_checks(
            v.trim()
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("TSS_BUDGET must be a pair-check allowance, got {v:?}")),
        ),
        None => Budget::UNLIMITED,
    }
}

/// Shared body of the sharded runners: resolves the shard plan and builds
/// one engine per shard *untimed* (both systems index offline, and the
/// planner's prefix sample is part of planning, not the query), then
/// executes the shards on up to `threads` scoped workers behind the
/// fault-tolerant [`ThreadShardExecutor`], folds the local skylines with
/// the sorted parallel merge under the [`bench_budget`] allowance, and
/// reports the *wall clock* of the timed phase as `metrics.cpu`. All
/// counts are the exact sum of the per-shard metrics plus the merge
/// phase.
///
/// Each prebuilt engine serves attempt 0 of its shard; recovery attempts
/// (retries after an injected or genuine panic, and the scalar-oracle
/// fallback of last resort) rebuild the shard's engine inside the timed
/// phase at [`ShardCtx::kernel`](tss_core::ShardCtx::kernel) — recovery
/// work is genuinely part of the run. Kernel equivalence (bit-identical
/// results and counters across kernels) keeps the recovered rows
/// byte-comparable with fault-free ones.
///
/// Every job also carries its wire payload (`wire`, one of the
/// [`crate::ipcbench`] engine codecs): under `TSS_EXECUTOR=subprocess`
/// the shards run in a supervised pool of re-exec'd worker processes
/// ([`SubprocessExecutor`]) instead of scoped threads, with byte-identical
/// records and non-wall counters — worker processes rebuild the same
/// engine from the shipped window and run the same deterministic code.
#[allow(clippy::too_many_arguments)]
fn run_sharded<E: Send>(
    name: &'static str,
    table: &Table,
    domains: &[PoDomain],
    plan: ShardPlan,
    threads: usize,
    build: impl Fn(&ShardView<'_>, Kernel) -> E + Sync,
    run: impl Fn(&E) -> (Vec<u32>, Metrics) + Sync,
    wire: impl Fn(&ShardView<'_>) -> Vec<u8> + Send + Sync,
) -> AlgoResult {
    let views = table.shards(plan.shards);
    let base_kernel = table.kernel();
    let engines: Vec<Mutex<Option<E>>> = views
        .iter()
        .map(|v| Mutex::new(Some(build(v, base_kernel))))
        .collect();
    let t0 = Instant::now();
    let (build, run, engines, wire) = (&build, &run, &engines, &wire);
    let jobs: Vec<ShardJob<'_>> = views
        .iter()
        .map(|&view| {
            ShardJob::new(view.range(), move |ctx| {
                // The prebuilt engine is taken (not borrowed): a panicking
                // attempt drops it mid-unwind, so retries never observe an
                // engine whose interior IO counters were left mid-run.
                let prebuilt = if ctx.kernel == base_kernel {
                    engines[ctx.shard]
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .take()
                } else {
                    None
                };
                let engine = prebuilt.unwrap_or_else(|| build(&view, ctx.kernel));
                let (local, m) = run(&engine);
                let global: Vec<u32> = local.into_iter().map(|r| r + view.start()).collect();
                (global, m)
            })
            .with_wire(move || wire(&view))
        })
        .collect();
    let parallel = match bench_executor() {
        ExecutorChoice::InProc => {
            let executor = ThreadShardExecutor::new(threads);
            merge_jobs_exec(table, domains, &executor, threads, bench_budget(), jobs)
        }
        ExecutorChoice::Subprocess => {
            // Re-exec this binary behind the harness's hidden `tss-worker`
            // subcommand. If the executable path cannot be resolved the
            // empty program fails to spawn and the supervisor degrades the
            // whole batch to the in-process ladder — same records, same
            // counters, `ipc_bytes: 0`.
            let spec = WorkerSpec::current_exe(["tss-worker"])
                .unwrap_or_else(|_| WorkerSpec::new(std::path::PathBuf::new(), ["tss-worker"]));
            let mut policy = ExecPolicy::default();
            if let Some(deadline) = bench_deadline() {
                policy = policy.with_deadline(deadline);
            }
            let executor = SubprocessExecutor::with_policy(spec, threads, policy);
            merge_jobs_exec(table, domains, &executor, threads, bench_budget(), jobs)
        }
    }
    .unwrap_or_else(|e| {
        // lint:allow(panic-path): a shard that fails its retries AND the scalar-oracle fallback has no recovery left — the bench run is unreportable and must abort loudly
        panic!("{name}: unrecoverable shard failure: {e}")
    });
    let wall = t0.elapsed();
    let mut metrics = parallel.metrics();
    metrics.cpu = wall;
    AlgoResult {
        name,
        metrics,
        skyline: parallel.records.len(),
        records: Some(parallel.records),
        plan: Some(plan),
    }
}

/// Sharded parallel sTSS: one index per shard (built untimed), run on up
/// to `threads` workers, local skylines merged with the sorted parallel
/// merge. `spec` is a fixed shard count or [`ShardSpec::Adaptive`].
pub fn run_stss_sharded(
    w: &Workload,
    cfg: StssConfig,
    spec: impl Into<ShardSpec>,
    threads: usize,
) -> AlgoResult {
    let domains: Vec<PoDomain> = w.dags.iter().cloned().map(PoDomain::new).collect();
    let plan = spec.into().resolve(&w.table, &domains);
    run_sharded(
        "TSS",
        &w.table,
        &domains,
        plan,
        threads,
        |v, k| {
            Stss::build(v.to_store().with_kernel(k), w.dags.clone(), cfg).expect("valid workload")
        },
        |e| {
            let r = e.run();
            (r.skyline_records(), r.metrics)
        },
        |v| encode_engine_task(TASK_STSS, v, &w.dags, None),
    )
}

/// Sharded parallel SDC+ (same contract as [`run_stss_sharded`]).
pub fn run_sdc_plus_sharded(
    w: &Workload,
    spec: impl Into<ShardSpec>,
    threads: usize,
) -> AlgoResult {
    let domains: Vec<PoDomain> = w.dags.iter().cloned().map(PoDomain::new).collect();
    let plan = spec.into().resolve(&w.table, &domains);
    run_sharded(
        "SDC+",
        &w.table,
        &domains,
        plan,
        threads,
        |v, k| {
            SdcIndex::build(
                v.to_store().with_kernel(k),
                w.dags.clone(),
                Variant::SdcPlus,
                SdcConfig::default(),
            )
            .expect("valid workload")
        },
        |e| {
            let r = e.run();
            (r.skyline.clone(), r.metrics)
        },
        |v| encode_engine_task(TASK_SDC_PLUS, v, &w.dags, None),
    )
}

/// Sharded parallel dTSS: group structures built per shard (untimed,
/// order-independent), then one dynamic query evaluated per shard and
/// merged under the *query's* partial orders — which are also what the
/// adaptive planner samples under, since they define merge-time dominance.
pub fn run_dtss_sharded(
    w: &Workload,
    query_seed: u64,
    cfg: DtssConfig,
    spec: impl Into<ShardSpec>,
    threads: usize,
) -> AlgoResult {
    let sizes: Vec<u32> = w.dags.iter().map(|d| d.len() as u32).collect();
    let query = PoQuery::new(
        w.dags
            .iter()
            .map(|d| permuted_order(d, query_seed))
            .collect(),
    );
    let domains: Vec<PoDomain> = query.dags().iter().cloned().map(PoDomain::new).collect();
    let plan = spec.into().resolve(&w.table, &domains);
    run_sharded(
        "TSS",
        &w.table,
        &domains,
        plan,
        threads,
        |v, k| {
            Dtss::build(v.to_store().with_kernel(k), sizes.clone(), cfg).expect("valid workload")
        },
        |e| {
            let r = e.query(&query).expect("valid query");
            (r.skyline_records(), r.metrics)
        },
        |v| encode_engine_task(TASK_DTSS, v, &w.dags, Some(query_seed)),
    )
}

/// Sharded rebuild-SDC+ baseline: each shard rebuilds its strata for the
/// query (the rebuild IO stays charged per shard), then the locals merge.
pub fn run_dynamic_sdc_sharded(
    w: &Workload,
    query_seed: u64,
    spec: impl Into<ShardSpec>,
    threads: usize,
) -> AlgoResult {
    let query: Vec<Dag> = w
        .dags
        .iter()
        .map(|d| permuted_order(d, query_seed))
        .collect();
    let domains: Vec<PoDomain> = query.iter().cloned().map(PoDomain::new).collect();
    let plan = spec.into().resolve(&w.table, &domains);
    run_sharded(
        "SDC+",
        &w.table,
        &domains,
        plan,
        threads,
        |v, k| DynamicSdc::new(v.to_store().with_kernel(k), SdcConfig::default()),
        |e| {
            let r = e.query(&query).expect("valid query");
            (r.skyline.clone(), r.metrics)
        },
        |v| encode_engine_task(TASK_DYNAMIC_SDC, v, &w.dags, Some(query_seed)),
    )
}

/// Progressiveness timelines for Fig. 11: `(samples, final metrics)`.
pub fn progressive_stss(w: &Workload) -> (Vec<ProgressSample>, Metrics) {
    let stss = Stss::build(w.table.clone(), w.dags.clone(), StssConfig::default())
        .expect("valid workload");
    let (run, log) = stss.run_progressive();
    (log.samples, run.metrics)
}

/// Progressiveness timeline of SDC+.
pub fn progressive_sdc_plus(w: &Workload) -> (Vec<ProgressSample>, Metrics) {
    let idx = SdcIndex::build(
        w.table.clone(),
        w.dags.clone(),
        Variant::SdcPlus,
        SdcConfig::default(),
    )
    .expect("valid workload");
    let mut samples = Vec::new();
    let run = idx.run_with(&mut |_, s| samples.push(s));
    (samples, run.metrics)
}

/// Latency profile of a top-k prefix pulled off a live [`SkylineCursor`]:
/// the snapshots at the first and the `k`-th confirmation, measured without
/// materializing the rest of the skyline (index build excluded, as in the
/// other runners).
#[derive(Debug, Clone)]
pub struct CursorTimings {
    /// Engine label.
    pub name: &'static str,
    /// Snapshot at the first confirmation.
    pub first: ProgressSample,
    /// Snapshot at the `min(k, |skyline|)`-th confirmation.
    pub at_k: ProgressSample,
    /// Requested prefix length.
    pub k: usize,
    /// Results actually pulled (the skyline may be smaller than `k`).
    pub pulled: usize,
}

impl CursorTimings {
    /// Simulated time to the first result under the paper's cost model.
    pub fn time_to_first(&self, model: CostModel) -> f64 {
        self.first.elapsed_total(model).as_secs_f64()
    }

    /// Simulated time to the `k`-th result under the paper's cost model.
    pub fn time_to_k(&self, model: CostModel) -> f64 {
        self.at_k.elapsed_total(model).as_secs_f64()
    }
}

/// Pulls a `k`-prefix off `cursor` and records the latency snapshots.
pub fn pull_k(mut cursor: impl SkylineCursor, name: &'static str, k: usize) -> CursorTimings {
    let mut t = CursorTimings {
        name,
        first: ProgressSample::default(),
        at_k: ProgressSample::default(),
        k,
        pulled: 0,
    };
    while t.pulled < k && cursor.next().is_some() {
        t.pulled += 1;
        if t.pulled == 1 {
            t.first = cursor.progress();
        }
        t.at_k = cursor.progress();
    }
    t
}

/// Builds the sTSS index (untimed) and pulls a `k`-prefix off its cursor.
pub fn stss_time_to_k(w: &Workload, cfg: StssConfig, k: usize) -> CursorTimings {
    let stss = Stss::build(w.table.clone(), w.dags.clone(), cfg).expect("valid workload");
    pull_k(stss.cursor(), "TSS", k)
}

/// Builds the SDC+ strata (untimed) and pulls a `k`-prefix off its cursor.
pub fn sdc_plus_time_to_k(w: &Workload, k: usize) -> CursorTimings {
    let idx = SdcIndex::build(
        w.table.clone(),
        w.dags.clone(),
        Variant::SdcPlus,
        SdcConfig::default(),
    )
    .expect("valid workload");
    pull_k(idx.cursor(), "SDC+", k)
}

/// Builds the dTSS groups (untimed) and pulls a `k`-prefix off one dynamic
/// query's cursor.
pub fn dtss_time_to_k(w: &Workload, query_seed: u64, cfg: DtssConfig, k: usize) -> CursorTimings {
    let sizes: Vec<u32> = w.dags.iter().map(|d| d.len() as u32).collect();
    let dtss = Dtss::build(w.table.clone(), sizes, cfg).expect("valid workload");
    let query = PoQuery::new(
        w.dags
            .iter()
            .map(|d| permuted_order(d, query_seed))
            .collect(),
    );
    let cursor = dtss.query_cursor(&query).expect("valid query");
    pull_k(cursor, "TSS", k)
}

/// A *dynamic* query order over the same domain: the data DAG with its
/// node identities permuted. This preserves the DAG's shape (height,
/// density — the sweep variables) while changing every preference, which is
/// exactly what a user-specified order does in §VI-C.
pub fn permuted_order(dag: &Dag, seed: u64) -> Dag {
    let n = dag.len() as u32;
    let mut perm: Vec<u32> = (0..n).collect();
    perm.shuffle(&mut StdRng::seed_from_u64(seed));
    let edges: Vec<(u32, u32)> = dag
        .edges()
        .map(|(u, v)| (perm[u.idx()], perm[v.idx()]))
        .collect();
    let labels = (0..n).map(|i| format!("q{i}")).collect();
    Dag::from_labeled(labels, &edges).expect("permutation preserves acyclicity")
}

/// Builds the dTSS groups (untimed, order-independent) and measures one
/// dynamic query.
pub fn run_dtss(w: &Workload, query_seed: u64, cfg: DtssConfig) -> AlgoResult {
    let sizes: Vec<u32> = w.dags.iter().map(|d| d.len() as u32).collect();
    let dtss = Dtss::build(w.table.clone(), sizes, cfg).expect("valid workload");
    let query = PoQuery::new(
        w.dags
            .iter()
            .map(|d| permuted_order(d, query_seed))
            .collect(),
    );
    let run = dtss.query(&query).expect("valid query");
    AlgoResult {
        name: "TSS",
        metrics: run.metrics,
        skyline: run.skyline.len(),
        records: Some(run.skyline_records()),
        plan: None,
    }
}

/// Measures one dynamic query of the SDC+ baseline, rebuild included.
pub fn run_dynamic_sdc(w: &Workload, query_seed: u64) -> AlgoResult {
    let dsdc = DynamicSdc::new(w.table.clone(), SdcConfig::default());
    let query: Vec<Dag> = w
        .dags
        .iter()
        .map(|d| permuted_order(d, query_seed))
        .collect();
    let run = dsdc.query(&query).expect("valid query");
    AlgoResult {
        name: "SDC+",
        metrics: run.metrics,
        skyline: run.skyline.len(),
        records: Some(run.skyline.clone()),
        plan: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::Distribution;
    use poset::Reachability;

    fn tiny_params() -> ExperimentParams {
        let mut p = ExperimentParams::paper_static_default(Distribution::Independent, 7);
        p.n = 2000;
        p.dag_height = 4;
        p
    }

    #[test]
    fn generate_produces_consistent_workload() {
        let w = generate(&tiny_params());
        assert_eq!(w.table.len(), 2000);
        assert_eq!(w.dags.len(), 2);
    }

    #[test]
    fn static_runners_agree() {
        let w = generate(&tiny_params());
        let a = run_stss(&w, StssConfig::default());
        let b = run_sdc_plus(&w);
        assert_eq!(a.skyline, b.skyline, "same skyline cardinality");
        assert!(a.metrics.io_reads > 0 && b.metrics.io_reads > 0);
    }

    #[test]
    fn dynamic_runners_agree() {
        let mut p = ExperimentParams::paper_dynamic_default(Distribution::Independent, 7);
        p.n = 2000;
        p.dag_height = 4;
        let w = generate(&p);
        let a = run_dtss(&w, 5, DtssConfig::default());
        let b = run_dynamic_sdc(&w, 5);
        assert_eq!(a.skyline, b.skyline);
        assert!(b.metrics.io_writes > 0, "baseline rebuild charged");
        assert_eq!(a.metrics.io_writes, 0, "dTSS never rebuilds");
    }

    #[test]
    fn permuted_order_preserves_shape() {
        let w = generate(&tiny_params());
        let q = permuted_order(&w.dags[0], 3);
        assert_eq!(q.len(), w.dags[0].len());
        assert_eq!(q.num_edges(), w.dags[0].num_edges());
        assert_eq!(q.height(), w.dags[0].height());
        // But the preferences differ (overwhelmingly likely).
        let r0 = Reachability::build(&w.dags[0]);
        let rq = Reachability::build(&q);
        let diff = w.dags[0]
            .values()
            .flat_map(|x| w.dags[0].values().map(move |y| (x, y)))
            .filter(|&(x, y)| r0.preferred(x, y) != rq.preferred(x, y))
            .count();
        assert!(diff > 0);
    }

    #[test]
    fn sharded_runners_agree_with_the_serial_engines() {
        let w = generate(&tiny_params());
        let serial = run_stss(&w, StssConfig::default());
        for threads in [1usize, 2, 4] {
            let sharded = run_stss_sharded(&w, StssConfig::default(), BENCH_SHARDS, threads);
            assert_eq!(sharded.skyline, serial.skyline, "threads={threads}");
        }
        let sdc = run_sdc_plus_sharded(&w, BENCH_SHARDS, 2);
        assert_eq!(sdc.skyline, serial.skyline);

        let mut p = ExperimentParams::paper_dynamic_default(Distribution::Independent, 7);
        p.n = 2000;
        p.dag_height = 4;
        let wd = generate(&p);
        let d_serial = run_dtss(&wd, 5, DtssConfig::default());
        let d_sharded = run_dtss_sharded(&wd, 5, DtssConfig::default(), BENCH_SHARDS, 2);
        assert_eq!(d_sharded.skyline, d_serial.skyline);
        let r_sharded = run_dynamic_sdc_sharded(&wd, 5, BENCH_SHARDS, 2);
        assert_eq!(r_sharded.skyline, d_serial.skyline);
        assert!(r_sharded.metrics.io_writes > 0, "rebuild charged per shard");
    }

    #[test]
    fn adaptive_plan_matches_fixed_byte_for_byte() {
        let w = generate(&tiny_params());
        let fixed = run_stss_sharded(&w, StssConfig::default(), BENCH_SHARDS, 2);
        let adaptive = run_stss_sharded(
            &w,
            StssConfig::default(),
            ShardSpec::Adaptive {
                max: BENCH_SHARDS,
                workers: 2,
            },
            2,
        );
        let (fp, ap) = (fixed.plan.unwrap(), adaptive.plan.unwrap());
        assert!(!fp.adaptive && ap.adaptive);
        assert_eq!(fp.shards, BENCH_SHARDS);
        assert!((1..=BENCH_SHARDS).contains(&ap.shards));
        assert!(ap.sampled > 0);
        assert_eq!(ap.workers, 2);
        assert!(
            ap.est_run_checks > 0,
            "the chosen count carries its cost estimates"
        );
        // The sorted merge emits in (score, id) order — identical vectors,
        // not merely identical sets, whatever the planner picked.
        assert_eq!(fixed.records, adaptive.records);
        assert_eq!(fixed.skyline, adaptive.skyline);
    }

    #[test]
    fn shard_spec_mapping_covers_set_and_unset() {
        // The pure mapping, probed directly — tests never mutate the
        // process-global environment (racy under the parallel harness).
        assert_eq!(
            shard_spec_from(None, 4),
            ShardSpec::Adaptive {
                max: BENCH_SHARDS,
                workers: 4,
            }
        );
        assert_eq!(shard_spec_from(Some("3"), 4), ShardSpec::Fixed(3));
        assert_eq!(shard_spec_from(Some(" 8 "), 1), ShardSpec::Fixed(8));
    }

    #[test]
    fn pair_check_calibration_is_cached_and_positive() {
        let a = pair_check_picos();
        assert!(a >= 1, "a pair check costs at least a picosecond");
        assert_eq!(a, pair_check_picos(), "one measurement per process");
    }

    #[test]
    fn cursor_prefix_costs_less_than_a_full_run() {
        let w = generate(&tiny_params());
        let full = run_stss(&w, StssConfig::default());
        assert!(full.skyline > 10, "need a non-trivial skyline");
        let prefix = stss_time_to_k(&w, StssConfig::default(), 10);
        assert_eq!(prefix.pulled, 10);
        assert!(
            prefix.at_k.io_reads < full.metrics.io_reads,
            "10-prefix reads {} vs full {}",
            prefix.at_k.io_reads,
            full.metrics.io_reads
        );
        assert!(prefix.first.io_reads <= prefix.at_k.io_reads);
        // The dynamic path streams too.
        let mut p = ExperimentParams::paper_dynamic_default(Distribution::Independent, 7);
        p.n = 2000;
        p.dag_height = 4;
        let wd = generate(&p);
        let d_full = run_dtss(&wd, 5, DtssConfig::default());
        let d_prefix = dtss_time_to_k(&wd, 5, DtssConfig::default(), 5);
        assert!(d_prefix.pulled > 0);
        assert!(d_prefix.at_k.io_reads <= d_full.metrics.io_reads);
    }

    #[test]
    fn progressive_runners_sample_every_result() {
        let w = generate(&tiny_params());
        let (ts, tm) = progressive_stss(&w);
        let (ss, sm) = progressive_sdc_plus(&w);
        assert_eq!(ts.len() as u64, tm.results);
        assert_eq!(ss.len() as u64, sm.results);
        assert_eq!(tm.results, sm.results);
    }
}

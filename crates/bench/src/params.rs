//! Experiment scales: the paper's Table III grid, plus laptop-sized
//! defaults so `harness all` finishes in minutes.

use datagen::{Distribution, ExperimentParams};

/// True iff `TSS_FULL_SCALE=1` — restores the paper's exact Table III
/// sweeps (hours of runtime, multi-GB resident data at N = 10M).
pub fn full_scale() -> bool {
    std::env::var("TSS_FULL_SCALE").is_ok_and(|v| v == "1")
}

/// Cardinality sweep (Fig. 7 / Fig. 12).
pub fn cardinalities() -> Vec<usize> {
    if full_scale() {
        ExperimentParams::CARDINALITIES.to_vec()
    } else {
        vec![20_000, 50_000, 100_000, 200_000]
    }
}

/// Default cardinality for non-cardinality sweeps (paper: 1M).
pub fn default_n() -> usize {
    if full_scale() {
        1_000_000
    } else {
        50_000
    }
}

/// Cardinality for the progressiveness study (Fig. 11).
pub fn progressive_n() -> usize {
    if full_scale() {
        1_000_000
    } else {
        100_000
    }
}

/// Dimensionality grid (Fig. 8 / Fig. 13): `(|TO|, |PO|)`.
pub fn dimensionalities() -> Vec<(usize, usize)> {
    ExperimentParams::DIMENSIONALITIES.to_vec()
}

/// DAG height sweep (Fig. 9 / Fig. 14(a)).
pub fn heights() -> Vec<u32> {
    ExperimentParams::HEIGHTS.to_vec()
}

/// DAG density sweep (Fig. 10 / Fig. 14(b)).
pub fn densities() -> Vec<f64> {
    ExperimentParams::DENSITIES.to_vec()
}

/// The paper's static defaults at the chosen scale.
pub fn static_params(dist: Distribution, seed: u64) -> ExperimentParams {
    let mut p = ExperimentParams::paper_static_default(dist, seed);
    p.n = default_n();
    p
}

/// The paper's dynamic defaults at the chosen scale.
pub fn dynamic_params(dist: Distribution, seed: u64) -> ExperimentParams {
    let mut p = ExperimentParams::paper_dynamic_default(dist, seed);
    p.n = default_n();
    p
}

/// Both distributions of the paper's evaluation.
pub fn distributions() -> [Distribution; 2] {
    [Distribution::Independent, Distribution::AntiCorrelated]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_defaults_are_laptop_sized() {
        if !full_scale() {
            assert!(default_n() <= 100_000);
            assert!(cardinalities().iter().all(|&n| n <= 200_000));
        }
    }

    #[test]
    fn grids_match_table_iii() {
        assert_eq!(dimensionalities().len(), 6);
        assert_eq!(heights(), vec![2, 4, 6, 8, 10]);
        assert_eq!(densities(), vec![0.2, 0.4, 0.6, 0.8, 1.0]);
    }

    #[test]
    fn params_carry_distribution() {
        let p = static_params(Distribution::AntiCorrelated, 3);
        assert_eq!(p.dist, Distribution::AntiCorrelated);
        assert_eq!(p.to_dims, 2);
        assert_eq!(p.po_dims, 2);
        let d = dynamic_params(Distribution::Independent, 3);
        assert_eq!(d.to_dims, 3);
        assert_eq!(d.po_dims, 1);
        assert_eq!(d.dag_height, 6);
    }
}

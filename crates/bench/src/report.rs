//! Paper-style text reporting: one table per figure, with the series the
//! paper plots (total simulated time per algorithm, CPU shares, ratios).

use crate::runner::AlgoResult;
use tss_core::CostModel;

/// A rendered table: header + rows of cells.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width");
        self.rows.push(cells);
    }

    /// Renders with right-aligned, width-fitted columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// The standard comparison row for a (baseline, TSS) pair at one sweep
/// point: simulated totals, CPU shares, the speedup ratio and the skyline
/// size.
pub fn comparison_cells(
    sweep_value: String,
    baseline: &AlgoResult,
    tss: &AlgoResult,
    model: CostModel,
) -> Vec<String> {
    let bt = baseline.total_secs(model);
    let tt = tss.total_secs(model);
    vec![
        sweep_value,
        format!("{bt:.3}"),
        format!("{:.0}%", baseline.cpu_share(model) * 100.0),
        format!("{tt:.3}"),
        format!("{:.0}%", tss.cpu_share(model) * 100.0),
        format!("{:.2}x", bt / tt.max(1e-9)),
        format!("{}", tss.skyline),
    ]
}

/// Header matching [`comparison_cells`].
pub fn comparison_header(sweep_name: &str) -> Vec<&str> {
    // Lifetimes: sweep_name is only used by callers with 'static literals.
    let _ = sweep_name;
    vec![
        "sweep",
        "SDC+ (s)",
        "SDC+ cpu",
        "TSS (s)",
        "TSS cpu",
        "speedup",
        "|skyline|",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_core::Metrics;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(&["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bbbb"));
        assert!(lines[2].ends_with("   2"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn comparison_row_computes_ratio() {
        let model = CostModel::default();
        let mk = |io: u64| AlgoResult {
            name: "x",
            metrics: Metrics {
                io_reads: io,
                ..Default::default()
            },
            skyline: 5,
            records: None,
            plan: None,
        };
        let cells = comparison_cells("N".into(), &mk(200), &mk(100), model);
        assert_eq!(cells[0], "N");
        assert_eq!(cells[5], "2.00x");
        assert_eq!(cells[6], "5");
    }
}

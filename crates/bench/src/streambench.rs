//! The streaming-maintenance bench axis behind `harness bench --json
//! --stream`.
//!
//! Each grid point replays a generated workload as an arrival stream
//! through a [`StreamingSkyline`] with a count-based sliding window while
//! a snapshot cursor is drained periodically (the serving-path load), and
//! reports:
//!
//! * sustained **updates/sec** and the wall clock of the whole stream;
//! * **time-to-repair percentiles** (p50/p95/p99 of the wall time of the
//!   inserts whose window eviction hit a skyline member and triggered a
//!   delta repair);
//! * the **maintained-vs-recompute** column pair: the maintainer's
//!   dominance-check spend at a deterministic subsample of repair steps
//!   next to the *exact* cost of a from-scratch sTSS recompute of the
//!   surviving window at those same steps — the delta-repair saving,
//!   machine-checkable per row.
//!
//! Everything except the wall-clock columns (`wall_ns`,
//! `updates_per_sec`, `repair_ns_*`, `pair_check_picos`) is a pure
//! function of the op sequence: CI re-runs the grid at two worker counts
//! and asserts the remaining columns byte-identical, and the grid builder
//! itself asserts it while measuring.

use crate::jsonbench::available_parallelism;
use crate::runner::{generate, pair_check_picos, Workload};
use datagen::{Distribution, ExperimentParams};
use std::time::Instant;
use tss_core::{
    Budget, ExecPolicy, Kernel, Metrics, PoDomain, SkylineCursor, StreamingConfig,
    StreamingSkyline, Stss, StssConfig, Table, WindowPolicy,
};

/// One measured streaming grid point.
#[derive(Debug, Clone)]
pub struct StreamBenchRow {
    /// Engine label (always `"streamTSS"`; the recompute baseline is a
    /// column, not a row — it is never asked to serve the stream).
    pub algo: &'static str,
    /// Grid point key, e.g. `"stream:anti:n=100000:w=256"`.
    pub workload: String,
    /// Worker threads the repair jobs ran on (wall-clock knob only).
    pub threads: usize,
    /// Deterministic chunk count of each repair's candidate partition.
    pub repair_shards: usize,
    /// Sliding-window capacity (`window_n`).
    pub window: usize,
    /// Dominance-kernel variant of the run.
    pub kernel: &'static str,
    /// Per-pair-check calibration of the measuring CPU (picoseconds).
    pub pair_check_picos: u64,
    /// `std::thread::available_parallelism()` of the measuring machine —
    /// rows from a 1-CPU container prove determinism, not speedup.
    pub available_parallelism: usize,
    /// Wall nanoseconds of the whole maintained stream (inserts, window
    /// evictions, repairs, and the periodic cursor drains).
    pub wall_ns: u128,
    /// Sustained arrivals per second over the whole stream, cursor-serving
    /// load included.
    pub updates_per_sec: u64,
    /// Points served off snapshot cursors during the run (deterministic:
    /// one drain every [`CURSOR_EVERY`] arrivals).
    pub cursor_points_served: u64,
    /// Wall-time percentiles over the repair-triggering inserts (ns).
    pub repair_ns_p50: u64,
    pub repair_ns_p95: u64,
    pub repair_ns_p99: u64,
    /// Maintainer dominance checks spent at the sampled repair steps.
    pub maintained_checks_sampled: u64,
    /// Exact dominance checks a from-scratch sTSS recompute of the
    /// surviving window paid at those same steps.
    pub recompute_checks_sampled: u64,
    /// Number of repair steps in the subsample.
    pub sampled_repairs: u64,
    /// Full maintenance metrics of the run (`cpu` mirrors `wall_ns`).
    pub metrics: Metrics,
    /// Final maintained skyline cardinality.
    pub skyline: usize,
}

/// Drain a snapshot cursor every this many arrivals — the serving load
/// the updates/sec figure is measured under.
pub const CURSOR_EVERY: usize = 128;

/// Measure the exact recompute cost at every this many repairs.
pub const SAMPLE_EVERY: u64 = 32;

/// The outcome of one streamed workload: the row plus the final
/// maintained record ids (what the cross-thread diffs compare).
pub struct StreamRun {
    pub row: StreamBenchRow,
    pub records: Vec<u32>,
}

/// Nearest-rank percentile of an unsorted sample (0 for an empty one).
fn percentile(sample: &mut [u64], pct: u64) -> u64 {
    if sample.is_empty() {
        return 0;
    }
    sample.sort_unstable();
    let rank = (sample.len() as u64 * pct).div_ceil(100).max(1) as usize;
    sample[rank - 1]
}

/// Replays `w` as an arrival stream through a maintained skyline and
/// measures one grid point. Everything in the returned row except the
/// wall-clock columns is a pure function of `(workload, window)` — the
/// caller asserts that across worker counts.
pub fn run_streaming(w: &Workload, window: usize, threads: usize, shards: usize) -> StreamRun {
    let domains: Vec<PoDomain> = w.dags.iter().cloned().map(PoDomain::new).collect();
    let mut s = StreamingSkyline::new(
        w.params.to_dims,
        domains,
        StreamingConfig {
            window: WindowPolicy::Count(window),
            threads,
            repair_shards: shards,
            budget: Budget::UNLIMITED,
            exec: ExecPolicy::default(),
        },
    );
    let mut repair_ns: Vec<u64> = Vec::new();
    let mut cursor_points_served = 0u64;
    let mut maintained_sampled = 0u64;
    let mut recompute_sampled = 0u64;
    let mut sampled_repairs = 0u64;
    let t0 = Instant::now();
    for i in 0..w.table.len() {
        let before = s.metrics();
        let t_op = Instant::now();
        s.insert(w.table.to(i as u32), w.table.po(i as u32));
        let op_ns = t_op.elapsed().as_nanos() as u64;
        let after = s.metrics();
        if after.stream_repairs > before.stream_repairs {
            repair_ns.push(op_ns);
            if after.stream_repairs.is_multiple_of(SAMPLE_EVERY) {
                sampled_repairs += 1;
                maintained_sampled += after.dominance_checks - before.dominance_checks;
                recompute_sampled += window_recompute_checks(&s, w);
            }
        }
        if (i + 1) % CURSOR_EVERY == 0 {
            let mut cursor = s.cursor();
            while cursor.next().is_some() {
                cursor_points_served += 1;
            }
        }
    }
    let wall = t0.elapsed();
    let mut metrics = s.metrics();
    metrics.cpu = wall;
    let secs = wall.as_secs_f64();
    let row = StreamBenchRow {
        algo: "streamTSS",
        workload: format!(
            "stream:{}:n={}:w={window}",
            w.params.dist.short(),
            w.table.len()
        ),
        threads,
        repair_shards: shards,
        window,
        kernel: Kernel::active().name(),
        pair_check_picos: pair_check_picos(),
        available_parallelism: available_parallelism(),
        wall_ns: wall.as_nanos(),
        updates_per_sec: if secs > 0.0 {
            (w.table.len() as f64 / secs) as u64
        } else {
            0
        },
        cursor_points_served,
        repair_ns_p50: percentile(&mut repair_ns, 50),
        repair_ns_p95: percentile(&mut repair_ns, 95),
        repair_ns_p99: percentile(&mut repair_ns, 99),
        maintained_checks_sampled: maintained_sampled,
        recompute_checks_sampled: recompute_sampled,
        sampled_repairs,
        metrics,
        skyline: s.skyline_records().len(),
    };
    StreamRun {
        row,
        records: s.skyline_records().to_vec(),
    }
}

/// Exact cost of a from-scratch sTSS recompute of the surviving window —
/// the per-step price a recompute-on-expiry strategy would pay where the
/// maintainer ran one delta repair instead.
fn window_recompute_checks(s: &StreamingSkyline, w: &Workload) -> u64 {
    let mut window = Table::new(s.store().to_dims(), s.store().po_dims());
    for id in s.store().live_ids() {
        window.push(s.store().to(id), s.store().po(id));
    }
    let run = Stss::build(window, w.dags.clone(), StssConfig::default())
        // lint:allow(panic-path): measurement harness must crash on a window that no longer builds
        .expect("window recompute builds")
        .run();
    run.metrics.dominance_checks
}

/// Sliding-window capacity of the stream grid.
pub const STREAM_WINDOW: usize = 256;

/// Repair-chunk count of the stream grid (deterministic work plan,
/// independent of the worker count).
pub const STREAM_SHARDS: usize = 4;

/// The streaming grid: the fig07-style anti-correlated stress stream and
/// an independent control, at the paper's dynamic-study shape
/// (`|TO| = 3, |PO| = 1, h = 6, d = 0.8`), one row per entry of
/// `threads_axis` (default `[1]`). While measuring, asserts the final
/// maintained records and every non-wall column identical across worker
/// counts — the determinism contract of the repair executor, enforced at
/// measurement time. `smoke` shrinks the stream so CI can do the same in
/// seconds.
pub fn stream_grid(smoke: bool, threads_axis: &[usize]) -> Vec<StreamBenchRow> {
    const SEED: u64 = 42;
    let n = if smoke { 4_000 } else { 100_000 };
    let threads_axis = if threads_axis.is_empty() {
        &[1][..]
    } else {
        threads_axis
    };
    let mut rows = Vec::new();
    for dist in [Distribution::AntiCorrelated, Distribution::Independent] {
        let mut p = ExperimentParams::paper_dynamic_default(dist, SEED);
        p.n = n;
        if smoke {
            p.dag_height = 4;
        }
        let w = generate(&p);
        let mut first: Option<StreamRun> = None;
        for &t in threads_axis {
            assert!(t >= 1, "threads axis entries are worker counts (>= 1)");
            let run = run_streaming(&w, STREAM_WINDOW, t, STREAM_SHARDS);
            assert!(
                run.row.metrics.stream_repairs > 0,
                "{}: the stream must exercise the repair path",
                run.row.workload
            );
            if run.row.sampled_repairs > 0 {
                assert!(
                    run.row.maintained_checks_sampled < run.row.recompute_checks_sampled,
                    "{}: delta repair ({} checks) must beat recompute-on-expiry ({} checks)",
                    run.row.workload,
                    run.row.maintained_checks_sampled,
                    run.row.recompute_checks_sampled
                );
            }
            match &first {
                None => {
                    first = Some(StreamRun {
                        records: run.records.clone(),
                        row: run.row.clone(),
                    })
                }
                Some(f) => {
                    let label = format!(
                        "{} (threads {} vs {})",
                        run.row.workload, f.row.threads, run.row.threads
                    );
                    assert_eq!(f.records, run.records, "{label}: final records differ");
                    let strip = |m: &Metrics| Metrics {
                        cpu: std::time::Duration::ZERO,
                        ..*m
                    };
                    assert_eq!(
                        strip(&f.row.metrics),
                        strip(&run.row.metrics),
                        "{label}: counters must be worker-count-invariant"
                    );
                    assert_eq!(
                        (
                            f.row.cursor_points_served,
                            f.row.maintained_checks_sampled,
                            f.row.recompute_checks_sampled,
                            f.row.sampled_repairs,
                            f.row.skyline,
                        ),
                        (
                            run.row.cursor_points_served,
                            run.row.maintained_checks_sampled,
                            run.row.recompute_checks_sampled,
                            run.row.sampled_repairs,
                            run.row.skyline,
                        ),
                        "{label}: derived columns must be worker-count-invariant"
                    );
                }
            }
            rows.push(run.row);
        }
    }
    rows
}

/// Renders the stream rows as a JSON array (hand-rolled like
/// [`crate::jsonbench::to_json`]: the workspace builds offline, no serde).
pub fn stream_to_json(rows: &[StreamBenchRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let m = &r.metrics;
        out.push_str(&format!(
            "  {{\"algo\": \"{}\", \"workload\": \"{}\", \"threads\": {}, \
             \"repair_shards\": {}, \"window\": {}, \"kernel\": \"{}\", \
             \"pair_check_picos\": {}, \"available_parallelism\": {}, \
             \"wall_ns\": {}, \"updates_per_sec\": {}, \"cursor_points_served\": {}, \
             \"repair_ns_p50\": {}, \"repair_ns_p95\": {}, \"repair_ns_p99\": {}, \
             \"maintained_checks_sampled\": {}, \"recompute_checks_sampled\": {}, \
             \"sampled_repairs\": {}, \"metrics\": \
             {{\"dominance_checks\": {}, \"dominance_batch_calls\": {}, \
             \"kernel_chunks\": {}, \"io_reads\": {}, \"io_writes\": {}, \
             \"heap_pops\": {}, \"label_cache_hits\": {}, \"label_cache_misses\": {}, \
             \"merge_pair_checks\": {}, \"merge_strata\": {}, \"shard_retries\": {}, \
             \"shard_fallbacks\": {}, \"faults_injected\": {}, \"stream_inserts\": {}, \
             \"stream_expirations\": {}, \"stream_repairs\": {}, \
             \"repair_candidates\": {}, \"worker_crashes\": {}, \
             \"worker_timeouts\": {}, \"frames_corrupted\": {}, \
             \"ipc_bytes\": {}, \"results\": {}, \"skyline\": {}}}}}{}\n",
            r.algo,
            r.workload,
            r.threads,
            r.repair_shards,
            r.window,
            r.kernel,
            r.pair_check_picos,
            r.available_parallelism,
            r.wall_ns,
            r.updates_per_sec,
            r.cursor_points_served,
            r.repair_ns_p50,
            r.repair_ns_p95,
            r.repair_ns_p99,
            r.maintained_checks_sampled,
            r.recompute_checks_sampled,
            r.sampled_repairs,
            m.dominance_checks,
            m.dominance_batch_calls,
            m.kernel_chunks,
            m.io_reads,
            m.io_writes,
            m.heap_pops,
            m.label_cache_hits,
            m.label_cache_misses,
            m.merge_pair_checks,
            m.merge_strata,
            m.shard_retries,
            m.shard_fallbacks,
            m.faults_injected,
            m.stream_inserts,
            m.stream_expirations,
            m.stream_repairs,
            m.repair_candidates,
            m.worker_crashes,
            m.worker_timeouts,
            m.frames_corrupted,
            m.ipc_bytes,
            m.results,
            r.skyline,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut s = vec![10, 20, 30, 40];
        assert_eq!(percentile(&mut s, 50), 20);
        assert_eq!(percentile(&mut s, 95), 40);
        assert_eq!(percentile(&mut Vec::new(), 99), 0);
        assert_eq!(percentile(&mut [7], 50), 7);
    }

    #[test]
    fn stream_json_shape_is_stable() {
        let rows = vec![StreamBenchRow {
            algo: "streamTSS",
            workload: "stream:anti:n=100:w=16".into(),
            threads: 2,
            repair_shards: 4,
            window: 16,
            kernel: "lanes",
            pair_check_picos: 350,
            available_parallelism: 1,
            wall_ns: 123,
            updates_per_sec: 456,
            cursor_points_served: 78,
            repair_ns_p50: 1,
            repair_ns_p95: 2,
            repair_ns_p99: 3,
            maintained_checks_sampled: 9,
            recompute_checks_sampled: 90,
            sampled_repairs: 4,
            metrics: Metrics {
                stream_inserts: 100,
                stream_expirations: 84,
                stream_repairs: 5,
                repair_candidates: 40,
                cpu: Duration::from_nanos(123),
                ..Default::default()
            },
            skyline: 6,
        }];
        let s = stream_to_json(&rows);
        assert!(s.starts_with("[\n"));
        assert!(s.contains("\"algo\": \"streamTSS\""));
        assert!(s.contains("\"window\": 16"));
        assert!(s.contains("\"updates_per_sec\": 456"));
        assert!(s.contains("\"repair_ns_p99\": 3"));
        assert!(s.contains("\"maintained_checks_sampled\": 9"));
        assert!(s.contains("\"recompute_checks_sampled\": 90"));
        assert!(s.contains("\"stream_inserts\": 100"));
        assert!(s.contains("\"repair_candidates\": 40"));
        assert!(s.trim_end().ends_with(']'));
    }

    #[test]
    fn smoke_stream_grid_holds_the_invariants() {
        // Two worker counts: `stream_grid` itself asserts byte-identical
        // records and counters between them while measuring, so reaching
        // the end *is* the invariant check; spot-check the row layout.
        let rows = stream_grid(true, &[1, 2]);
        assert_eq!(rows.len(), 4, "2 workloads x 2 worker counts");
        assert!(rows.iter().any(|r| r.workload.starts_with("stream:anti:")));
        assert!(rows.iter().any(|r| r.workload.starts_with("stream:indep:")));
        for r in &rows {
            assert!(r.metrics.stream_repairs > 0, "{}", r.workload);
            assert!(r.sampled_repairs > 0, "{}", r.workload);
            assert!(
                r.maintained_checks_sampled < r.recompute_checks_sampled,
                "{}: maintained {} vs recompute {}",
                r.workload,
                r.maintained_checks_sampled,
                r.recompute_checks_sampled
            );
            assert_eq!(r.window, STREAM_WINDOW);
            assert_eq!(r.metrics.stream_inserts, 4_000);
        }
    }
}

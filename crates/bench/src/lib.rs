//! Benchmark harness for the TSS reproduction: workload construction,
//! algorithm runners, and paper-style reporting for every figure of §VI.
//!
//! Two entry points:
//!
//! * the `harness` binary (`cargo run --release -p bench --bin harness -- all`)
//!   regenerates every figure as a text table, one subcommand per figure;
//! * the Criterion benches (`cargo bench`) time the same runners on scaled
//!   workloads, one bench target per figure.
//!
//! Scales: the paper sweeps cardinalities up to 10M tuples on 2009 disks.
//! The default sweeps here are laptop-sized (see [`params`]); set
//! `TSS_FULL_SCALE=1` to restore the paper's Table III values.

#![forbid(unsafe_code)]

pub mod ipcbench;
pub mod jsonbench;
pub mod params;
pub mod report;
pub mod runner;
pub mod streambench;

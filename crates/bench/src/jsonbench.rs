//! The machine-readable perf-trajectory grid behind `harness bench --json`.
//!
//! A fixed small grid — the Fig. 7 cardinality sweep crossed with a Fig. 8
//! dimensionality subset, plus the dynamic (Fig. 12) cardinality points —
//! at one seed, emitted as JSON rows `{algo, workload, wall_ns, metrics}`.
//! The committed `BENCH_PR3.json` at the repository root is the first point
//! of this trajectory; later PRs append comparable runs. `--smoke` shrinks
//! every cardinality so CI can assert the report stays well-formed in
//! seconds.

use crate::runner::{generate, run_dtss, run_dynamic_sdc, run_sdc_plus, run_stss, AlgoResult};
use datagen::{Distribution, ExperimentParams};
use tss_core::{DtssConfig, Metrics, StssConfig};

/// One measured grid point.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Engine label (`"sTSS"`, `"dTSS"`, `"SDC+"`, `"SDC+rebuild"`).
    pub algo: &'static str,
    /// Grid point key, e.g. `"fig07:n=100000"`.
    pub workload: String,
    /// Wall-clock nanoseconds of the measured run phase (index build
    /// excluded, as in the paper's query-time experiments).
    pub wall_ns: u128,
    /// Full execution metrics of the run.
    pub metrics: Metrics,
    /// Skyline cardinality (cross-run sanity anchor).
    pub skyline: usize,
}

impl BenchRow {
    fn of(algo: &'static str, workload: String, r: &AlgoResult) -> Self {
        BenchRow {
            algo,
            workload,
            wall_ns: r.metrics.cpu.as_nanos(),
            metrics: r.metrics,
            skyline: r.skyline,
        }
    }
}

/// The fixed grid: one seed (42), Fig. 7 cardinalities x Fig. 8
/// dimensionalities for the static engines, Fig. 12 cardinalities for the
/// dynamic ones. `smoke` shrinks every `n` to 2 000 tuples.
pub fn grid(smoke: bool) -> Vec<BenchRow> {
    const SEED: u64 = 42;
    let card: &[usize] = if smoke {
        &[2_000]
    } else {
        &[10_000, 50_000, 100_000]
    };
    let dims: &[(usize, usize)] = if smoke {
        &[(2, 1), (2, 2)]
    } else {
        &[(2, 1), (3, 1), (2, 2), (3, 2)]
    };
    let dims_n = if smoke { 2_000 } else { 20_000 };
    let mut rows = Vec::new();

    // Fig. 7 axis: static cardinality sweep at the paper's default dims.
    for &n in card {
        let mut p = ExperimentParams::paper_static_default(Distribution::Independent, SEED);
        p.n = n;
        if smoke {
            p.dag_height = 4;
        }
        let w = generate(&p);
        let workload = format!("fig07:n={n}");
        let tss = run_stss(&w, StssConfig::default());
        let sdc = run_sdc_plus(&w);
        assert_eq!(tss.skyline, sdc.skyline, "static engines must agree");
        rows.push(BenchRow::of("sTSS", workload.clone(), &tss));
        rows.push(BenchRow::of("SDC+", workload, &sdc));
    }

    // Fig. 8 axis: static dimensionality sweep at a fixed cardinality.
    for &(to_d, po_d) in dims {
        let mut p = ExperimentParams::paper_static_default(Distribution::Independent, SEED);
        p.n = dims_n;
        p.to_dims = to_d;
        p.po_dims = po_d;
        if smoke {
            p.dag_height = 4;
        }
        let w = generate(&p);
        let workload = format!("fig08:n={dims_n}:dims=({to_d},{po_d})");
        let tss = run_stss(&w, StssConfig::default());
        let sdc = run_sdc_plus(&w);
        assert_eq!(tss.skyline, sdc.skyline, "static engines must agree");
        rows.push(BenchRow::of("sTSS", workload.clone(), &tss));
        rows.push(BenchRow::of("SDC+", workload, &sdc));
    }

    // Fig. 12 axis: the dynamic counterpart of the cardinality sweep.
    for &n in card {
        let mut p = ExperimentParams::paper_dynamic_default(Distribution::Independent, SEED);
        p.n = n;
        if smoke {
            p.dag_height = 4;
        }
        let w = generate(&p);
        let workload = format!("fig12:n={n}");
        let tss = run_dtss(&w, 11, DtssConfig::default());
        let sdc = run_dynamic_sdc(&w, 11);
        assert_eq!(tss.skyline, sdc.skyline, "dynamic engines must agree");
        rows.push(BenchRow::of("dTSS", workload.clone(), &tss));
        rows.push(BenchRow::of("SDC+rebuild", workload, &sdc));
    }
    rows
}

/// Renders the rows as a JSON array (hand-rolled: the workspace builds
/// offline, so no serde). All strings are plain ASCII grid keys.
pub fn to_json(rows: &[BenchRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let m = &r.metrics;
        out.push_str(&format!(
            "  {{\"algo\": \"{}\", \"workload\": \"{}\", \"wall_ns\": {}, \"metrics\": \
             {{\"dominance_checks\": {}, \"dominance_batch_calls\": {}, \"io_reads\": {}, \
             \"io_writes\": {}, \"heap_pops\": {}, \"results\": {}, \"skyline\": {}}}}}{}\n",
            r.algo,
            r.workload,
            r.wall_ns,
            m.dominance_checks,
            m.dominance_batch_calls,
            m.io_reads,
            m.io_writes,
            m.heap_pops,
            m.results,
            r.skyline,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn json_shape_is_stable() {
        let rows = vec![BenchRow {
            algo: "sTSS",
            workload: "fig07:n=10".into(),
            wall_ns: 123,
            metrics: Metrics {
                dominance_checks: 7,
                io_reads: 3,
                cpu: Duration::from_nanos(123),
                ..Default::default()
            },
            skyline: 2,
        }];
        let s = to_json(&rows);
        assert!(s.starts_with("[\n"));
        assert!(s.contains("\"algo\": \"sTSS\""));
        assert!(s.contains("\"wall_ns\": 123"));
        assert!(s.contains("\"dominance_checks\": 7"));
        assert!(s.trim_end().ends_with(']'));
    }

    #[test]
    fn smoke_grid_covers_every_axis() {
        let rows = grid(true);
        assert!(rows.iter().any(|r| r.workload.starts_with("fig07:")));
        assert!(rows.iter().any(|r| r.workload.starts_with("fig08:")));
        assert!(rows.iter().any(|r| r.workload.starts_with("fig12:")));
        assert!(rows.iter().any(|r| r.algo == "sTSS"));
        assert!(rows.iter().any(|r| r.algo == "dTSS"));
    }
}

//! The machine-readable perf-trajectory grid behind `harness bench --json`.
//!
//! A fixed small grid — the Fig. 7 cardinality sweep crossed with a Fig. 8
//! dimensionality subset, plus the dynamic (Fig. 12) cardinality points —
//! at one seed, emitted as JSON rows
//! `{algo, workload, threads, shards, wall_ns, metrics}`. Serial rows
//! (`threads = 0`) are the same measurement as `BENCH_PR3.json`, so the
//! trajectory stays comparable across PRs; a `--threads` axis re-runs the
//! grid through the sharded parallel executors ([`BENCH_SHARDS`] fixed
//! shards, `N` workers) and emits one row set per worker count. Everything
//! except `wall_ns` is asserted identical across worker counts while the
//! grid is built — the determinism contract of `tss_core::parallel`,
//! enforced at measurement time. `--smoke` shrinks every cardinality so CI
//! can do the same in seconds.

use crate::ipcbench::{bench_executor, ExecutorChoice};
use crate::runner::{
    bench_budget, generate, pair_check_picos, run_dtss, run_dtss_sharded, run_dynamic_sdc,
    run_dynamic_sdc_sharded, run_sdc_plus, run_sdc_plus_sharded, run_stss, run_stss_sharded,
    AlgoResult, Workload, BENCH_SHARDS,
};
use datagen::{Distribution, ExperimentParams};
use tss_core::{DtssConfig, FaultPlan, Kernel, Metrics, ShardSpec, StssConfig};

/// Worker threads the measuring machine can actually run — recorded in
/// every row so single-core artifacts (like the committed `BENCH_PR4.json`)
/// are machine-checkable instead of a prose caveat.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One measured grid point.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Engine label (`"sTSS"`, `"dTSS"`, `"SDC+"`, `"SDC+rebuild"`).
    pub algo: &'static str,
    /// Grid point key, e.g. `"fig07:n=100000"`.
    pub workload: String,
    /// Worker threads of the sharded parallel executor; `0` marks the
    /// classic serial engine.
    pub threads: usize,
    /// Shard count the parallel executor actually ran with (the resolved
    /// plan); `0` for serial rows.
    pub shards: usize,
    /// True iff `shards` came from the adaptive sampling planner rather
    /// than a fixed `BENCH_SHARDS` count.
    pub adaptive: bool,
    /// Dominance-kernel variant the whole row ran under (`"lanes"` unless
    /// `TSS_KERNEL=scalar` forced the oracle path). Reporting metadata:
    /// every counter in the row is variant-invariant by contract.
    pub kernel: &'static str,
    /// Measured per-pair-check cost of the active kernel in picoseconds
    /// ([`pair_check_picos`]) — turns the planner's pair-check estimates
    /// into time. Machine-dependent, dropped by the CI row diffs.
    pub pair_check_picos: u64,
    /// Worker count the cost-model planner costed under (0 for serial and
    /// fixed-plan rows).
    pub plan_workers: usize,
    /// Planner estimate of run-phase pair checks (0 for serial and
    /// fixed-plan rows).
    pub est_run_checks: u64,
    /// Planner estimate of serial merge pair checks (0 for serial and
    /// fixed-plan rows).
    pub est_merge_checks: u64,
    /// Executor the sharded run evaluated its shards through:
    /// `"inproc"` (scoped threads) or `"subprocess"` (the supervised
    /// worker-process pool behind `TSS_EXECUTOR=subprocess`). Serial rows
    /// always read `"inproc"`. Reporting metadata: every non-wall,
    /// non-IPC column is executor-invariant by the byte-identity
    /// contract, which is what the CI subprocess smoke diff checks.
    pub executor: &'static str,
    /// Worker-process pool size of a subprocess run (0 for in-process
    /// and serial rows).
    pub workers: usize,
    /// `std::thread::available_parallelism()` of the measuring machine —
    /// wall-clock columns from rows with `available_parallelism: 1` prove
    /// determinism, not speedup.
    pub available_parallelism: usize,
    /// Wall-clock nanoseconds of the measured run phase (index build
    /// excluded, as in the paper's query-time experiments).
    pub wall_ns: u128,
    /// Seed of the session's deterministic [`FaultPlan`] (`TSS_FAULTS`),
    /// `None` when fault injection is off. Reporting metadata: every
    /// non-fault counter in the row is fault-invariant by the recovery
    /// contract, so CI diffs fault-injected grids against fault-free ones.
    pub fault_seed: Option<u64>,
    /// Injection probability of the active [`FaultPlan`] (0.0 when off).
    pub fault_rate: f64,
    /// Pair-check allowance the sharded rows ran under (`TSS_BUDGET`),
    /// `None` for unlimited.
    pub budget_limit: Option<u64>,
    /// Full execution metrics of the run.
    pub metrics: Metrics,
    /// Skyline cardinality (cross-run sanity anchor).
    pub skyline: usize,
}

impl BenchRow {
    fn of(algo: &'static str, workload: String, threads: usize, r: &AlgoResult) -> Self {
        let faults = FaultPlan::active();
        // Serial rows (threads == 0) never touch the executor seam, so
        // they are in-process whatever `TSS_EXECUTOR` says.
        let choice = if threads == 0 {
            ExecutorChoice::InProc
        } else {
            bench_executor()
        };
        BenchRow {
            algo,
            workload,
            threads,
            shards: r.plan.map_or(0, |p| p.shards),
            adaptive: r.plan.is_some_and(|p| p.adaptive),
            kernel: Kernel::active().name(),
            pair_check_picos: pair_check_picos(),
            plan_workers: r.plan.map_or(0, |p| p.workers),
            est_run_checks: r.plan.map_or(0, |p| p.est_run_checks),
            est_merge_checks: r.plan.map_or(0, |p| p.est_merge_checks),
            executor: choice.name(),
            workers: match choice {
                ExecutorChoice::Subprocess => threads,
                ExecutorChoice::InProc => 0,
            },
            available_parallelism: available_parallelism(),
            wall_ns: r.metrics.cpu.as_nanos(),
            fault_seed: faults.map(|f| f.seed),
            fault_rate: faults.map_or(0.0, |f| f.rate()),
            budget_limit: bench_budget().limit(),
            metrics: r.metrics,
            skyline: r.skyline,
        }
    }
}

/// Panics with a diagnostic diff — first divergent index, both values,
/// both lengths — when two skyline record-id vectors differ. The bench
/// grid's equivalence checks are hard assertions; when one trips in CI
/// the first divergent row is the fact that localizes the bug, so every
/// checker reports it instead of a bare `assertion failed`.
fn assert_records_identical(label: &str, a: &Option<Vec<u32>>, b: &Option<Vec<u32>>) {
    let (a, b) = match (a, b) {
        (Some(a), Some(b)) => (a, b),
        (a, b) => panic!(
            "{label}: a runner dropped its record vector (left: {}, right: {})",
            a.is_some(),
            b.is_some()
        ),
    };
    if a == b {
        return;
    }
    match a.iter().zip(b.iter()).position(|(x, y)| x != y) {
        Some(i) => panic!(
            "{label}: record-id vectors diverge at index {i}: {} vs {} \
             (lengths {} vs {})",
            a[i],
            b[i],
            a.len(),
            b.len()
        ),
        None => panic!(
            "{label}: record-id vectors agree on the common prefix but \
             lengths differ: {} vs {}",
            a.len(),
            b.len()
        ),
    }
}

/// Panics naming the first divergent *column* and both values when two
/// counter sets differ — the counter-side counterpart of
/// [`assert_records_identical`]. Compares every count the determinism
/// contract covers; wall clock (`cpu`) is deliberately absent.
fn assert_counters_identical(label: &str, a: &Metrics, b: &Metrics) {
    let columns = [
        ("dominance_checks", a.dominance_checks, b.dominance_checks),
        (
            "dominance_batch_calls",
            a.dominance_batch_calls,
            b.dominance_batch_calls,
        ),
        ("kernel_chunks", a.kernel_chunks, b.kernel_chunks),
        ("io_reads", a.io_reads, b.io_reads),
        ("io_writes", a.io_writes, b.io_writes),
        ("heap_pops", a.heap_pops, b.heap_pops),
        ("results", a.results, b.results),
        ("label_cache_hits", a.label_cache_hits, b.label_cache_hits),
        (
            "label_cache_misses",
            a.label_cache_misses,
            b.label_cache_misses,
        ),
        (
            "merge_pair_checks",
            a.merge_pair_checks,
            b.merge_pair_checks,
        ),
        ("merge_strata", a.merge_strata, b.merge_strata),
        ("shard_retries", a.shard_retries, b.shard_retries),
        ("shard_fallbacks", a.shard_fallbacks, b.shard_fallbacks),
        ("faults_injected", a.faults_injected, b.faults_injected),
        ("stream_inserts", a.stream_inserts, b.stream_inserts),
        (
            "stream_expirations",
            a.stream_expirations,
            b.stream_expirations,
        ),
        ("stream_repairs", a.stream_repairs, b.stream_repairs),
        (
            "repair_candidates",
            a.repair_candidates,
            b.repair_candidates,
        ),
        // The IPC counters are pool-size-invariant too: the supervisor
        // instructs process faults by (shard, attempt), never by worker
        // slot, so retries — and therefore frames and bytes — don't
        // depend on how many workers drained the queue.
        ("worker_crashes", a.worker_crashes, b.worker_crashes),
        ("worker_timeouts", a.worker_timeouts, b.worker_timeouts),
        ("frames_corrupted", a.frames_corrupted, b.frames_corrupted),
        ("ipc_bytes", a.ipc_bytes, b.ipc_bytes),
    ];
    for (column, x, y) in columns {
        assert_eq!(x, y, "{label}: column {column} diverges: {x} vs {y}");
    }
}

/// Asserts the thread-count invariants between two runs of the same
/// `(algo, workload)` at different worker counts: byte-identical skyline
/// record-id vectors and identical work counters — only the wall clock
/// may differ.
fn assert_invariant(a: &BenchRow, ra: &AlgoResult, b: &BenchRow, rb: &AlgoResult) {
    let label = format!(
        "{}/{} (threads {} vs {})",
        a.algo, a.workload, a.threads, b.threads
    );
    assert_eq!(a.skyline, b.skyline, "{label}");
    assert_records_identical(&label, &ra.records, &rb.records);
    assert_counters_identical(&label, &a.metrics, &b.metrics);
    assert_eq!(a.shards, b.shards, "plans are deterministic per workload");
    assert_eq!(a.adaptive, b.adaptive);
    assert_eq!(
        (a.plan_workers, a.est_run_checks, a.est_merge_checks),
        (b.plan_workers, b.est_run_checks, b.est_merge_checks),
        "the cost model is a pure function of (store, max, workers)"
    );
}

/// Re-runs one workload's primary engines under both dominance-kernel
/// variants — the store's per-instance [`Kernel`] override, no environment
/// races — and asserts byte-identical skyline record-id vectors and
/// identical counted work. This is the tentpole correctness contract of
/// the lane-chunked kernels, enforced on every grid point while the grid
/// measures.
fn assert_kernel_equivalence(w: &Workload, dynamic: bool) {
    let forced = |k: Kernel| Workload {
        table: w.table.clone().with_kernel(k),
        dags: w.dags.clone(),
        params: w.params,
    };
    let (scalar, lanes) = if dynamic {
        (
            run_dtss(&forced(Kernel::Scalar), 11, DtssConfig::default()),
            run_dtss(&forced(Kernel::Lanes), 11, DtssConfig::default()),
        )
    } else {
        (
            run_stss(&forced(Kernel::Scalar), StssConfig::default()),
            run_stss(&forced(Kernel::Lanes), StssConfig::default()),
        )
    };
    let label = format!("{}/kernel-equivalence", scalar.name);
    assert_records_identical(&label, &scalar.records, &lanes.records);
    assert_counters_identical(&label, &scalar.metrics, &lanes.metrics);
}

/// Runs one workload point through the serial engines and, per requested
/// worker count, through the sharded executors, appending all rows. At the
/// first worker count the point is additionally re-run under the *other*
/// shard plan (fixed `BENCH_SHARDS` when `spec` is adaptive and vice
/// versa) and the merged record-id vectors are asserted byte-identical —
/// the sorted merge emits in `(score, id)` order, which never mentions
/// shard boundaries, so a different partition must not change a single
/// byte of the output.
fn emit_point(
    rows: &mut Vec<BenchRow>,
    workload: &str,
    threads_axis: &[usize],
    spec: ShardSpec,
    serial: [(&'static str, AlgoResult); 2],
    mut sharded: impl FnMut(usize, ShardSpec) -> [(&'static str, AlgoResult); 2],
) {
    // An active `TSS_BUDGET` degrades the sharded runs to sound prefixes,
    // so equality against the unbudgeted serial engines (and across shard
    // plans, whose pair-check spend differs) weakens to soundness; the
    // cross-thread byte-identity below still holds exactly — budgets are
    // deterministic and thread-invariant.
    let budgeted = bench_budget().limit().is_some();
    let [(algo_a, a), (algo_b, b)] = serial;
    assert_eq!(a.skyline, b.skyline, "engines must agree on {workload}");
    let serial_set: Option<Vec<u32>> = a.records.clone().map(|mut r| {
        r.sort_unstable();
        r
    });
    rows.push(BenchRow::of(algo_a, workload.to_string(), 0, &a));
    rows.push(BenchRow::of(algo_b, workload.to_string(), 0, &b));
    let mut first: Option<[(BenchRow, AlgoResult); 2]> = None;
    for &t in threads_axis {
        assert!(t >= 1, "threads axis entries are worker counts (>= 1)");
        let [(algo_a, a), (algo_b, b)] = sharded(t, spec);
        if !budgeted {
            assert_eq!(a.skyline, b.skyline, "engines must agree on {workload}");
        }
        // The sharded executors must produce the serial engines' skyline
        // (emission order differs — score order vs engine order — so
        // compare as record-id sets).
        if let (Some(serial_set), Some(records)) = (&serial_set, &a.records) {
            if budgeted {
                for r in records {
                    assert!(
                        serial_set.binary_search(r).is_ok(),
                        "{algo_a}/{workload}: budgeted run emitted non-skyline record {r}"
                    );
                }
            } else {
                let mut sharded_set = records.clone();
                sharded_set.sort_unstable();
                assert_records_identical(
                    &format!("{algo_a}/{workload} (sharded vs serial, as sorted sets)"),
                    &Some(sharded_set),
                    &Some(serial_set.clone()),
                );
            }
        }
        let ra = BenchRow::of(algo_a, workload.to_string(), t, &a);
        let rb = BenchRow::of(algo_b, workload.to_string(), t, &b);
        match &first {
            None => {
                if !budgeted {
                    let other = match spec {
                        ShardSpec::Fixed(_) => ShardSpec::Adaptive {
                            max: BENCH_SHARDS,
                            workers: t,
                        },
                        ShardSpec::Adaptive { .. } => ShardSpec::Fixed(BENCH_SHARDS),
                    };
                    let [(_, oa), (_, ob)] = sharded(t, other);
                    assert_records_identical(
                        &format!(
                            "{algo_a}/{workload} (across shard plans {:?} vs {:?})",
                            a.plan, oa.plan
                        ),
                        &a.records,
                        &oa.records,
                    );
                    assert_records_identical(
                        &format!(
                            "{algo_b}/{workload} (across shard plans {:?} vs {:?})",
                            b.plan, ob.plan
                        ),
                        &b.records,
                        &ob.records,
                    );
                }
                first = Some([(ra.clone(), a), (rb.clone(), b)]);
            }
            Some([(fa, fra), (fb, frb)]) => {
                assert_invariant(fa, fra, &ra, &a);
                assert_invariant(fb, frb, &rb, &b);
            }
        }
        rows.push(ra);
        rows.push(rb);
    }
}

/// The fixed grid: one seed (42), Fig. 7 cardinalities x Fig. 8
/// dimensionalities for the static engines, Fig. 12 cardinalities for the
/// dynamic ones. `smoke` shrinks every `n` to 2 000 tuples. `threads_axis`
/// adds one sharded-parallel row set per entry (e.g. `[1, 2, 4]`); pass
/// `[]` for the serial grid alone. `spec` picks the shard plan of the
/// parallel rows — fixed or adaptive; either way each workload is
/// cross-checked against the other plan at the first worker count (see
/// [`emit_point` internals](self)).
pub fn grid(smoke: bool, threads_axis: &[usize], spec: ShardSpec) -> Vec<BenchRow> {
    const SEED: u64 = 42;
    let card: &[usize] = if smoke {
        &[2_000]
    } else {
        &[10_000, 50_000, 100_000]
    };
    let dims: &[(usize, usize)] = if smoke {
        &[(2, 1), (2, 2)]
    } else {
        &[(2, 1), (3, 1), (2, 2), (3, 2)]
    };
    let dims_n = if smoke { 2_000 } else { 20_000 };
    let mut rows = Vec::new();

    // Fig. 7 axis: static cardinality sweep at the paper's default dims.
    for &n in card {
        let mut p = ExperimentParams::paper_static_default(Distribution::Independent, SEED);
        p.n = n;
        if smoke {
            p.dag_height = 4;
        }
        let w = generate(&p);
        assert_kernel_equivalence(&w, false);
        emit_point(
            &mut rows,
            &format!("fig07:n={n}"),
            threads_axis,
            spec,
            [
                ("sTSS", run_stss(&w, StssConfig::default())),
                ("SDC+", run_sdc_plus(&w)),
            ],
            |t, s| {
                [
                    ("sTSS", run_stss_sharded(&w, StssConfig::default(), s, t)),
                    ("SDC+", run_sdc_plus_sharded(&w, s, t)),
                ]
            },
        );
    }

    // Fig. 8 axis: static dimensionality sweep at a fixed cardinality.
    for &(to_d, po_d) in dims {
        let mut p = ExperimentParams::paper_static_default(Distribution::Independent, SEED);
        p.n = dims_n;
        p.to_dims = to_d;
        p.po_dims = po_d;
        if smoke {
            p.dag_height = 4;
        }
        let w = generate(&p);
        assert_kernel_equivalence(&w, false);
        emit_point(
            &mut rows,
            &format!("fig08:n={dims_n}:dims=({to_d},{po_d})"),
            threads_axis,
            spec,
            [
                ("sTSS", run_stss(&w, StssConfig::default())),
                ("SDC+", run_sdc_plus(&w)),
            ],
            |t, s| {
                [
                    ("sTSS", run_stss_sharded(&w, StssConfig::default(), s, t)),
                    ("SDC+", run_sdc_plus_sharded(&w, s, t)),
                ]
            },
        );
    }

    // Fig. 12 axis: the dynamic counterpart of the cardinality sweep.
    for &n in card {
        let mut p = ExperimentParams::paper_dynamic_default(Distribution::Independent, SEED);
        p.n = n;
        if smoke {
            p.dag_height = 4;
        }
        let w = generate(&p);
        assert_kernel_equivalence(&w, true);
        emit_point(
            &mut rows,
            &format!("fig12:n={n}"),
            threads_axis,
            spec,
            [
                ("dTSS", run_dtss(&w, 11, DtssConfig::default())),
                ("SDC+rebuild", run_dynamic_sdc(&w, 11)),
            ],
            |t, s| {
                [
                    (
                        "dTSS",
                        run_dtss_sharded(&w, 11, DtssConfig::default(), s, t),
                    ),
                    ("SDC+rebuild", run_dynamic_sdc_sharded(&w, 11, s, t)),
                ]
            },
        );
    }
    rows
}

/// Renders the rows as a JSON array (hand-rolled: the workspace builds
/// offline, so no serde). All strings are plain ASCII grid keys.
pub fn to_json(rows: &[BenchRow]) -> String {
    fn opt(v: Option<u64>) -> String {
        v.map_or_else(|| "null".to_string(), |v| v.to_string())
    }
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let m = &r.metrics;
        out.push_str(&format!(
            "  {{\"algo\": \"{}\", \"workload\": \"{}\", \"threads\": {}, \"shards\": {}, \
             \"adaptive\": {}, \"kernel\": \"{}\", \"pair_check_picos\": {}, \
             \"plan_workers\": {}, \"est_run_checks\": {}, \"est_merge_checks\": {}, \
             \"executor\": \"{}\", \"workers\": {}, \
             \"available_parallelism\": {}, \
             \"wall_ns\": {}, \"fault_seed\": {}, \"fault_rate\": {}, \
             \"budget_limit\": {}, \"metrics\": \
             {{\"dominance_checks\": {}, \"dominance_batch_calls\": {}, \
             \"kernel_chunks\": {}, \"io_reads\": {}, \
             \"io_writes\": {}, \"heap_pops\": {}, \"label_cache_hits\": {}, \
             \"label_cache_misses\": {}, \"merge_pair_checks\": {}, \
             \"merge_strata\": {}, \"shard_retries\": {}, \"shard_fallbacks\": {}, \
             \"faults_injected\": {}, \"stream_inserts\": {}, \
             \"stream_expirations\": {}, \"stream_repairs\": {}, \
             \"repair_candidates\": {}, \"worker_crashes\": {}, \
             \"worker_timeouts\": {}, \"frames_corrupted\": {}, \
             \"ipc_bytes\": {}, \"results\": {}, \"skyline\": {}}}}}{}\n",
            r.algo,
            r.workload,
            r.threads,
            r.shards,
            r.adaptive,
            r.kernel,
            r.pair_check_picos,
            r.plan_workers,
            r.est_run_checks,
            r.est_merge_checks,
            r.executor,
            r.workers,
            r.available_parallelism,
            r.wall_ns,
            opt(r.fault_seed),
            r.fault_rate,
            opt(r.budget_limit),
            m.dominance_checks,
            m.dominance_batch_calls,
            m.kernel_chunks,
            m.io_reads,
            m.io_writes,
            m.heap_pops,
            m.label_cache_hits,
            m.label_cache_misses,
            m.merge_pair_checks,
            m.merge_strata,
            m.shard_retries,
            m.shard_fallbacks,
            m.faults_injected,
            m.stream_inserts,
            m.stream_expirations,
            m.stream_repairs,
            m.repair_candidates,
            m.worker_crashes,
            m.worker_timeouts,
            m.frames_corrupted,
            m.ipc_bytes,
            m.results,
            r.skyline,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn json_shape_is_stable() {
        let rows = vec![BenchRow {
            algo: "sTSS",
            workload: "fig07:n=10".into(),
            threads: 2,
            shards: 8,
            adaptive: true,
            kernel: "lanes",
            pair_check_picos: 350,
            plan_workers: 2,
            est_run_checks: 900,
            est_merge_checks: 60,
            executor: "subprocess",
            workers: 2,
            available_parallelism: 4,
            wall_ns: 123,
            fault_seed: Some(7),
            fault_rate: 0.25,
            budget_limit: None,
            metrics: Metrics {
                dominance_checks: 7,
                kernel_chunks: 6,
                merge_pair_checks: 5,
                merge_strata: 2,
                io_reads: 3,
                label_cache_hits: 9,
                label_cache_misses: 4,
                shard_retries: 12,
                shard_fallbacks: 1,
                faults_injected: 13,
                stream_inserts: 21,
                stream_expirations: 22,
                stream_repairs: 23,
                repair_candidates: 24,
                worker_crashes: 31,
                worker_timeouts: 32,
                frames_corrupted: 33,
                ipc_bytes: 34,
                cpu: Duration::from_nanos(123),
                ..Default::default()
            },
            skyline: 2,
        }];
        let s = to_json(&rows);
        assert!(s.starts_with("[\n"));
        assert!(s.contains("\"algo\": \"sTSS\""));
        assert!(s.contains("\"threads\": 2"));
        assert!(s.contains("\"shards\": 8"));
        assert!(s.contains("\"adaptive\": true"));
        assert!(s.contains("\"kernel\": \"lanes\""));
        assert!(s.contains("\"pair_check_picos\": 350"));
        assert!(s.contains("\"plan_workers\": 2"));
        assert!(s.contains("\"est_run_checks\": 900"));
        assert!(s.contains("\"est_merge_checks\": 60"));
        assert!(s.contains("\"available_parallelism\": 4"));
        assert!(s.contains("\"wall_ns\": 123"));
        assert!(s.contains("\"dominance_checks\": 7"));
        assert!(s.contains("\"kernel_chunks\": 6"));
        assert!(s.contains("\"merge_pair_checks\": 5"));
        assert!(s.contains("\"merge_strata\": 2"));
        // dTSS session-cache visibility: the PR 6 metrics-exhaustiveness
        // lint pins these two to the row shape for good.
        assert!(s.contains("\"label_cache_hits\": 9"));
        assert!(s.contains("\"label_cache_misses\": 4"));
        // Fault-tolerance observability: injection config and recovery
        // counters are part of the row shape (unset config emits null).
        assert!(s.contains("\"fault_seed\": 7"));
        assert!(s.contains("\"fault_rate\": 0.25"));
        assert!(s.contains("\"budget_limit\": null"));
        assert!(s.contains("\"shard_retries\": 12"));
        assert!(s.contains("\"shard_fallbacks\": 1"));
        assert!(s.contains("\"faults_injected\": 13"));
        // Streaming-maintenance observability (PR 9): the stream counters
        // are part of the row shape, on static and dynamic rows alike.
        assert!(s.contains("\"stream_inserts\": 21"));
        assert!(s.contains("\"stream_expirations\": 22"));
        assert!(s.contains("\"stream_repairs\": 23"));
        assert!(s.contains("\"repair_candidates\": 24"));
        // Out-of-process observability (PR 10): the executor axis and the
        // IPC counters are part of the row shape.
        assert!(s.contains("\"executor\": \"subprocess\""));
        assert!(s.contains("\"workers\": 2"));
        assert!(s.contains("\"worker_crashes\": 31"));
        assert!(s.contains("\"worker_timeouts\": 32"));
        assert!(s.contains("\"frames_corrupted\": 33"));
        assert!(s.contains("\"ipc_bytes\": 34"));
        assert!(s.trim_end().ends_with(']'));
    }

    #[test]
    fn smoke_grid_covers_every_axis() {
        let rows = grid(true, &[], ShardSpec::Fixed(BENCH_SHARDS));
        assert!(rows.iter().any(|r| r.workload.starts_with("fig07:")));
        assert!(rows.iter().any(|r| r.workload.starts_with("fig08:")));
        assert!(rows.iter().any(|r| r.workload.starts_with("fig12:")));
        assert!(rows.iter().any(|r| r.algo == "sTSS"));
        assert!(rows.iter().any(|r| r.algo == "dTSS"));
        assert!(rows.iter().all(|r| r.threads == 0));
        assert!(rows.iter().all(|r| !r.adaptive), "serial rows never plan");
    }

    #[test]
    fn threaded_smoke_rows_hold_the_invariants() {
        // One smoke pass at two worker counts under the adaptive planner:
        // `emit_point` itself asserts identical skylines and work counters
        // between worker counts AND byte-identical merged record vectors
        // against the fixed-shard plan, so reaching the end *is* the
        // invariant check; spot-check the row layout.
        let rows = grid(
            true,
            &[1, 2],
            ShardSpec::Adaptive {
                max: BENCH_SHARDS,
                workers: 2,
            },
        );
        let serial = rows.iter().filter(|r| r.threads == 0).count();
        let t1 = rows.iter().filter(|r| r.threads == 1).count();
        let t2 = rows.iter().filter(|r| r.threads == 2).count();
        assert!(serial > 0);
        assert_eq!(serial, t1);
        assert_eq!(t1, t2);
        for r in rows.iter().filter(|r| r.threads > 0) {
            assert!(r.adaptive, "threaded rows carry the planner flag");
            assert!((1..=BENCH_SHARDS).contains(&r.shards), "{}", r.workload);
        }
    }
}

//! Fig. 11 — progressiveness: time to the FIRST half of the skyline.
//! Criterion times a run that stops (conceptually) at 50% of the results —
//! implemented by counting emissions and measuring the full streamed run,
//! plus a separate first-result benchmark.

mod common;

use criterion::{criterion_main, Criterion};
use datagen::Distribution;
use sdc::Variant;
use tss_core::StssConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_progressiveness");
    let p = common::static_params(Distribution::Independent);
    let stss = common::build_stss(&p, StssConfig::default());
    g.bench_function("tss/full_stream", |b| {
        b.iter(|| {
            let mut n = 0u64;
            stss.run_with(|_, _| n += 1);
            n
        })
    });
    let sdc = common::build_sdc(&p, Variant::SdcPlus);
    g.bench_function("sdc+/full_stream", |b| {
        b.iter(|| {
            let mut n = 0u64;
            sdc.run_with(&mut |_, _| n += 1);
            n
        })
    });
    g.finish();
}

fn benches() {
    let mut c = common::config();
    bench(&mut c);
}
criterion_main!(benches);

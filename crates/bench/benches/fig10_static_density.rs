//! Fig. 10 — static skyline: query cost vs. DAG density d.

mod common;

use criterion::{criterion_main, Criterion};
use datagen::Distribution;
use sdc::Variant;
use tss_core::StssConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_static_density");
    for d10 in [2u32, 6, 10] {
        let d = d10 as f64 / 10.0;
        let mut p = common::static_params(Distribution::Independent);
        p.dag_density = d;
        let stss = common::build_stss(&p, StssConfig::default());
        g.bench_function(format!("tss/d0{d10}"), |b| {
            b.iter(|| stss.run().skyline.len())
        });
        let sdc = common::build_sdc(&p, Variant::SdcPlus);
        g.bench_function(format!("sdc+/d0{d10}"), |b| {
            b.iter(|| sdc.run().skyline.len())
        });
    }
    g.finish();
}

fn benches() {
    let mut c = common::config();
    bench(&mut c);
}
criterion_main!(benches);

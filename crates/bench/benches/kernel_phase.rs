//! Dominance kernel in isolation: scalar vs lane-chunked over a full
//! block scan, across dimensionalities and block sizes.
//!
//! The candidate is the all-zero point, which nothing with positive
//! coordinates can dominate, so every call scans the whole block — the
//! worst case the lane kernel exists for and the same regime
//! `pair_check_picos` calibrates. Both variants run in a single thread on
//! the same [`PointBlock`] via the per-instance kernel override, so the
//! ratio is pure kernel shape (AoS row walk vs SoA `[u32; 8]` chunks),
//! not data or scheduling.

mod common;

use criterion::{criterion_main, Criterion};
use skyline::{Kernel, PointBlock};
use std::hint::black_box;

/// Fixed-seed coordinate stream (same LCG as the harness calibration).
fn fill(block: &mut PointBlock, dims: usize, n: usize) {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut coords = vec![0u32; dims];
    for _ in 0..n {
        for c in coords.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *c = (state >> 33) as u32 % 1000 + 1;
        }
        block.push(&coords);
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_phase");
    for dims in [2usize, 4, 8, 16] {
        for n in [10_000usize, 100_000] {
            let mut base = PointBlock::new(dims);
            fill(&mut base, dims, n);
            let cand = vec![0u32; dims];
            for kernel in [Kernel::Scalar, Kernel::Lanes] {
                let block = base.clone().with_kernel(kernel);
                g.bench_function(format!("{}/d{dims}/n{n}", kernel.name()), |b| {
                    b.iter(|| {
                        let (hit, examined) = block.dominated(black_box(&cand));
                        assert!(!hit);
                        black_box(examined)
                    })
                });
            }
        }
    }
    g.finish();
}

fn benches() {
    let mut c = common::config();
    bench(&mut c);
}
criterion_main!(benches);

//! Fig. 14 — dynamic skyline: per-query cost vs. DAG height and density
//! (anti-correlated).

mod common;

use criterion::{criterion_main, Criterion};
use datagen::Distribution;
use sdc::{DynamicSdc, SdcConfig};
use tss_core::DtssConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_dynamic_dag");
    for h in [2u32, 6, 10] {
        let mut p = common::dynamic_params(Distribution::AntiCorrelated);
        p.dag_height = h;
        let (dtss, query) = common::build_dtss(&p, DtssConfig::default());
        g.bench_function(format!("dtss/h{h}"), |b| {
            b.iter(|| dtss.query(&query).unwrap().skyline.len())
        });
        let w = bench::runner::generate(&p);
        let qdags: Vec<_> = w
            .dags
            .iter()
            .map(|d| bench::runner::permuted_order(d, 11))
            .collect();
        let dsdc = DynamicSdc::new(w.table, SdcConfig::default());
        g.bench_function(format!("dyn-sdc+/h{h}"), |b| {
            b.iter(|| dsdc.query(&qdags).unwrap().skyline.len())
        });
    }
    for d10 in [2u32, 10] {
        let mut p = common::dynamic_params(Distribution::AntiCorrelated);
        p.dag_density = d10 as f64 / 10.0;
        let (dtss, query) = common::build_dtss(&p, DtssConfig::default());
        g.bench_function(format!("dtss/d0{d10}"), |b| {
            b.iter(|| dtss.query(&query).unwrap().skyline.len())
        });
    }
    g.finish();
}

fn benches() {
    let mut c = common::config();
    bench(&mut c);
}
criterion_main!(benches);

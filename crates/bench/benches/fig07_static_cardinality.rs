//! Fig. 7 — static skyline: query cost vs. data cardinality, TSS vs. SDC+,
//! both distributions. (Criterion times the CPU of the query phase on
//! prebuilt indexes; the IO-charged totals of the figure come from
//! `harness fig7`.)

mod common;

use criterion::{criterion_main, Criterion};
use datagen::Distribution;
use sdc::Variant;
use tss_core::StssConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig07_static_cardinality");
    for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
        for n in [5_000usize, 10_000, 20_000] {
            let mut p = common::static_params(dist);
            p.n = n;
            let stss = common::build_stss(&p, StssConfig::default());
            g.bench_function(format!("tss/{}/{n}", dist.short()), |b| {
                b.iter(|| stss.run().skyline.len())
            });
            let sdc = common::build_sdc(&p, Variant::SdcPlus);
            g.bench_function(format!("sdc+/{}/{n}", dist.short()), |b| {
                b.iter(|| sdc.run().skyline.len())
            });
        }
    }
    g.finish();
}

fn benches() {
    let mut c = common::config();
    bench(&mut c);
}
criterion_main!(benches);

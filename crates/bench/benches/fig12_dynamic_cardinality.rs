//! Fig. 12 — dynamic skyline: per-query cost vs. cardinality. dTSS reuses
//! its group trees; the SDC+ baseline rebuilds per query (the rebuild CPU is
//! inside the timed section — its IO charge shows up in `harness fig12`).

mod common;

use criterion::{criterion_main, Criterion};
use datagen::Distribution;
use sdc::{DynamicSdc, SdcConfig};
use tss_core::DtssConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_dynamic_cardinality");
    for n in [5_000usize, 10_000, 20_000] {
        let mut p = common::dynamic_params(Distribution::Independent);
        p.n = n;
        let (dtss, query) = common::build_dtss(&p, DtssConfig::default());
        g.bench_function(format!("dtss/{n}"), |b| {
            b.iter(|| dtss.query(&query).unwrap().skyline.len())
        });
        let w = bench::runner::generate(&p);
        let qdags: Vec<_> = w
            .dags
            .iter()
            .map(|d| bench::runner::permuted_order(d, 11))
            .collect();
        let dsdc = DynamicSdc::new(w.table, SdcConfig::default());
        g.bench_function(format!("dyn-sdc+/{n}"), |b| {
            b.iter(|| dsdc.query(&qdags).unwrap().skyline.len())
        });
    }
    g.finish();
}

fn benches() {
    let mut c = common::config();
    bench(&mut c);
}
criterion_main!(benches);

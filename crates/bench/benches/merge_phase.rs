//! Merge phase in isolation: sorted parallel merge vs the all-pairs fold
//! over prebuilt per-shard local skylines, across local-skyline ratios.
//!
//! The distribution is the ratio dial — independent data keeps local
//! skylines small (merge is cheap either way), anti-correlated data makes
//! almost every tuple locally skyline (the all-pairs fold's worst case,
//! the regime the sorted filter exists for). Locals are computed once per
//! configuration; only the merge is timed.

mod common;

use criterion::{criterion_main, Criterion};
use datagen::{Distribution, ExperimentParams};
use tss_core::parallel::{merge_shard_skylines, merge_shard_skylines_all_pairs};
use tss_core::{PoDomain, RecordId, Stss, StssConfig, Table};

const SHARDS: usize = 8;

/// One merge workload: the table, its domains, and the per-shard local
/// skylines an actual sharded run would feed the merge.
struct MergeInput {
    table: Table,
    domains: Vec<PoDomain>,
    locals: Vec<Vec<RecordId>>,
}

fn build(dist: Distribution, n: usize) -> MergeInput {
    let mut p = ExperimentParams::paper_static_default(dist, 42);
    p.n = n;
    p.dag_height = 6;
    let (table, dags) = p.materialize();
    let domains: Vec<PoDomain> = dags.iter().cloned().map(PoDomain::new).collect();
    let locals = table
        .shards(SHARDS)
        .iter()
        .map(|v| {
            let stss =
                Stss::build(v.to_store(), dags.clone(), StssConfig::default()).expect("shard");
            stss.run()
                .skyline_records()
                .into_iter()
                .map(|r| r + v.start())
                .collect()
        })
        .collect();
    MergeInput {
        table,
        domains,
        locals,
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge_phase");
    for (dist, n) in [
        (Distribution::Independent, 10_000usize),
        (Distribution::AntiCorrelated, 4_000),
    ] {
        let input = build(dist, n);
        let ratio =
            input.locals.iter().map(Vec::len).sum::<usize>() as f64 / input.table.len() as f64;
        eprintln!(
            "[merge_phase {}/{n}: local-skyline ratio {ratio:.3}]",
            dist.short()
        );
        g.bench_function(format!("all_pairs/{}/{n}", dist.short()), |b| {
            b.iter(|| {
                merge_shard_skylines_all_pairs(&input.table, &input.domains, &input.locals)
                    .0
                    .len()
            })
        });
        for threads in [1usize, 4] {
            g.bench_function(format!("sorted/t{threads}/{}/{n}", dist.short()), |b| {
                b.iter(|| {
                    merge_shard_skylines(&input.table, &input.domains, &input.locals, threads)
                        .0
                        .len()
                })
            });
        }
    }
    g.finish();
}

fn benches() {
    let mut c = common::config();
    bench(&mut c);
}
criterion_main!(benches);

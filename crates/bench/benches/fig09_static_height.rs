//! Fig. 9 — static skyline: query cost vs. DAG height h.

mod common;

use criterion::{criterion_main, Criterion};
use datagen::Distribution;
use sdc::Variant;
use tss_core::StssConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_static_height");
    for h in [2u32, 6, 10] {
        let mut p = common::static_params(Distribution::Independent);
        p.dag_height = h;
        let stss = common::build_stss(&p, StssConfig::default());
        g.bench_function(format!("tss/h{h}"), |b| b.iter(|| stss.run().skyline.len()));
        let sdc = common::build_sdc(&p, Variant::SdcPlus);
        g.bench_function(format!("sdc+/h{h}"), |b| b.iter(|| sdc.run().skyline.len()));
    }
    g.finish();
}

fn benches() {
    let mut c = common::config();
    bench(&mut c);
}
criterion_main!(benches);

//! Fig. 13 — dynamic skyline: per-query cost vs. dimensionality.

mod common;

use criterion::{criterion_main, Criterion};
use datagen::Distribution;
use sdc::{DynamicSdc, SdcConfig};
use tss_core::DtssConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_dynamic_dimensionality");
    for (to_d, po_d) in [(2usize, 1usize), (4, 1), (3, 2)] {
        let mut p = common::dynamic_params(Distribution::Independent);
        p.to_dims = to_d;
        p.po_dims = po_d;
        let (dtss, query) = common::build_dtss(&p, DtssConfig::default());
        g.bench_function(format!("dtss/to{to_d}_po{po_d}"), |b| {
            b.iter(|| dtss.query(&query).unwrap().skyline.len())
        });
        let w = bench::runner::generate(&p);
        let qdags: Vec<_> = w
            .dags
            .iter()
            .map(|d| bench::runner::permuted_order(d, 11))
            .collect();
        let dsdc = DynamicSdc::new(w.table, SdcConfig::default());
        g.bench_function(format!("dyn-sdc+/to{to_d}_po{po_d}"), |b| {
            b.iter(|| dsdc.query(&qdags).unwrap().skyline.len())
        });
    }
    g.finish();
}

fn benches() {
    let mut c = common::config();
    bench(&mut c);
}
criterion_main!(benches);

//! Ablation — the §V-B design choices of dTSS: local-skyline
//! precomputation, the global Tm fast check, the dominator prefilter, and
//! the query cache.

mod common;

use criterion::{criterion_main, Criterion};
use datagen::Distribution;
use tss_core::DtssConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_dtss");
    let p = common::dynamic_params(Distribution::Independent);
    for (name, cfg) in [
        ("plain", DtssConfig::default()),
        (
            "local_skylines",
            DtssConfig {
                precompute_local: true,
                ..Default::default()
            },
        ),
        (
            "fast_check",
            DtssConfig {
                fast_check: true,
                ..Default::default()
            },
        ),
        (
            "prefilter",
            DtssConfig {
                filter_dominators: true,
                ..Default::default()
            },
        ),
        (
            "cache_warm",
            DtssConfig {
                cache: true,
                ..Default::default()
            },
        ),
    ] {
        let (dtss, query) = common::build_dtss(&p, cfg);
        if name == "cache_warm" {
            let _ = dtss.query(&query).unwrap(); // warm the cache
        }
        g.bench_function(format!("dtss/{name}"), |b| {
            b.iter(|| dtss.query(&query).unwrap().skyline.len())
        });
    }
    g.finish();
}

fn benches() {
    let mut c = common::config();
    bench(&mut c);
}
criterion_main!(benches);

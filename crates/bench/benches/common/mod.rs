#![allow(dead_code)]

//! Shared setup for the per-figure Criterion benches: small, fixed-seed
//! workloads (Criterion measures algorithmic CPU; the IO-charged totals are
//! the harness binary's job) and prebuilt indexes so only the query phase
//! is timed.

use criterion::Criterion;
use datagen::{Distribution, ExperimentParams};
use sdc::{SdcConfig, SdcIndex, Variant};
use tss_core::{Dtss, DtssConfig, PoQuery, Stss, StssConfig};

/// Bench-scale cardinality (deliberately small; `harness` covers scale).
pub const BENCH_N: usize = 10_000;

/// Criterion tuned for short, stable runs.
pub fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

/// Static workload with the paper's §VI-B defaults, scaled.
pub fn static_params(dist: Distribution) -> ExperimentParams {
    let mut p = ExperimentParams::paper_static_default(dist, 42);
    p.n = BENCH_N;
    p.dag_height = 6; // keeps bench-scale skylines moderate
    p
}

/// Dynamic workload with the paper's §VI-C defaults, scaled.
pub fn dynamic_params(dist: Distribution) -> ExperimentParams {
    let mut p = ExperimentParams::paper_dynamic_default(dist, 42);
    p.n = BENCH_N;
    p
}

/// Prebuilt sTSS operator for a parameter setting.
pub fn build_stss(p: &ExperimentParams, cfg: StssConfig) -> Stss {
    let w = bench::runner::generate(p);
    Stss::build(w.table, w.dags, cfg).expect("valid workload")
}

/// Prebuilt SDC-family index.
pub fn build_sdc(p: &ExperimentParams, variant: Variant) -> SdcIndex {
    let w = bench::runner::generate(p);
    SdcIndex::build(w.table, w.dags, variant, SdcConfig::default()).expect("valid workload")
}

/// Prebuilt dTSS operator plus a query order.
pub fn build_dtss(p: &ExperimentParams, cfg: DtssConfig) -> (Dtss, PoQuery) {
    let w = bench::runner::generate(p);
    let sizes: Vec<u32> = w.dags.iter().map(|d| d.len() as u32).collect();
    let query = PoQuery::new(
        w.dags
            .iter()
            .map(|d| bench::runner::permuted_order(d, 11))
            .collect(),
    );
    (
        Dtss::build(w.table, sizes, cfg).expect("valid workload"),
        query,
    )
}

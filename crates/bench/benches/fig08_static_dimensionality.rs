//! Fig. 8 — static skyline: query cost vs. dimensionality (|TO|, |PO|).

mod common;

use criterion::{criterion_main, Criterion};
use datagen::Distribution;
use sdc::Variant;
use tss_core::StssConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_static_dimensionality");
    for (to_d, po_d) in [(2usize, 1usize), (3, 1), (2, 2), (3, 2)] {
        let mut p = common::static_params(Distribution::Independent);
        p.to_dims = to_d;
        p.po_dims = po_d;
        let stss = common::build_stss(&p, StssConfig::default());
        g.bench_function(format!("tss/to{to_d}_po{po_d}"), |b| {
            b.iter(|| stss.run().skyline.len())
        });
        let sdc = common::build_sdc(&p, Variant::SdcPlus);
        g.bench_function(format!("sdc+/to{to_d}_po{po_d}"), |b| {
            b.iter(|| sdc.run().skyline.len())
        });
    }
    g.finish();
}

fn benches() {
    let mut c = common::config();
    bench(&mut c);
}
criterion_main!(benches);

//! Ablation — the §IV-B design choices of sTSS: dyadic range index, fast
//! main-memory-R-tree checks, multi-cover MBB pruning; plus the SDC-family
//! ladder (BBS+ vs SDC vs SDC+) on identical data.

mod common;

use criterion::{criterion_main, Criterion};
use datagen::Distribution;
use sdc::Variant;
use tss_core::{RangeStrategy, StssConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_stss");
    let p = common::static_params(Distribution::Independent);
    for (name, cfg) in [
        ("default", StssConfig::default()),
        (
            "naive_ranges",
            StssConfig {
                range_strategy: RangeStrategy::Naive,
                ..Default::default()
            },
        ),
        (
            "full_ranges",
            StssConfig {
                range_strategy: RangeStrategy::Full,
                ..Default::default()
            },
        ),
        (
            "multi_cover",
            StssConfig {
                multi_cover_mbb: true,
                ..Default::default()
            },
        ),
    ] {
        let stss = common::build_stss(&p, cfg);
        g.bench_function(format!("tss/{name}"), |b| {
            b.iter(|| stss.run().skyline.len())
        });
    }
    for variant in [Variant::BbsPlus, Variant::Sdc, Variant::SdcPlus] {
        let idx = common::build_sdc(&p, variant);
        g.bench_function(format!("baseline/{variant:?}"), |b| {
            b.iter(|| idx.run().skyline.len())
        });
    }
    g.finish();
}

fn benches() {
    let mut c = common::config();
    bench(&mut c);
}
criterion_main!(benches);

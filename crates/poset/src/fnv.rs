//! A fixed-constant FNV-1a 64-bit hasher.
//!
//! The standard library's `DefaultHasher` explicitly reserves the right to
//! change its algorithm between rustc releases, which would silently move
//! every persisted fingerprint, golden-test digest and duplicate-map
//! iteration order under a toolchain bump. Everything in this workspace
//! that keys a cache or a multimap on a hash therefore uses this hasher:
//! the constants below are the published FNV-1a parameters and will never
//! change.
//!
//! FNV-1a is not collision-resistant — callers that cannot tolerate a
//! 64-bit collision must verify the hit against the original data (see
//! [`Dag::same_structure`](crate::Dag::same_structure) and the labeling /
//! result caches in `tss_core`).

use std::hash::Hasher;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A [`Hasher`] implementing 64-bit FNV-1a with the published constants —
/// stable across toolchains, platforms and process runs.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Hasher for Fnv64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    // The std defaults feed integers through `to_ne_bytes`, which would
    // make digests endian-dependent; pin them to little-endian instead.
    // `usize` additionally widens to `u64` so 32- and 64-bit targets agree.

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.write(&v.to_le_bytes());
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.write(&v.to_le_bytes());
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut h = Fnv64::new();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference values of the canonical FNV-1a 64 test suite.
        assert_eq!(hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_bytes(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn integer_writes_are_little_endian() {
        use std::hash::Hash;
        let digest = |v: u64| {
            let mut h = Fnv64::new();
            v.hash(&mut h);
            h.finish()
        };
        assert_ne!(digest(42), digest(43));
        // Integers hash exactly as their little-endian byte runs, on every
        // platform.
        assert_eq!(digest(0x0102_0304_0506_0708), {
            hash_bytes(&0x0102_0304_0506_0708u64.to_le_bytes())
        });
        let mut h = Fnv64::new();
        7usize.hash(&mut h);
        assert_eq!(h.finish(), hash_bytes(&7u64.to_le_bytes()));
        let mut h = Fnv64::new();
        9u128.hash(&mut h);
        assert_eq!(h.finish(), hash_bytes(&9u128.to_le_bytes()));
    }
}

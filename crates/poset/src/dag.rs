use crate::PosetError;

/// Identifier of a value in a partially ordered domain.
///
/// Values are dense `0..n` indices into the owning [`Dag`]. The newtype keeps
/// them from being confused with topological ordinals or post numbers, which
/// are also small integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The id as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ValueId {
    fn from(v: u32) -> Self {
        ValueId(v)
    }
}

/// A partially ordered domain represented as a directed acyclic graph.
///
/// An edge `x -> y` states that *x is preferred over y* (`x < y` in the
/// paper's notation, where smaller is better). The full preference relation
/// is the transitive closure: `x` is preferred over `y` iff a directed path
/// `x ⤳ y` exists. A [`Dag`] does **not** have to be transitively reduced
/// (a Hasse diagram); [`Dag::transitive_reduction`] produces the reduced
/// form when one is wanted.
///
/// Construction validates acyclicity, so every `Dag` in existence is a
/// genuine partial order.
#[derive(Debug, Clone)]
pub struct Dag {
    labels: Vec<String>,
    children: Vec<Vec<ValueId>>,
    parents: Vec<Vec<ValueId>>,
    num_edges: usize,
}

impl Dag {
    /// Builds a domain of `n` values (labeled `"v0"`, `"v1"`, …) with the
    /// given preference edges `(better, worse)`.
    pub fn from_edges(n: u32, edges: &[(u32, u32)]) -> Result<Self, PosetError> {
        let labels = (0..n).map(|i| format!("v{i}")).collect();
        Self::from_labeled(labels, edges)
    }

    /// Builds a domain with explicit labels and preference edges
    /// `(better, worse)` given as indices into `labels`.
    pub fn from_labeled(labels: Vec<String>, edges: &[(u32, u32)]) -> Result<Self, PosetError> {
        let n = labels.len() as u32;
        let mut children: Vec<Vec<ValueId>> = vec![Vec::new(); n as usize];
        let mut parents: Vec<Vec<ValueId>> = vec![Vec::new(); n as usize];
        let mut num_edges = 0usize;
        for &(u, v) in edges {
            if u == v {
                return Err(PosetError::SelfLoop { node: u });
            }
            for node in [u, v] {
                if node >= n {
                    return Err(PosetError::NodeOutOfRange { node, len: n });
                }
            }
            // Ignore duplicate parallel edges: they carry no extra preference.
            if children[u as usize].contains(&ValueId(v)) {
                continue;
            }
            children[u as usize].push(ValueId(v));
            parents[v as usize].push(ValueId(u));
            num_edges += 1;
        }
        for list in children.iter_mut().chain(parents.iter_mut()) {
            list.sort_unstable();
        }
        let dag = Dag {
            labels,
            children,
            parents,
            num_edges,
        };
        if let Some(witness) = dag.find_cycle_witness() {
            return Err(PosetError::Cycle { witness: witness.0 });
        }
        Ok(dag)
    }

    /// Number of values in the domain (`|V|` in the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True iff the domain has no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of preference edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The label of a value.
    #[inline]
    pub fn label(&self, v: ValueId) -> &str {
        &self.labels[v.idx()]
    }

    /// Looks a value up by label (linear scan; domains are small).
    pub fn id_of(&self, label: &str) -> Option<ValueId> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| ValueId(i as u32))
    }

    /// Direct successors of `v` — the values `v` is *immediately* preferred
    /// over (sorted by id).
    #[inline]
    pub fn children(&self, v: ValueId) -> &[ValueId] {
        &self.children[v.idx()]
    }

    /// Direct predecessors of `v` (sorted by id).
    #[inline]
    pub fn parents(&self, v: ValueId) -> &[ValueId] {
        &self.parents[v.idx()]
    }

    /// True iff the edge `u -> v` is present.
    pub fn has_edge(&self, u: ValueId, v: ValueId) -> bool {
        self.children[u.idx()].binary_search(&v).is_ok()
    }

    /// All values with no incoming edge — the maximal (most preferred)
    /// elements, the "roots" of the diagram.
    pub fn roots(&self) -> impl Iterator<Item = ValueId> + '_ {
        (0..self.len() as u32)
            .map(ValueId)
            .filter(move |v| self.parents[v.idx()].is_empty())
    }

    /// Iterates over all values.
    pub fn values(&self) -> impl Iterator<Item = ValueId> {
        (0..self.len() as u32).map(ValueId)
    }

    /// Iterates over all edges `(better, worse)`.
    pub fn edges(&self) -> impl Iterator<Item = (ValueId, ValueId)> + '_ {
        self.values()
            .flat_map(move |u| self.children(u).iter().map(move |&v| (u, v)))
    }

    /// A structural fingerprint of the DAG: a toolchain-stable FNV-1a hash
    /// over the domain cardinality and the (deterministically ordered) edge
    /// set.
    ///
    /// Two DAGs with the same value count and the same edges always share a
    /// fingerprint (labels are ignored — preferences, not names, decide
    /// dominance). The converse does **not** hold: this is a 64-bit hash,
    /// so structurally different DAGs *can* collide, and anything keyed on
    /// a fingerprint must verify a hit against the actual structure — see
    /// [`same_structure`](Self::same_structure), which is exactly that
    /// guard. Note also that it hashes the *edge set*, not the preference
    /// relation: an equivalent order written with redundant shortcut edges
    /// hashes differently — canonicalize with
    /// [`transitive_reduction`](Self::transitive_reduction) first when that
    /// matters.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = crate::Fnv64::new();
        self.len().hash(&mut h);
        for (u, v) in self.edges() {
            (u.0, v.0).hash(&mut h);
        }
        h.finish()
    }

    /// Exact structural equality: same value count and same edge set
    /// (labels ignored, like [`fingerprint`](Self::fingerprint)). This is
    /// the collision guard every fingerprint-keyed cache runs on a hit —
    /// two DAGs are interchangeable for dominance purposes iff this holds.
    pub fn same_structure(&self, other: &Dag) -> bool {
        self.len() == other.len()
            && self.num_edges == other.num_edges
            && self.edges().eq(other.edges())
    }

    /// Length of the longest directed path, in edges (the paper's DAG
    /// *height* `h` is the diameter of the lattice this was sampled from;
    /// for a full lattice the two coincide).
    pub fn height(&self) -> usize {
        let order = self.topo_node_order();
        let mut depth = vec![0usize; self.len()];
        let mut best = 0;
        for &v in &order {
            for &c in self.children(v) {
                let d = depth[v.idx()] + 1;
                if d > depth[c.idx()] {
                    depth[c.idx()] = d;
                    best = best.max(d);
                }
            }
        }
        best
    }

    /// Produces the transitive reduction (Hasse diagram): drops every edge
    /// `u -> v` for which another path `u ⤳ v` exists.
    ///
    /// Complexity `O(V · E)` with bitset reachability — fine for the domain
    /// sizes of the paper (≤ ~1000 values).
    pub fn transitive_reduction(&self) -> Dag {
        let reach = crate::Reachability::build(self);
        let mut kept: Vec<(u32, u32)> = Vec::with_capacity(self.num_edges);
        for (u, v) in self.edges() {
            // The edge is redundant iff some *other* child of u reaches v.
            let redundant = self
                .children(u)
                .iter()
                .any(|&c| c != v && reach.reaches(c, v));
            if !redundant {
                kept.push((u.0, v.0));
            }
        }
        Dag::from_labeled(self.labels.clone(), &kept)
            .expect("reduction of an acyclic graph is acyclic")
    }

    /// A topological order over nodes computed with deterministic (smallest
    /// id first) Kahn's algorithm. Internal helper; the public, ordinal-aware
    /// interface is [`crate::TopoOrder`].
    pub(crate) fn topo_node_order(&self) -> Vec<ValueId> {
        let n = self.len();
        let mut indeg: Vec<u32> = (0..n).map(|i| self.parents[i].len() as u32).collect();
        // A simple binary heap keyed by id keeps the order deterministic and
        // matches the paper's convention of breaking ties by label order.
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<u32>> = (0..n as u32)
            .filter(|&i| indeg[i as usize] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(u)) = ready.pop() {
            let u = ValueId(u);
            order.push(u);
            for &c in self.children(u) {
                indeg[c.idx()] -= 1;
                if indeg[c.idx()] == 0 {
                    ready.push(std::cmp::Reverse(c.0));
                }
            }
        }
        order
    }

    /// Returns a node on a cycle if one exists (used during validation).
    fn find_cycle_witness(&self) -> Option<ValueId> {
        let order = self.topo_node_order();
        if order.len() == self.len() {
            None
        } else {
            // Any node missing from the Kahn order lies on (or behind) a cycle.
            let mut seen = vec![false; self.len()];
            for v in &order {
                seen[v.idx()] = true;
            }
            (0..self.len() as u32).map(ValueId).find(|v| !seen[v.idx()])
        }
    }

    /// The 9-value example domain of the paper's Fig. 2(a). The spanning
    /// tree the paper draws (`a→b`, `b→{c,d,e}`, `c→f`, `d→g`, `g→{h,i}`;
    /// non-tree edges `a→c`, `c→g`, `e→g`, `f→h`) is available as
    /// [`crate::SpanningTree::paper_example`].
    ///
    /// Used pervasively by tests and doc examples.
    pub fn paper_example() -> Dag {
        let labels: Vec<String> = ["a", "b", "c", "d", "e", "f", "g", "h", "i"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        // Ids:  a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8
        let edges = [
            (0, 1), // a -> b   (tree)
            (0, 2), // a -> c   (non-tree)
            (1, 2), // b -> c   (tree)
            (1, 3), // b -> d   (tree)
            (1, 4), // b -> e   (tree)
            (2, 5), // c -> f   (tree)
            (2, 6), // c -> g   (non-tree)
            (3, 6), // d -> g   (tree)
            (4, 6), // e -> g   (non-tree)
            (5, 7), // f -> h   (non-tree)
            (6, 7), // g -> h   (tree)
            (6, 8), // g -> i   (tree)
        ];
        Dag::from_labeled(labels, &edges).expect("example DAG is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_exposes_edges() {
        let d = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.num_edges(), 2);
        assert!(d.has_edge(ValueId(0), ValueId(1)));
        assert!(!d.has_edge(ValueId(0), ValueId(2)));
        assert_eq!(d.children(ValueId(0)), &[ValueId(1)]);
        assert_eq!(d.parents(ValueId(2)), &[ValueId(1)]);
    }

    #[test]
    fn rejects_self_loop() {
        let err = Dag::from_edges(2, &[(0, 0)]).unwrap_err();
        assert_eq!(err, PosetError::SelfLoop { node: 0 });
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Dag::from_edges(2, &[(0, 5)]).unwrap_err();
        assert_eq!(err, PosetError::NodeOutOfRange { node: 5, len: 2 });
    }

    #[test]
    fn rejects_cycle() {
        let err = Dag::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap_err();
        assert!(matches!(err, PosetError::Cycle { .. }));
    }

    #[test]
    fn duplicate_edges_are_coalesced() {
        let d = Dag::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        assert_eq!(d.num_edges(), 1);
    }

    #[test]
    fn roots_are_maximal_elements() {
        let d = Dag::from_edges(4, &[(0, 2), (1, 2), (2, 3)]).unwrap();
        let roots: Vec<_> = d.roots().collect();
        assert_eq!(roots, vec![ValueId(0), ValueId(1)]);
    }

    #[test]
    fn isolated_nodes_are_roots_and_leaves() {
        let d = Dag::from_edges(3, &[(0, 1)]).unwrap();
        let roots: Vec<_> = d.roots().collect();
        assert!(roots.contains(&ValueId(2)));
        assert!(d.children(ValueId(2)).is_empty());
    }

    #[test]
    fn height_of_chain_and_diamond() {
        let chain = Dag::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(chain.height(), 3);
        let diamond = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(diamond.height(), 2);
        let empty = Dag::from_edges(3, &[]).unwrap();
        assert_eq!(empty.height(), 0);
    }

    #[test]
    fn transitive_reduction_drops_shortcut() {
        let d = Dag::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let h = d.transitive_reduction();
        assert_eq!(h.num_edges(), 2);
        assert!(h.has_edge(ValueId(0), ValueId(1)));
        assert!(h.has_edge(ValueId(1), ValueId(2)));
        assert!(!h.has_edge(ValueId(0), ValueId(2)));
    }

    #[test]
    fn transitive_reduction_keeps_diamond() {
        let d = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let h = d.transitive_reduction();
        assert_eq!(h.num_edges(), 4);
    }

    #[test]
    fn paper_example_shape() {
        let d = Dag::paper_example();
        assert_eq!(d.len(), 9);
        assert_eq!(d.num_edges(), 12);
        assert_eq!(d.roots().count(), 1);
        assert_eq!(d.label(ValueId(0)), "a");
        assert_eq!(d.id_of("i"), Some(ValueId(8)));
    }

    #[test]
    fn fingerprint_tracks_the_preference_relation() {
        let a = Dag::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let same = Dag::from_edges(4, &[(1, 2), (0, 1), (0, 1)]).unwrap();
        assert_eq!(a.fingerprint(), same.fingerprint(), "edge order/dups");
        // Labels are ignored: only ids and edges matter.
        let relabeled = Dag::from_labeled(
            vec!["w".into(), "x".into(), "y".into(), "z".into()],
            &[(0, 1), (1, 2)],
        )
        .unwrap();
        assert_eq!(a.fingerprint(), relabeled.fingerprint());
        // Any structural change moves the fingerprint.
        let more = Dag::from_edges(4, &[(0, 1), (1, 2), (0, 3)]).unwrap();
        let bigger = Dag::from_edges(5, &[(0, 1), (1, 2)]).unwrap();
        assert_ne!(a.fingerprint(), more.fingerprint());
        assert_ne!(a.fingerprint(), bigger.fingerprint());
    }

    #[test]
    fn same_structure_is_exact_and_label_blind() {
        let a = Dag::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let relabeled = Dag::from_labeled(
            vec!["w".into(), "x".into(), "y".into(), "z".into()],
            &[(1, 2), (0, 1)],
        )
        .unwrap();
        assert!(a.same_structure(&relabeled), "labels and edge input order");
        let more = Dag::from_edges(4, &[(0, 1), (1, 2), (0, 3)]).unwrap();
        let bigger = Dag::from_edges(5, &[(0, 1), (1, 2)]).unwrap();
        let shifted = Dag::from_edges(4, &[(0, 1), (1, 3)]).unwrap();
        assert!(!a.same_structure(&more));
        assert!(!a.same_structure(&bigger));
        assert!(!a.same_structure(&shifted), "same counts, different edges");
    }

    #[test]
    fn fingerprint_is_toolchain_stable() {
        // FNV-1a with pinned constants: this exact value must never move
        // across toolchains or platforms, or every persisted cache key and
        // golden digest moves with it.
        let d = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(d.fingerprint(), 0x3ecd_4d99_6119_82d4);
    }

    #[test]
    fn topo_node_order_respects_edges() {
        let d = Dag::paper_example();
        let order = d.topo_node_order();
        assert_eq!(order.len(), d.len());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for (u, v) in d.edges() {
            assert!(pos[&u] < pos[&v], "edge {u:?}->{v:?} violated");
        }
    }
}

use crate::{Dag, Interval, PosetError, ValueId};

/// How the spanning tree is extracted from the DAG.
///
/// Any spanning forest whose edges are DAG edges yields a *correct* labeling;
/// the choice only affects how many preferences the single-interval
/// m-labeling captures (and hence how many false hits the SDC baselines
/// suffer — §VI's density experiment turns exactly on this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpanningStrategy {
    /// Depth-first discovery tree: roots in id order, children in id order;
    /// the edge that first discovers a node becomes its tree edge.
    #[default]
    Dfs,
    /// Each node's tree parent is its smallest-id DAG parent.
    MinParent,
    /// Each node's tree parent is its largest-id DAG parent.
    MaxParent,
}

/// A spanning forest of a [`Dag`] together with the postorder interval
/// labels `[minpost, post]` of Agrawal et al. (§II-B).
///
/// * Every node has at most one *tree parent*; tree edges are a subset of the
///   DAG's edges, so tree-ancestorship implies preference.
/// * `post` numbers come from a postorder traversal of the forest (roots and
///   children visited in deterministic order), 1-based.
/// * `minpost(v)` is the smallest post number in `v`'s subtree, so the
///   subtree of `v` occupies exactly the label interval
///   `[minpost(v), post(v)]`, and interval containment ⟺ tree ancestry.
#[derive(Debug, Clone)]
pub struct SpanningTree {
    parent: Vec<Option<ValueId>>,
    tree_children: Vec<Vec<ValueId>>,
    post: Vec<u32>,
    minpost: Vec<u32>,
}

impl SpanningTree {
    /// Extracts a spanning forest with the given strategy.
    pub fn build(dag: &Dag, strategy: SpanningStrategy) -> Self {
        let parent = match strategy {
            SpanningStrategy::Dfs => dfs_parents(dag),
            SpanningStrategy::MinParent => dag
                .values()
                .map(|v| dag.parents(v).first().copied())
                .collect(),
            SpanningStrategy::MaxParent => dag
                .values()
                .map(|v| dag.parents(v).last().copied())
                .collect(),
        };
        Self::from_parent_array(dag, parent)
    }

    /// Builds a spanning forest from an explicit tree-parent assignment.
    ///
    /// Validates that every assigned parent edge is a real DAG edge. Nodes
    /// with `None` become forest roots (mandatory for DAG roots, legal for
    /// any node — remaining in-edges are simply classified non-tree).
    pub fn from_parents(dag: &Dag, parents: Vec<Option<ValueId>>) -> Result<Self, PosetError> {
        assert_eq!(parents.len(), dag.len(), "one parent slot per value");
        for (i, p) in parents.iter().enumerate() {
            if let Some(p) = p {
                if p.idx() >= dag.len() {
                    return Err(PosetError::NodeOutOfRange {
                        node: p.0,
                        len: dag.len() as u32,
                    });
                }
                if !dag.has_edge(*p, ValueId(i as u32)) {
                    return Err(PosetError::UnknownLabel {
                        label: format!(
                            "tree edge {} -> {} is not a DAG edge",
                            dag.label(*p),
                            dag.label(ValueId(i as u32))
                        ),
                    });
                }
            }
        }
        Ok(Self::from_parent_array(dag, parents))
    }

    fn from_parent_array(dag: &Dag, parent: Vec<Option<ValueId>>) -> Self {
        let n = dag.len();
        let mut tree_children: Vec<Vec<ValueId>> = vec![Vec::new(); n];
        for v in dag.values() {
            if let Some(p) = parent[v.idx()] {
                tree_children[p.idx()].push(v);
            }
        }
        for list in &mut tree_children {
            list.sort_unstable();
        }
        let (post, minpost) = postorder(n, &parent, &tree_children);
        SpanningTree {
            parent,
            tree_children,
            post,
            minpost,
        }
    }

    /// The tree parent of `v`, or `None` for forest roots.
    #[inline]
    pub fn parent(&self, v: ValueId) -> Option<ValueId> {
        self.parent[v.idx()]
    }

    /// The tree children of `v`, sorted by id.
    #[inline]
    pub fn tree_children(&self, v: ValueId) -> &[ValueId] {
        &self.tree_children[v.idx()]
    }

    /// True iff `u -> v` is a tree edge.
    #[inline]
    pub fn is_tree_edge(&self, u: ValueId, v: ValueId) -> bool {
        self.parent[v.idx()] == Some(u)
    }

    /// The 1-based postorder number of `v`.
    #[inline]
    pub fn post(&self, v: ValueId) -> u32 {
        self.post[v.idx()]
    }

    /// The smallest postorder number in `v`'s subtree.
    #[inline]
    pub fn minpost(&self, v: ValueId) -> u32 {
        self.minpost[v.idx()]
    }

    /// The `[minpost, post]` label of `v` — the "Initial" column of
    /// Fig. 2(d).
    #[inline]
    pub fn tree_interval(&self, v: ValueId) -> Interval {
        Interval::new(self.minpost[v.idx()], self.post[v.idx()])
    }

    /// Number of values.
    #[inline]
    pub fn len(&self) -> usize {
        self.post.len()
    }

    /// True iff the forest is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.post.is_empty()
    }

    /// The exact spanning tree the paper draws in Fig. 2(a) for
    /// [`Dag::paper_example`]: tree edges `a→b, b→{c,d,e}, c→f, d→g, g→{h,i}`.
    ///
    /// (No algorithmic strategy reproduces this particular tree — the
    /// paper's choice among equally valid parents is arbitrary — so tests
    /// that check Fig. 2(d) verbatim use this explicit assignment.)
    pub fn paper_example(dag: &Dag) -> Self {
        let id = |s: &str| dag.id_of(s).expect("paper example label");
        let mut parents = vec![None; dag.len()];
        for (child, parent) in [
            ("b", "a"),
            ("c", "b"),
            ("d", "b"),
            ("e", "b"),
            ("f", "c"),
            ("g", "d"),
            ("h", "g"),
            ("i", "g"),
        ] {
            parents[id(child).idx()] = Some(id(parent));
        }
        Self::from_parents(dag, parents).expect("paper tree edges are DAG edges")
    }
}

/// DFS discovery-tree parents: roots in id order, children in id order.
fn dfs_parents(dag: &Dag) -> Vec<Option<ValueId>> {
    let n = dag.len();
    let mut parent: Vec<Option<ValueId>> = vec![None; n];
    let mut discovered = vec![false; n];
    let mut stack: Vec<ValueId> = Vec::new();
    for root in dag.roots() {
        if discovered[root.idx()] {
            continue;
        }
        discovered[root.idx()] = true;
        stack.push(root);
        while let Some(u) = stack.pop() {
            // Push children in reverse id order so they are *visited* in
            // ascending id order.
            for &c in dag.children(u).iter().rev() {
                if !discovered[c.idx()] {
                    discovered[c.idx()] = true;
                    parent[c.idx()] = Some(u);
                    stack.push(c);
                }
            }
        }
    }
    parent
}

/// Iterative postorder over the forest; returns 1-based `post` and `minpost`.
fn postorder(
    n: usize,
    parent: &[Option<ValueId>],
    tree_children: &[Vec<ValueId>],
) -> (Vec<u32>, Vec<u32>) {
    let mut post = vec![0u32; n];
    let mut minpost = vec![u32::MAX; n];
    let mut counter = 0u32;
    // Frame: (node, next child index to visit).
    let mut stack: Vec<(ValueId, usize)> = Vec::new();
    for (root_idx, par) in parent.iter().enumerate().take(n) {
        if par.is_some() {
            continue;
        }
        stack.push((ValueId(root_idx as u32), 0));
        while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
            let kids = &tree_children[v.idx()];
            if *ci < kids.len() {
                let child = kids[*ci];
                *ci += 1;
                stack.push((child, 0));
            } else {
                counter += 1;
                post[v.idx()] = counter;
                let own_min = tree_children[v.idx()]
                    .iter()
                    .map(|c| minpost[c.idx()])
                    .min()
                    .unwrap_or(counter)
                    .min(counter);
                minpost[v.idx()] = own_min;
                stack.pop();
            }
        }
    }
    debug_assert_eq!(counter as usize, n, "postorder must number every node");
    (post, minpost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tree_reproduces_fig2d_initial_column() {
        let dag = Dag::paper_example();
        let st = SpanningTree::paper_example(&dag);
        let iv = |s: &str| st.tree_interval(dag.id_of(s).unwrap());
        assert_eq!(iv("a"), Interval::new(1, 9));
        assert_eq!(iv("b"), Interval::new(1, 8));
        assert_eq!(iv("c"), Interval::new(1, 2));
        assert_eq!(iv("d"), Interval::new(3, 6));
        assert_eq!(iv("e"), Interval::new(7, 7));
        assert_eq!(iv("f"), Interval::new(1, 1));
        assert_eq!(iv("g"), Interval::new(3, 5));
        assert_eq!(iv("h"), Interval::new(3, 3));
        assert_eq!(iv("i"), Interval::new(4, 4));
    }

    #[test]
    fn tree_edges_are_dag_edges_for_all_strategies() {
        let dag = Dag::paper_example();
        for strat in [
            SpanningStrategy::Dfs,
            SpanningStrategy::MinParent,
            SpanningStrategy::MaxParent,
        ] {
            let st = SpanningTree::build(&dag, strat);
            for v in dag.values() {
                if let Some(p) = st.parent(v) {
                    assert!(dag.has_edge(p, v), "{strat:?}: tree edge must be DAG edge");
                }
            }
        }
    }

    #[test]
    fn every_non_root_gets_a_parent() {
        let dag = Dag::paper_example();
        for strat in [
            SpanningStrategy::Dfs,
            SpanningStrategy::MinParent,
            SpanningStrategy::MaxParent,
        ] {
            let st = SpanningTree::build(&dag, strat);
            for v in dag.values() {
                assert_eq!(
                    st.parent(v).is_none(),
                    dag.parents(v).is_empty(),
                    "{strat:?}"
                );
            }
        }
    }

    #[test]
    fn posts_are_a_permutation_and_subtrees_are_contiguous() {
        let dag = Dag::paper_example();
        let st = SpanningTree::build(&dag, SpanningStrategy::Dfs);
        let mut posts: Vec<_> = dag.values().map(|v| st.post(v)).collect();
        posts.sort_unstable();
        assert_eq!(posts, (1..=9).collect::<Vec<_>>());
        // Child subtree interval nested in parent's.
        for v in dag.values() {
            if let Some(p) = st.parent(v) {
                assert!(st.tree_interval(p).contains(&st.tree_interval(v)));
                assert!(st.post(p) > st.post(v), "postorder: parent after child");
            }
        }
    }

    #[test]
    fn containment_iff_tree_ancestry() {
        let dag = Dag::paper_example();
        let st = SpanningTree::build(&dag, SpanningStrategy::Dfs);
        // Oracle: walk parents.
        let is_ancestor = |a: ValueId, d: ValueId| {
            let mut cur = Some(d);
            while let Some(x) = cur {
                if x == a {
                    return true;
                }
                cur = st.parent(x);
            }
            false
        };
        for a in dag.values() {
            for d in dag.values() {
                assert_eq!(
                    st.tree_interval(a).contains(&st.tree_interval(d)),
                    is_ancestor(a, d),
                    "{} vs {}",
                    dag.label(a),
                    dag.label(d)
                );
            }
        }
    }

    #[test]
    fn from_parents_rejects_non_edges() {
        let dag = Dag::paper_example();
        let mut parents = vec![None; dag.len()];
        // h's parent set is {f, g}; "a" is not a DAG parent of h.
        parents[dag.id_of("h").unwrap().idx()] = Some(dag.id_of("a").unwrap());
        assert!(SpanningTree::from_parents(&dag, parents).is_err());
    }

    #[test]
    fn forest_with_multiple_roots() {
        // Two disjoint chains.
        let dag = Dag::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let st = SpanningTree::build(&dag, SpanningStrategy::Dfs);
        assert_eq!(st.parent(ValueId(0)), None);
        assert_eq!(st.parent(ValueId(2)), None);
        let mut posts: Vec<_> = dag.values().map(|v| st.post(v)).collect();
        posts.sort_unstable();
        assert_eq!(posts, vec![1, 2, 3, 4]);
    }

    #[test]
    fn single_node_domain() {
        let dag = Dag::from_edges(1, &[]).unwrap();
        let st = SpanningTree::build(&dag, SpanningStrategy::Dfs);
        assert_eq!(st.tree_interval(ValueId(0)), Interval::new(1, 1));
        assert!(!st.is_empty());
        assert_eq!(st.len(), 1);
    }
}

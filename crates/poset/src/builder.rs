use crate::{Dag, PosetError, ValueId};
use std::collections::HashMap;

/// Ergonomic construction of a partial order from labeled preference pairs —
/// the way a *dynamic skyline query* states its preferences (§V), e.g. the
/// airline orders of Table I.
///
/// ```
/// use poset::PartialOrderBuilder;
///
/// // Table I, second row: "the only preference is that of b over a".
/// let mut b = PartialOrderBuilder::new();
/// b.values(["a", "b", "c", "d"]);
/// b.prefer("b", "a").unwrap();
/// let dag = b.build().unwrap();
/// assert_eq!(dag.len(), 4);
/// assert!(dag.has_edge(dag.id_of("b").unwrap(), dag.id_of("a").unwrap()));
/// ```
#[derive(Debug, Default, Clone)]
pub struct PartialOrderBuilder {
    labels: Vec<String>,
    index: HashMap<String, ValueId>,
    edges: Vec<(u32, u32)>,
}

impl PartialOrderBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a value; returns its id. Registering an existing label
    /// returns the existing id (idempotent).
    pub fn value(&mut self, label: &str) -> ValueId {
        if let Some(&id) = self.index.get(label) {
            return id;
        }
        let id = ValueId(self.labels.len() as u32);
        self.labels.push(label.to_string());
        self.index.insert(label.to_string(), id);
        id
    }

    /// Registers several values at once.
    pub fn values<'a>(&mut self, labels: impl IntoIterator<Item = &'a str>) {
        for l in labels {
            self.value(l);
        }
    }

    /// States that `better` is preferred over `worse`. Both labels are
    /// auto-registered. Fails fast on a self-preference; cycles introduced
    /// across several calls are caught by [`build`](Self::build).
    pub fn prefer(&mut self, better: &str, worse: &str) -> Result<(), PosetError> {
        if better == worse {
            return Err(PosetError::ContradictoryPreference {
                better: better.to_string(),
                worse: worse.to_string(),
            });
        }
        let b = self.value(better);
        let w = self.value(worse);
        self.edges.push((b.0, w.0));
        Ok(())
    }

    /// States a chain of preferences `labels[0] < labels[1] < …`.
    pub fn chain<'a>(
        &mut self,
        labels: impl IntoIterator<Item = &'a str>,
    ) -> Result<(), PosetError> {
        let labels: Vec<&str> = labels.into_iter().collect();
        for pair in labels.windows(2) {
            self.prefer(pair[0], pair[1])?;
        }
        Ok(())
    }

    /// Finalizes the domain, validating acyclicity and transitively reducing
    /// to a Hasse diagram (so redundant stated preferences are harmless).
    pub fn build(self) -> Result<Dag, PosetError> {
        let dag = Dag::from_labeled(self.labels, &self.edges)?;
        Ok(dag.transitive_reduction())
    }

    /// Finalizes without the Hasse reduction — keeps the stated edges as-is.
    pub fn build_raw(self) -> Result<Dag, PosetError> {
        Dag::from_labeled(self.labels, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reachability;

    #[test]
    fn table1_first_airline_order() {
        // a over b and c; any company over d; b, c incomparable.
        let mut b = PartialOrderBuilder::new();
        b.values(["a", "b", "c", "d"]);
        b.prefer("a", "b").unwrap();
        b.prefer("a", "c").unwrap();
        b.prefer("b", "d").unwrap();
        b.prefer("c", "d").unwrap();
        // A redundant transitive statement must be tolerated and reduced.
        b.prefer("a", "d").unwrap();
        let dag = b.build().unwrap();
        assert_eq!(dag.num_edges(), 4, "a->d is transitively redundant");
        let r = Reachability::build(&dag);
        let id = |s: &str| dag.id_of(s).unwrap();
        assert!(r.preferred(id("a"), id("d")));
        assert!(!r.preferred(id("b"), id("c")));
        assert!(!r.preferred(id("c"), id("b")));
    }

    #[test]
    fn value_is_idempotent() {
        let mut b = PartialOrderBuilder::new();
        let x = b.value("x");
        let x2 = b.value("x");
        assert_eq!(x, x2);
        assert_eq!(b.build().unwrap().len(), 1);
    }

    #[test]
    fn chain_builds_total_order() {
        let mut b = PartialOrderBuilder::new();
        b.chain(["gold", "silver", "bronze"]).unwrap();
        let dag = b.build().unwrap();
        let r = Reachability::build(&dag);
        assert!(r.preferred(dag.id_of("gold").unwrap(), dag.id_of("bronze").unwrap()));
    }

    #[test]
    fn self_preference_rejected() {
        let mut b = PartialOrderBuilder::new();
        assert!(b.prefer("x", "x").is_err());
    }

    #[test]
    fn cycle_rejected_at_build() {
        let mut b = PartialOrderBuilder::new();
        b.prefer("x", "y").unwrap();
        b.prefer("y", "z").unwrap();
        b.prefer("z", "x").unwrap();
        assert!(matches!(b.build(), Err(PosetError::Cycle { .. })));
    }

    #[test]
    fn isolated_values_allowed() {
        let mut b = PartialOrderBuilder::new();
        b.values(["a", "b", "c"]);
        b.prefer("a", "b").unwrap();
        let dag = b.build().unwrap();
        assert_eq!(dag.len(), 3);
        let c = dag.id_of("c").unwrap();
        assert!(dag.children(c).is_empty() && dag.parents(c).is_empty());
    }
}

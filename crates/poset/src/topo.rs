use crate::{Dag, ValueId};

/// A topological sort of a [`Dag`], mapping each value to an *ordinal* in the
/// artificial totally ordered domain the paper calls `A_TO` (§III-B).
///
/// The mapping preserves every preference relationship — if `x` is preferred
/// over `y` then `ordinal(x) < ordinal(y)` — and artificially orders
/// incomparable values. Any monotone preference function over the ordinals is
/// therefore monotone over the original partial order, which is exactly what
/// gives TSS the *precedence* property (Property 1).
///
/// Ordinals are 1-based, matching the paper ("1 is assigned to a, 2 to b, …").
#[derive(Debug, Clone)]
pub struct TopoOrder {
    /// `ordinal[v] = position of v in the sort, 1-based`.
    ordinal: Vec<u32>,
    /// `by_ordinal[i] = the value with ordinal i+1`.
    by_ordinal: Vec<ValueId>,
}

impl TopoOrder {
    /// Computes a deterministic topological sort (Kahn's algorithm, smallest
    /// id first among ready nodes, so equal inputs give equal orders).
    pub fn build(dag: &Dag) -> Self {
        let order = dag.topo_node_order();
        debug_assert_eq!(order.len(), dag.len(), "Dag invariant: acyclic");
        let mut ordinal = vec![0u32; dag.len()];
        for (i, &v) in order.iter().enumerate() {
            ordinal[v.idx()] = i as u32 + 1;
        }
        TopoOrder {
            ordinal,
            by_ordinal: order,
        }
    }

    /// Number of values in the underlying domain.
    #[inline]
    pub fn len(&self) -> usize {
        self.by_ordinal.len()
    }

    /// True iff the domain is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.by_ordinal.is_empty()
    }

    /// The 1-based ordinal of value `v` in the sort — its coordinate in the
    /// constructed `A_TO` domain.
    #[inline]
    pub fn ordinal(&self, v: ValueId) -> u32 {
        self.ordinal[v.idx()]
    }

    /// The value holding 1-based ordinal `ord`.
    #[inline]
    pub fn value_at(&self, ord: u32) -> ValueId {
        self.by_ordinal[(ord - 1) as usize]
    }

    /// Values in topological order (ordinal 1 first).
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.by_ordinal.iter().copied()
    }

    /// Values in *reverse* topological order — every value is visited after
    /// all values it is preferred over (used by the labeling DPs).
    #[inline]
    pub fn iter_rev(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.by_ordinal.iter().rev().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinals_respect_preferences() {
        let d = Dag::paper_example();
        let t = TopoOrder::build(&d);
        for (u, v) in d.edges() {
            assert!(t.ordinal(u) < t.ordinal(v));
        }
    }

    #[test]
    fn paper_example_is_alphabetical() {
        // Fig. 2(c): "one admissible topological sort … a < b < c < ··· < i".
        // Our deterministic tie-break (smallest id first) reproduces it.
        let d = Dag::paper_example();
        let t = TopoOrder::build(&d);
        for (i, label) in ["a", "b", "c", "d", "e", "f", "g", "h", "i"]
            .iter()
            .enumerate()
        {
            let v = d.id_of(label).unwrap();
            assert_eq!(t.ordinal(v), i as u32 + 1, "ordinal of {label}");
            assert_eq!(t.value_at(i as u32 + 1), v);
        }
    }

    #[test]
    fn ordinals_are_a_permutation() {
        let d = Dag::from_edges(6, &[(5, 0), (3, 1), (0, 1)]).unwrap();
        let t = TopoOrder::build(&d);
        let mut seen: Vec<_> = d.values().map(|v| t.ordinal(v)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn iter_rev_visits_successors_first() {
        let d = Dag::paper_example();
        let t = TopoOrder::build(&d);
        let mut visited = vec![false; d.len()];
        for v in t.iter_rev() {
            for &c in d.children(v) {
                assert!(visited[c.idx()], "child visited before parent in rev order");
            }
            visited[v.idx()] = true;
        }
    }

    #[test]
    fn empty_domain() {
        let d = Dag::from_edges(0, &[]).unwrap();
        let t = TopoOrder::build(&d);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}

use std::fmt;

/// A closed integer interval `[lo, hi]` of postorder numbers, the
/// `[minpost, post]` labels of §II-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Interval {
    pub lo: u32,
    pub hi: u32,
}

impl Interval {
    /// Creates `[lo, hi]`. Panics if `lo > hi` (empty intervals never arise
    /// from postorder labeling).
    #[inline]
    pub fn new(lo: u32, hi: u32) -> Self {
        assert!(lo <= hi, "interval [{lo},{hi}] is empty");
        Interval { lo, hi }
    }

    /// A single point `[p, p]`.
    #[inline]
    pub fn point(p: u32) -> Self {
        Interval { lo: p, hi: p }
    }

    /// True iff `self` contains `other` (covers or coincides — the relation
    /// used by Definition 1 of the paper).
    #[inline]
    pub fn contains(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// True iff `self` contains the integer `p`.
    #[inline]
    pub fn contains_point(&self, p: u32) -> bool {
        self.lo <= p && p <= self.hi
    }

    /// Number of integers covered.
    #[inline]
    pub fn len(&self) -> u32 {
        self.hi - self.lo + 1
    }

    /// Closed intervals cover at least one integer; present for API
    /// completeness alongside [`Interval::len`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]", self.lo, self.hi)
    }
}

/// A normalized set of integer intervals: sorted by `lo`, pairwise disjoint
/// and non-adjacent (so the representation of a set of integers is unique).
///
/// This is the "final" column of Fig. 2(d): after propagation, intervals that
/// overlap **or are adjacent** are merged (the paper merges `[1,2]` and
/// `[3,5]` into `[1,5]`) and subsumed intervals are dropped. An
/// `IntervalSet` therefore represents exactly a set of postorder numbers.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct IntervalSet {
    ivs: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    #[inline]
    pub fn empty() -> Self {
        IntervalSet { ivs: Vec::new() }
    }

    /// A set holding one interval.
    pub fn single(iv: Interval) -> Self {
        IntervalSet { ivs: vec![iv] }
    }

    /// Builds from arbitrary (unsorted, overlapping) intervals, normalizing.
    pub fn from_intervals(mut ivs: Vec<Interval>) -> Self {
        ivs.sort_unstable_by_key(|iv| (iv.lo, iv.hi));
        let mut out: Vec<Interval> = Vec::with_capacity(ivs.len());
        for iv in ivs {
            match out.last_mut() {
                // Merge overlapping or adjacent integer intervals:
                // [1,2] + [3,5] -> [1,5].
                Some(last) if iv.lo <= last.hi.saturating_add(1) => {
                    last.hi = last.hi.max(iv.hi);
                }
                _ => out.push(iv),
            }
        }
        IntervalSet { ivs: out }
    }

    /// The normalized intervals, sorted by `lo`.
    #[inline]
    pub fn intervals(&self) -> &[Interval] {
        &self.ivs
    }

    /// Number of maximal intervals (runs).
    #[inline]
    pub fn len(&self) -> usize {
        self.ivs.len()
    }

    /// True iff no integers are covered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// Total number of integers covered.
    pub fn cardinality(&self) -> u64 {
        self.ivs.iter().map(|iv| iv.len() as u64).sum()
    }

    /// True iff some interval of the set fully contains `iv`.
    ///
    /// Binary search on the sorted runs: `O(log n)`.
    pub fn covers_interval(&self, iv: &Interval) -> bool {
        // Find the last run with lo <= iv.lo; only it can contain iv.
        match self.ivs.partition_point(|run| run.lo <= iv.lo) {
            0 => false,
            i => self.ivs[i - 1].contains(iv),
        }
    }

    /// True iff the integer `p` is in the set.
    pub fn covers_point(&self, p: u32) -> bool {
        self.covers_interval(&Interval::point(p))
    }

    /// True iff every run of `other` is contained in some run of `self` —
    /// i.e. `other ⊆ self` as sets of integers. This is exactly the
    /// *t-preference* test of Definition 1 once both sides are normalized.
    pub fn covers_set(&self, other: &IntervalSet) -> bool {
        // Both sides are sorted, so a linear merge beats repeated binary
        // searches when `other` has many runs.
        let mut i = 0;
        for run in &other.ivs {
            while i < self.ivs.len() && self.ivs[i].hi < run.hi {
                i += 1;
            }
            if i == self.ivs.len() || !self.ivs[i].contains(run) {
                return false;
            }
        }
        true
    }

    /// Union with another set, producing a normalized set.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut all = Vec::with_capacity(self.ivs.len() + other.ivs.len());
        all.extend_from_slice(&self.ivs);
        all.extend_from_slice(&other.ivs);
        IntervalSet::from_intervals(all)
    }

    /// In-place union used by the labeling DP hot loop.
    pub fn union_in_place(&mut self, other: &IntervalSet) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.ivs.extend_from_slice(&other.ivs);
            return;
        }
        // Fast path: `other` already covered (common once labels saturate).
        if self.covers_set(other) {
            return;
        }
        let merged = self.union(other);
        *self = merged;
    }

    /// Iterates over every covered integer (ascending). Test helper.
    pub fn iter_points(&self) -> impl Iterator<Item = u32> + '_ {
        self.ivs.iter().flat_map(|iv| iv.lo..=iv.hi)
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, iv) in self.ivs.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> Self {
        IntervalSet::from_intervals(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ivs: &[(u32, u32)]) -> IntervalSet {
        ivs.iter().map(|&(l, h)| Interval::new(l, h)).collect()
    }

    #[test]
    fn interval_contains() {
        let big = Interval::new(1, 9);
        assert!(big.contains(&Interval::new(3, 6)));
        assert!(big.contains(&big));
        assert!(!Interval::new(3, 6).contains(&big));
        assert!(!Interval::new(1, 3).contains(&Interval::new(3, 5)));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_interval_panics() {
        let _ = Interval::new(5, 4);
    }

    #[test]
    fn normalization_merges_adjacent_integer_intervals() {
        // The Fig. 2(d) merge for node c: {[1,2], [3,3], [3,5]} -> [1,5].
        let s = set(&[(1, 2), (3, 3), (3, 5)]);
        assert_eq!(s.intervals(), &[Interval::new(1, 5)]);
    }

    #[test]
    fn normalization_keeps_gaps() {
        // Node f of Fig. 2(d): {[1,1], [3,3]} stays two runs (gap at 2).
        let s = set(&[(3, 3), (1, 1)]);
        assert_eq!(s.intervals(), &[Interval::new(1, 1), Interval::new(3, 3)]);
    }

    #[test]
    fn normalization_drops_subsumed() {
        let s = set(&[(1, 9), (3, 6), (1, 2)]);
        assert_eq!(s.intervals(), &[Interval::new(1, 9)]);
    }

    #[test]
    fn covers_interval_binary_search() {
        let s = set(&[(1, 2), (5, 8), (10, 10)]);
        assert!(s.covers_interval(&Interval::new(5, 8)));
        assert!(s.covers_interval(&Interval::new(6, 7)));
        assert!(s.covers_point(10));
        assert!(!s.covers_interval(&Interval::new(2, 5)));
        assert!(!s.covers_point(3));
        assert!(!s.covers_point(0));
        assert!(!s.covers_point(11));
        assert!(!IntervalSet::empty().covers_point(1));
    }

    #[test]
    fn covers_set_is_subset_relation() {
        let big = set(&[(1, 5), (7, 9)]);
        assert!(big.covers_set(&set(&[(1, 2), (8, 9)])));
        assert!(big.covers_set(&big));
        assert!(big.covers_set(&IntervalSet::empty()));
        assert!(!big.covers_set(&set(&[(5, 7)])));
        assert!(!set(&[(1, 2)]).covers_set(&big));
    }

    #[test]
    fn union_and_cardinality() {
        let a = set(&[(1, 3)]);
        let b = set(&[(4, 6), (9, 9)]);
        let u = a.union(&b);
        assert_eq!(u.intervals(), &[Interval::new(1, 6), Interval::new(9, 9)]);
        assert_eq!(u.cardinality(), 7);
        let mut c = a.clone();
        c.union_in_place(&b);
        assert_eq!(c, u);
        // In-place union with a covered subset is a no-op.
        let before = c.clone();
        c.union_in_place(&set(&[(2, 2)]));
        assert_eq!(c, before);
    }

    #[test]
    fn iter_points_enumerates_members() {
        let s = set(&[(1, 2), (5, 5)]);
        assert_eq!(s.iter_points().collect::<Vec<_>>(), vec![1, 2, 5]);
    }

    #[test]
    fn display_formats() {
        let s = set(&[(1, 2), (5, 5)]);
        assert_eq!(s.to_string(), "{[1,2] [5,5]}");
        assert_eq!(Interval::new(3, 4).to_string(), "[3,4]");
    }
}

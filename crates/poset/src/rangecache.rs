use crate::{IntervalSet, TssLabeling};

/// The paper's *first* solution to the MBB interval-lookup problem (§IV-B):
/// precompute the merged interval set of **every** ordinal range
/// `r ∈ A_TO × A_TO` and answer lookups in constant time from a table.
///
/// Space is quadratic in the domain size — the reason the paper moves on to
/// the dyadic decomposition ([`crate::DyadicIndex`]) — but for the domain
/// cardinalities of the evaluation (≤ ~1000 values) the table is perfectly
/// affordable, so the library offers both and the ablation benches can
/// compare all three strategies (naive / dyadic / full).
#[derive(Debug, Clone)]
pub struct FullRangeIndex {
    domain: usize,
    /// Row-major upper-triangular table: entry for `(lo, hi)`,
    /// `1 <= lo <= hi <= domain`, at `index(lo, hi)`.
    sets: Vec<IntervalSet>,
}

impl FullRangeIndex {
    /// Precomputes all `domain·(domain+1)/2` range sets by dynamic
    /// programming over range width (`O(domain²)` unions).
    pub fn build(labeling: &TssLabeling) -> Self {
        let n = labeling.len();
        let mut sets = vec![IntervalSet::empty(); n * (n + 1) / 2];
        if n == 0 {
            return FullRangeIndex { domain: 0, sets };
        }
        let index = |lo: usize, hi: usize| -> usize {
            // Offset of 0-based row `r` in upper-triangular storage is
            // r·(2n − r + 1)/2 (row r holds n − r entries), then the column.
            let row = lo - 1;
            row * (2 * n - row + 1) / 2 + (hi - lo)
        };
        // Width 1: the per-value sets.
        for lo in 1..=n {
            sets[index(lo, lo)] = labeling
                .intervals(labeling.topo().value_at(lo as u32))
                .clone();
        }
        // Wider ranges extend narrower ones by one value.
        for width in 2..=n {
            for lo in 1..=(n - width + 1) {
                let hi = lo + width - 1;
                let prev = sets[index(lo, hi - 1)].clone();
                let last = &sets[index(hi, hi)];
                sets[index(lo, hi)] = prev.union(last);
            }
        }
        FullRangeIndex { domain: n, sets }
    }

    /// Cardinality of the underlying domain.
    #[inline]
    pub fn domain_len(&self) -> usize {
        self.domain
    }

    /// The merged interval set of ordinal range `[lo, hi]` (1-based,
    /// inclusive) — a table lookup.
    pub fn range(&self, lo: u32, hi: u32) -> &IntervalSet {
        assert!(
            lo >= 1 && lo <= hi && hi as usize <= self.domain,
            "ordinal range [{lo},{hi}] out of domain 1..={}",
            self.domain
        );
        let (lo, hi) = (lo as usize, hi as usize);
        let row = lo - 1;
        &self.sets[row * (2 * self.domain - row + 1) / 2 + (hi - lo)]
    }

    /// Total number of stored intervals — the quadratic space cost the paper
    /// trades away.
    pub fn stored_intervals(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dag, DyadicIndex, SpanningTree};
    use proptest::prelude::*;

    #[test]
    fn matches_naive_and_dyadic_on_paper_example() {
        let dag = Dag::paper_example();
        let lab = TssLabeling::build(&dag, SpanningTree::paper_example(&dag));
        let full = FullRangeIndex::build(&lab);
        let dyadic = DyadicIndex::build(&lab);
        for lo in 1..=9u32 {
            for hi in lo..=9u32 {
                assert_eq!(
                    *full.range(lo, hi),
                    lab.range_intervals(lo, hi),
                    "[{lo},{hi}]"
                );
                assert_eq!(*full.range(lo, hi), dyadic.range(lo, hi), "[{lo},{hi}]");
            }
        }
    }

    #[test]
    fn space_exceeds_dyadic() {
        // The trade-off the paper describes: quadratic vs. linear storage.
        let dag = crate::generator::subset_lattice(crate::generator::LatticeParams {
            height: 6,
            density: 0.8,
            seed: 1,
            mode: crate::generator::DensityMode::Literal,
        })
        .unwrap();
        let lab = TssLabeling::build_default(&dag);
        let full = FullRangeIndex::build(&lab);
        let dyadic = DyadicIndex::build(&lab);
        assert!(full.stored_intervals() > 4 * dyadic.stored_intervals());
    }

    #[test]
    fn empty_and_singleton_domains() {
        let empty = Dag::from_edges(0, &[]).unwrap();
        let lab = TssLabeling::build_default(&empty);
        let idx = FullRangeIndex::build(&lab);
        assert_eq!(idx.domain_len(), 0);

        let single = Dag::from_edges(1, &[]).unwrap();
        let lab = TssLabeling::build_default(&single);
        let idx = FullRangeIndex::build(&lab);
        assert_eq!(idx.range(1, 1), lab.intervals(crate::ValueId(0)));
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn out_of_range_panics() {
        let dag = Dag::paper_example();
        let lab = TssLabeling::build_default(&dag);
        let idx = FullRangeIndex::build(&lab);
        let _ = idx.range(3, 10);
    }

    fn arb_dag(max_n: usize) -> impl Strategy<Value = Dag> {
        (2..=max_n).prop_flat_map(|n| {
            let pairs: Vec<(u32, u32)> = (0..n as u32)
                .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
                .collect();
            let len = pairs.len();
            proptest::collection::vec(proptest::bool::weighted(0.25), len).prop_map(move |mask| {
                let edges: Vec<(u32, u32)> = pairs
                    .iter()
                    .zip(mask)
                    .filter_map(|(&e, keep)| keep.then_some(e))
                    .collect();
                Dag::from_edges(n as u32, &edges).unwrap()
            })
        })
    }

    proptest! {
        #[test]
        fn full_equals_naive(dag in arb_dag(12)) {
            let lab = TssLabeling::build_default(&dag);
            let idx = FullRangeIndex::build(&lab);
            let n = lab.len() as u32;
            for lo in 1..=n {
                for hi in lo..=n {
                    prop_assert_eq!(idx.range(lo, hi), &lab.range_intervals(lo, hi));
                }
            }
        }
    }
}

use crate::{IntervalSet, TssLabeling};

/// Precomputed merged interval sets for the *dyadic ranges* of the
/// topologically sorted domain `A_TO` (§IV-B, first optimization).
///
/// The MBB t-dominance check needs, for an arbitrary ordinal range `r`, the
/// normalized union of the interval sets of all values in `r`. Computing it
/// on the fly touches `|r|` sets; precomputing *every* range costs
/// `O(|A_TO|²)` space. The paper's middle ground stores only the dyadic
/// ranges — the nodes of a binary tree over the domain — so that any range
/// decomposes into `O(log |r|)` precomputed pieces at linear storage.
///
/// The index is a classic segment tree: node 1 covers the whole (padded,
/// power-of-two) domain, node `i` has children `2i` and `2i+1`. Leaves hold
/// `L(v)` for the value `v` with that ordinal (empty for padding).
#[derive(Debug, Clone)]
pub struct DyadicIndex {
    /// Segment tree nodes, 1-based; `sets[0]` unused.
    sets: Vec<IntervalSet>,
    /// Padded size (power of two) of the leaf level.
    size: usize,
    /// Actual domain cardinality.
    domain: usize,
}

impl DyadicIndex {
    /// Builds the index from a [`TssLabeling`].
    pub fn build(labeling: &TssLabeling) -> Self {
        let domain = labeling.len();
        let size = domain.next_power_of_two().max(1);
        let mut sets = vec![IntervalSet::empty(); 2 * size];
        for ord in 1..=domain as u32 {
            let v = labeling.topo().value_at(ord);
            sets[size + (ord as usize - 1)] = labeling.intervals(v).clone();
        }
        for i in (1..size).rev() {
            sets[i] = sets[2 * i].union(&sets[2 * i + 1]);
        }
        DyadicIndex { sets, size, domain }
    }

    /// Cardinality of the underlying domain.
    #[inline]
    pub fn domain_len(&self) -> usize {
        self.domain
    }

    /// Merged interval set of the ordinal range `[lo, hi]` (1-based,
    /// inclusive), assembled from `O(log)` precomputed dyadic sets.
    pub fn range(&self, lo: u32, hi: u32) -> IntervalSet {
        assert!(
            lo >= 1 && lo <= hi && hi as usize <= self.domain,
            "ordinal range [{lo},{hi}] out of domain 1..={}",
            self.domain
        );
        let mut acc = IntervalSet::empty();
        // Standard iterative segment-tree walk over [l, r).
        let mut l = self.size + (lo as usize - 1);
        let mut r = self.size + hi as usize; // exclusive
        while l < r {
            if l & 1 == 1 {
                acc.union_in_place(&self.sets[l]);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                acc.union_in_place(&self.sets[r]);
            }
            l /= 2;
            r /= 2;
        }
        acc
    }

    /// Total number of stored intervals across all dyadic nodes — the space
    /// overhead the paper trades for `O(log)` lookups.
    pub fn stored_intervals(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dag, SpanningTree, TssLabeling};
    use proptest::prelude::*;

    fn paper_labeling() -> (Dag, TssLabeling) {
        let dag = Dag::paper_example();
        let tree = SpanningTree::paper_example(&dag);
        let lab = TssLabeling::build(&dag, tree);
        (dag, lab)
    }

    #[test]
    fn matches_naive_on_paper_example() {
        let (_, lab) = paper_labeling();
        let idx = DyadicIndex::build(&lab);
        for lo in 1..=9u32 {
            for hi in lo..=9u32 {
                assert_eq!(
                    idx.range(lo, hi),
                    lab.range_intervals(lo, hi),
                    "range [{lo},{hi}]"
                );
            }
        }
    }

    /// The worked example of §IV-A step 7: MBB N4 spans values f..g
    /// (ordinals 6..7); their intervals {[1,1],[3,3]} ∪ {[3,5]} merge to
    /// {[1,1],[3,5]}.
    #[test]
    fn n4_range_from_the_table2_walkthrough() {
        let (_, lab) = paper_labeling();
        let idx = DyadicIndex::build(&lab);
        assert_eq!(idx.range(6, 7).to_string(), "{[1,1] [3,5]}");
    }

    #[test]
    fn single_value_domain() {
        let dag = Dag::from_edges(1, &[]).unwrap();
        let lab = TssLabeling::build_default(&dag);
        let idx = DyadicIndex::build(&lab);
        assert_eq!(idx.domain_len(), 1);
        assert_eq!(idx.range(1, 1), lab.range_intervals(1, 1));
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn out_of_range_panics() {
        let (_, lab) = paper_labeling();
        let idx = DyadicIndex::build(&lab);
        let _ = idx.range(1, 10);
    }

    #[test]
    fn non_power_of_two_domain() {
        // 6 values in a chain: every range is a single interval.
        let dag = Dag::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let lab = TssLabeling::build_default(&dag);
        let idx = DyadicIndex::build(&lab);
        for lo in 1..=6u32 {
            for hi in lo..=6u32 {
                assert_eq!(idx.range(lo, hi), lab.range_intervals(lo, hi));
            }
        }
        assert!(idx.stored_intervals() > 0);
    }

    fn arb_dag(max_n: usize) -> impl Strategy<Value = Dag> {
        (2..=max_n).prop_flat_map(|n| {
            let pairs: Vec<(u32, u32)> = (0..n as u32)
                .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
                .collect();
            let len = pairs.len();
            proptest::collection::vec(proptest::bool::weighted(0.25), len).prop_map(move |mask| {
                let edges: Vec<(u32, u32)> = pairs
                    .iter()
                    .zip(mask)
                    .filter_map(|(&e, keep)| keep.then_some(e))
                    .collect();
                Dag::from_edges(n as u32, &edges).unwrap()
            })
        })
    }

    proptest! {
        /// Dyadic assembly is exactly the naive union for every range.
        #[test]
        fn dyadic_equals_naive(dag in arb_dag(14)) {
            let lab = TssLabeling::build_default(&dag);
            let idx = DyadicIndex::build(&lab);
            let n = lab.len() as u32;
            for lo in 1..=n {
                for hi in lo..=n {
                    prop_assert_eq!(idx.range(lo, hi), lab.range_intervals(lo, hi));
                }
            }
        }
    }
}

use crate::{Dag, Interval, SpanningStrategy, SpanningTree, TopoOrder, ValueId};

/// The single-interval labeling of Chan et al. (described in §II-B/§II-C)
/// that underlies **m-dominance** and the SDC family of baselines.
///
/// Each value carries only its spanning-tree interval `[minpost, post]`, so
/// only the preferences along *tree paths* are captured:
///
/// * containment ⟹ preference (never a false preference), but
/// * preference via a path with a non-tree edge is **missed**, which is what
///   makes m-dominance stronger than real dominance and forces the SDC
///   algorithms to cross-examine candidate skyline points.
///
/// The labeling also computes the *uncovered level* of every node — the
/// maximum number of non-tree edges on any incoming path (§II-C) — used by
/// SDC (2 strata: level 0 vs. the rest) and SDC+ (one stratum per level).
#[derive(Debug, Clone)]
pub struct MLabeling {
    topo: TopoOrder,
    tree: SpanningTree,
    uncovered: Vec<u32>,
    max_uncovered: u32,
}

impl MLabeling {
    /// Builds the labeling for `dag` with an explicit spanning tree.
    pub fn build(dag: &Dag, tree: SpanningTree) -> Self {
        let topo = TopoOrder::build(dag);
        // ul(v) = max over in-edges (u,v) of ul(u) + [edge is non-tree],
        // computed in topological order (all predecessors first).
        let mut uncovered = vec![0u32; dag.len()];
        let mut max_uncovered = 0;
        for v in topo.iter() {
            let mut best = 0u32;
            for &p in dag.parents(v) {
                let step = if tree.is_tree_edge(p, v) { 0 } else { 1 };
                best = best.max(uncovered[p.idx()] + step);
            }
            uncovered[v.idx()] = best;
            max_uncovered = max_uncovered.max(best);
        }
        MLabeling {
            topo,
            tree,
            uncovered,
            max_uncovered,
        }
    }

    /// Builds with the default DFS spanning tree.
    pub fn build_default(dag: &Dag) -> Self {
        Self::build(dag, SpanningTree::build(dag, SpanningStrategy::default()))
    }

    /// Number of values.
    #[inline]
    pub fn len(&self) -> usize {
        self.uncovered.len()
    }

    /// True iff the domain is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.uncovered.is_empty()
    }

    /// The topological order (shared convention with [`crate::TssLabeling`]).
    #[inline]
    pub fn topo(&self) -> &TopoOrder {
        &self.topo
    }

    /// The spanning tree.
    #[inline]
    pub fn tree(&self) -> &SpanningTree {
        &self.tree
    }

    /// The single `[minpost, post]` interval of `v`.
    #[inline]
    pub fn interval(&self, v: ValueId) -> Interval {
        self.tree.tree_interval(v)
    }

    /// m-preference: `x` is at least as good as `y` under the *tree-captured*
    /// order — their intervals coincide (same value) or `x`'s interval covers
    /// `y`'s. Sound (implies real preference-or-equality) but incomplete.
    #[inline]
    pub fn m_pref_or_equal(&self, x: ValueId, y: ValueId) -> bool {
        self.interval(x).contains(&self.interval(y))
    }

    /// Strict m-preference: proper containment of intervals (distinct values
    /// always have distinct intervals because post numbers are unique).
    #[inline]
    pub fn m_pref(&self, x: ValueId, y: ValueId) -> bool {
        x != y && self.m_pref_or_equal(x, y)
    }

    /// The uncovered level of `v`: the maximum number of non-tree edges on
    /// any incoming path. Level 0 ⟺ *completely covered* (every incoming
    /// path uses tree edges only), in which case m-dominance restricted to
    /// such values is exact.
    #[inline]
    pub fn uncovered_level(&self, v: ValueId) -> u32 {
        self.uncovered[v.idx()]
    }

    /// True iff `v` is completely covered (uncovered level 0).
    #[inline]
    pub fn completely_covered(&self, v: ValueId) -> bool {
        self.uncovered[v.idx()] == 0
    }

    /// The largest uncovered level in the domain; SDC+ creates
    /// `max_uncovered_level() + 1` strata.
    #[inline]
    pub fn max_uncovered_level(&self) -> u32 {
        self.max_uncovered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reachability;
    use proptest::prelude::*;

    /// Fig. 2(a): the small numbers on top of the nodes are the uncovered
    /// levels — a,b,c,d have 0; e,f have 1; g,h,i have 2.
    #[test]
    fn paper_example_uncovered_levels() {
        let dag = Dag::paper_example();
        let ml = MLabeling::build(&dag, SpanningTree::paper_example(&dag));
        let ul = |s: &str| ml.uncovered_level(dag.id_of(s).unwrap());
        assert_eq!(ul("a"), 0);
        assert_eq!(ul("b"), 0);
        assert_eq!(ul("c"), 1); // non-tree a→c
        assert_eq!(ul("d"), 0);
        assert_eq!(ul("e"), 0);
        assert_eq!(ul("f"), 1); // via c
        assert_eq!(ul("g"), 2); // path a→c→g: two non-tree edges
        assert_eq!(ul("h"), 2); // via g (or f→h non-tree after c)
        assert_eq!(ul("i"), 2); // via g
        assert_eq!(ml.max_uncovered_level(), 2);
        assert!(ml.completely_covered(dag.id_of("a").unwrap()));
        assert!(!ml.completely_covered(dag.id_of("g").unwrap()));
    }

    #[test]
    fn m_pref_soundness_on_example() {
        let dag = Dag::paper_example();
        let reach = Reachability::build(&dag);
        let ml = MLabeling::build(&dag, SpanningTree::paper_example(&dag));
        let id = |s: &str| dag.id_of(s).unwrap();
        // Tree path: captured.
        assert!(ml.m_pref(id("a"), id("i")));
        // Non-tree-only path f ⤳ h: missed by the single interval...
        assert!(!ml.m_pref(id("f"), id("h")));
        // ...but real:
        assert!(reach.preferred(id("f"), id("h")));
    }

    fn arb_dag(max_n: usize) -> impl Strategy<Value = Dag> {
        (2..=max_n).prop_flat_map(|n| {
            let pairs: Vec<(u32, u32)> = (0..n as u32)
                .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
                .collect();
            let len = pairs.len();
            proptest::collection::vec(proptest::bool::weighted(0.3), len).prop_map(move |mask| {
                let edges: Vec<(u32, u32)> = pairs
                    .iter()
                    .zip(mask)
                    .filter_map(|(&e, keep)| keep.then_some(e))
                    .collect();
                Dag::from_edges(n as u32, &edges).unwrap()
            })
        })
    }

    proptest! {
        /// m-preference is SOUND: it never claims a preference that the real
        /// partial order lacks (m-dominance is *stronger* than dominance).
        #[test]
        fn m_pref_implies_reachability(dag in arb_dag(16)) {
            let reach = Reachability::build(&dag);
            let ml = MLabeling::build_default(&dag);
            for x in dag.values() {
                for y in dag.values() {
                    if ml.m_pref(x, y) {
                        prop_assert!(reach.preferred(x, y));
                    }
                }
            }
        }

        /// The stratum property SDC+ relies on (§II-C): a value can only be
        /// preferred over values of an equal-or-higher uncovered level, so
        /// points in later strata can never dominate earlier ones.
        #[test]
        fn uncovered_level_monotone_under_preference(dag in arb_dag(16)) {
            let reach = Reachability::build(&dag);
            let ml = MLabeling::build_default(&dag);
            for x in dag.values() {
                for y in dag.values() {
                    if reach.preferred(x, y) {
                        prop_assert!(
                            ml.uncovered_level(x) <= ml.uncovered_level(y),
                            "ul({:?})={} > ul({:?})={}",
                            x, ml.uncovered_level(x), y, ml.uncovered_level(y)
                        );
                    }
                }
            }
        }

        /// For completely covered values, m-preference is EXACT (the
        /// property that lets SDC output stratum-0 points progressively).
        #[test]
        fn m_pref_exact_on_completely_covered(dag in arb_dag(16)) {
            let reach = Reachability::build(&dag);
            let ml = MLabeling::build_default(&dag);
            for x in dag.values() {
                for y in dag.values() {
                    if ml.completely_covered(y) {
                        prop_assert_eq!(ml.m_pref(x, y), reach.preferred(x, y));
                    }
                }
            }
        }
    }
}

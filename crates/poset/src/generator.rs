//! DAG workload generators reproducing §VI-A of the paper.
//!
//! The evaluation constructs PO domains from the *containment partial order
//! for sets*: the lattice of all subsets of `h` distinct objects has height
//! `h` and `2^h` nodes (`h = 8` gives the 256-node default domain). To
//! control the density `d = |V| / 2^h`, lattice nodes are retained — along
//! with their incident edges — with probability `d`.

use crate::{Dag, PosetError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How dropped lattice nodes affect preferences between survivors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DensityMode {
    /// Paper-literal: only Hasse edges between two *retained* nodes survive,
    /// so dropping an intermediate node severs the preference path through
    /// it. This is what "retain lattice nodes along with their incoming and
    /// outgoing edges" implies and what we default to.
    #[default]
    Literal,
    /// Alternative: rebuild the Hasse diagram of the *induced* suborder
    /// (subset containment among retained nodes), preserving every
    /// containment preference. Useful for sensitivity studies.
    Induced,
}

/// Parameters for the subset-lattice generator (Table III).
#[derive(Debug, Clone, Copy)]
pub struct LatticeParams {
    /// Lattice height `h` — number of distinct objects; `2^h` lattice nodes.
    pub height: u32,
    /// Density `d = |V| / 2^h`; nodes retained with probability `d`.
    pub density: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Treatment of severed paths; see [`DensityMode`].
    pub mode: DensityMode,
}

impl LatticeParams {
    /// The paper's static-experiment defaults: `h = 8`, `d = 0.8`.
    pub fn paper_static_default(seed: u64) -> Self {
        LatticeParams {
            height: 8,
            density: 0.8,
            seed,
            mode: DensityMode::Literal,
        }
    }

    /// The paper's dynamic-experiment defaults: `h = 6`, `d = 0.8`.
    pub fn paper_dynamic_default(seed: u64) -> Self {
        LatticeParams {
            height: 6,
            density: 0.8,
            seed,
            mode: DensityMode::Literal,
        }
    }
}

/// Maximum supported lattice height (2^16 nodes is far beyond the paper's
/// largest `h = 10`, i.e. 1024 nodes).
pub const MAX_HEIGHT: u32 = 16;

/// Generates a subset-containment-lattice DAG per §VI-A.
///
/// Nodes are the subsets of `{0, …, h-1}`; the value with the *fewest*
/// elements is the most preferred (the empty set is the unique root of the
/// full lattice), and Hasse edges connect each set to its one-element
/// extensions. Nodes are retained with probability `density`; labels record
/// the surviving subset masks (`"s{mask:x}"`).
pub fn subset_lattice(params: LatticeParams) -> Result<Dag, PosetError> {
    if params.height > MAX_HEIGHT {
        return Err(PosetError::TooLarge {
            requested: 1usize << params.height,
            max: 1usize << MAX_HEIGHT,
        });
    }
    assert!(
        (0.0..=1.0).contains(&params.density),
        "density must be within [0, 1]"
    );
    let h = params.height;
    let total = 1usize << h;
    let mut rng = StdRng::seed_from_u64(params.seed);

    // Retain each lattice node with probability d; always retain at least
    // one node so the domain is non-empty.
    let mut retained: Vec<bool> = (0..total)
        .map(|_| rng.gen::<f64>() < params.density)
        .collect();
    if !retained.iter().any(|&r| r) {
        let idx = rng.gen_range(0..total);
        retained[idx] = true;
    }
    // Dense re-numbering of surviving masks.
    let mut id_of_mask = vec![u32::MAX; total];
    let mut labels = Vec::new();
    for (mask, &keep) in retained.iter().enumerate() {
        if keep {
            id_of_mask[mask] = labels.len() as u32;
            labels.push(format!("s{mask:x}"));
        }
    }

    let mut edges: Vec<(u32, u32)> = Vec::new();
    match params.mode {
        DensityMode::Literal => {
            // Hasse edges of the full lattice, kept only between survivors:
            // S -> S ∪ {x} for each x ∉ S.
            for mask in 0..total {
                if !retained[mask] {
                    continue;
                }
                for x in 0..h {
                    let sup = mask | (1 << x);
                    if sup != mask && retained[sup] {
                        edges.push((id_of_mask[mask], id_of_mask[sup]));
                    }
                }
            }
        }
        DensityMode::Induced => {
            // Full containment among survivors, then transitive reduction.
            let survivors: Vec<usize> = (0..total).filter(|&m| retained[m]).collect();
            for &a in &survivors {
                for &b in &survivors {
                    if a != b && a & b == a {
                        edges.push((id_of_mask[a], id_of_mask[b]));
                    }
                }
            }
            let dag = Dag::from_labeled(labels, &edges)?;
            return Ok(dag.transitive_reduction());
        }
    }
    Dag::from_labeled(labels, &edges)
}

/// A random layered DAG: `n` nodes spread over `layers` levels, each node
/// wired to a random sample of nodes in deeper levels. Not part of the
/// paper's workloads — used by tests and fuzzing to exercise shapes the
/// lattice cannot produce (long chains, stars, sparse forests).
pub fn random_dag(n: u32, layers: u32, edge_prob: f64, seed: u64) -> Dag {
    assert!(layers >= 1 && n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let layer_of: Vec<u32> = (0..n).map(|_| rng.gen_range(0..layers)).collect();
    let mut edges = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if layer_of[u as usize] < layer_of[v as usize] && rng.gen::<f64>() < edge_prob {
                edges.push((u, v));
            }
        }
    }
    Dag::from_edges(n, &edges).expect("layered edges are acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Reachability, TssLabeling};

    #[test]
    fn full_lattice_shape() {
        let dag = subset_lattice(LatticeParams {
            height: 4,
            density: 1.0,
            seed: 7,
            mode: DensityMode::Literal,
        })
        .unwrap();
        assert_eq!(dag.len(), 16);
        assert_eq!(dag.height(), 4);
        // Hasse edges of the boolean lattice: h * 2^(h-1) = 32.
        assert_eq!(dag.num_edges(), 32);
        // Unique root: the empty set.
        assert_eq!(dag.roots().count(), 1);
    }

    #[test]
    fn density_controls_node_count() {
        let lo = subset_lattice(LatticeParams {
            height: 8,
            density: 0.2,
            seed: 42,
            mode: DensityMode::Literal,
        })
        .unwrap();
        let hi = subset_lattice(LatticeParams {
            height: 8,
            density: 0.9,
            seed: 42,
            mode: DensityMode::Literal,
        })
        .unwrap();
        assert!(lo.len() < hi.len());
        // Expected counts: d * 256 ± sampling noise.
        assert!((30..=80).contains(&lo.len()), "lo.len() = {}", lo.len());
        assert!((200..=256).contains(&hi.len()), "hi.len() = {}", hi.len());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = LatticeParams {
            height: 6,
            density: 0.5,
            seed: 99,
            mode: DensityMode::Literal,
        };
        let a = subset_lattice(p).unwrap();
        let b = subset_lattice(p).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn literal_mode_severs_paths_induced_restores_them() {
        // With a low density many intermediate subsets vanish; in Literal
        // mode reachability shrinks, in Induced mode containment implies
        // reachability for every surviving pair.
        let lit = subset_lattice(LatticeParams {
            height: 6,
            density: 0.4,
            seed: 3,
            mode: DensityMode::Literal,
        })
        .unwrap();
        let ind = subset_lattice(LatticeParams {
            height: 6,
            density: 0.4,
            seed: 3,
            mode: DensityMode::Induced,
        })
        .unwrap();
        assert_eq!(lit.len(), ind.len(), "same node sample for same seed");
        let rl = Reachability::build(&lit);
        let ri = Reachability::build(&ind);
        let mut lit_pairs = 0usize;
        let mut ind_pairs = 0usize;
        for x in lit.values() {
            for y in lit.values() {
                if rl.preferred(x, y) {
                    lit_pairs += 1;
                }
                if ri.preferred(x, y) {
                    ind_pairs += 1;
                }
            }
        }
        assert!(lit_pairs <= ind_pairs);
        // Induced mode must realize exactly the containment order.
        let mask_of = |label: &str| u32::from_str_radix(&label[1..], 16).unwrap();
        for x in ind.values() {
            for y in ind.values() {
                let (mx, my) = (mask_of(ind.label(x)), mask_of(ind.label(y)));
                assert_eq!(ri.preferred(x, y), x != y && mx & my == mx);
            }
        }
    }

    #[test]
    fn rejects_oversized_height() {
        let err = subset_lattice(LatticeParams {
            height: 20,
            density: 1.0,
            seed: 0,
            mode: DensityMode::Literal,
        })
        .unwrap_err();
        assert!(matches!(err, PosetError::TooLarge { .. }));
    }

    #[test]
    fn generated_dags_label_exactly() {
        // End-to-end sanity: TSS labeling stays exact on generated domains.
        for seed in 0..3u64 {
            let dag = subset_lattice(LatticeParams {
                height: 5,
                density: 0.7,
                seed,
                mode: DensityMode::Literal,
            })
            .unwrap();
            let reach = Reachability::build(&dag);
            let lab = TssLabeling::build_default(&dag);
            for x in dag.values() {
                for y in dag.values() {
                    assert_eq!(lab.t_pref(x, y), reach.preferred(x, y));
                }
            }
        }
    }

    #[test]
    fn random_dag_is_valid_and_layered() {
        let dag = random_dag(40, 5, 0.2, 11);
        assert_eq!(dag.len(), 40);
        // Acyclicity is enforced by construction; reachability must build.
        let _ = Reachability::build(&dag);
    }
}

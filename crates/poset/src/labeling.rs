use crate::{Dag, IntervalSet, SpanningStrategy, SpanningTree, TopoOrder, ValueId};

/// The complete TSS labeling of a partially ordered domain (§III-B):
/// topological ordinals for *precedence* plus propagated, merged interval
/// sets for *exactness*.
///
/// For each value `v` the labeling stores the normalized interval set
///
/// ```text
/// L(v) = minimal intervals covering { post(u) : u reachable from v }
/// ```
///
/// computed by a reverse-topological DP
/// `L(v) = {[minpost(v), post(v)]} ∪ ⋃_{(v,w) ∈ E} L(w)` with
/// normalize-merge after each union. This is the "propagate intervals along
/// non-tree edges, then merge/subsume" procedure of the paper (Fig. 2(d)) —
/// propagating along tree edges as well is harmless (a tree child's own
/// interval is subsumed by the parent's) and is what carries foreign
/// intervals upward, exactly as the paper's narration ("`[3,3]` is copied to f
/// and subsequently to c, b and a").
///
/// # Exactness
///
/// Because post numbers are unique per node, `L(y) ⊆ L(x)` (as integer sets)
/// iff `post(y) ∈ L(x)` iff `x` reaches `y`. Hence the t-preference test of
/// Definition 1 — every run of `y` contained in a run of `x` — decides
/// reachability with neither false hits nor false misses. Property-tested
/// against [`crate::Reachability`] in this module.
#[derive(Debug, Clone)]
pub struct TssLabeling {
    topo: TopoOrder,
    tree: SpanningTree,
    sets: Vec<IntervalSet>,
}

impl TssLabeling {
    /// Builds the labeling with an explicitly chosen spanning tree.
    pub fn build(dag: &Dag, tree: SpanningTree) -> Self {
        let topo = TopoOrder::build(dag);
        let mut sets: Vec<IntervalSet> = vec![IntervalSet::empty(); dag.len()];
        // Reverse topological order: all successors are labeled before v.
        for v in topo.iter_rev() {
            let mut set = IntervalSet::single(tree.tree_interval(v));
            for &w in dag.children(v) {
                set.union_in_place(&sets[w.idx()]);
            }
            sets[v.idx()] = set;
        }
        TssLabeling { topo, tree, sets }
    }

    /// Builds with the default ([`SpanningStrategy::Dfs`]) spanning tree.
    pub fn build_default(dag: &Dag) -> Self {
        let tree = SpanningTree::build(dag, SpanningStrategy::default());
        Self::build(dag, tree)
    }

    /// Builds with a given strategy.
    pub fn build_with(dag: &Dag, strategy: SpanningStrategy) -> Self {
        let tree = SpanningTree::build(dag, strategy);
        Self::build(dag, tree)
    }

    /// Number of values in the domain.
    #[inline]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True iff the domain is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The topological order used for the `A_TO` mapping.
    #[inline]
    pub fn topo(&self) -> &TopoOrder {
        &self.topo
    }

    /// The spanning tree underlying the interval labels.
    #[inline]
    pub fn tree(&self) -> &SpanningTree {
        &self.tree
    }

    /// The 1-based ordinal of `v` in the topologically sorted domain.
    #[inline]
    pub fn ordinal(&self, v: ValueId) -> u32 {
        self.topo.ordinal(v)
    }

    /// The final (propagated + merged) interval set of `v` — the "Final"
    /// column of Fig. 2(d).
    #[inline]
    pub fn intervals(&self, v: ValueId) -> &IntervalSet {
        &self.sets[v.idx()]
    }

    /// The postorder number of `v` under the spanning tree.
    #[inline]
    pub fn post(&self, v: ValueId) -> u32 {
        self.tree.post(v)
    }

    /// *t-preference* (Definition 1): `x` is t-preferred over `y` iff
    /// `x ≠ y` and every interval of `y` is contained in (or coincides with)
    /// an interval of `x`. Exact: equivalent to "`x` is preferred over `y`".
    #[inline]
    pub fn t_pref(&self, x: ValueId, y: ValueId) -> bool {
        x != y && self.sets[x.idx()].covers_set(&self.sets[y.idx()])
    }

    /// `x == y` or `t_pref(x, y)` — "at least as good", the per-dimension
    /// relation used by t-dominance.
    #[inline]
    pub fn t_pref_or_equal(&self, x: ValueId, y: ValueId) -> bool {
        x == y || self.t_pref(x, y)
    }

    /// Merged interval set for a *range of ordinals* `[lo, hi]` (1-based,
    /// inclusive): the normalized union of `L(v)` over every value whose
    /// topological ordinal falls in the range.
    ///
    /// This is the quantity the MBB t-dominance check needs (§IV-A): an MBB
    /// whose `A_TO` extent is `[lo, hi]` may contain points with any of those
    /// values. Computed naively here in `O(range)`; [`crate::DyadicIndex`]
    /// answers the same query in `O(log)` from precomputed dyadic ranges.
    pub fn range_intervals(&self, lo: u32, hi: u32) -> IntervalSet {
        debug_assert!(lo >= 1 && hi as usize <= self.len() && lo <= hi);
        let mut acc = IntervalSet::empty();
        for ord in lo..=hi {
            acc.union_in_place(&self.sets[self.topo.value_at(ord).idx()]);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Interval, Reachability};
    use proptest::prelude::*;

    /// Asserts the complete "Final" column of Fig. 2(d).
    #[test]
    fn fig2d_final_column() {
        let dag = Dag::paper_example();
        let tree = SpanningTree::paper_example(&dag);
        let lab = TssLabeling::build(&dag, tree);
        let set = |s: &str| lab.intervals(dag.id_of(s).unwrap()).to_string();
        assert_eq!(set("a"), "{[1,9]}");
        assert_eq!(set("b"), "{[1,8]}");
        assert_eq!(set("c"), "{[1,5]}"); // [1,2] ∪ [3,3] ∪ [3,5] merged
        assert_eq!(set("d"), "{[3,6]}");
        assert_eq!(set("e"), "{[3,5] [7,7]}");
        assert_eq!(set("f"), "{[1,1] [3,3]}");
        assert_eq!(set("g"), "{[3,5]}");
        assert_eq!(set("h"), "{[3,3]}");
        assert_eq!(set("i"), "{[4,4]}");
    }

    /// The paper's worked t-preference example: "The single interval [3,3]
    /// associated with h coincides with one of f's intervals; hence, f is
    /// t-preferred over h."
    #[test]
    fn f_is_t_preferred_over_h() {
        let dag = Dag::paper_example();
        let lab = TssLabeling::build(&dag, SpanningTree::paper_example(&dag));
        let id = |s: &str| dag.id_of(s).unwrap();
        assert!(lab.t_pref(id("f"), id("h")));
        assert!(!lab.t_pref(id("h"), id("f")));
        // §III-B: c and d are incomparable despite adjacent ordinals.
        assert!(!lab.t_pref(id("c"), id("d")));
        assert!(!lab.t_pref(id("d"), id("c")));
        // Not reflexive.
        assert!(!lab.t_pref(id("c"), id("c")));
        assert!(lab.t_pref_or_equal(id("c"), id("c")));
    }

    #[test]
    fn exactness_on_paper_example_all_strategies() {
        let dag = Dag::paper_example();
        let reach = Reachability::build(&dag);
        for strat in [
            SpanningStrategy::Dfs,
            SpanningStrategy::MinParent,
            SpanningStrategy::MaxParent,
        ] {
            let lab = TssLabeling::build_with(&dag, strat);
            for x in dag.values() {
                for y in dag.values() {
                    assert_eq!(
                        lab.t_pref(x, y),
                        reach.preferred(x, y),
                        "{strat:?}: {} vs {}",
                        dag.label(x),
                        dag.label(y)
                    );
                }
            }
        }
    }

    #[test]
    fn range_intervals_match_pointwise_union() {
        let dag = Dag::paper_example();
        let lab = TssLabeling::build(&dag, SpanningTree::paper_example(&dag));
        // Range of ordinals {f..h} = 6..8 (f, g, h).
        let got = lab.range_intervals(6, 8);
        let mut expect = IntervalSet::empty();
        for s in ["f", "g", "h"] {
            expect.union_in_place(lab.intervals(dag.id_of(s).unwrap()));
        }
        assert_eq!(got, expect);
        // Full-domain range covers every post number.
        let full = lab.range_intervals(1, 9);
        assert_eq!(full.intervals(), &[Interval::new(1, 9)]);
    }

    #[test]
    fn interval_set_cardinality_equals_descendant_count() {
        let dag = Dag::paper_example();
        let reach = Reachability::build(&dag);
        let lab = TssLabeling::build_default(&dag);
        for v in dag.values() {
            assert_eq!(
                lab.intervals(v).cardinality() as usize,
                reach.descendant_count(v),
                "L({}) must cover exactly the reachable posts",
                dag.label(v)
            );
        }
    }

    /// Random-DAG strategy for property tests: `n` nodes, each edge
    /// `(i, j), i < j` present independently — always acyclic.
    fn arb_dag(max_n: usize) -> impl Strategy<Value = Dag> {
        (2..=max_n).prop_flat_map(|n| {
            let pairs: Vec<(u32, u32)> = (0..n as u32)
                .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
                .collect();
            let len = pairs.len();
            proptest::collection::vec(proptest::bool::weighted(0.25), len).prop_map(move |mask| {
                let edges: Vec<(u32, u32)> = pairs
                    .iter()
                    .zip(mask)
                    .filter_map(|(&e, keep)| keep.then_some(e))
                    .collect();
                Dag::from_edges(n as u32, &edges).expect("forward edges are acyclic")
            })
        })
    }

    proptest! {
        /// The central invariant of the paper: the propagated labeling is
        /// EXACT — t-preference coincides with reachability for every pair,
        /// on random DAGs, under every spanning strategy.
        #[test]
        fn t_pref_equals_reachability(dag in arb_dag(18), strat_ix in 0..3usize) {
            let strat = [SpanningStrategy::Dfs, SpanningStrategy::MinParent, SpanningStrategy::MaxParent][strat_ix];
            let reach = Reachability::build(&dag);
            let lab = TssLabeling::build_with(&dag, strat);
            for x in dag.values() {
                for y in dag.values() {
                    prop_assert_eq!(lab.t_pref(x, y), reach.preferred(x, y));
                }
            }
        }

        /// L(v) covers exactly the posts of reachable nodes.
        #[test]
        fn label_covers_exactly_reachable_posts(dag in arb_dag(16)) {
            let reach = Reachability::build(&dag);
            let lab = TssLabeling::build_default(&dag);
            for v in dag.values() {
                let expect: std::collections::BTreeSet<u32> = reach
                    .descendants(v)
                    .into_iter()
                    .map(|u| lab.post(u))
                    .collect();
                let got: std::collections::BTreeSet<u32> =
                    lab.intervals(v).iter_points().collect();
                prop_assert_eq!(got, expect);
            }
        }

        /// Topological ordinals extend the partial order.
        #[test]
        fn ordinals_extend_preferences(dag in arb_dag(16)) {
            let reach = Reachability::build(&dag);
            let lab = TssLabeling::build_default(&dag);
            for x in dag.values() {
                for y in dag.values() {
                    if reach.preferred(x, y) {
                        prop_assert!(lab.ordinal(x) < lab.ordinal(y));
                    }
                }
            }
        }

        /// Range queries equal the pointwise union over the range.
        #[test]
        fn range_union_correct(dag in arb_dag(12), lo in 1u32..6, width in 0u32..6) {
            let lab = TssLabeling::build_default(&dag);
            let n = lab.len() as u32;
            let lo = lo.min(n);
            let hi = (lo + width).min(n);
            let got = lab.range_intervals(lo, hi);
            let mut expect = IntervalSet::empty();
            for ord in lo..=hi {
                expect.union_in_place(lab.intervals(lab.topo().value_at(ord)));
            }
            prop_assert_eq!(got, expect);
        }
    }
}

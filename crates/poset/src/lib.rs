//! Partially ordered domains represented as DAGs (Hasse diagrams), plus the
//! labeling machinery of *Topologically Sorted Skylines for Partially Ordered
//! Domains* (Sacharidis, Papadopoulos, Papadias — ICDE 2009):
//!
//! * [`Dag`] — the domain itself: a node per value, an edge `x -> y` meaning
//!   *x is preferred over y*; `x` is preferred over `y` iff a path `x ⤳ y`
//!   exists (§I of the paper).
//! * [`TopoOrder`] — a topological sort of the DAG, mapping each value to an
//!   ordinal in an artificial totally ordered domain `A_TO` (§III-B). This is
//!   what gives TSS its *precedence* property.
//! * [`SpanningTree`] + [`TssLabeling`] — a spanning tree of the DAG, the
//!   `[minpost, post]` interval per node (Agrawal et al., §II-B), and the
//!   propagated/merged multi-interval labeling that makes the TSS dominance
//!   check *exact* (§III-B, Fig. 2(d)).
//! * [`MLabeling`] — the single-interval labeling of Chan et al. used by the
//!   m-dominance baselines (§II-C), including *uncovered levels* and the
//!   completely/partially covered strata.
//! * [`DyadicIndex`] — precomputed merged interval sets for dyadic ranges of
//!   the topologically sorted domain (§IV-B, first optimization).
//! * [`Reachability`] — bitset transitive closure; the ground truth every
//!   labeling is validated against.
//! * [`generator`] — the subset-containment-lattice DAG generator with the
//!   height/density parameters of the paper's evaluation (§VI-A).
//! * [`PartialOrderBuilder`] — ergonomic construction from preference pairs
//!   (e.g. the airline preferences of Fig. 1 / Table I).
//!
//! # Quick example
//!
//! The first airline partial order of Table I — `a` preferred over `b` and
//! `c`, everything preferred over `d`, `b` and `c` incomparable:
//!
//! ```
//! use poset::PartialOrderBuilder;
//!
//! let mut b = PartialOrderBuilder::new();
//! for label in ["a", "b", "c", "d"] { b.value(label); }
//! b.prefer("a", "b").unwrap();
//! b.prefer("a", "c").unwrap();
//! b.prefer("b", "d").unwrap();
//! b.prefer("c", "d").unwrap();
//! let dag = b.build().unwrap();
//!
//! let labeling = poset::TssLabeling::build_default(&dag);
//! let a = dag.id_of("a").unwrap();
//! let b_ = dag.id_of("b").unwrap();
//! let c = dag.id_of("c").unwrap();
//! let d = dag.id_of("d").unwrap();
//! assert!(labeling.t_pref(a, d));   // a ≺ d via b (or c)
//! assert!(!labeling.t_pref(b_, c)); // b, c incomparable
//! assert!(!labeling.t_pref(d, a));
//! ```

#![forbid(unsafe_code)]

mod builder;
mod dag;
mod dyadic;
mod error;
mod fnv;
pub mod generator;
mod interval;
mod labeling;
mod mlabel;
mod rangecache;
mod reach;
mod spanning;
mod topo;

pub use builder::PartialOrderBuilder;
pub use dag::{Dag, ValueId};
pub use dyadic::DyadicIndex;
pub use error::PosetError;
pub use fnv::Fnv64;
pub use interval::{Interval, IntervalSet};
pub use labeling::TssLabeling;
pub use mlabel::MLabeling;
pub use rangecache::FullRangeIndex;
pub use reach::Reachability;
pub use spanning::{SpanningStrategy, SpanningTree};
pub use topo::TopoOrder;

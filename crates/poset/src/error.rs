use std::fmt;

/// Errors raised while constructing or validating partial-order domains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PosetError {
    /// An edge `x -> x` was supplied; preference is irreflexive.
    SelfLoop { node: u32 },
    /// An edge endpoint referenced a node id outside `0..n`.
    NodeOutOfRange { node: u32, len: u32 },
    /// The supplied edge set contains a directed cycle, so it is not a
    /// partial order. Reports one node on the cycle.
    Cycle { witness: u32 },
    /// A label was used that the builder does not know about.
    UnknownLabel { label: String },
    /// The same label was registered twice.
    DuplicateLabel { label: String },
    /// A generator or builder was asked for a domain larger than supported.
    TooLarge { requested: usize, max: usize },
    /// `prefer(x, y)` together with earlier preferences would make `x` and
    /// `y` mutually preferred (a cycle in the preference graph).
    ContradictoryPreference { better: String, worse: String },
}

impl fmt::Display for PosetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PosetError::SelfLoop { node } => {
                write!(f, "self-loop on node {node}: preference is irreflexive")
            }
            PosetError::NodeOutOfRange { node, len } => {
                write!(f, "node id {node} out of range (domain has {len} values)")
            }
            PosetError::Cycle { witness } => write!(
                f,
                "edge set contains a directed cycle (through node {witness}); \
                 not a partial order"
            ),
            PosetError::UnknownLabel { label } => write!(f, "unknown value label {label:?}"),
            PosetError::DuplicateLabel { label } => {
                write!(f, "value label {label:?} registered twice")
            }
            PosetError::TooLarge { requested, max } => {
                write!(
                    f,
                    "requested domain of {requested} values exceeds maximum {max}"
                )
            }
            PosetError::ContradictoryPreference { better, worse } => write!(
                f,
                "preference {better:?} < {worse:?} contradicts earlier preferences \
                 (would create a cycle)"
            ),
        }
    }
}

impl std::error::Error for PosetError {}

use crate::{Dag, ValueId};

/// Bitset transitive closure of a [`Dag`] — the *ground truth* preference
/// relation that every interval labeling is validated against.
///
/// `reaches(x, y)` answers "is there a directed path `x ⤳ y`?" in `O(1)`
/// after an `O(V·E/64)` construction. For the domain sizes of the paper
/// (≤ ~1000 values, §VI-A) the closure occupies at most ~128 KiB.
#[derive(Debug, Clone)]
pub struct Reachability {
    words_per_row: usize,
    bits: Vec<u64>,
    n: usize,
}

impl Reachability {
    /// Computes the closure by a reverse-topological DP:
    /// `R(v) = {v} ∪ ⋃_{(v,w)∈E} R(w)`.
    pub fn build(dag: &Dag) -> Self {
        let n = dag.len();
        let words_per_row = n.div_ceil(64);
        let mut bits = vec![0u64; words_per_row * n];
        let order = dag.topo_node_order();
        for &v in order.iter().rev() {
            let vi = v.idx();
            // Set the self bit.
            bits[vi * words_per_row + vi / 64] |= 1u64 << (vi % 64);
            // Union in each child's row. Split the flat buffer so the child
            // row can be read while the parent row is written.
            for &c in dag.children(v) {
                let ci = c.idx();
                let (lo, hi) = (vi.min(ci), vi.max(ci));
                let (head, tail) = bits.split_at_mut(hi * words_per_row);
                let (dst, src) = if vi > ci {
                    (
                        &mut tail[..words_per_row],
                        &head[ci * words_per_row..ci * words_per_row + words_per_row],
                    )
                } else {
                    (&mut head[vi * words_per_row..], &tail[..words_per_row])
                };
                let _ = lo;
                for (d, s) in dst.iter_mut().zip(src.iter()) {
                    *d |= *s;
                }
            }
        }
        Reachability {
            words_per_row,
            bits,
            n,
        }
    }

    /// True iff a path `x ⤳ y` exists (reflexive: `reaches(x, x)` is true).
    #[inline]
    pub fn reaches(&self, x: ValueId, y: ValueId) -> bool {
        let xi = x.idx();
        let yi = y.idx();
        debug_assert!(xi < self.n && yi < self.n);
        self.bits[xi * self.words_per_row + yi / 64] >> (yi % 64) & 1 == 1
    }

    /// True iff `x` is *strictly* preferred over `y`: `x ≠ y` and `x ⤳ y`.
    #[inline]
    pub fn preferred(&self, x: ValueId, y: ValueId) -> bool {
        x != y && self.reaches(x, y)
    }

    /// True iff `x` is preferred over `y` or they are the same value.
    #[inline]
    pub fn preferred_or_equal(&self, x: ValueId, y: ValueId) -> bool {
        x == y || self.reaches(x, y)
    }

    /// Number of values reachable from `x`, including `x` itself.
    pub fn descendant_count(&self, x: ValueId) -> usize {
        let row = &self.bits[x.idx() * self.words_per_row..(x.idx() + 1) * self.words_per_row];
        row.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// All values reachable from `x`, including `x`, in id order.
    pub fn descendants(&self, x: ValueId) -> Vec<ValueId> {
        (0..self.n as u32)
            .map(ValueId)
            .filter(|&y| self.reaches(x, y))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_reachability() {
        let d = Dag::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let r = Reachability::build(&d);
        for i in 0..4u32 {
            for j in 0..4u32 {
                assert_eq!(r.reaches(ValueId(i), ValueId(j)), i <= j, "{i} -> {j}");
            }
        }
        assert!(r.preferred(ValueId(0), ValueId(3)));
        assert!(!r.preferred(ValueId(0), ValueId(0)));
        assert!(r.preferred_or_equal(ValueId(0), ValueId(0)));
    }

    #[test]
    fn diamond_reachability() {
        let d = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let r = Reachability::build(&d);
        assert!(r.reaches(ValueId(0), ValueId(3)));
        assert!(!r.reaches(ValueId(1), ValueId(2)));
        assert!(!r.reaches(ValueId(2), ValueId(1)));
        assert_eq!(r.descendant_count(ValueId(0)), 4);
        assert_eq!(r.descendants(ValueId(1)), vec![ValueId(1), ValueId(3)]);
    }

    #[test]
    fn paper_example_spot_checks() {
        let d = Dag::paper_example();
        let r = Reachability::build(&d);
        let id = |s: &str| d.id_of(s).unwrap();
        // R(c) = {c, f, g, h, i}
        assert_eq!(
            r.descendants(id("c")),
            ["c", "f", "g", "h", "i"]
                .iter()
                .map(|s| id(s))
                .collect::<Vec<_>>()
        );
        // R(e) = {e, g, h, i}
        assert_eq!(r.descendant_count(id("e")), 4);
        // f reaches h via the non-tree edge but not g or i.
        assert!(r.reaches(id("f"), id("h")));
        assert!(!r.reaches(id("f"), id("g")));
        assert!(!r.reaches(id("f"), id("i")));
    }

    #[test]
    fn matches_bfs_on_wide_graph() {
        // A moderately wide DAG exercising multi-word bitset rows (n > 64).
        let n = 130u32;
        let mut edges = Vec::new();
        for i in 0..n - 1 {
            edges.push((i, i + 1));
            if i + 7 < n {
                edges.push((i, i + 7));
            }
        }
        let d = Dag::from_edges(n, &edges).unwrap();
        let r = Reachability::build(&d);
        // BFS oracle from a few sources.
        for src in [0u32, 63, 64, 65, 129] {
            let mut seen = vec![false; n as usize];
            let mut stack = vec![ValueId(src)];
            while let Some(v) = stack.pop() {
                if std::mem::replace(&mut seen[v.idx()], true) {
                    continue;
                }
                stack.extend_from_slice(d.children(v));
            }
            for j in 0..n {
                assert_eq!(r.reaches(ValueId(src), ValueId(j)), seen[j as usize]);
            }
        }
    }
}

use crate::Mbb;

/// Handle to a node in the tree's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    #[inline]
    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A leaf entry: an indexed point plus the caller's record id.
#[derive(Debug, Clone)]
pub(crate) struct LeafEntry {
    pub point: Box<[u32]>,
    pub record: u32,
}

/// Node payload: either data points (leaf) or child node ids (inner).
#[derive(Debug, Clone)]
pub(crate) enum NodeKind {
    Leaf(Vec<LeafEntry>),
    Inner(Vec<NodeId>),
}

/// An R-tree node: its MBB plus its entries. One node models one disk page
/// for IO accounting purposes.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub mbb: Mbb,
    pub kind: NodeKind,
}

impl Node {
    pub fn entry_count(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(es) => es.len(),
            NodeKind::Inner(cs) => cs.len(),
        }
    }
}

/// A child of an inner node (or an entry of a leaf) as seen by traversals.
#[derive(Debug, Clone, Copy)]
pub enum ChildEntry<'a> {
    /// A subtree, summarized by its MBB.
    Node { id: NodeId, mbb: &'a Mbb },
    /// A data point.
    Record { point: &'a [u32], record: u32 },
}

//! An LRU page buffer for IO simulation.
//!
//! The paper's cost analysis notes that query-time IO "can be mitigated (to
//! some extent) using buffers", while rebuild-style IO (the dynamic SDC+
//! baseline) cannot. Enabling a buffer on a tree makes repeated node
//! accesses free up to the buffer capacity, so experiments can quantify
//! that remark.

use std::cell::RefCell;
use std::collections::HashMap;

/// A simple exact-LRU buffer of node ids. Capacities are small (hundreds of
/// pages), so eviction scans are fine for simulation purposes.
#[derive(Debug, Clone)]
pub(crate) struct LruBuffer {
    cap: usize,
    state: RefCell<LruState>,
}

/// Interior state behind the `RefCell` (named so the static-analysis pass
/// can see the map through the borrow).
#[derive(Debug, Clone, Default)]
struct LruState {
    /// Monotone access counter; every touch gets a fresh stamp, so stamps
    /// are unique — which is what makes the eviction scan deterministic.
    clock: u64,
    /// node id -> last-use stamp.
    stamps: HashMap<u32, u64>,
}

impl LruBuffer {
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "buffer needs at least one page");
        LruBuffer {
            cap,
            state: RefCell::new(LruState {
                clock: 0,
                stamps: HashMap::with_capacity(cap + 1),
            }),
        }
    }

    /// Records an access; returns `true` on a buffer hit (no IO charged).
    pub fn touch(&self, node: u32) -> bool {
        let mut st = self.state.borrow_mut();
        st.clock += 1;
        let stamp = st.clock;
        if let Some(s) = st.stamps.get_mut(&node) {
            *s = stamp;
            return true;
        }
        if st.stamps.len() == self.cap {
            // Evict the least recently used page.
            // lint:allow(hash-iter): stamps are unique (monotone clock), so the min is order-independent
            let (&victim, _) = st.stamps.iter().min_by_key(|(_, &s)| s).expect("non-empty");
            st.stamps.remove(&victim);
        }
        st.stamps.insert(node, stamp);
        false
    }

    /// Drops all buffered pages.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn clear(&self) {
        self.state.borrow_mut().stamps.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_eviction() {
        let b = LruBuffer::new(2);
        assert!(!b.touch(1)); // miss
        assert!(!b.touch(2)); // miss
        assert!(b.touch(1)); // hit
        assert!(!b.touch(3)); // miss, evicts 2 (LRU)
        assert!(b.touch(1)); // still buffered
        assert!(!b.touch(2)); // was evicted
    }

    #[test]
    fn clear_empties() {
        let b = LruBuffer::new(4);
        b.touch(7);
        assert!(b.touch(7));
        b.clear();
        assert!(!b.touch(7));
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_capacity_rejected() {
        let _ = LruBuffer::new(0);
    }
}

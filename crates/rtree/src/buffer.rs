//! An LRU page buffer for IO simulation.
//!
//! The paper's cost analysis notes that query-time IO "can be mitigated (to
//! some extent) using buffers", while rebuild-style IO (the dynamic SDC+
//! baseline) cannot. Enabling a buffer on a tree makes repeated node
//! accesses free up to the buffer capacity, so experiments can quantify
//! that remark.

use std::cell::RefCell;
use std::collections::HashMap;

/// A simple exact-LRU buffer of node ids. Capacities are small (hundreds of
/// pages), so eviction scans are fine for simulation purposes.
#[derive(Debug, Clone)]
pub(crate) struct LruBuffer {
    cap: usize,
    /// node id -> last-use stamp.
    state: RefCell<(u64, HashMap<u32, u64>)>,
}

impl LruBuffer {
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "buffer needs at least one page");
        LruBuffer {
            cap,
            state: RefCell::new((0, HashMap::with_capacity(cap + 1))),
        }
    }

    /// Records an access; returns `true` on a buffer hit (no IO charged).
    pub fn touch(&self, node: u32) -> bool {
        let mut guard = self.state.borrow_mut();
        let (ref mut clock, ref mut map) = *guard;
        *clock += 1;
        let stamp = *clock;
        if let Some(s) = map.get_mut(&node) {
            *s = stamp;
            return true;
        }
        if map.len() == self.cap {
            // Evict the least recently used page.
            let (&victim, _) = map.iter().min_by_key(|(_, &s)| s).expect("non-empty");
            map.remove(&victim);
        }
        map.insert(node, stamp);
        false
    }

    /// Drops all buffered pages.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn clear(&self) {
        let mut guard = self.state.borrow_mut();
        guard.1.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_eviction() {
        let b = LruBuffer::new(2);
        assert!(!b.touch(1)); // miss
        assert!(!b.touch(2)); // miss
        assert!(b.touch(1)); // hit
        assert!(!b.touch(3)); // miss, evicts 2 (LRU)
        assert!(b.touch(1)); // still buffered
        assert!(!b.touch(2)); // was evicted
    }

    #[test]
    fn clear_empties() {
        let b = LruBuffer::new(4);
        b.touch(7);
        assert!(b.touch(7));
        b.clear();
        assert!(!b.touch(7));
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_capacity_rejected() {
        let _ = LruBuffer::new(0);
    }
}

//! Page-geometry helpers tying node capacity to a disk-page model, so the
//! IO counts reported by experiments correspond to a concrete page size.

/// Disk-page model: page size in bytes plus per-entry byte costs.
///
/// The paper's setup is a classic 2000s disk-based R-tree; we model an entry
/// as its coordinates (4 bytes each) plus a 4-byte pointer / record id, and
/// reserve a small header per page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageConfig {
    /// Page size in bytes (default 4096).
    pub page_size: usize,
    /// Bytes per coordinate (4 for `u32`).
    pub bytes_per_coord: usize,
    /// Bytes for the child pointer / record id per entry.
    pub bytes_per_pointer: usize,
    /// Page header bytes.
    pub header: usize,
}

impl Default for PageConfig {
    fn default() -> Self {
        PageConfig {
            page_size: 4096,
            bytes_per_coord: 4,
            bytes_per_pointer: 4,
            header: 16,
        }
    }
}

impl PageConfig {
    /// Node capacity (entries per page) for `dims`-dimensional data.
    ///
    /// Inner entries store an MBB (2 corners); we conservatively size every
    /// entry that way so leaf and inner nodes share one capacity, as in the
    /// paper's implementation.
    pub fn capacity(&self, dims: usize) -> usize {
        let entry = 2 * dims * self.bytes_per_coord + self.bytes_per_pointer;
        ((self.page_size - self.header) / entry).max(2)
    }

    /// Number of pages a sequential file of `n` records occupies, for the
    /// external-sort IO charging of the dynamic SDC+ adaptation (§VI-C).
    /// A record stores `dims` coordinates plus a record id.
    pub fn data_pages(&self, n: usize, dims: usize) -> u64 {
        let record = dims * self.bytes_per_coord + self.bytes_per_pointer;
        let per_page = ((self.page_size - self.header) / record).max(1);
        n.div_ceil(per_page) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_capacity_is_sane() {
        let cfg = PageConfig::default();
        // 2-D: entry = 2*2*4 + 4 = 20 bytes; (4096-16)/20 = 204.
        assert_eq!(cfg.capacity(2), 204);
        // 6-D: entry = 2*6*4 + 4 = 52 bytes; (4096-16)/52 = 78.
        assert_eq!(cfg.capacity(6), 78);
    }

    #[test]
    fn capacity_never_below_two() {
        let tiny = PageConfig {
            page_size: 32,
            bytes_per_coord: 4,
            bytes_per_pointer: 4,
            header: 16,
        };
        assert_eq!(tiny.capacity(8), 2);
    }

    #[test]
    fn data_pages_rounds_up() {
        let cfg = PageConfig::default();
        // 2-D record = 12 bytes; 340 records per page.
        assert_eq!(cfg.data_pages(1, 2), 1);
        assert_eq!(cfg.data_pages(340, 2), 1);
        assert_eq!(cfg.data_pages(341, 2), 2);
        assert_eq!(cfg.data_pages(0, 2), 0);
    }
}

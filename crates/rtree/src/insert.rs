//! Guttman-style insertion with quadratic node splitting — used for the
//! incrementally grown main-memory tree `Tm` that holds the virtual points
//! of discovered skyline points (§IV-B, §V-A).

use crate::node::{LeafEntry, Node, NodeId, NodeKind};
use crate::{Mbb, RTree};

impl RTree {
    /// Inserts a point with its record id.
    pub fn insert(&mut self, point: &[u32], record: u32) {
        assert_eq!(point.len(), self.dims, "point dimensionality mismatch");
        self.len += 1;
        let Some(root) = self.root else {
            let entry = LeafEntry {
                point: point.into(),
                record,
            };
            let mbb = Mbb::from_point(point);
            let id = self.push_node(Node {
                mbb,
                kind: NodeKind::Leaf(vec![entry]),
            });
            self.root = Some(id);
            self.height = 1;
            return;
        };
        if let Some(sibling) = self.insert_rec(root, point, record) {
            // Root split: grow the tree by one level.
            let mbb = self.nodes[root.idx()]
                .mbb
                .union(&self.nodes[sibling.idx()].mbb);
            let new_root = self.push_node(Node {
                mbb,
                kind: NodeKind::Inner(vec![root, sibling]),
            });
            self.root = Some(new_root);
            self.height += 1;
        }
    }

    /// Recursive insert; returns a new sibling node id if `id` split.
    fn insert_rec(&mut self, id: NodeId, point: &[u32], record: u32) -> Option<NodeId> {
        match &self.nodes[id.idx()].kind {
            NodeKind::Leaf(_) => {
                let NodeKind::Leaf(entries) = &mut self.nodes[id.idx()].kind else {
                    unreachable!()
                };
                entries.push(LeafEntry {
                    point: point.into(),
                    record,
                });
                if entries.len() <= self.cap {
                    self.nodes[id.idx()].mbb.expand_point(point);
                    None
                } else {
                    Some(self.split_leaf(id))
                }
            }
            NodeKind::Inner(children) => {
                let chosen = self.choose_subtree(children, point);
                match self.insert_rec(chosen, point, record) {
                    None => {
                        self.nodes[id.idx()].mbb.expand_point(point);
                        None
                    }
                    Some(new_child) => {
                        let NodeKind::Inner(children) = &mut self.nodes[id.idx()].kind else {
                            unreachable!()
                        };
                        children.push(new_child);
                        if children.len() <= self.cap {
                            let mbb = self.recompute_mbb(id);
                            self.nodes[id.idx()].mbb = mbb;
                            None
                        } else {
                            Some(self.split_inner(id))
                        }
                    }
                }
            }
        }
    }

    /// ChooseLeaf heuristic: least volume enlargement, ties by smallest
    /// volume, then by id for determinism.
    fn choose_subtree(&self, children: &[NodeId], point: &[u32]) -> NodeId {
        let mut best = children[0];
        let mut best_enl = f64::INFINITY;
        let mut best_vol = f64::INFINITY;
        for &c in children {
            let mbb = &self.nodes[c.idx()].mbb;
            let enl = mbb.enlargement(point);
            let vol = mbb.volume();
            if enl < best_enl || (enl == best_enl && vol < best_vol) {
                best = c;
                best_enl = enl;
                best_vol = vol;
            }
        }
        best
    }

    fn split_leaf(&mut self, id: NodeId) -> NodeId {
        let NodeKind::Leaf(entries) =
            std::mem::replace(&mut self.nodes[id.idx()].kind, NodeKind::Leaf(Vec::new()))
        else {
            unreachable!()
        };
        let boxes: Vec<Mbb> = entries.iter().map(|e| Mbb::from_point(&e.point)).collect();
        let (left_ix, right_ix) = quadratic_partition(&boxes, self.min_fill);
        let pick =
            |ixs: &[usize]| -> Vec<LeafEntry> { ixs.iter().map(|&i| entries[i].clone()).collect() };
        let left = pick(&left_ix);
        let right = pick(&right_ix);
        self.nodes[id.idx()].kind = NodeKind::Leaf(left);
        self.nodes[id.idx()].mbb = self.recompute_mbb(id);
        let sibling = self.push_node(Node {
            mbb: Mbb::from_point(&right[0].point),
            kind: NodeKind::Leaf(right),
        });
        self.nodes[sibling.idx()].mbb = self.recompute_mbb(sibling);
        sibling
    }

    fn split_inner(&mut self, id: NodeId) -> NodeId {
        let NodeKind::Inner(children) =
            std::mem::replace(&mut self.nodes[id.idx()].kind, NodeKind::Inner(Vec::new()))
        else {
            unreachable!()
        };
        let boxes: Vec<Mbb> = children
            .iter()
            .map(|&c| self.nodes[c.idx()].mbb.clone())
            .collect();
        let (left_ix, right_ix) = quadratic_partition(&boxes, self.min_fill);
        let left: Vec<NodeId> = left_ix.iter().map(|&i| children[i]).collect();
        let right: Vec<NodeId> = right_ix.iter().map(|&i| children[i]).collect();
        self.nodes[id.idx()].kind = NodeKind::Inner(left);
        self.nodes[id.idx()].mbb = self.recompute_mbb(id);
        let first_mbb = self.nodes[right[0].idx()].mbb.clone();
        let sibling = self.push_node(Node {
            mbb: first_mbb,
            kind: NodeKind::Inner(right),
        });
        self.nodes[sibling.idx()].mbb = self.recompute_mbb(sibling);
        sibling
    }
}

/// Guttman's quadratic split: pick the two boxes wasting the most dead space
/// as seeds, then greedily assign the rest by preference (largest difference
/// in enlargement first), honoring the minimum fill.
fn quadratic_partition(boxes: &[Mbb], min_fill: usize) -> (Vec<usize>, Vec<usize>) {
    let n = boxes.len();
    debug_assert!(n >= 2);
    // Seed selection: maximize union volume - vol(a) - vol(b).
    let (mut seed_a, mut seed_b, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let dead = boxes[i].union(&boxes[j]).volume() - boxes[i].volume() - boxes[j].volume();
            if dead > worst {
                worst = dead;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    let mut left = vec![seed_a];
    let mut right = vec![seed_b];
    let mut left_mbb = boxes[seed_a].clone();
    let mut right_mbb = boxes[seed_b].clone();
    let mut rest: Vec<usize> = (0..n).filter(|&i| i != seed_a && i != seed_b).collect();
    while !rest.is_empty() {
        // Forced assignment to honor minimum fill.
        if left.len() + rest.len() == min_fill {
            for i in rest.drain(..) {
                left_mbb.expand_mbb(&boxes[i]);
                left.push(i);
            }
            break;
        }
        if right.len() + rest.len() == min_fill {
            for i in rest.drain(..) {
                right_mbb.expand_mbb(&boxes[i]);
                right.push(i);
            }
            break;
        }
        // Pick the entry with the strongest preference.
        let (pos, _) = rest
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                let dl = left_mbb.union(&boxes[i]).volume() - left_mbb.volume();
                let dr = right_mbb.union(&boxes[i]).volume() - right_mbb.volume();
                (pos, (dl - dr).abs())
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        let i = rest.swap_remove(pos);
        let dl = left_mbb.union(&boxes[i]).volume() - left_mbb.volume();
        let dr = right_mbb.union(&boxes[i]).volume() - right_mbb.volume();
        let to_left = dl < dr
            || (dl == dr && left_mbb.volume() < right_mbb.volume())
            || (dl == dr && left_mbb.volume() == right_mbb.volume() && left.len() <= right.len());
        if to_left {
            left_mbb.expand_mbb(&boxes[i]);
            left.push(i);
        } else {
            right_mbb.expand_mbb(&boxes[i]);
            right.push(i);
        }
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_from_empty_and_stays_valid() {
        let mut t = RTree::new(2, 4);
        for i in 0..200u32 {
            t.insert(&[i * 7 % 101, i * 13 % 97], i);
            t.validate()
                .unwrap_or_else(|e| panic!("after insert {i}: {e}"));
        }
        assert_eq!(t.len(), 200);
        assert!(t.height() >= 3);
    }

    #[test]
    fn duplicate_points_allowed() {
        let mut t = RTree::new(2, 3);
        for i in 0..10u32 {
            t.insert(&[5, 5], i);
        }
        assert_eq!(t.len(), 10);
        t.validate().unwrap();
        let mut recs: Vec<u32> = t.iter_records().iter().map(|&(_, r)| r).collect();
        recs.sort_unstable();
        assert_eq!(recs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn quadratic_partition_respects_min_fill() {
        let boxes: Vec<Mbb> = (0..7u32).map(|i| Mbb::from_point(&[i, 0])).collect();
        let (l, r) = quadratic_partition(&boxes, 3);
        assert!(l.len() >= 3 && r.len() >= 3, "l={l:?}, r={r:?}");
        assert_eq!(l.len() + r.len(), 7);
        let mut all: Vec<usize> = l.iter().chain(r.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn four_dimensional_inserts() {
        let mut t = RTree::new(4, 8);
        for i in 0..300u32 {
            t.insert(&[i % 5, i % 7, i % 11, i % 13], i);
        }
        t.validate().unwrap();
        assert_eq!(t.len(), 300);
    }
}

//! STR (Sort-Tile-Recursive) bulk loading — the standard way to build a
//! packed R-tree over a static data set, as the paper's disk indexes are.

use crate::node::{LeafEntry, Node, NodeId, NodeKind};
use crate::{Mbb, RTree};

impl RTree {
    /// Bulk-loads `points` (each `(coords, record)`) into a packed tree
    /// using Sort-Tile-Recursive. Points may repeat; order is irrelevant.
    ///
    /// Leaves are filled to capacity, so the tree has roughly
    /// `⌈n / cap⌉` pages at the leaf level — the disk-footprint model the
    /// paper's IO counts assume.
    pub fn bulk_load(dims: usize, cap: usize, points: Vec<(Vec<u32>, u32)>) -> Self {
        for (p, _) in &points {
            assert_eq!(p.len(), dims, "point dimensionality mismatch");
        }
        let mut coords = Vec::with_capacity(points.len() * dims);
        let mut records = Vec::with_capacity(points.len());
        for (p, r) in &points {
            coords.extend_from_slice(p);
            records.push(*r);
        }
        Self::bulk_load_flat(dims, cap, &coords, &records)
    }

    /// Columnar STR bulk load: `coords` is the row-major flat coordinate
    /// matrix (`records.len() * dims` values), `records[i]` the record id of
    /// row `i`. The tiling sorts an index array over the flat matrix, so no
    /// per-point row is ever materialized; the resulting tree is identical
    /// to [`bulk_load`](Self::bulk_load) on the same rows in the same
    /// order.
    pub fn bulk_load_flat(dims: usize, cap: usize, coords: &[u32], records: &[u32]) -> Self {
        let mut tree = RTree::new(dims, cap);
        let n = records.len();
        assert_eq!(coords.len(), n * dims, "flat matrix shape");
        if n == 0 {
            return tree;
        }
        // --- Leaf level: tile (row, record) index pairs over the flat
        // matrix, then cut leaves out of the reordered index array. -------
        let mut items: Vec<(u32, u32)> = records
            .iter()
            .enumerate()
            .map(|(row, &r)| (row as u32, r))
            .collect();
        let mut bounds = Vec::new();
        str_tile_flat(&mut items, coords, dims, cap, 0, 0, &mut bounds);
        let mut level: Vec<NodeId> = bounds
            .into_iter()
            .map(|(lo, hi)| {
                let entries: Vec<LeafEntry> = items[lo..hi]
                    .iter()
                    .map(|&(row, record)| {
                        let base = row as usize * dims;
                        LeafEntry {
                            point: coords[base..base + dims].into(),
                            record,
                        }
                    })
                    .collect();
                tree.len += entries.len();
                let mut mbb = Mbb::from_point(&entries[0].point);
                for e in &entries[1..] {
                    mbb.expand_point(&e.point);
                }
                tree.push_node(Node {
                    mbb,
                    kind: NodeKind::Leaf(entries),
                })
            })
            .collect();
        let mut height = 1usize;
        // --- Upper levels: STR-pack child MBB centers ----------------------
        while level.len() > 1 {
            let mut centers: Vec<(Vec<u32>, u32)> = level
                .iter()
                .map(|&id| {
                    let mbb = &tree.nodes[id.idx()].mbb;
                    let center: Vec<u32> = (0..dims)
                        .map(|d| mbb.lo()[d] / 2 + mbb.hi()[d] / 2)
                        .collect();
                    (center, id.0)
                })
                .collect();
            let groups = str_tile(&mut centers, dims, cap, 0);
            level = groups
                .into_iter()
                .map(|group| {
                    let children: Vec<NodeId> =
                        group.into_iter().map(|(_, id)| NodeId(id)).collect();
                    let mut mbb = tree.nodes[children[0].idx()].mbb.clone();
                    for c in &children[1..] {
                        mbb.expand_mbb(&tree.nodes[c.idx()].mbb);
                    }
                    tree.push_node(Node {
                        mbb,
                        kind: NodeKind::Inner(children),
                    })
                })
                .collect();
            height += 1;
        }
        tree.root = Some(level[0]);
        tree.height = height;
        tree
    }
}

/// The flat-matrix twin of [`str_tile`]: recursively reorders `(row,
/// record)` index pairs over the row-major `coords` matrix and records the
/// final leaf cut points in `bounds` as `[lo, hi)` ranges into `items`.
/// Sort keys (coordinate, then record id) match `str_tile`, so both tilings
/// produce identical trees.
fn str_tile_flat(
    items: &mut [(u32, u32)],
    coords: &[u32],
    dims: usize,
    cap: usize,
    dim: usize,
    base: usize,
    bounds: &mut Vec<(usize, usize)>,
) {
    let n = items.len();
    if n <= cap {
        bounds.push((base, base + n));
        return;
    }
    items.sort_unstable_by(|a, b| {
        coords[a.0 as usize * dims + dim]
            .cmp(&coords[b.0 as usize * dims + dim])
            .then_with(|| a.1.cmp(&b.1))
    });
    if dim + 1 == dims {
        // Last dimension: chunk straight into pages.
        let mut off = 0;
        while off < n {
            let end = (off + cap).min(n);
            bounds.push((base + off, base + end));
            off = end;
        }
        return;
    }
    let pages = n.div_ceil(cap);
    let k = (dims - dim) as f64;
    let slabs = (pages as f64).powf(1.0 / k).ceil() as usize;
    let slab_size = n.div_ceil(slabs.max(1));
    let mut off = 0;
    while off < n {
        let end = (off + slab_size).min(n);
        str_tile_flat(
            &mut items[off..end],
            coords,
            dims,
            cap,
            dim + 1,
            base + off,
            bounds,
        );
        off = end;
    }
}

/// Recursively tiles `items` into groups of at most `cap`, sorting by one
/// dimension per recursion level (classic STR). Retained for the upper
/// levels, which tile child-MBB centers (few, already materialized).
fn str_tile(
    items: &mut [(Vec<u32>, u32)],
    dims: usize,
    cap: usize,
    dim: usize,
) -> Vec<Vec<(Vec<u32>, u32)>> {
    let n = items.len();
    if n <= cap {
        return vec![items.to_vec()];
    }
    items.sort_unstable_by(|a, b| a.0[dim].cmp(&b.0[dim]).then_with(|| a.1.cmp(&b.1)));
    if dim + 1 == dims {
        // Last dimension: chunk straight into pages.
        return items.chunks(cap).map(|c| c.to_vec()).collect();
    }
    // Number of pages overall, slabs along this dimension = ceil(P^(1/k))
    // where k = remaining dimensions.
    let pages = n.div_ceil(cap);
    let k = (dims - dim) as f64;
    let slabs = (pages as f64).powf(1.0 / k).ceil() as usize;
    let slab_size = n.div_ceil(slabs.max(1));
    let mut out = Vec::new();
    for chunk in items.chunks_mut(slab_size) {
        out.extend(str_tile(chunk, dims, cap, dim + 1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(side: u32) -> Vec<(Vec<u32>, u32)> {
        let mut pts = Vec::new();
        for x in 0..side {
            for y in 0..side {
                pts.push((vec![x, y], x * side + y));
            }
        }
        pts
    }

    #[test]
    fn loads_empty_and_tiny() {
        let t = RTree::bulk_load(2, 4, vec![]);
        assert!(t.is_empty());
        t.validate().unwrap();

        let t = RTree::bulk_load(2, 4, vec![(vec![1, 2], 7)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        t.validate().unwrap();
        assert_eq!(t.iter_records(), vec![(&[1u32, 2][..], 7)]);
    }

    #[test]
    fn loads_grid_and_validates() {
        for cap in [2usize, 3, 8, 64] {
            let t = RTree::bulk_load(2, cap, grid_points(20));
            assert_eq!(t.len(), 400, "cap={cap}");
            t.validate().unwrap();
            // STR packs leaves tightly: node count near n/cap.
            let min_leaves = 400usize.div_ceil(cap);
            assert!(
                t.node_count() >= min_leaves,
                "cap={cap}: {} nodes",
                t.node_count()
            );
        }
    }

    #[test]
    fn preserves_all_records_including_duplicates() {
        let mut pts = grid_points(8);
        pts.extend(grid_points(8).into_iter().map(|(p, r)| (p, r + 1000)));
        let t = RTree::bulk_load(2, 5, pts);
        assert_eq!(t.len(), 128);
        let mut recs: Vec<u32> = t.iter_records().iter().map(|&(_, r)| r).collect();
        recs.sort_unstable();
        let mut expect: Vec<u32> = (0..64).chain(1000..1064).collect();
        expect.sort_unstable();
        assert_eq!(recs, expect);
    }

    #[test]
    fn handles_higher_dimensions() {
        let pts: Vec<(Vec<u32>, u32)> = (0..500u32)
            .map(|i| (vec![i % 7, i % 11, i % 13, i % 17], i))
            .collect();
        let t = RTree::bulk_load(4, 10, pts);
        assert_eq!(t.len(), 500);
        t.validate().unwrap();
        assert!(t.height() >= 2);
    }

    #[test]
    fn flat_load_matches_pairwise_load() {
        let pts = grid_points(9);
        let mut coords = Vec::new();
        let mut records = Vec::new();
        for (p, r) in &pts {
            coords.extend_from_slice(p);
            records.push(*r);
        }
        for cap in [2usize, 4, 16] {
            let flat = RTree::bulk_load_flat(2, cap, &coords, &records);
            let pairs = RTree::bulk_load(2, cap, pts.clone());
            flat.validate().unwrap();
            assert_eq!(flat.node_count(), pairs.node_count(), "cap={cap}");
            assert_eq!(flat.iter_records(), pairs.iter_records(), "cap={cap}");
        }
        // Empty flat load.
        let t = RTree::bulk_load_flat(3, 4, &[], &[]);
        assert!(t.is_empty());
        t.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "flat matrix shape")]
    fn flat_load_rejects_ragged_matrix() {
        let _ = RTree::bulk_load_flat(2, 4, &[1, 2, 3], &[0, 1]);
    }

    #[test]
    fn single_full_leaf_has_height_one() {
        let pts: Vec<(Vec<u32>, u32)> = (0..10u32).map(|i| (vec![i], i)).collect();
        let t = RTree::bulk_load(1, 10, pts);
        assert_eq!(t.height(), 1);
        t.validate().unwrap();
    }
}

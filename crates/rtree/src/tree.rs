use crate::buffer::LruBuffer;
use crate::node::{LeafEntry, Node, NodeId, NodeKind};
use crate::{ChildEntry, Mbb};
use std::cell::Cell;

/// Default maximum entries per node when no [`crate::PageConfig`] is used.
pub const DEFAULT_CAPACITY: usize = 64;

/// An R-tree over `u32` coordinates with IO accounting.
///
/// See the [crate docs](crate) for the design rationale. Build one with
/// [`RTree::bulk_load`] (STR), grow one incrementally with
/// [`RTree::insert`], or — for reproducing the paper's worked examples —
/// assemble an exact structure with [`RTree::from_structure`].
#[derive(Debug, Clone)]
pub struct RTree {
    pub(crate) dims: usize,
    pub(crate) cap: usize,
    pub(crate) min_fill: usize,
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: Option<NodeId>,
    pub(crate) height: usize,
    pub(crate) len: usize,
    /// Node accesses since the last [`reset_io`](Self::reset_io). `Cell` so
    /// read-only traversals can account IOs without `&mut`.
    pub(crate) io: Cell<u64>,
    /// Optional LRU page buffer: buffered accesses are not charged.
    pub(crate) buffer: Option<LruBuffer>,
}

impl RTree {
    /// An empty tree with the given dimensionality and node capacity.
    pub fn new(dims: usize, cap: usize) -> Self {
        assert!(dims >= 1, "R-tree needs at least one dimension");
        assert!(cap >= 2, "node capacity must be at least 2");
        RTree {
            dims,
            cap,
            min_fill: (cap * 2 / 5).max(1),
            nodes: Vec::new(),
            root: None,
            height: 0,
            len: 0,
            io: Cell::new(0),
            buffer: None,
        }
    }

    /// Enables an LRU page buffer of `pages` nodes: node accesses that hit
    /// the buffer are not charged as IOs (the paper's "IO cost can be
    /// mitigated using buffers" remark). Clears any previous buffer state.
    pub fn enable_buffer(&mut self, pages: usize) {
        self.buffer = Some(LruBuffer::new(pages));
    }

    /// Disables the page buffer.
    pub fn disable_buffer(&mut self) {
        self.buffer = None;
    }

    /// Dimensionality of indexed points.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Maximum entries per node (page capacity).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no points are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in levels (0 for empty, 1 for a single leaf).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of nodes (pages) in the tree.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The root node id, if any.
    #[inline]
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// The MBB of a node.
    #[inline]
    pub fn mbb(&self, id: NodeId) -> &Mbb {
        &self.nodes[id.idx()].mbb
    }

    /// Node accesses since construction / the last reset. One access models
    /// one page IO, per the paper's cost model.
    #[inline]
    pub fn io_count(&self) -> u64 {
        self.io.get()
    }

    /// Resets the IO counter (buffer contents are kept: a warm buffer is
    /// exactly what cross-query amortization means).
    pub fn reset_io(&self) {
        self.io.set(0);
    }

    #[inline]
    pub(crate) fn charge_io(&self) {
        self.io.set(self.io.get() + 1);
    }

    /// Accounts one access to `id`: free on a buffer hit, one IO otherwise.
    #[inline]
    pub(crate) fn access_node(&self, id: NodeId) {
        match &self.buffer {
            Some(buf) if buf.touch(id.0) => {}
            _ => self.charge_io(),
        }
    }

    /// Reads a node's children, charging one IO. This is the only sanctioned
    /// way for algorithms to descend the tree.
    pub fn read_children(&self, id: NodeId) -> Vec<ChildEntry<'_>> {
        self.access_node(id);
        self.children_free(id)
    }

    /// Reads a node's children **without** charging an IO — for callers that
    /// model the node as already buffered (e.g. re-reading the root entry
    /// that produced a heap entry). Use sparingly; experiments should prefer
    /// [`read_children`](Self::read_children).
    pub fn children_free(&self, id: NodeId) -> Vec<ChildEntry<'_>> {
        let node = &self.nodes[id.idx()];
        match &node.kind {
            NodeKind::Leaf(entries) => entries
                .iter()
                .map(|e| ChildEntry::Record {
                    point: &e.point,
                    record: e.record,
                })
                .collect(),
            NodeKind::Inner(children) => children
                .iter()
                .map(|&c| ChildEntry::Node {
                    id: c,
                    mbb: &self.nodes[c.idx()].mbb,
                })
                .collect(),
        }
    }

    /// Iterates over all `(point, record)` pairs (no IO accounting; a debug
    /// and test convenience).
    pub fn iter_records(&self) -> Vec<(&[u32], u32)> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack: Vec<NodeId> = self.root.into_iter().collect();
        while let Some(id) = stack.pop() {
            match &self.nodes[id.idx()].kind {
                NodeKind::Leaf(entries) => {
                    out.extend(entries.iter().map(|e| (&*e.point, e.record)));
                }
                NodeKind::Inner(children) => stack.extend(children.iter().copied()),
            }
        }
        out
    }

    pub(crate) fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Recomputes a leaf/inner node's MBB from its entries.
    pub(crate) fn recompute_mbb(&self, id: NodeId) -> Mbb {
        let node = &self.nodes[id.idx()];
        match &node.kind {
            NodeKind::Leaf(entries) => {
                let mut mbb = Mbb::from_point(&entries[0].point);
                for e in &entries[1..] {
                    mbb.expand_point(&e.point);
                }
                mbb
            }
            NodeKind::Inner(children) => {
                let mut mbb = self.nodes[children[0].idx()].mbb.clone();
                for c in &children[1..] {
                    mbb.expand_mbb(&self.nodes[c.idx()].mbb);
                }
                mbb
            }
        }
    }

    /// Checks structural invariants (test/debug aid): MBB tightness and
    /// containment, uniform leaf depth, capacity bounds.
    pub fn validate(&self) -> Result<(), String> {
        let Some(root) = self.root else {
            return if self.len == 0 {
                Ok(())
            } else {
                Err("len > 0 but no root".into())
            };
        };
        let mut leaf_depths = Vec::new();
        let mut count = 0usize;
        self.validate_node(root, 1, &mut leaf_depths, &mut count)?;
        if !leaf_depths.windows(2).all(|w| w[0] == w[1]) {
            return Err(format!("non-uniform leaf depths: {leaf_depths:?}"));
        }
        if let Some(&d) = leaf_depths.first() {
            if d != self.height {
                return Err(format!("height {} but leaves at depth {d}", self.height));
            }
        }
        if count != self.len {
            return Err(format!("len {} but {count} records reachable", self.len));
        }
        Ok(())
    }

    fn validate_node(
        &self,
        id: NodeId,
        depth: usize,
        leaf_depths: &mut Vec<usize>,
        count: &mut usize,
    ) -> Result<(), String> {
        let node = &self.nodes[id.idx()];
        let n = node.entry_count();
        if n == 0 {
            return Err(format!("empty node {id:?}"));
        }
        if n > self.cap {
            return Err(format!("node {id:?} overflows: {n} > {}", self.cap));
        }
        let tight = self.recompute_mbb(id);
        if tight != node.mbb {
            return Err(format!(
                "node {id:?} MBB not tight: {} vs {}",
                node.mbb, tight
            ));
        }
        match &node.kind {
            NodeKind::Leaf(entries) => {
                for e in entries {
                    if e.point.len() != self.dims {
                        return Err("dimensionality mismatch in leaf".into());
                    }
                }
                *count += entries.len();
                leaf_depths.push(depth);
            }
            NodeKind::Inner(children) => {
                for &c in children {
                    if !node.mbb.contains_mbb(&self.nodes[c.idx()].mbb) {
                        return Err(format!("child {c:?} escapes parent {id:?}"));
                    }
                    self.validate_node(c, depth + 1, leaf_depths, count)?;
                }
            }
        }
        Ok(())
    }
}

/// Explicit tree description for [`RTree::from_structure`] — used by tests
/// that reproduce the paper's hand-drawn trees (Fig. 3(c), Fig. 5(c)).
#[derive(Debug, Clone)]
pub enum BuildNode {
    /// A leaf holding `(point, record)` entries.
    Leaf(Vec<(Vec<u32>, u32)>),
    /// An inner node over child structures.
    Inner(Vec<BuildNode>),
}

impl RTree {
    /// Builds a tree with an exact, caller-specified structure. MBBs are
    /// computed bottom-up; all leaves must sit at the same depth and each
    /// node must hold between 1 and `cap` entries.
    pub fn from_structure(dims: usize, cap: usize, structure: BuildNode) -> Self {
        let mut tree = RTree::new(dims, cap);
        let (root, depth) = tree.build_structure(&structure, 1);
        tree.root = Some(root);
        tree.height = depth;
        tree
    }

    fn build_structure(&mut self, b: &BuildNode, depth: usize) -> (NodeId, usize) {
        match b {
            BuildNode::Leaf(points) => {
                assert!(!points.is_empty() && points.len() <= self.cap, "leaf size");
                let entries: Vec<LeafEntry> = points
                    .iter()
                    .map(|(p, r)| {
                        assert_eq!(p.len(), self.dims, "point dimensionality");
                        LeafEntry {
                            point: p.clone().into_boxed_slice(),
                            record: *r,
                        }
                    })
                    .collect();
                self.len += points.len();
                let mut mbb = Mbb::from_point(&entries[0].point);
                for e in &entries[1..] {
                    mbb.expand_point(&e.point);
                }
                (
                    self.push_node(Node {
                        mbb,
                        kind: NodeKind::Leaf(entries),
                    }),
                    depth,
                )
            }
            BuildNode::Inner(children) => {
                assert!(!children.is_empty() && children.len() <= self.cap, "fanout");
                let mut ids = Vec::with_capacity(children.len());
                let mut child_depth = None;
                for c in children {
                    let (id, d) = self.build_structure(c, depth + 1);
                    match child_depth {
                        None => child_depth = Some(d),
                        Some(prev) => assert_eq!(prev, d, "uneven leaf depths"),
                    }
                    ids.push(id);
                }
                let mut mbb = self.nodes[ids[0].idx()].mbb.clone();
                for id in &ids[1..] {
                    mbb.expand_mbb(&self.nodes[id.idx()].mbb);
                }
                (
                    self.push_node(Node {
                        mbb,
                        kind: NodeKind::Inner(ids),
                    }),
                    child_depth.unwrap(),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t = RTree::new(2, 4);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.validate().is_ok());
        assert_eq!(t.io_count(), 0);
    }

    #[test]
    fn from_structure_builds_fig3_tree() {
        // The R-tree of Fig. 3(c): capacity 3, seven leaves/inner nodes.
        // Points are (A1, ATO) with ATO ordinals a=1..i=9.
        let n2 = BuildNode::Leaf(vec![(vec![2, 3], 1), (vec![3, 4], 2), (vec![6, 5], 5)]);
        let n4 = BuildNode::Leaf(vec![(vec![2, 6], 9), (vec![3, 7], 10)]);
        let n5 = BuildNode::Leaf(vec![(vec![1, 8], 3), (vec![4, 9], 8)]);
        let n6 = BuildNode::Leaf(vec![(vec![8, 1], 4), (vec![7, 3], 6), (vec![9, 2], 7)]);
        let n7 = BuildNode::Leaf(vec![(vec![5, 7], 11), (vec![7, 6], 12), (vec![9, 8], 13)]);
        let n1 = BuildNode::Inner(vec![n2, n4, n5]);
        let n3 = BuildNode::Inner(vec![n6, n7]);
        let root = BuildNode::Inner(vec![n1, n3]);
        let t = RTree::from_structure(2, 3, root);
        assert_eq!(t.len(), 13);
        assert_eq!(t.height(), 3);
        t.validate().unwrap();
        // Root children mindists match Table II step 1: e1=4, e3=6.
        let kids = t.read_children(t.root().unwrap());
        let mut mds: Vec<u64> = kids
            .iter()
            .map(|c| match c {
                ChildEntry::Node { mbb, .. } => mbb.mindist_l1(),
                _ => panic!("root children are nodes"),
            })
            .collect();
        mds.sort_unstable();
        assert_eq!(mds, vec![4, 6]);
        assert_eq!(t.io_count(), 1);
    }

    #[test]
    fn io_accounting_and_reset() {
        let t = RTree::from_structure(
            1,
            2,
            BuildNode::Inner(vec![
                BuildNode::Leaf(vec![(vec![1], 1)]),
                BuildNode::Leaf(vec![(vec![2], 2)]),
            ]),
        );
        let root = t.root().unwrap();
        let _ = t.read_children(root);
        let _ = t.read_children(root);
        assert_eq!(t.io_count(), 2);
        let _ = t.children_free(root);
        assert_eq!(t.io_count(), 2, "children_free is not charged");
        t.reset_io();
        assert_eq!(t.io_count(), 0);
    }

    #[test]
    #[should_panic(expected = "uneven leaf depths")]
    fn uneven_structure_rejected() {
        let _ = RTree::from_structure(
            1,
            3,
            BuildNode::Inner(vec![
                BuildNode::Leaf(vec![(vec![1], 1)]),
                BuildNode::Inner(vec![BuildNode::Leaf(vec![(vec![2], 2)])]),
            ]),
        );
    }

    #[test]
    fn iter_records_sees_everything() {
        let t = RTree::from_structure(
            2,
            3,
            BuildNode::Inner(vec![
                BuildNode::Leaf(vec![(vec![1, 1], 10), (vec![2, 2], 20)]),
                BuildNode::Leaf(vec![(vec![3, 3], 30)]),
            ]),
        );
        let mut recs: Vec<u32> = t.iter_records().iter().map(|&(_, r)| r).collect();
        recs.sort_unstable();
        assert_eq!(recs, vec![10, 20, 30]);
    }
}

//! An arena-based R-tree over unsigned integer coordinates, built for the
//! skyline workloads of the TSS paper (ICDE 2009 reproduction):
//!
//! * **STR bulk loading** (`Sort-Tile-Recursive`) for the static disk-style
//!   indexes the paper's algorithms traverse,
//! * **Guttman-style insertion** with quadratic splits for the incremental
//!   main-memory tree `Tm` of §IV-B / §V-A, and **deletion** with
//!   condense-tree reinsertion and root shrink so streaming maintenance
//!   can retire expired entries in place,
//! * **best-first traversal** ([`BestFirst`]) — the caller-driven heap walk
//!   underlying BBS and all of its descendants (entries are popped in
//!   ascending L1 *mindist* to the origin, the "most preferable point"),
//! * **range and Boolean range queries** — the Boolean variant returns as
//!   soon as any point falls in the box, which is how TSS implements its
//!   fast t-dominance check,
//! * **IO accounting** — every node access is counted, so experiments can
//!   charge the paper's 5 ms per page IO.
//!
//! Coordinates are `u32` throughout: the paper's totally ordered domains are
//! integers in `0..10_000`, topological ordinals are `1..=|V|`, and postorder
//! interval endpoints are `1..=|V|`. Smaller values are always preferred —
//! dimensions where larger is better (the `post` axis of interval labels)
//! are flipped by the caller before indexing.

#![forbid(unsafe_code)]

mod buffer;
mod bulk;
mod delete;
mod geom;
mod insert;
mod node;
mod query;
mod stats;
mod tree;

pub use geom::Mbb;
pub use node::{ChildEntry, NodeId};
pub use query::{BestFirst, Popped};
pub use stats::PageConfig;
pub use tree::{BuildNode, RTree, DEFAULT_CAPACITY};

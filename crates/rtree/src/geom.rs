use std::fmt;

/// A minimum bounding box in `dims`-dimensional non-negative integer space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mbb {
    lo: Box<[u32]>,
    hi: Box<[u32]>,
}

impl Mbb {
    /// Creates an MBB from corner coordinates. Panics if dimensions differ
    /// or any `lo > hi`.
    pub fn new(lo: Vec<u32>, hi: Vec<u32>) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner dimensionality mismatch");
        assert!(
            lo.iter().zip(hi.iter()).all(|(l, h)| l <= h),
            "MBB lower corner must not exceed upper corner"
        );
        Mbb {
            lo: lo.into_boxed_slice(),
            hi: hi.into_boxed_slice(),
        }
    }

    /// A degenerate MBB covering exactly one point.
    pub fn from_point(p: &[u32]) -> Self {
        Mbb {
            lo: p.into(),
            hi: p.into(),
        }
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &[u32] {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &[u32] {
        &self.hi
    }

    /// L1 distance from the origin to the nearest corner — the *mindist* of
    /// §IV-A ("the mindist of a node equals the mindist of the lower left
    /// corner of its MBB"). The origin is the most preferable point because
    /// all indexed dimensions are smaller-is-better.
    #[inline]
    pub fn mindist_l1(&self) -> u64 {
        self.lo.iter().map(|&c| c as u64).sum()
    }

    /// Grows the box to cover `p`.
    pub fn expand_point(&mut self, p: &[u32]) {
        debug_assert_eq!(p.len(), self.dims());
        for (d, &pv) in p.iter().enumerate() {
            if pv < self.lo[d] {
                self.lo[d] = pv;
            }
            if pv > self.hi[d] {
                self.hi[d] = pv;
            }
        }
    }

    /// Grows the box to cover `other`.
    pub fn expand_mbb(&mut self, other: &Mbb) {
        debug_assert_eq!(other.dims(), self.dims());
        for d in 0..self.lo.len() {
            if other.lo[d] < self.lo[d] {
                self.lo[d] = other.lo[d];
            }
            if other.hi[d] > self.hi[d] {
                self.hi[d] = other.hi[d];
            }
        }
    }

    /// The smallest box covering both inputs.
    pub fn union(&self, other: &Mbb) -> Mbb {
        let mut out = self.clone();
        out.expand_mbb(other);
        out
    }

    /// True iff `p` lies inside the box (inclusive).
    pub fn contains_point(&self, p: &[u32]) -> bool {
        debug_assert_eq!(p.len(), self.dims());
        (0..self.dims()).all(|d| self.lo[d] <= p[d] && p[d] <= self.hi[d])
    }

    /// True iff the boxes share at least one point.
    pub fn intersects(&self, other: &Mbb) -> bool {
        debug_assert_eq!(other.dims(), self.dims());
        (0..self.dims()).all(|d| self.lo[d] <= other.hi[d] && other.lo[d] <= self.hi[d])
    }

    /// True iff `other` lies fully inside `self`.
    pub fn contains_mbb(&self, other: &Mbb) -> bool {
        (0..self.dims()).all(|d| self.lo[d] <= other.lo[d] && other.hi[d] <= self.hi[d])
    }

    /// Volume as `f64` (exact volumes overflow integer types in high
    /// dimensions; the split heuristics only compare magnitudes).
    pub fn volume(&self) -> f64 {
        (0..self.dims())
            .map(|d| (self.hi[d] - self.lo[d]) as f64 + 1.0)
            .product()
    }

    /// Volume of the union minus own volume — the *enlargement* used by
    /// ChooseLeaf.
    pub fn enlargement(&self, p: &[u32]) -> f64 {
        let mut grown = self.clone();
        grown.expand_point(p);
        grown.volume() - self.volume()
    }

    /// L1 mindist from an arbitrary reference point: per dimension, the
    /// distance from `q` to the nearest box coordinate (zero if inside).
    pub fn mindist_l1_from(&self, q: &[u32]) -> u64 {
        debug_assert_eq!(q.len(), self.dims());
        (0..self.dims())
            .map(|d| {
                if q[d] < self.lo[d] {
                    (self.lo[d] - q[d]) as u64
                } else if q[d] > self.hi[d] {
                    (q[d] - self.hi[d]) as u64
                } else {
                    0
                }
            })
            .sum()
    }

    /// The *folded lower-bound corner* w.r.t. a reference point `q`: per
    /// dimension the minimum of `|x - q_d|` over the box extent. Any point
    /// inside the box folds to coordinates dominating-or-equalling this
    /// corner, which makes it the sound pruning corner for dynamic-skyline
    /// BBS (§V-B fully dynamic queries).
    pub fn folded_corner(&self, q: &[u32]) -> Vec<u32> {
        debug_assert_eq!(q.len(), self.dims());
        (0..self.dims())
            .map(|d| {
                if q[d] < self.lo[d] {
                    self.lo[d] - q[d]
                } else {
                    q[d].saturating_sub(self.hi[d])
                }
            })
            .collect()
    }

    /// Sum of side lengths (margin); tie-breaker in split heuristics.
    pub fn margin(&self) -> u64 {
        (0..self.dims())
            .map(|d| (self.hi[d] - self.lo[d]) as u64)
            .sum()
    }
}

impl fmt::Display for Mbb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MBB(")?;
        for d in 0..self.dims() {
            if d > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}..{}", self.lo[d], self.hi[d])?;
        }
        write!(f, ")")
    }
}

/// L1 mindist of a point to the origin.
#[inline]
pub fn point_mindist_l1(p: &[u32]) -> u64 {
    p.iter().map(|&c| c as u64).sum()
}

/// L1 distance between two points (the *dynamic skyline* mindist, where the
/// most preferable point is a query reference rather than the origin).
#[inline]
pub fn point_mindist_l1_from(p: &[u32], q: &[u32]) -> u64 {
    debug_assert_eq!(p.len(), q.len());
    p.iter()
        .zip(q.iter())
        .map(|(&a, &b)| a.abs_diff(b) as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let m = Mbb::new(vec![1, 2], vec![3, 4]);
        assert_eq!(m.dims(), 2);
        assert_eq!(m.lo(), &[1, 2]);
        assert_eq!(m.hi(), &[3, 4]);
        assert_eq!(m.mindist_l1(), 3);
        assert_eq!(m.to_string(), "MBB(1..3, 2..4)");
    }

    #[test]
    #[should_panic(expected = "lower corner")]
    fn inverted_corners_panic() {
        let _ = Mbb::new(vec![5], vec![4]);
    }

    #[test]
    fn expand_and_union() {
        let mut m = Mbb::from_point(&[5, 5]);
        m.expand_point(&[2, 8]);
        assert_eq!(m.lo(), &[2, 5]);
        assert_eq!(m.hi(), &[5, 8]);
        let u = m.union(&Mbb::from_point(&[10, 0]));
        assert_eq!(u.lo(), &[2, 0]);
        assert_eq!(u.hi(), &[10, 8]);
    }

    #[test]
    fn containment_and_intersection() {
        let big = Mbb::new(vec![0, 0], vec![10, 10]);
        let small = Mbb::new(vec![2, 2], vec![3, 3]);
        assert!(big.contains_mbb(&small));
        assert!(!small.contains_mbb(&big));
        assert!(big.intersects(&small));
        assert!(big.contains_point(&[10, 0]));
        assert!(!big.contains_point(&[11, 0]));
        let disjoint = Mbb::new(vec![11, 11], vec![12, 12]);
        assert!(!big.intersects(&disjoint));
        // Touching boxes intersect (closed boxes).
        let touching = Mbb::new(vec![10, 10], vec![12, 12]);
        assert!(big.intersects(&touching));
    }

    #[test]
    fn volume_margin_enlargement() {
        let m = Mbb::new(vec![0, 0], vec![1, 3]);
        assert_eq!(m.volume(), 8.0); // 2 * 4 integer cells
        assert_eq!(m.margin(), 4);
        assert_eq!(m.enlargement(&[0, 0]), 0.0);
        assert!(m.enlargement(&[5, 0]) > 0.0);
    }

    #[test]
    fn point_mindist() {
        assert_eq!(point_mindist_l1(&[2, 3]), 5);
        assert_eq!(point_mindist_l1(&[]), 0);
        assert_eq!(
            point_mindist_l1(&[u32::MAX, u32::MAX]),
            2 * (u32::MAX as u64)
        );
    }
}

//! Guttman-style deletion with condense-tree reinsertion — the streaming
//! counterpart of [`insert`](crate::RTree::insert), so the incrementally
//! grown main-memory tree `Tm` can retire expired skyline points instead
//! of being rebuilt.
//!
//! `delete` removes one `(point, record)` entry, then *condenses*: any node
//! on the path that drops below the minimum fill is unlinked from its
//! parent and every leaf entry beneath it is reinserted through the normal
//! insertion path (Guttman's CondenseTree). A root left with a single
//! child collapses into that child, shrinking the height; deleting the
//! last entry returns the tree to the empty state. Like insertion,
//! deletion is not IO-charged — `Tm` is a main-memory structure in the
//! paper's cost model.
//!
//! Unlinked arena slots are **not** reclaimed ([`node_count`]
//! (crate::RTree::node_count) keeps counting them until a rebuild);
//! [`validate`](crate::RTree::validate) only walks reachable nodes, so a
//! long delete/reinsert session stays structurally valid while the arena
//! carries some garbage — the same append-only trade every other arena in
//! this workspace makes for deterministic ids.

use crate::node::{LeafEntry, NodeId, NodeKind};
use crate::RTree;

impl RTree {
    /// Removes one entry matching `(point, record)` exactly. Returns
    /// `true` iff an entry was found and removed; duplicate coordinates
    /// are disambiguated by the record id, and only one entry is removed
    /// even if the same `(point, record)` pair was inserted twice.
    pub fn delete(&mut self, point: &[u32], record: u32) -> bool {
        assert_eq!(point.len(), self.dims, "point dimensionality mismatch");
        let Some(root) = self.root else {
            return false;
        };
        let mut orphans: Vec<LeafEntry> = Vec::new();
        if !self.delete_rec(root, point, record, &mut orphans) {
            return false;
        }
        self.len -= 1;
        if self.nodes[root.idx()].entry_count() == 0 {
            // The last reachable entry left through the root (directly or
            // via orphaning its only child): the tree is empty.
            self.root = None;
            self.height = 0;
        } else {
            let mbb = self.recompute_mbb(root);
            self.nodes[root.idx()].mbb = mbb;
            // Root shrink: an inner root with a single child collapses
            // into it (cascading), reversing insert's root-split growth.
            let mut top = root;
            while let NodeKind::Inner(children) = &self.nodes[top.idx()].kind {
                if children.len() != 1 {
                    break;
                }
                top = children[0];
                self.height -= 1;
            }
            self.root = Some(top);
        }
        // CondenseTree phase 2: reinsert every leaf entry stranded by an
        // underfull node, through the regular insertion path. `insert`
        // counts each as new, so pre-decrement — the entries never left
        // the logical set.
        for e in orphans {
            self.len -= 1;
            self.insert(&e.point, e.record);
        }
        true
    }

    /// Recursive remove; returns `true` iff the entry was found (and
    /// removed) beneath `id`. On the way back up, underfull children are
    /// unlinked into `orphans` and surviving MBBs are recomputed tight.
    fn delete_rec(
        &mut self,
        id: NodeId,
        point: &[u32],
        record: u32,
        orphans: &mut Vec<LeafEntry>,
    ) -> bool {
        match &self.nodes[id.idx()].kind {
            NodeKind::Leaf(entries) => {
                let Some(pos) = entries
                    .iter()
                    .position(|e| e.record == record && &*e.point == point)
                else {
                    return false;
                };
                let NodeKind::Leaf(entries) = &mut self.nodes[id.idx()].kind else {
                    // lint:allow(panic-path): re-borrow of the arm just matched immutably
                    unreachable!()
                };
                entries.remove(pos);
                true
            }
            NodeKind::Inner(children) => {
                // The entry may sit under any child whose MBB covers the
                // point (duplicates make several candidates possible).
                let candidates: Vec<NodeId> = children
                    .iter()
                    .copied()
                    .filter(|c| self.nodes[c.idx()].mbb.contains_point(point))
                    .collect();
                for c in candidates {
                    if !self.delete_rec(c, point, record, orphans) {
                        continue;
                    }
                    if self.nodes[c.idx()].entry_count() < self.min_fill {
                        let NodeKind::Inner(children) = &mut self.nodes[id.idx()].kind else {
                            // lint:allow(panic-path): re-borrow of the arm just matched immutably
                            unreachable!()
                        };
                        children.retain(|&x| x != c);
                        self.collect_entries(c, orphans);
                    } else {
                        let mbb = self.recompute_mbb(c);
                        self.nodes[c.idx()].mbb = mbb;
                    }
                    if self.nodes[id.idx()].entry_count() > 0 {
                        let mbb = self.recompute_mbb(id);
                        self.nodes[id.idx()].mbb = mbb;
                    }
                    return true;
                }
                false
            }
        }
    }

    /// Moves every leaf entry beneath `id` into `out` (depth-first, left
    /// to right — deterministic reinsertion order), leaving the unlinked
    /// slots empty.
    fn collect_entries(&mut self, id: NodeId, out: &mut Vec<LeafEntry>) {
        let kind = std::mem::replace(&mut self.nodes[id.idx()].kind, NodeKind::Leaf(Vec::new()));
        match kind {
            NodeKind::Leaf(entries) => out.extend(entries),
            NodeKind::Inner(children) => {
                for c in children {
                    self.collect_entries(c, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BuildNode;

    fn records_sorted(t: &RTree) -> Vec<u32> {
        let mut r: Vec<u32> = t.iter_records().iter().map(|&(_, r)| r).collect();
        r.sort_unstable();
        r
    }

    #[test]
    fn delete_missing_is_a_clean_miss() {
        let mut t = RTree::new(2, 4);
        assert!(!t.delete(&[1, 1], 0), "empty tree");
        t.insert(&[1, 1], 0);
        assert!(!t.delete(&[1, 1], 7), "same point, wrong record");
        assert!(!t.delete(&[2, 2], 0), "right record, wrong point");
        assert_eq!(t.len(), 1);
        t.validate().unwrap();
    }

    #[test]
    fn delete_to_empty_and_grow_again() {
        let mut t = RTree::new(2, 3);
        t.insert(&[4, 4], 9);
        assert!(t.delete(&[4, 4], 9));
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.root().is_none());
        t.validate().unwrap();
        // The emptied tree accepts fresh inserts.
        t.insert(&[1, 2], 1);
        assert_eq!((t.len(), t.height()), (1, 1));
        t.validate().unwrap();
    }

    /// Satellite: delete-then-reinsert of duplicate coordinates. Only the
    /// record-id-matched entry may go; its duplicates survive, and
    /// reinserting the same pair round-trips.
    #[test]
    fn duplicate_coordinates_delete_by_record_and_reinsert() {
        let mut t = RTree::new(2, 3);
        for i in 0..12u32 {
            t.insert(&[5, 5], i);
        }
        assert!(t.delete(&[5, 5], 7));
        assert_eq!(t.len(), 11);
        t.validate().unwrap();
        assert!(!records_sorted(&t).contains(&7));
        assert!(!t.delete(&[5, 5], 7), "already gone");
        t.insert(&[5, 5], 7);
        t.validate().unwrap();
        assert_eq!(records_sorted(&t), (0..12).collect::<Vec<_>>());
        // Drain every duplicate one by one, validating throughout.
        for i in 0..12u32 {
            assert!(t.delete(&[5, 5], i), "record {i}");
            t.validate()
                .unwrap_or_else(|e| panic!("after delete {i}: {e}"));
        }
        assert!(t.is_empty());
    }

    /// Satellite: root shrink. Deleting enough records collapses
    /// single-child roots and walks the height back down.
    #[test]
    fn root_shrinks_as_the_tree_drains() {
        let mut t = RTree::new(2, 3);
        for i in 0..60u32 {
            t.insert(&[i * 7 % 23, i * 13 % 19], i);
        }
        let peak = t.height();
        assert!(peak >= 3, "need a tall tree to shrink (got {peak})");
        for i in 0..60u32 {
            assert!(t.delete(&[i * 7 % 23, i * 13 % 19], i), "record {i}");
            t.validate()
                .unwrap_or_else(|e| panic!("after delete {i}: {e}"));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn interleaved_inserts_and_deletes_stay_valid() {
        // A sliding-window-shaped workload: insert at the head, delete at
        // the tail, window of 25, with coordinate collisions by design.
        let mut t = RTree::new(2, 4);
        let coords = |i: u32| [i % 11, i % 7];
        for i in 0..120u32 {
            t.insert(&coords(i), i);
            if i >= 25 {
                let old = i - 25;
                assert!(t.delete(&coords(old), old), "expire {old}");
            }
            t.validate().unwrap_or_else(|e| panic!("at step {i}: {e}"));
        }
        assert_eq!(t.len(), 25);
        assert_eq!(records_sorted(&t), (95..120).collect::<Vec<_>>());
    }

    #[test]
    fn condense_reinserts_from_a_hand_built_tree() {
        // A root with two leaves of 2 (min_fill of cap=4 is 1, so build
        // with cap 5 -> min_fill 2): deleting from a 2-entry leaf leaves 1
        // < min_fill, orphaning the survivor into the sibling leaf and
        // collapsing the root.
        let t = RTree::from_structure(
            1,
            5,
            BuildNode::Inner(vec![
                BuildNode::Leaf(vec![(vec![1], 1), (vec![2], 2)]),
                BuildNode::Leaf(vec![(vec![8], 8), (vec![9], 9)]),
            ]),
        );
        assert_eq!(t.height(), 2);
        let mut t = t;
        assert!(t.delete(&[2], 2));
        t.validate().unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(records_sorted(&t), vec![1, 8, 9]);
        assert_eq!(t.height(), 1, "condense + root shrink flattened the tree");
    }
}

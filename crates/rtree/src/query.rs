//! Read-side algorithms: axis-aligned range queries, Boolean (emptiness)
//! range queries with early exit, and the caller-driven best-first traversal
//! that BBS-family algorithms are built on.

use crate::geom::{point_mindist_l1, point_mindist_l1_from};
use crate::node::{NodeId, NodeKind};
use crate::{Mbb, RTree};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

impl RTree {
    /// Collects every `(point, record)` inside the closed box `[lo, hi]`.
    /// Charges one IO per node visited.
    pub fn range_query(&self, lo: &[u32], hi: &[u32]) -> Vec<(Vec<u32>, u32)> {
        let mut out = Vec::new();
        self.range_visit(lo, hi, &mut |point, record| {
            out.push((point.to_vec(), record));
            true
        });
        out
    }

    /// Boolean range query (§IV-B): returns `true` as soon as *any* indexed
    /// point falls inside the closed box `[lo, hi]`. This is the primitive
    /// behind TSS's fast t-dominance check, where "the answer is a single
    /// Boolean value that is false when the range is empty".
    pub fn range_nonempty(&self, lo: &[u32], hi: &[u32]) -> bool {
        let mut found = false;
        self.range_visit(lo, hi, &mut |_, _| {
            found = true;
            false // stop traversal
        });
        found
    }

    /// Counts points inside the closed box.
    pub fn range_count(&self, lo: &[u32], hi: &[u32]) -> usize {
        let mut n = 0usize;
        self.range_visit(lo, hi, &mut |_, _| {
            n += 1;
            true
        });
        n
    }

    /// Shared traversal: calls `visit(point, record)` for every match;
    /// `visit` returning `false` aborts the walk (early exit).
    fn range_visit(&self, lo: &[u32], hi: &[u32], visit: &mut dyn FnMut(&[u32], u32) -> bool) {
        assert_eq!(lo.len(), self.dims, "query dimensionality");
        assert_eq!(hi.len(), self.dims, "query dimensionality");
        let query = Mbb::new(lo.to_vec(), hi.to_vec());
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            self.access_node(id);
            match &self.nodes[id.idx()].kind {
                NodeKind::Leaf(entries) => {
                    for e in entries {
                        if query.contains_point(&e.point) && !visit(&e.point, e.record) {
                            return;
                        }
                    }
                }
                NodeKind::Inner(children) => {
                    for &c in children {
                        if query.intersects(&self.nodes[c.idx()].mbb) {
                            stack.push(c);
                        }
                    }
                }
            }
        }
    }

    /// Starts a best-first (ascending L1 mindist) traversal. The caller
    /// pops entries and decides, per node, whether to [`BestFirst::expand`]
    /// it or prune the whole subtree — exactly the control flow of BBS.
    pub fn best_first(&self) -> BestFirst<'_> {
        self.best_first_from(None)
    }

    /// Best-first traversal by ascending L1 distance to an arbitrary
    /// reference point — the traversal order of *dynamic* skylines, where
    /// the most preferable point is the query itself (§V-B). `None` means
    /// the origin.
    pub fn best_first_from(&self, origin: Option<&[u32]>) -> BestFirst<'_> {
        let origin: Option<Vec<u32>> = origin.map(|o| {
            assert_eq!(o.len(), self.dims, "reference dimensionality");
            o.to_vec()
        });
        let mut bf = BestFirst {
            tree: self,
            heap: BinaryHeap::new(),
            seq: 1,
            origin,
        };
        if let Some(root) = self.root {
            let mindist = bf.node_mindist(root);
            bf.heap.push(Reverse(HeapEntry {
                mindist,
                seq: 0,
                kind: HeapKind::Node(root),
            }));
        }
        bf
    }
}

/// Entry kind inside the best-first heap.
#[derive(Debug, Clone, PartialEq, Eq)]
enum HeapKind {
    Node(NodeId),
    /// `(leaf node, entry index)` — points are referenced, not copied.
    Record(NodeId, u32),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct HeapEntry {
    mindist: u64,
    /// Insertion sequence breaks mindist ties FIFO, keeping traversal
    /// deterministic (the paper's tables assume a stable order).
    seq: u64,
    kind: HeapKind,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.mindist, self.seq).cmp(&(other.mindist, other.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// What the best-first heap hands back on each pop.
#[derive(Debug, Clone, Copy)]
pub enum Popped<'a> {
    /// An internal or leaf *node* entry; expand it with
    /// [`BestFirst::expand`] or drop it to prune the subtree.
    Node {
        id: NodeId,
        mbb: &'a Mbb,
        mindist: u64,
    },
    /// A data point.
    Record {
        point: &'a [u32],
        record: u32,
        mindist: u64,
    },
}

/// Caller-driven best-first traversal (see [`RTree::best_first`]).
///
/// ```
/// # use rtree::{RTree, Popped};
/// let mut t = RTree::new(2, 4);
/// t.insert(&[3, 3], 0);
/// t.insert(&[1, 1], 1);
/// let mut bf = t.best_first();
/// let mut order = Vec::new();
/// while let Some(popped) = bf.pop() {
///     match popped {
///         Popped::Node { id, .. } => bf.expand(id),
///         Popped::Record { record, .. } => order.push(record),
///     }
/// }
/// assert_eq!(order, vec![1, 0]); // ascending mindist
/// ```
pub struct BestFirst<'a> {
    tree: &'a RTree,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    seq: u64,
    /// Reference point for mindists (`None` = the origin).
    origin: Option<Vec<u32>>,
}

impl<'a> BestFirst<'a> {
    /// Pops the entry with the smallest mindist (FIFO among ties). Popping
    /// performs no IO by itself.
    pub fn pop(&mut self) -> Option<Popped<'a>> {
        let Reverse(entry) = self.heap.pop()?;
        Some(match entry.kind {
            HeapKind::Node(id) => Popped::Node {
                id,
                mbb: &self.tree.nodes[id.idx()].mbb,
                mindist: entry.mindist,
            },
            HeapKind::Record(leaf, ix) => {
                let NodeKind::Leaf(entries) = &self.tree.nodes[leaf.idx()].kind else {
                    unreachable!("record entries always reference leaves")
                };
                let e = &entries[ix as usize];
                Popped::Record {
                    point: &e.point,
                    record: e.record,
                    mindist: entry.mindist,
                }
            }
        })
    }

    /// Peeks at the smallest mindist currently enqueued.
    pub fn peek_mindist(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.mindist)
    }

    /// Expands a node previously popped: reads it (one IO) and enqueues its
    /// children / points.
    pub fn expand(&mut self, id: NodeId) {
        self.tree.access_node(id);
        match &self.tree.nodes[id.idx()].kind {
            NodeKind::Leaf(entries) => {
                for (ix, e) in entries.iter().enumerate() {
                    let mindist = match &self.origin {
                        None => point_mindist_l1(&e.point),
                        Some(o) => point_mindist_l1_from(&e.point, o),
                    };
                    self.push(HeapEntry {
                        mindist,
                        seq: 0,
                        kind: HeapKind::Record(id, ix as u32),
                    });
                }
            }
            NodeKind::Inner(children) => {
                for &c in children {
                    let mindist = self.node_mindist(c);
                    self.push(HeapEntry {
                        mindist,
                        seq: 0,
                        kind: HeapKind::Node(c),
                    });
                }
            }
        }
    }

    fn node_mindist(&self, id: NodeId) -> u64 {
        let mbb = &self.tree.nodes[id.idx()].mbb;
        match &self.origin {
            None => mbb.mindist_l1(),
            Some(o) => mbb.mindist_l1_from(o),
        }
    }

    /// Number of entries currently enqueued (the paper's Table II tracks
    /// heap contents step by step).
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Snapshot of `(mindist, is_node)` pairs in ascending heap order — a
    /// test aid for reproducing Table II.
    pub fn heap_snapshot(&self) -> Vec<(u64, bool)> {
        let mut entries: Vec<&HeapEntry> = self.heap.iter().map(|Reverse(e)| e).collect();
        entries.sort_by_key(|e| (e.mindist, e.seq));
        entries
            .iter()
            .map(|e| (e.mindist, matches!(e.kind, HeapKind::Node(_))))
            .collect()
    }

    fn push(&mut self, mut e: HeapEntry) {
        e.seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(e));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_tree(cap: usize) -> (RTree, Vec<(Vec<u32>, u32)>) {
        let pts: Vec<(Vec<u32>, u32)> = (0..300u32)
            .map(|i| (vec![(i * 17) % 100, (i * 31) % 100], i))
            .collect();
        (RTree::bulk_load(2, cap, pts.clone()), pts)
    }

    #[test]
    fn range_query_matches_scan() {
        let (t, pts) = sample_tree(8);
        let lo = [20u32, 30];
        let hi = [60u32, 70];
        let mut got: Vec<u32> = t.range_query(&lo, &hi).iter().map(|&(_, r)| r).collect();
        got.sort_unstable();
        let mut expect: Vec<u32> = pts
            .iter()
            .filter(|(p, _)| (lo[0]..=hi[0]).contains(&p[0]) && (lo[1]..=hi[1]).contains(&p[1]))
            .map(|&(_, r)| r)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
        assert_eq!(t.range_count(&lo, &hi), expect.len());
        assert_eq!(t.range_nonempty(&lo, &hi), !expect.is_empty());
    }

    #[test]
    fn boolean_query_early_exits() {
        let (t, _) = sample_tree(8);
        t.reset_io();
        assert!(t.range_nonempty(&[0, 0], &[99, 99]));
        let io_hit = t.io_count();
        t.reset_io();
        let full = t.range_query(&[0, 0], &[99, 99]);
        let io_full = t.io_count();
        assert_eq!(full.len(), 300);
        assert!(io_hit < io_full, "early exit must touch fewer pages");
        // A miss still terminates.
        assert!(!t.range_nonempty(&[200, 200], &[300, 300]));
    }

    #[test]
    fn best_first_visits_points_in_mindist_order() {
        let (t, _) = sample_tree(4);
        let mut bf = t.best_first();
        let mut last = 0u64;
        let mut count = 0;
        while let Some(p) = bf.pop() {
            match p {
                Popped::Node { id, mindist, .. } => {
                    assert!(mindist >= last);
                    bf.expand(id);
                }
                Popped::Record { mindist, .. } => {
                    assert!(mindist >= last, "mindist regressed: {mindist} < {last}");
                    last = mindist;
                    count += 1;
                }
            }
        }
        assert_eq!(count, 300);
    }

    #[test]
    fn best_first_io_equals_node_count_when_expanding_everything() {
        let (t, _) = sample_tree(4);
        t.reset_io();
        let mut bf = t.best_first();
        while let Some(p) = bf.pop() {
            if let Popped::Node { id, .. } = p {
                bf.expand(id);
            }
        }
        assert_eq!(t.io_count() as usize, t.node_count());
    }

    #[test]
    fn best_first_on_empty_tree() {
        let t = RTree::new(3, 4);
        assert!(t.best_first().pop().is_none());
        assert_eq!(t.best_first().peek_mindist(), None);
    }

    #[test]
    fn pruning_skips_subtrees() {
        let (t, _) = sample_tree(4);
        t.reset_io();
        // Prune everything: only the root entry pops, zero expansions.
        let mut bf = t.best_first();
        let popped = bf.pop().unwrap();
        assert!(matches!(popped, Popped::Node { .. }));
        // Dropping without expand = prune. Nothing further pops.
        assert_eq!(t.io_count(), 0);
    }

    proptest! {
        /// Range queries agree with a linear scan on arbitrary data/boxes.
        #[test]
        fn range_query_equals_scan(
            pts in proptest::collection::vec((0u32..50, 0u32..50), 1..120),
            q in ((0u32..50), (0u32..50), (0u32..50), (0u32..50)),
            cap in 2usize..10,
        ) {
            let data: Vec<(Vec<u32>, u32)> = pts
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| (vec![x, y], i as u32))
                .collect();
            let t = RTree::bulk_load(2, cap, data.clone());
            t.validate().unwrap();
            let lo = [q.0.min(q.2), q.1.min(q.3)];
            let hi = [q.0.max(q.2), q.1.max(q.3)];
            let mut got: Vec<u32> = t.range_query(&lo, &hi).iter().map(|&(_, r)| r).collect();
            got.sort_unstable();
            let mut expect: Vec<u32> = data
                .iter()
                .filter(|(p, _)| lo[0] <= p[0] && p[0] <= hi[0] && lo[1] <= p[1] && p[1] <= hi[1])
                .map(|&(_, r)| r)
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(&got, &expect);
            prop_assert_eq!(t.range_nonempty(&lo, &hi), !expect.is_empty());
        }

        /// Best-first yields every record exactly once, in ascending mindist,
        /// for both bulk-loaded and inserted trees.
        #[test]
        fn best_first_complete_and_ordered(
            pts in proptest::collection::vec((0u32..40, 0u32..40), 1..80),
            cap in 2usize..8,
            use_insert in proptest::bool::ANY,
        ) {
            let data: Vec<(Vec<u32>, u32)> = pts
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| (vec![x, y], i as u32))
                .collect();
            let t = if use_insert {
                let mut t = RTree::new(2, cap);
                for (p, r) in &data {
                    t.insert(p, *r);
                }
                t
            } else {
                RTree::bulk_load(2, cap, data.clone())
            };
            t.validate().unwrap();
            let mut bf = t.best_first();
            let mut seen = Vec::new();
            let mut last = 0u64;
            while let Some(p) = bf.pop() {
                match p {
                    Popped::Node { id, .. } => bf.expand(id),
                    Popped::Record { record, mindist, .. } => {
                        prop_assert!(mindist >= last);
                        last = mindist;
                        seen.push(record);
                    }
                }
            }
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..data.len() as u32).collect::<Vec<_>>());
        }
    }
}

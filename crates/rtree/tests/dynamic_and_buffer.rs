//! Integration tests for the reference-point best-first traversal (dynamic
//! skylines) and the LRU page buffer.

use rtree::{Popped, RTree};

fn grid_tree(cap: usize) -> (RTree, Vec<Vec<u32>>) {
    let mut pts = Vec::new();
    for x in 0..20u32 {
        for y in 0..20u32 {
            pts.push(vec![x * 5, y * 5]);
        }
    }
    let data: Vec<(Vec<u32>, u32)> = pts
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u32))
        .collect();
    (RTree::bulk_load(2, cap, data), pts)
}

#[test]
fn best_first_from_reference_orders_by_folded_distance() {
    let (tree, pts) = grid_tree(6);
    let q = [48u32, 52];
    let mut bf = tree.best_first_from(Some(&q));
    let mut last = 0u64;
    let mut seen = 0;
    while let Some(p) = bf.pop() {
        match p {
            Popped::Node { id, mbb, mindist } => {
                assert_eq!(mindist, mbb.mindist_l1_from(&q));
                bf.expand(id);
            }
            Popped::Record {
                point,
                record,
                mindist,
            } => {
                let expect: u64 = point
                    .iter()
                    .zip(q.iter())
                    .map(|(&a, &b)| a.abs_diff(b) as u64)
                    .sum();
                assert_eq!(mindist, expect);
                assert_eq!(point, pts[record as usize].as_slice());
                assert!(mindist >= last, "folded mindist regressed");
                last = mindist;
                seen += 1;
            }
        }
    }
    assert_eq!(seen, 400);
}

#[test]
fn folded_corner_lower_bounds_every_point() {
    let (tree, _) = grid_tree(4);
    let q = [33u32, 71];
    // For every node, the folded corner must dominate-or-equal the folded
    // coordinates of every contained point.
    let root = tree.root().unwrap();
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        let corner = tree.mbb(id).folded_corner(&q);
        for child in tree.children_free(id) {
            match child {
                rtree::ChildEntry::Node { id, .. } => stack.push(id),
                rtree::ChildEntry::Record { point, .. } => {
                    for d in 0..2 {
                        assert!(corner[d] <= point[d].abs_diff(q[d]));
                    }
                }
            }
        }
    }
}

#[test]
fn buffer_absorbs_repeated_queries() {
    let (mut tree, _) = grid_tree(4);
    tree.enable_buffer(tree.node_count());
    tree.reset_io();
    let cold = {
        let _ = tree.range_query(&[0, 0], &[40, 40]);
        tree.io_count()
    };
    tree.reset_io();
    let warm = {
        let _ = tree.range_query(&[0, 0], &[40, 40]);
        tree.io_count()
    };
    assert!(cold > 0);
    assert_eq!(warm, 0, "fully buffered re-query must be free");

    // A small buffer absorbs only part of the working set.
    tree.disable_buffer();
    tree.enable_buffer(2);
    tree.reset_io();
    let _ = tree.range_query(&[0, 0], &[40, 40]);
    let first = tree.io_count();
    tree.reset_io();
    let _ = tree.range_query(&[0, 0], &[40, 40]);
    let second = tree.io_count();
    assert!(second > 0 && second <= first);
}

#[test]
fn disabled_buffer_restores_full_charging() {
    let (mut tree, _) = grid_tree(4);
    tree.enable_buffer(64);
    let _ = tree.range_count(&[0, 0], &[99, 99]);
    tree.disable_buffer();
    tree.reset_io();
    let a = {
        let _ = tree.range_count(&[0, 0], &[99, 99]);
        tree.io_count()
    };
    tree.reset_io();
    let b = {
        let _ = tree.range_count(&[0, 0], &[99, 99]);
        tree.io_count()
    };
    assert_eq!(a, b, "no buffering: identical queries cost identical IOs");
}

#[test]
fn origin_reference_equals_plain_best_first() {
    let (tree, _) = grid_tree(5);
    let run = |mut bf: rtree::BestFirst| {
        let mut order = Vec::new();
        while let Some(p) = bf.pop() {
            match p {
                Popped::Node { id, .. } => bf.expand(id),
                Popped::Record { record, .. } => order.push(record),
            }
        }
        order
    };
    let plain = run(tree.best_first());
    let zero = run(tree.best_first_from(Some(&[0, 0])));
    assert_eq!(plain, zero);
}

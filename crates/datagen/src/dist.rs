use rand::Rng;

/// Tuple distribution over the unit hypercube, scaled to integer domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Every coordinate drawn independently and uniformly — the paper's
    /// *Independent* workload.
    Independent,
    /// Coordinates cluster around the diagonal (a good value in one
    /// dimension predicts good values in the others), giving tiny skylines.
    Correlated,
    /// Coordinates cluster around an anti-diagonal hyperplane ("tickets
    /// with few stops are more expensive"), giving large skylines — the
    /// paper's *Anti-correlated* workload.
    AntiCorrelated,
}

impl Distribution {
    /// Short name used in reports ("indep", "corr", "anti").
    pub fn short(&self) -> &'static str {
        match self {
            Distribution::Independent => "indep",
            Distribution::Correlated => "corr",
            Distribution::AntiCorrelated => "anti",
        }
    }

    /// Samples one point in `[0,1)^dims` into `out`.
    pub(crate) fn sample(&self, rng: &mut impl Rng, out: &mut [f64]) {
        match self {
            Distribution::Independent => {
                for x in out.iter_mut() {
                    *x = rng.gen::<f64>();
                }
            }
            Distribution::Correlated => {
                // A common diagonal position plus small per-dimension noise.
                let v: f64 = rng.gen();
                for x in out.iter_mut() {
                    *x = clamp01(v + normal(rng, 0.0, 0.05));
                }
            }
            Distribution::AntiCorrelated => {
                // Coordinate sum concentrated near d/2: draw a plane offset
                // c ~ N(0.5, ANTI_PLANE_SIGMA), spread the point uniformly,
                // then project onto the hyperplane sum = d*c;
                // rejection-sample into the cube (clamping after a bounded
                // number of retries keeps the generator total).
                let d = out.len() as f64;
                for _attempt in 0..16 {
                    let c = clamp01(normal(rng, 0.5, ANTI_PLANE_SIGMA));
                    let mut sum = 0.0;
                    for x in out.iter_mut() {
                        *x = rng.gen::<f64>();
                        sum += *x;
                    }
                    let shift = (d * c - sum) / d;
                    let mut ok = true;
                    for x in out.iter_mut() {
                        *x += shift;
                        if !(0.0..1.0).contains(x) {
                            ok = false;
                        }
                    }
                    if ok {
                        return;
                    }
                }
                for x in out.iter_mut() {
                    *x = clamp01(*x);
                }
            }
        }
    }
}

/// Standard deviation of the anti-correlated plane offset `c`. Tight enough
/// that anti-correlated skylines dwarf independent ones at every cardinality
/// the experiments sweep (a loose plane lets low-plane points dominate most
/// of the band, collapsing the skyline to near-independent sizes).
const ANTI_PLANE_SIGMA: f64 = 0.04;

#[inline]
fn clamp01(x: f64) -> f64 {
    // Keep strictly below 1.0 so integer scaling stays in-domain.
    x.clamp(0.0, 1.0 - f64::EPSILON)
}

/// Box–Muller normal sample (avoids pulling in `rand_distr`).
pub(crate) fn normal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    mu + sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_many(dist: Distribution, dims: usize, n: usize) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(42);
        (0..n)
            .map(|_| {
                let mut p = vec![0.0; dims];
                dist.sample(&mut rng, &mut p);
                p
            })
            .collect()
    }

    #[test]
    fn samples_stay_in_unit_cube() {
        for dist in [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::AntiCorrelated,
        ] {
            for p in sample_many(dist, 4, 2000) {
                assert!(
                    p.iter().all(|&x| (0.0..1.0).contains(&x)),
                    "{dist:?}: {p:?}"
                );
            }
        }
    }

    #[test]
    fn anti_correlated_sums_concentrate() {
        let pts = sample_many(Distribution::AntiCorrelated, 2, 4000);
        let sums: Vec<f64> = pts.iter().map(|p| p.iter().sum()).collect();
        let mean = sums.iter().sum::<f64>() / sums.len() as f64;
        let var = sums.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / sums.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean sum {mean}");
        // Independent 2-d sums have variance 1/6 ≈ 0.167; anti-correlated
        // must be far tighter.
        assert!(var < 0.02, "variance {var}");
    }

    #[test]
    fn correlated_coordinates_track_each_other() {
        let pts = sample_many(Distribution::Correlated, 2, 4000);
        let diffs: Vec<f64> = pts.iter().map(|p| (p[0] - p[1]).abs()).collect();
        let mean_diff = diffs.iter().sum::<f64>() / diffs.len() as f64;
        // Independent |x-y| has mean 1/3; correlated is far smaller.
        assert!(mean_diff < 0.1, "mean |x-y| = {mean_diff}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..20000).map(|_| normal(&mut rng, 2.0, 0.5)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn short_names() {
        assert_eq!(Distribution::Independent.short(), "indep");
        assert_eq!(Distribution::Correlated.short(), "corr");
        assert_eq!(Distribution::AntiCorrelated.short(), "anti");
    }
}

use crate::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for totally ordered attribute generation.
#[derive(Debug, Clone, Copy)]
pub struct TupleConfig {
    /// Number of tuples (`N` in Table III).
    pub n: usize,
    /// Number of totally ordered dimensions (`|TO|`).
    pub dims: usize,
    /// Integer domain size per dimension (the paper fixes 10 000).
    pub domain: u32,
    /// Distribution of the tuples.
    pub dist: Distribution,
    /// RNG seed.
    pub seed: u64,
}

/// Generates the totally ordered coordinates as a flattened row-major
/// `n × dims` matrix of integers in `0..domain` (smaller is better).
pub fn gen_to_matrix(cfg: TupleConfig) -> Vec<u32> {
    assert!(cfg.dims >= 1 && cfg.domain >= 1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.n * cfg.dims);
    let mut buf = vec![0.0f64; cfg.dims];
    for _ in 0..cfg.n {
        cfg.dist.sample(&mut rng, &mut buf);
        for &x in &buf {
            out.push((x * cfg.domain as f64) as u32);
        }
    }
    out
}

/// Assigns partially ordered values: a flattened row-major `n × dims` matrix
/// where column `d` holds uniform-random value ids in
/// `0..domain_sizes[d]`.
///
/// The paper does not state the PO assignment; uniform over the DAG's nodes
/// is the natural choice (documented in DESIGN.md §1.4).
pub fn gen_po_matrix(n: usize, domain_sizes: &[u32], seed: u64) -> Vec<u32> {
    assert!(domain_sizes.iter().all(|&s| s >= 1), "empty PO domain");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n * domain_sizes.len());
    for _ in 0..n {
        for &size in domain_sizes {
            out.push(rng.gen_range(0..size));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_matrix_shape_and_range() {
        let cfg = TupleConfig {
            n: 1000,
            dims: 3,
            domain: 10_000,
            dist: Distribution::Independent,
            seed: 1,
        };
        let m = gen_to_matrix(cfg);
        assert_eq!(m.len(), 3000);
        assert!(m.iter().all(|&v| v < 10_000));
    }

    #[test]
    fn to_matrix_deterministic() {
        let cfg = TupleConfig {
            n: 100,
            dims: 2,
            domain: 100,
            dist: Distribution::AntiCorrelated,
            seed: 99,
        };
        assert_eq!(gen_to_matrix(cfg), gen_to_matrix(cfg));
        let other = TupleConfig { seed: 100, ..cfg };
        assert_ne!(gen_to_matrix(cfg), gen_to_matrix(other));
    }

    #[test]
    fn independent_fills_the_domain() {
        let cfg = TupleConfig {
            n: 20_000,
            dims: 1,
            domain: 10,
            dist: Distribution::Independent,
            seed: 5,
        };
        let m = gen_to_matrix(cfg);
        let mut counts = [0usize; 10];
        for &v in &m {
            counts[v as usize] += 1;
        }
        for (v, &c) in counts.iter().enumerate() {
            assert!(c > 1500, "value {v} badly underrepresented: {c}");
        }
    }

    #[test]
    fn anti_correlated_has_bigger_skyline_than_independent() {
        // The structural property every figure of the paper relies on.
        let mk = |dist| {
            let cfg = TupleConfig {
                n: 4000,
                dims: 2,
                domain: 10_000,
                dist,
                seed: 11,
            };
            let m = gen_to_matrix(cfg);
            skyline::brute_force(&skyline::PointBlock::from_flat(2, m)).len()
        };
        let indep = mk(Distribution::Independent);
        let anti = mk(Distribution::AntiCorrelated);
        let corr = mk(Distribution::Correlated);
        assert!(
            anti > 2 * indep,
            "anti-correlated skyline ({anti}) must dwarf independent ({indep})"
        );
        // Correlated skylines are smaller than anti-correlated ones (at this
        // scale they are comparable to independent, so only the ordering with
        // anti-correlated is asserted).
        assert!(
            corr < anti,
            "correlated skyline ({corr}) must be below anti ({anti})"
        );
    }

    #[test]
    fn po_matrix_shape_range_determinism() {
        let m = gen_po_matrix(500, &[7, 256], 3);
        assert_eq!(m.len(), 1000);
        for row in m.chunks(2) {
            assert!(row[0] < 7 && row[1] < 256);
        }
        assert_eq!(m, gen_po_matrix(500, &[7, 256], 3));
        // All values of a small domain appear.
        let mut seen = [false; 7];
        for row in m.chunks(2) {
            seen[row[0] as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! Synthetic skyline workloads reproducing §VI-A of the TSS paper.
//!
//! The paper modified the public `randdataset` generator (Börzsönyi et al.)
//! to produce tuples under two distributions — *Independent* and
//! *Anti-correlated* — over totally ordered integer domains of size 10 000,
//! assigning each tuple values from one or two partially ordered domains
//! sampled from subset-containment lattices. This crate reimplements those
//! distributions from the published description (the original C source is
//! not vendored; see DESIGN.md §1.3 for the substitution argument) plus the
//! *Correlated* variant for completeness.
//!
//! Everything is seeded and deterministic. Matrices are returned flattened
//! (row-major) to keep multi-million-tuple workloads allocation-friendly.

#![forbid(unsafe_code)]

mod dist;
mod tuples;
pub mod workloads;

pub use dist::Distribution;
pub use tuples::{gen_po_matrix, gen_to_matrix, TupleConfig};
pub use workloads::{ExperimentParams, PAPER_TO_DOMAIN};

//! The experiment parameter grid of Table III, with the paper's default
//! settings for the static (§VI-B) and dynamic (§VI-C) studies.

use crate::{gen_po_matrix, gen_to_matrix, Distribution, TupleConfig};
use poset::generator::{subset_lattice, DensityMode, LatticeParams};
use poset::Dag;

/// The paper fixes every totally ordered domain to 10 000 values.
pub const PAPER_TO_DOMAIN: u32 = 10_000;

/// One experiment setting: the full parameter vector of Table III.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentParams {
    /// Data cardinality `N`.
    pub n: usize,
    /// Number of totally ordered attributes `|TO|`.
    pub to_dims: usize,
    /// Number of partially ordered attributes `|PO|`.
    pub po_dims: usize,
    /// DAG height `h` (subset-lattice object count).
    pub dag_height: u32,
    /// DAG density `d`.
    pub dag_density: f64,
    /// Tuple distribution.
    pub dist: Distribution,
    /// Totally ordered domain size.
    pub to_domain: u32,
    /// Master seed; per-component seeds are derived from it.
    pub seed: u64,
}

impl ExperimentParams {
    /// §VI-B defaults: `N = 1M, |TO| = 2, |PO| = 2, h = 8, d = 0.8`.
    pub fn paper_static_default(dist: Distribution, seed: u64) -> Self {
        ExperimentParams {
            n: 1_000_000,
            to_dims: 2,
            po_dims: 2,
            dag_height: 8,
            dag_density: 0.8,
            dist,
            to_domain: PAPER_TO_DOMAIN,
            seed,
        }
    }

    /// §VI-C defaults: `N = 1M, |TO| = 3, |PO| = 1, h = 6, d = 0.8`.
    pub fn paper_dynamic_default(dist: Distribution, seed: u64) -> Self {
        ExperimentParams {
            n: 1_000_000,
            to_dims: 3,
            po_dims: 1,
            dag_height: 6,
            dag_density: 0.8,
            dist,
            to_domain: PAPER_TO_DOMAIN,
            seed,
        }
    }

    /// Builds one DAG per PO attribute (independent lattice samples with
    /// per-attribute derived seeds).
    pub fn build_dags(&self) -> Vec<Dag> {
        (0..self.po_dims)
            .map(|d| {
                subset_lattice(LatticeParams {
                    height: self.dag_height,
                    density: self.dag_density,
                    seed: self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(d as u64),
                    mode: DensityMode::Literal,
                })
                .expect("height within bounds")
            })
            .collect()
    }

    /// Generates the totally ordered coordinate matrix (`n × to_dims`,
    /// row-major).
    pub fn gen_to(&self) -> Vec<u32> {
        gen_to_matrix(TupleConfig {
            n: self.n,
            dims: self.to_dims,
            domain: self.to_domain,
            dist: self.dist,
            seed: self.seed,
        })
    }

    /// Generates the PO value-id matrix (`n × po_dims`, row-major) for the
    /// given per-attribute domains.
    pub fn gen_po(&self, dags: &[Dag]) -> Vec<u32> {
        assert_eq!(dags.len(), self.po_dims);
        let sizes: Vec<u32> = dags.iter().map(|d| d.len() as u32).collect();
        gen_po_matrix(self.n, &sizes, self.seed.wrapping_add(0xDA7A))
    }

    /// Materializes the whole workload straight into the columnar
    /// [`PointStore`](tss_core::PointStore): the generated flat TO/PO
    /// matrices are wrapped zero-copy, so the tuples never exist as
    /// per-point rows on the way to the engines.
    pub fn materialize(&self) -> (tss_core::PointStore, Vec<Dag>) {
        let dags = self.build_dags();
        let to = self.gen_to();
        let po = self.gen_po(&dags);
        let store = tss_core::PointStore::from_parts(self.to_dims, self.po_dims, to, po)
            .expect("generator emits well-shaped matrices");
        (store, dags)
    }

    /// The Table III sweep values for data cardinality.
    pub const CARDINALITIES: [usize; 5] = [100_000, 500_000, 1_000_000, 5_000_000, 10_000_000];
    /// The Table III sweep values for `(|TO|, |PO|)`.
    pub const DIMENSIONALITIES: [(usize, usize); 6] =
        [(2, 1), (3, 1), (4, 1), (2, 2), (3, 2), (4, 2)];
    /// The Table III sweep values for DAG height.
    pub const HEIGHTS: [u32; 5] = [2, 4, 6, 8, 10];
    /// The Table III sweep values for DAG density.
    pub const DENSITIES: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iii() {
        let s = ExperimentParams::paper_static_default(Distribution::Independent, 1);
        assert_eq!(
            (s.n, s.to_dims, s.po_dims, s.dag_height, s.dag_density),
            (1_000_000, 2, 2, 8, 0.8)
        );
        let d = ExperimentParams::paper_dynamic_default(Distribution::AntiCorrelated, 1);
        assert_eq!(
            (d.n, d.to_dims, d.po_dims, d.dag_height, d.dag_density),
            (1_000_000, 3, 1, 6, 0.8)
        );
    }

    #[test]
    fn generates_consistent_shapes() {
        let mut p = ExperimentParams::paper_static_default(Distribution::Independent, 7);
        p.n = 1000; // scaled down for the test
        let dags = p.build_dags();
        assert_eq!(dags.len(), 2);
        // h=8, d=0.8: around 205 nodes each.
        for dag in &dags {
            assert!((170..=256).contains(&dag.len()), "|V| = {}", dag.len());
        }
        let to = p.gen_to();
        let po = p.gen_po(&dags);
        assert_eq!(to.len(), 1000 * 2);
        assert_eq!(po.len(), 1000 * 2);
        for (i, row) in po.chunks(2).enumerate() {
            assert!(row[0] < dags[0].len() as u32, "row {i}");
            assert!(row[1] < dags[1].len() as u32, "row {i}");
        }
    }

    #[test]
    fn per_attribute_dags_differ() {
        let mut p = ExperimentParams::paper_static_default(Distribution::Independent, 3);
        p.n = 10;
        let dags = p.build_dags();
        // Different derived seeds: overwhelmingly different node samples.
        assert_ne!(
            dags[0]
                .values()
                .map(|v| dags[0].label(v).to_string())
                .collect::<Vec<_>>(),
            dags[1]
                .values()
                .map(|v| dags[1].label(v).to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn sweep_constants_match_paper() {
        assert_eq!(ExperimentParams::CARDINALITIES[2], 1_000_000);
        assert_eq!(ExperimentParams::DIMENSIONALITIES.len(), 6);
        assert_eq!(ExperimentParams::HEIGHTS, [2, 4, 6, 8, 10]);
        assert_eq!(ExperimentParams::DENSITIES.len(), 5);
    }
}

use poset::{Dag, DyadicIndex, IntervalSet, Reachability, TssLabeling, ValueId};

/// Everything TSS precomputes about one partially ordered domain: the DAG,
/// its exact interval labeling (topological ordinals + propagated interval
/// sets), the dyadic range index over the topologically sorted domain, and
/// the bitset transitive closure (ground truth, used by oracles and by the
/// baselines' exact cross-checks).
#[derive(Debug, Clone)]
pub struct PoDomain {
    dag: Dag,
    labeling: TssLabeling,
    dyadic: DyadicIndex,
    reach: Reachability,
}

impl PoDomain {
    /// Precomputes all structures for `dag` (default DFS spanning tree).
    pub fn new(dag: Dag) -> Self {
        let labeling = TssLabeling::build_default(&dag);
        Self::from_labeling(dag, labeling)
    }

    /// Precomputes all structures with an explicit spanning tree (tests
    /// reproducing the paper's Fig. 2 labels use its hand-drawn tree).
    pub fn with_tree(dag: Dag, tree: poset::SpanningTree) -> Self {
        let labeling = TssLabeling::build(&dag, tree);
        Self::from_labeling(dag, labeling)
    }

    fn from_labeling(dag: Dag, labeling: TssLabeling) -> Self {
        let dyadic = DyadicIndex::build(&labeling);
        let reach = Reachability::build(&dag);
        PoDomain {
            dag,
            labeling,
            dyadic,
            reach,
        }
    }

    /// The domain DAG.
    #[inline]
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// The exact TSS labeling.
    #[inline]
    pub fn labeling(&self) -> &TssLabeling {
        &self.labeling
    }

    /// The dyadic range index.
    #[inline]
    pub fn dyadic(&self) -> &DyadicIndex {
        &self.dyadic
    }

    /// The transitive closure.
    #[inline]
    pub fn reach(&self) -> &Reachability {
        &self.reach
    }

    /// Domain cardinality.
    #[inline]
    pub fn len(&self) -> usize {
        self.dag.len()
    }

    /// True iff the domain is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dag.is_empty()
    }

    /// The topological ordinal (1-based) of a raw value id — the value's
    /// coordinate in the constructed `A_TO` dimension.
    #[inline]
    pub fn ordinal(&self, raw: u32) -> u32 {
        self.labeling.ordinal(ValueId(raw))
    }

    /// The interval set of a raw value id.
    #[inline]
    pub fn intervals(&self, raw: u32) -> &IntervalSet {
        self.labeling.intervals(ValueId(raw))
    }

    /// Merged interval set for an ordinal range, via the dyadic index.
    #[inline]
    pub fn range_intervals(&self, lo: u32, hi: u32) -> IntervalSet {
        self.dyadic.range(lo, hi)
    }

    /// "At least as good": equal values or exact preference.
    ///
    /// Answered with one bit probe of the precomputed transitive closure —
    /// the cheapest exact decision for a *value pair*. The interval labels
    /// (whose job is the range/MBB queries a closure cannot answer) remain
    /// the decision procedure for everything range-shaped; their pair form
    /// is kept as [`pref_labeled`](Self::pref_labeled) for cross-checks.
    #[inline]
    pub fn pref_or_equal(&self, a: u32, b: u32) -> bool {
        self.reach.preferred_or_equal(ValueId(a), ValueId(b))
    }

    /// Strict exact preference (one closure bit probe, see
    /// [`pref_or_equal`](Self::pref_or_equal)).
    #[inline]
    pub fn pref(&self, a: u32, b: u32) -> bool {
        self.reach.preferred(ValueId(a), ValueId(b))
    }

    /// Strict exact preference decided by interval-label containment — the
    /// paper's Definition 1 procedure. Equivalent to [`pref`](Self::pref)
    /// by the exactness theorem; kept as an independent cross-check.
    #[inline]
    pub fn pref_labeled(&self, a: u32, b: u32) -> bool {
        self.labeling.t_pref(ValueId(a), ValueId(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundles_consistent_structures() {
        let dag = Dag::paper_example();
        let dom = PoDomain::new(dag);
        assert_eq!(dom.len(), 9);
        // Ordinals: deterministic topo sort is alphabetical here.
        assert_eq!(dom.ordinal(0), 1); // a
        assert_eq!(dom.ordinal(8), 9); // i
                                       // The closure-bit pair preference and
                                       // the interval-label decision
                                       // procedure agree on every pair (the
                                       // exactness theorem).
        for x in 0..9u32 {
            for y in 0..9u32 {
                assert_eq!(dom.pref(x, y), dom.pref_labeled(x, y), "({x}, {y})");
                assert_eq!(
                    dom.pref_or_equal(x, y),
                    x == y || dom.pref_labeled(x, y),
                    "({x}, {y})"
                );
            }
        }
        // Dyadic range equals labeling range.
        assert_eq!(
            dom.range_intervals(2, 7),
            dom.labeling().range_intervals(2, 7)
        );
    }
}

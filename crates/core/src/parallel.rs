//! **Sharded parallel skyline execution** — the first scaling lever of the
//! ROADMAP north star.
//!
//! The skyline operator distributes over unions: the skyline of
//! `S₁ ∪ … ∪ Sₖ` is the skyline of the union of the per-shard skylines.
//! The columnar [`PointStore`] makes the partitioning free —
//! [`PointStore::shards`] hands out zero-copy [`ShardView`] windows over
//! the flat TO/PO blocks — so any exact engine can run per shard on scoped
//! OS threads ([`run_jobs`]; no extra dependencies, `std::thread::scope`
//! only) and the local skylines are folded back together by
//! [`merge_shard_skylines`] with the store's batched
//! [`t_dominated_by_any`](PointStore::t_dominated_by_any) kernels.
//!
//! # Determinism contract
//!
//! Everything observable is **invariant to the worker count**:
//!
//! * the shard boundaries depend only on `(len, shard_count)`, never on
//!   `threads`;
//! * each shard job is self-contained, so its result and [`Metrics`] are
//!   the same on any thread;
//! * the merge phase partitions candidates into equal-score strata — a
//!   partition fixed by the data alone — and each stratum's checks run
//!   against the confirmed prefix *frozen* at stratum start, so every
//!   verdict and every examined-pair count is independent of how the
//!   stratum is chunked across workers; results apply in sorted order.
//!
//! Running the same store with the same shard count at 1, 2 or 4 threads
//! therefore produces byte-identical skyline record-id vectors and
//! identical `dominance_checks` / `dominance_batch_calls` /
//! `merge_pair_checks` — only the wall clock changes. Per-shard and
//! per-stratum metrics are combined with the exact componentwise
//! [`Metrics::merge`], so no count is ever estimated. The merged skyline
//! is emitted in `(score, record id)` order, which does not mention the
//! shard boundaries at all — so the record-id *vector* (not just the set)
//! is also identical across different shard plans, e.g. adaptive vs
//! fixed.
//!
//! # Duplicates across shards
//!
//! Exact duplicates never dominate each other, and every engine in the
//! workspace keeps all copies. Sharding preserves that end to end: each
//! copy is locally skyline in its own shard iff its tuple is globally
//! skyline, and the merge kernels ([`t_dominates`](crate::t_dominates)
//! semantics) treat equal tuples as non-dominating — so the final pass
//! over the concatenated local skylines retains every cross-shard copy of
//! a skyline tuple and no others.
//!
//! # Merge cost, and the two levers against it
//!
//! Per-shard skylines are supersets of their global contribution (a shard
//! misses dominators living elsewhere), so total work grows with the shard
//! count. The naive fold ([`merge_shard_skylines_all_pairs`]) checks every
//! candidate against every *other* shard's full local skyline —
//! `O(Σᵢ |localᵢ| · Σⱼ≠ᵢ |localⱼ|)` pair checks in the worst case, the
//! last serial section of a sharded run. Two levers replace and contain
//! that cost:
//!
//! * **Sorted, parallel merge** ([`merge_shard_skylines`]): candidates are
//!   sorted by the strictly monotone
//!   [`monotone_score`](PointStore::monotone_score) (ties by record id),
//!   so each one needs checking only against the *already-confirmed*
//!   global-skyline prefix of the other shards — an SFS/SaLSa-style
//!   filter. Equal-score candidates can never dominate each other, so
//!   each equal-score stratum is evaluated concurrently ([`map_slice`])
//!   against the prefix frozen at stratum start, the same frozen-stratum
//!   pattern the cursors use. Per-candidate pair work is bounded by the
//!   all-pairs bound above and is typically a fraction of it
//!   ([`Metrics::merge_pair_checks`] counts it exactly).
//! * **Cost-model shard counts** ([`ShardPlan`]): the planner samples two
//!   store prefixes, fits the skyline-growth exponent, and picks the shard
//!   count whose *estimated pair-check total* — parallel run phase plus
//!   serial merge bound — is minimal under the worker count the run will
//!   actually use. Anti-correlated data (everything skyline, merge cost
//!   quadratic in the shard count) lands on one or two shards; dominance-
//!   heavy data fans out to the worker count.
//!
//! # Fault tolerance
//!
//! Shard jobs run behind the [`ShardExecutor`] seam: every attempt is
//! panic-isolated (`catch_unwind` lives in the executor module alone),
//! failed shards are retried a bounded number of times and then
//! recomputed on the scalar-oracle kernel path, and a seeded
//! [`FaultPlan`] (`TSS_FAULTS=seed:rate`) can deterministically inject
//! panics and corrupted local skylines to prove the recovery ladder
//! keeps every byte-identity invariant — see the
//! [`executor` docs](ShardExecutor). The sharded fronts therefore return
//! `Result<ParallelRun, ShardError>`: an `Err` means a shard failed on
//! *every* path, including the oracle — a real bug, not a transient
//! fault. A [`Budget`] (pair-check units) can bound the
//! total work; an exhausted run reports
//! [`ParallelRun::exhausted`] with a sound confirmed prefix.
//!
//! ```
//! use skyline::PointBlock;
//! use tss_core::parallel::parallel_classic_skyline;
//! use tss_core::{ClassicAlgo, Table};
//!
//! let mut t = Table::new(2, 0);
//! for (a, b) in [(5, 1), (1, 5), (3, 3), (4, 4), (2, 6), (6, 2)] {
//!     t.push(&[a, b], &[]);
//! }
//! let run = parallel_classic_skyline(&t, ClassicAlgo::Sfs, 3, 2).unwrap();
//! let mut got = run.records.clone();
//! got.sort_unstable();
//! assert_eq!(got, vec![0, 1, 2]);
//! // The same shards at one worker produce the identical result and
//! // counts — threads only change the wall clock.
//! let serial = parallel_classic_skyline(&t, ClassicAlgo::Sfs, 3, 1).unwrap();
//! assert_eq!(serial.records, run.records);
//! assert_eq!(serial.metrics().dominance_checks, run.metrics().dominance_checks);
//! ```

use crate::budget::Budget;
use crate::classic::{ClassicAlgo, ClassicEngine};
use crate::cursor::SkylineEngine;
use crate::error::ShardError;
use crate::executor::panic_message;
use crate::store::{PointStore, RecordId, ShardView};
use crate::{Metrics, PoDomain};
use skyline::PointBlock;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use crate::executor::{
    ExecPolicy, FaultKind, FaultPlan, ProcessFaultKind, ShardCtx, ShardExecutor, ShardJob,
    ShardOutcome, ThreadShardExecutor,
};

/// Componentwise sum of a set of [`Metrics`] (exact, via
/// [`Metrics::merge`]).
pub fn sum_metrics<'a>(metrics: impl IntoIterator<Item = &'a Metrics>) -> Metrics {
    metrics
        .into_iter()
        .fold(Metrics::default(), |acc, m| acc.merge(m))
}

/// Runs independent jobs on up to `threads` scoped OS threads and returns
/// their results **in job order**. Work is claimed dynamically (an atomic
/// cursor), so uneven jobs balance; results are slotted by index, so the
/// output — unlike the schedule — is deterministic. `threads <= 1` (or a
/// single job) runs inline on the caller's thread.
///
/// A job that panics on a worker is reported as
/// [`ShardErrorKind::Panicked`](crate::ShardErrorKind::Panicked) (with
/// the job's index as the shard) instead
/// of tearing the process down; jobs a dead worker never claimed are
/// recomputed inline on the caller's thread, so one failure never loses
/// the others' results. Executors that want retries and fallbacks
/// instead of an error run their jobs through
/// [`ThreadShardExecutor`].
pub fn run_jobs<T, F>(threads: usize, jobs: Vec<F>) -> Result<Vec<T>, ShardError>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        return Ok(jobs.into_iter().map(|f| f()).collect());
    }
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let mut panic_msgs: Vec<String> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads.min(n))
            .map(|_| {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // Locks are claimed uncontended (the atomic cursor
                    // hands each index to exactly one worker); a poisoned
                    // lock still owns its data, so poisoning — only
                    // possible if a job panicked mid-slot-write — never
                    // cascades.
                    let job = slots[i].lock().unwrap_or_else(|p| p.into_inner()).take();
                    if let Some(job) = job {
                        let value = job();
                        *results[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(value);
                    }
                })
            })
            .collect();
        for h in handles {
            // Joining explicitly consumes a worker's panic payload, so the
            // scope does not resume unwinding on the caller; the payload
            // becomes the structured error below.
            if let Err(payload) = h.join() {
                panic_msgs.push(panic_message(payload.as_ref()));
            }
        }
    });
    let mut out = Vec::with_capacity(n);
    let mut panics = panic_msgs.into_iter();
    for (i, (slot, result)) in slots.into_iter().zip(results).enumerate() {
        match result.into_inner().unwrap_or_else(|p| p.into_inner()) {
            Some(v) => out.push(v),
            // Unclaimed (its would-be workers died first): run inline. A
            // deterministic panic in the job itself resurfaces on the
            // caller's thread, which is the job's own failure, not ours.
            None => match slot.into_inner().unwrap_or_else(|p| p.into_inner()) {
                Some(job) => out.push(job()),
                // Claimed but never finished: this job panicked. `run_jobs`
                // has no record-range context, so the error's range stays
                // empty (and Display omits it).
                None => {
                    return Err(ShardError::panicked(
                        i,
                        0,
                        panics
                            .next()
                            .unwrap_or_else(|| "worker panicked".to_string()),
                    ))
                }
            },
        }
    }
    Ok(out)
}

/// Minimum items per worker before [`map_slice`] bothers spawning.
const MIN_ITEMS_PER_THREAD: usize = 16;

/// Applies `f` to every item of a slice, fanning contiguous chunks out to
/// up to `threads` scoped threads, and returns the results in item order.
/// The chunking never changes what is computed — `f` sees each item
/// exactly once — so any per-item counting embedded in `R` is invariant to
/// the worker count. Small inputs run inline.
pub fn map_slice<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads
        .max(1)
        .min(items.len().div_ceil(MIN_ITEMS_PER_THREAD));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| (c, s.spawn(|| c.iter().map(&f).collect::<Vec<R>>())))
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for (c, h) in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                // A panicked worker loses nothing: its chunk is recomputed
                // inline, in order. A deterministic panic in `f` then
                // resurfaces on the caller's thread — `f`'s own failure —
                // while every other chunk's results survive.
                Err(_) => out.extend(c.iter().map(&f)),
            }
        }
        out
    })
}

/// How many prefix records [`ShardPlan::adaptive`] samples to estimate the
/// local-skyline ratio.
pub const PLAN_SAMPLE: usize = 512;

/// A resolved shard-count decision: how many shards a sharded run uses,
/// the measurements that picked the number, and the cost-model estimates
/// the decision minimized.
///
/// The planner exists because merge cost scales with the total
/// local-skyline size, which scales with the shard count: on
/// anti-correlated data — where almost every tuple is skyline — more
/// shards only buy more merge work, while on independent / correlated data
/// local skylines are tiny and the run phase dominates.
///
/// # The cost model
///
/// Everything is expressed in **pair checks**, the unit both phases
/// already count exactly ([`Metrics::dominance_checks`] /
/// [`Metrics::merge_pair_checks`]) — never in clock time, so plans are
/// deterministic and machine-independent. The planner samples **two**
/// prefix sizes ([`PointStore::prefix_skyline_sample`] at half and full
/// [`PLAN_SAMPLE`]) and fits the skyline-growth exponent
///
/// ```text
/// α = log2(k_full / k_half) / log2(s_full / s_half)   clamped to [0, 1]
/// ```
///
/// — `α ≈ 1` when everything is skyline (anti-correlated), `α ≈ 0` once
/// the skyline has saturated — giving the extrapolated local-skyline size
/// `k̂(x) = clamp(k_full · (x / s_full)^α, 1, x)` of an `x`-record shard.
/// For each candidate count `s` in `1..=max` with shard size
/// `x = len / s` under `w` workers it estimates
///
/// ```text
/// run(s)   = x · k̂(x) · ⌈s / w⌉     (shard waves run in parallel)
/// merge(s) = s · (s−1) · k̂(x)²      (serial; the all-pairs bound on
///                                    Σᵢ |localᵢ| · Σⱼ≠ᵢ |localⱼ|)
/// ```
///
/// and picks the `s` minimizing `run + merge`, smallest `s` on ties — so
/// an exact wash (e.g. anti-correlated data at one worker) degrades to the
/// unsharded run instead of paying merge overhead for nothing.
/// Deterministic (prefix samples, integer-rounded estimates, no RNG, no
/// clock), so two runs over the same store always produce the same plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of shards the run partitions the store into.
    pub shards: usize,
    /// True iff `shards` was picked by the sampling planner (false for
    /// fixed / caller-supplied counts).
    pub adaptive: bool,
    /// Records sampled by the planner (0 for fixed plans).
    pub sampled: usize,
    /// Skyline size of the sampled prefix (0 for fixed plans).
    pub sample_skyline: usize,
    /// Records in the half-size sample the growth exponent is fitted
    /// against (0 for fixed plans).
    pub sampled_half: usize,
    /// Skyline size of the half-size sample (0 for fixed plans).
    pub sample_skyline_half: usize,
    /// Worker count the run/merge split was costed under (0 for fixed
    /// plans).
    pub workers: usize,
    /// Estimated run-phase pair checks of the chosen count (0 for fixed
    /// plans).
    pub est_run_checks: u64,
    /// Estimated serial merge-phase pair checks of the chosen count (0 for
    /// fixed plans).
    pub est_merge_checks: u64,
}

impl ShardPlan {
    /// A fixed plan: use exactly `shards` shards (clamped to at least 1),
    /// no sampling, no estimates.
    pub fn fixed(shards: usize) -> Self {
        ShardPlan {
            shards: shards.max(1),
            adaptive: false,
            sampled: 0,
            sample_skyline: 0,
            sampled_half: 0,
            sample_skyline_half: 0,
            workers: 0,
            est_run_checks: 0,
            est_merge_checks: 0,
        }
    }

    /// Samples the store and picks the shard count in `1..=max_shards`
    /// whose estimated pair-check total (parallel run phase + serial merge
    /// bound) is minimal under `workers` — see the type docs for the
    /// model. Ties go to the smallest count.
    pub fn adaptive(
        store: &PointStore,
        domains: &[PoDomain],
        max_shards: usize,
        workers: usize,
    ) -> Self {
        let max = max_shards.max(1);
        let w = workers.max(1);
        let (sampled_half, sample_skyline_half) =
            store.prefix_skyline_sample(domains, PLAN_SAMPLE / 2);
        let (sampled, sample_skyline) = store.prefix_skyline_sample(domains, PLAN_SAMPLE);
        let mut plan = ShardPlan {
            shards: 1,
            adaptive: true,
            sampled,
            sample_skyline,
            sampled_half,
            sample_skyline_half,
            workers: w,
            est_run_checks: 0,
            est_merge_checks: 0,
        };
        let len = store.len();
        if sampled == 0 || len == 0 {
            return plan;
        }
        // Growth exponent from the two-point fit; a store too small for
        // two distinct prefixes gets the conservative linear α = 1.
        let alpha = if sampled_half == sampled {
            1.0
        } else {
            let num = (sample_skyline as f64 / sample_skyline_half.max(1) as f64).log2();
            let den = (sampled as f64 / sampled_half as f64).log2();
            (num / den).clamp(0.0, 1.0)
        };
        let k_hat =
            |x: f64| (sample_skyline as f64 * (x / sampled as f64).powf(alpha)).clamp(1.0, x);
        let mut best: Option<u64> = None;
        for s in 1..=max.min(len) {
            let x = len as f64 / s as f64;
            let k = k_hat(x);
            // Shards run in ⌈s/w⌉ waves; the merge bound is charged
            // serially — it is the run's final single-stream section.
            let run = (x * k * s.div_ceil(w) as f64).round() as u64;
            let merge = if s > 1 {
                ((s * (s - 1)) as f64 * k * k).round() as u64
            } else {
                0
            };
            let total = run + merge;
            // Strict `<`: ties keep the smaller (earlier) shard count.
            if best.is_none_or(|b| total < b) {
                best = Some(total);
                plan.shards = s;
                plan.est_run_checks = run;
                plan.est_merge_checks = merge;
            }
        }
        plan
    }

    /// The sampled local-skyline ratio (0.0 for fixed plans). Note this is
    /// the *sample's* ratio; the shard count minimizes the cost model
    /// described in the type docs.
    pub fn sample_ratio(&self) -> f64 {
        if self.sampled == 0 {
            0.0
        } else {
            self.sample_skyline as f64 / self.sampled as f64
        }
    }
}

/// How a sharded executor obtains its shard count: a caller-fixed number
/// or the sampling planner with a budget. `usize` converts to `Fixed`, so
/// existing call sites read unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSpec {
    /// Use exactly this many shards.
    Fixed(usize),
    /// Let [`ShardPlan::adaptive`] pick a count in `1..=max`.
    Adaptive {
        /// Upper bound on the planned shard count.
        max: usize,
        /// Worker count the cost model splits run/merge work under.
        /// Explicit — not read from the machine — so a plan is a pure
        /// function of `(store, domains, max, workers)` and stays
        /// byte-identical across `--threads` settings; callers that want
        /// machine-fitted plans pass their observed parallelism.
        workers: usize,
    },
}

impl From<usize> for ShardSpec {
    fn from(shards: usize) -> Self {
        ShardSpec::Fixed(shards)
    }
}

impl ShardSpec {
    /// Resolves the spec against a concrete store into a [`ShardPlan`].
    pub fn resolve(self, store: &PointStore, domains: &[PoDomain]) -> ShardPlan {
        match self {
            ShardSpec::Fixed(n) => ShardPlan::fixed(n),
            ShardSpec::Adaptive { max, workers } => {
                ShardPlan::adaptive(store, domains, max, workers)
            }
        }
    }
}

/// Result of a sharded parallel skyline run.
#[derive(Debug, Clone)]
pub struct ParallelRun {
    /// Global record ids of the merged skyline, in ascending
    /// `(monotone score, record id)` order — the sorted merge's emission
    /// order. The order never mentions shard boundaries, so the vector is
    /// byte-identical across worker counts *and* across shard plans.
    pub records: Vec<RecordId>,
    /// Per-shard local skylines (global ids), before merging.
    pub locals: Vec<Vec<RecordId>>,
    /// Each shard run's own metrics, in shard order.
    pub shard_metrics: Vec<Metrics>,
    /// Metrics of the cross-shard merge phase alone.
    pub merge_metrics: Metrics,
    /// The shard-count decision this run executed under.
    pub plan: ShardPlan,
    /// True iff a [`Budget`] ran out before the merge
    /// finished: [`records`](Self::records) then holds a *sound confirmed
    /// prefix* of the exact merged skyline (every record is truly
    /// skyline; the vector is a prefix of what the unbudgeted run emits).
    /// Always `false` under [`Budget::UNLIMITED`](crate::Budget).
    pub exhausted: bool,
}

impl ParallelRun {
    /// Total metrics: the exact componentwise sum of every shard's local
    /// metrics plus the merge phase, with two deliberate exceptions —
    /// `results` is the *final* merged skyline size (a plain sum would
    /// double-count every shard's local confirmations), and `cpu` is
    /// summed CPU *work* across workers, not wall time — measure wall
    /// clock around the call when reporting speedups.
    pub fn metrics(&self) -> Metrics {
        let mut m = sum_metrics(&self.shard_metrics).merge(&self.merge_metrics);
        m.results = self.records.len() as u64;
        m
    }
}

/// The nominal all-pairs merge cost `Σᵢ |localᵢ| · Σⱼ≠ᵢ |localⱼ|` — the
/// worst-case pair count of [`merge_shard_skylines_all_pairs`] and the
/// bound [`Metrics::merge_pair_checks`] of the sorted merge never exceeds.
pub fn all_pairs_merge_bound(locals: &[Vec<RecordId>]) -> u64 {
    let total: u64 = locals.iter().map(|l| l.len() as u64).sum();
    locals
        .iter()
        .map(|l| l.len() as u64 * (total - l.len() as u64))
        .sum()
}

/// The PR4-era all-pairs merge fold, kept as the reference baseline the
/// sorted merge is equivalence-tested and benchmarked against: a candidate
/// survives iff no *other* shard's local skyline t-dominates it (its own
/// shard already guarantees that). One batched
/// [`t_dominated_by_any`](PointStore::t_dominated_by_any) kernel call per
/// `(candidate, other shard)` pair, early-exiting on the first dominating
/// shard; runs on the calling thread in shard order. Emits survivors in
/// shard-major order; pair work is counted in both `dominance_checks` and
/// [`Metrics::merge_pair_checks`].
pub fn merge_shard_skylines_all_pairs(
    store: &PointStore,
    domains: &[PoDomain],
    locals: &[Vec<RecordId>],
) -> (Vec<RecordId>, Metrics) {
    let mut m = Metrics::default();
    if locals.len() <= 1 {
        let records = locals.first().cloned().unwrap_or_default();
        m.results = records.len() as u64;
        return (records, m);
    }
    let mut records = Vec::new();
    for (i, local) in locals.iter().enumerate() {
        'candidates: for &r in local {
            let (to, po) = (store.to(r), store.po(r));
            for (j, other) in locals.iter().enumerate() {
                if j == i {
                    continue;
                }
                let (hit, examined) = store.t_dominated_by_any(domains, to, po, other);
                m.batch(examined);
                m.merge_pair_checks += examined;
                if hit {
                    continue 'candidates;
                }
            }
            records.push(r);
        }
    }
    m.results = records.len() as u64;
    (records, m)
}

/// Sorted, parallel fold of per-shard local skylines into the global
/// skyline — the SFS/SaLSa idea applied to the merge phase.
///
/// Candidates (the concatenated locals) are sorted by the strictly
/// monotone [`monotone_score`](PointStore::monotone_score), ties broken by
/// record id. Dominators always score strictly lower than their
/// dominatees, so a candidate only needs checking against the
/// **already-confirmed** global-skyline members — and only those from
/// *other* shards (its own shard's local run already cleared it), walked
/// shard by shard with the early-exiting batched
/// [`t_dominated_by_any`](PointStore::t_dominated_by_any) kernel. Pair
/// work is therefore bounded by [`all_pairs_merge_bound`] and is usually a
/// fraction of it; every examined pair is counted in `dominance_checks`
/// and [`Metrics::merge_pair_checks`], and each equal-score stratum bumps
/// [`Metrics::merge_strata`].
///
/// Equal-score candidates can never dominate each other (strict
/// monotonicity), so each stratum is evaluated concurrently on up to
/// `threads` workers ([`map_slice`]) against the per-shard confirmed
/// prefixes *frozen* at stratum start — no intra-stratum reconciliation is
/// needed, survivors apply in sorted order, and every verdict and count is
/// invariant to the worker count. Exact duplicates always tie on score and
/// never dominate, so all cross-shard copies of a skyline tuple survive,
/// exactly as in the all-pairs fold.
///
/// Survivors are emitted in `(score, record id)` order — an order that
/// never mentions shard boundaries, making the returned vector
/// byte-identical across shard plans, not merely set-equal. `locals` hold
/// **global** record ids.
pub fn merge_shard_skylines(
    store: &PointStore,
    domains: &[PoDomain],
    locals: &[Vec<RecordId>],
    threads: usize,
) -> (Vec<RecordId>, Metrics) {
    let (records, m, _) =
        merge_shard_skylines_budgeted(store, domains, locals, threads, Budget::UNLIMITED);
    (records, m)
}

/// [`merge_shard_skylines`] under a [`Budget`] of merge
/// pair checks: the merge stops at the first **stratum boundary** where
/// the accumulated merge `dominance_checks` meet the allowance (the last
/// stratum may overshoot — strata are the indivisible unit of the frozen-
/// prefix parallelism). Returns `(records, metrics, exhausted)`.
///
/// Stopping early is *sound*: any dominator of a candidate scores
/// strictly lower, so it sits in an earlier stratum — either confirmed
/// (and checked against) or itself dominated by a confirmed record that
/// was checked by transitivity. Every emitted record is therefore
/// globally skyline no matter how many later strata were skipped, and
/// the emitted vector is a true prefix of the unbudgeted emission — the
/// anytime guarantee [`ParallelRun::exhausted`] advertises. The stop
/// point depends only on counts, never on threads or clocks, so budgeted
/// runs stay deterministic.
pub fn merge_shard_skylines_budgeted(
    store: &PointStore,
    domains: &[PoDomain],
    locals: &[Vec<RecordId>],
    threads: usize,
    budget: Budget,
) -> (Vec<RecordId>, Metrics, bool) {
    let mut m = Metrics::default();
    let mut exhausted = false;
    let shard_count = locals.len();
    // (score, id, shard) per candidate, sorted by (score, id).
    let mut cands: Vec<(u64, RecordId, u32)> = Vec::new();
    for (shard, local) in locals.iter().enumerate() {
        for &r in local {
            cands.push((store.monotone_score(domains, r), r, shard as u32));
        }
    }
    cands.sort_unstable_by_key(|&(score, r, _)| (score, r));

    let mut records: Vec<RecordId> = Vec::with_capacity(cands.len());
    // Confirmed global-skyline members per shard, each in ascending score
    // order — the candidate's own shard is skipped during checks.
    let mut confirmed: Vec<Vec<RecordId>> = vec![Vec::new(); shard_count];
    let mut start = 0;
    while start < cands.len() {
        if budget.exhausted_by(m.dominance_checks) {
            exhausted = true;
            break;
        }
        let score = cands[start].0;
        let mut end = start + 1;
        while end < cands.len() && cands[end].0 == score {
            end += 1;
        }
        let stratum = &cands[start..end];
        m.merge_strata += 1;
        // Frozen-prefix fan-out: every stratum member is checked against
        // the confirmed lists as of stratum start, so verdicts and counts
        // depend only on the (data-determined) stratum partition.
        let frozen = &confirmed;
        let verdicts = map_slice(threads, stratum, |&(_, r, shard)| {
            let (to, po) = (store.to(r), store.po(r));
            let mut local = Metrics::default();
            let mut dominated = false;
            for (j, other) in frozen.iter().enumerate() {
                if j == shard as usize || other.is_empty() {
                    continue;
                }
                let (hit, examined) = store.t_dominated_by_any(domains, to, po, other);
                local.batch(examined);
                local.merge_pair_checks += examined;
                if hit {
                    dominated = true;
                    break;
                }
            }
            (dominated, local)
        });
        for (&(_, r, shard), (dominated, local)) in stratum.iter().zip(&verdicts) {
            m = m.merge(local);
            if !*dominated {
                confirmed[shard as usize].push(r);
                records.push(r);
            }
        }
        start = end;
    }
    m.results = records.len() as u64;
    (records, m, exhausted)
}

/// The lower-level sharded front: runs prepared [`ShardJob`]s — each
/// already yielding its local skyline as **global** record ids plus its
/// metrics — through a [`ShardExecutor`], then folds the recovered locals
/// with the sorted [`merge_shard_skylines_budgeted`] on `threads`
/// workers. [`sharded_skyline`] and the bench runners are thin fronts
/// over this; the returned plan is the implied fixed one — callers that
/// planned adaptively overwrite [`ParallelRun::plan`].
///
/// The budget is charged against **total** pair work: whatever the shard
/// phase spent is subtracted from the allowance before the merge runs,
/// so an allowance smaller than the shard work yields an (empty but
/// sound) confirmed prefix.
pub fn merge_jobs_exec<E>(
    store: &PointStore,
    domains: &[PoDomain],
    executor: &E,
    threads: usize,
    budget: Budget,
    jobs: Vec<ShardJob<'_>>,
) -> Result<ParallelRun, ShardError>
where
    E: ShardExecutor + ?Sized,
{
    let plan = ShardPlan::fixed(jobs.len());
    let outcomes = executor.execute(store, domains, &jobs);
    let mut locals = Vec::with_capacity(jobs.len());
    let mut shard_metrics = Vec::with_capacity(jobs.len());
    for outcome in outcomes {
        let outcome = outcome?;
        locals.push(outcome.records);
        shard_metrics.push(outcome.metrics);
    }
    let shard_spent: u64 = shard_metrics.iter().map(|m| m.dominance_checks).sum();
    let remaining = match budget.limit() {
        Some(limit) => Budget::pair_checks(limit.saturating_sub(shard_spent)),
        None => Budget::UNLIMITED,
    };
    let (records, merge_metrics, exhausted) =
        merge_shard_skylines_budgeted(store, domains, &locals, threads, remaining);
    Ok(ParallelRun {
        records,
        locals,
        shard_metrics,
        merge_metrics,
        plan,
        exhausted,
    })
}

/// [`merge_jobs_exec`] on the default in-process executor
/// ([`ThreadShardExecutor::new`], i.e. the environment's
/// [`ExecPolicy`]) with no budget.
pub fn merge_jobs(
    store: &PointStore,
    domains: &[PoDomain],
    threads: usize,
    jobs: Vec<ShardJob<'_>>,
) -> Result<ParallelRun, ShardError> {
    let executor = ThreadShardExecutor::new(threads);
    merge_jobs_exec(store, domains, &executor, threads, Budget::UNLIMITED, jobs)
}

/// Runs one exact skyline engine per shard behind the fault-tolerant
/// [`ThreadShardExecutor`] and merges the local skylines — the generic
/// sharded front every engine-specific runner builds on.
///
/// `run_shard(ctx, view)` evaluates shard [`ctx.shard`](ShardCtx::shard)
/// and returns its local skyline as **shard-local** record ids
/// (`0..view.len()`, e.g. from an engine built over
/// [`ShardView::to_store`]) plus that run's metrics; ids are translated
/// back to global ones here. The closure may be invoked several times
/// per shard — once per recovery attempt — and should honor
/// [`ctx.kernel`](ShardCtx::kernel) so the final-resort fallback really
/// recomputes on the scalar oracle. The shard partition is fixed by
/// `shards`, so the result is identical for every `threads` value — see
/// the module docs for the full determinism contract. For a
/// planner-chosen shard count use [`sharded_skyline_with`]; for explicit
/// fault/budget control use [`sharded_skyline_exec`].
pub fn sharded_skyline<F>(
    store: &PointStore,
    domains: &[PoDomain],
    shards: usize,
    threads: usize,
    run_shard: F,
) -> Result<ParallelRun, ShardError>
where
    F: Fn(ShardCtx, &ShardView<'_>) -> (Vec<RecordId>, Metrics) + Sync,
{
    sharded_skyline_with(store, domains, ShardSpec::Fixed(shards), threads, run_shard)
}

/// [`sharded_skyline`] with an explicit [`ShardSpec`]: resolves the spec
/// (running the sampling planner for [`ShardSpec::Adaptive`]) and records
/// the decision in [`ParallelRun::plan`]. The merged record-id vector is
/// identical whatever the plan resolves to — only the per-shard locals
/// and work counters depend on the partition.
pub fn sharded_skyline_with<F>(
    store: &PointStore,
    domains: &[PoDomain],
    spec: ShardSpec,
    threads: usize,
    run_shard: F,
) -> Result<ParallelRun, ShardError>
where
    F: Fn(ShardCtx, &ShardView<'_>) -> (Vec<RecordId>, Metrics) + Sync,
{
    sharded_skyline_exec(
        store,
        domains,
        spec,
        threads,
        ExecPolicy::default(),
        Budget::UNLIMITED,
        run_shard,
    )
}

/// The fully explicit sharded front: shard spec, worker count, retry /
/// fault-injection [`ExecPolicy`] and a pair-check
/// [`Budget`], all caller-controlled (the fault-tolerance
/// proptests and the bench harness drive this directly; the simpler
/// fronts fill in environment defaults).
pub fn sharded_skyline_exec<F>(
    store: &PointStore,
    domains: &[PoDomain],
    spec: ShardSpec,
    threads: usize,
    policy: ExecPolicy,
    budget: Budget,
    run_shard: F,
) -> Result<ParallelRun, ShardError>
where
    F: Fn(ShardCtx, &ShardView<'_>) -> (Vec<RecordId>, Metrics) + Sync,
{
    let plan = spec.resolve(store, domains);
    let views = store.shards(plan.shards);
    let run_shard = &run_shard;
    let jobs: Vec<ShardJob<'_>> = views
        .iter()
        .map(|&view| {
            ShardJob::new(view.range(), move |ctx| {
                let (local, metrics) = run_shard(ctx, &view);
                let global: Vec<RecordId> = local.into_iter().map(|r| r + view.start()).collect();
                (global, metrics)
            })
        })
        .collect();
    let executor = ThreadShardExecutor::with_policy(threads, policy);
    let mut run = merge_jobs_exec(store, domains, &executor, threads, budget, jobs)?;
    run.plan = plan;
    Ok(run)
}

/// Sharded parallel run of a classic totally ordered algorithm
/// (brute/BNL/SFS/SaLSa/BBS/…): each shard's window of the flat TO block
/// becomes one [`PointBlock`], a [`ClassicEngine`] computes its local
/// skyline, and the locals are merged with the TO-only dominance kernels.
/// The store must be TO-only (`po_dims == 0`). Each attempt honors the
/// executor's [`ShardCtx::kernel`], so fallback recomputes really run on
/// the scalar oracle.
pub fn parallel_classic_skyline(
    store: &PointStore,
    algo: ClassicAlgo,
    shards: usize,
    threads: usize,
) -> Result<ParallelRun, ShardError> {
    assert_eq!(
        store.po_dims(),
        0,
        "classic algorithms are totally ordered; use sharded_skyline with \
         a PO-aware engine for mixed stores"
    );
    sharded_skyline(store, &[], shards, threads, |ctx, view| {
        let block = PointBlock::from_flat(store.to_dims(), view.to_block().to_vec())
            .with_kernel(ctx.kernel);
        let engine = ClassicEngine::new(block, algo);
        let (points, metrics) = engine.collect_skyline();
        (points.into_iter().map(|p| p.record).collect(), metrics)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::brute_force_po_skyline;
    use crate::{Stss, StssConfig, Table};
    use poset::Dag;

    fn to_only_table(n: u32) -> Table {
        let mut t = Table::new(2, 0);
        for i in 0..n {
            t.push(&[(i * 17) % 50, (i * 31) % 50], &[]);
        }
        t
    }

    #[test]
    fn run_jobs_preserves_order_and_runs_everything() {
        for threads in [1usize, 2, 4, 9] {
            let jobs: Vec<_> = (0..7u32).map(|i| move || i * i).collect();
            assert_eq!(
                run_jobs(threads, jobs).unwrap(),
                vec![0, 1, 4, 9, 16, 25, 36],
                "threads={threads}"
            );
        }
        assert!(run_jobs::<u32, fn() -> u32>(4, vec![]).unwrap().is_empty());
    }

    #[test]
    fn run_jobs_reports_a_panicking_job_as_a_shard_error() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..6u32)
            .map(|i| {
                Box::new(move || {
                    assert!(i != 3, "job 3 exploded");
                    i * 10
                }) as Box<dyn FnOnce() -> u32 + Send>
            })
            .collect();
        match run_jobs(3, jobs) {
            Err(e) => {
                assert_eq!(e.shard(), 3);
                let rendered = e.to_string();
                assert!(rendered.contains("job 3 exploded"), "{rendered}");
                assert!(rendered.contains("panicked"), "{rendered}");
            }
            other => unreachable!("expected a structured panic report, got {other:?}"),
        }
    }

    #[test]
    fn map_slice_matches_serial_map() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1usize, 2, 4, 32] {
            assert_eq!(
                map_slice(threads, &items, |&x| x * 3 + 1),
                expect,
                "threads={threads}"
            );
        }
        assert!(map_slice(4, &[] as &[u64], |&x| x).is_empty());
    }

    #[test]
    fn classic_sharded_equals_whole_run() {
        let t = to_only_table(120);
        let block = PointBlock::from_flat(2, t.to_block().to_vec());
        let mut expect = skyline::brute_force(&block);
        expect.sort_unstable();
        for algo in [
            ClassicAlgo::Brute,
            ClassicAlgo::Bnl { window: 8 },
            ClassicAlgo::Sfs,
            ClassicAlgo::Salsa,
            ClassicAlgo::Bbs { node_capacity: 8 },
        ] {
            for shards in [1usize, 2, 3, 8] {
                let run = parallel_classic_skyline(&t, algo, shards, 2).unwrap();
                let mut got = run.records.clone();
                got.sort_unstable();
                assert_eq!(got, expect, "{algo:?} shards={shards}");
                assert_eq!(run.locals.len(), shards.min(t.len()));
            }
        }
    }

    #[test]
    fn thread_count_never_changes_results_or_counts() {
        let t = to_only_table(200);
        let baseline = parallel_classic_skyline(&t, ClassicAlgo::Sfs, 5, 1).unwrap();
        for threads in [2usize, 3, 4, 8] {
            let run = parallel_classic_skyline(&t, ClassicAlgo::Sfs, 5, threads).unwrap();
            assert_eq!(run.records, baseline.records, "threads={threads}");
            assert_eq!(run.locals, baseline.locals);
            let (a, b) = (run.metrics(), baseline.metrics());
            assert_eq!(a.dominance_checks, b.dominance_checks);
            assert_eq!(a.dominance_batch_calls, b.dominance_batch_calls);
            assert_eq!(a.io_reads, b.io_reads);
            assert_eq!(a.heap_pops, b.heap_pops);
            assert_eq!(a.results, b.results);
        }
    }

    #[test]
    fn total_metrics_are_the_exact_shard_sum() {
        let t = to_only_table(90);
        let run = parallel_classic_skyline(&t, ClassicAlgo::Salsa, 4, 3).unwrap();
        let total = run.metrics();
        let mut by_hand = run
            .shard_metrics
            .iter()
            .fold(Metrics::default(), |acc, m| acc.merge(m))
            .merge(&run.merge_metrics);
        // `results` alone reports the final skyline, not the double-counting
        // shard sum.
        by_hand.results = run.records.len() as u64;
        assert_eq!(total, by_hand);
        assert_eq!(total.results, run.records.len() as u64);
        assert!(total.dominance_checks > run.merge_metrics.dominance_checks);
        assert_eq!(run.merge_metrics.results, run.records.len() as u64);
    }

    #[test]
    fn cross_shard_duplicates_all_survive() {
        // The same skyline tuple in every shard, plus per-shard fodder it
        // dominates: every copy must come back, nothing else.
        let mut t = Table::new(2, 0);
        for _ in 0..4 {
            t.push(&[1, 1], &[]); // skyline, duplicated across shards
            t.push(&[3, 3], &[]); // dominated
        }
        let run = parallel_classic_skyline(&t, ClassicAlgo::Sfs, 4, 2).unwrap();
        let mut got = run.records.clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 2, 4, 6]);
    }

    /// Per-shard local skylines by brute force — merge-phase tests drive
    /// the merge functions directly with these.
    fn brute_locals(t: &Table, domains: &[PoDomain], shards: usize) -> Vec<Vec<RecordId>> {
        t.shards(shards)
            .iter()
            .map(|v| {
                let sub = v.to_store();
                brute_force_po_skyline(domains, &sub)
                    .into_iter()
                    .map(|r| r + v.start())
                    .collect()
            })
            .collect()
    }

    fn anti_table(n: u32) -> Table {
        // Points on the anti-diagonal: every tuple is skyline.
        let mut t = Table::new(2, 0);
        for i in 0..n {
            t.push(&[i, n - i], &[]);
        }
        t
    }

    #[test]
    fn sorted_merge_equals_all_pairs_and_the_oracle() {
        let dag = Dag::paper_example();
        let domains = vec![PoDomain::new(dag)];
        let mut t = Table::new(2, 1);
        for i in 0..80u32 {
            t.push(&[(i * 13) % 31, (i * 7) % 29], &[i % 9]);
        }
        // Exact duplicates across prospective shard boundaries.
        for _ in 0..3 {
            t.push(&[0, 0], &[0]);
        }
        let mut oracle = brute_force_po_skyline(&domains, &t);
        oracle.sort_unstable();
        for shards in [1usize, 2, 3, 5, 8] {
            let locals = brute_locals(&t, &domains, shards);
            let (old, old_m) = merge_shard_skylines_all_pairs(&t, &domains, &locals);
            let mut old_sorted = old.clone();
            old_sorted.sort_unstable();
            assert_eq!(old_sorted, oracle, "all-pairs shards={shards}");
            for threads in [1usize, 2, 4] {
                let (new, new_m) = merge_shard_skylines(&t, &domains, &locals, threads);
                let mut new_sorted = new.clone();
                new_sorted.sort_unstable();
                assert_eq!(
                    new_sorted, oracle,
                    "sorted shards={shards} threads={threads}"
                );
                assert_eq!(new_m.results, old_m.results);
                assert!(
                    new_m.merge_pair_checks <= all_pairs_merge_bound(&locals),
                    "shards={shards}: {} > bound {}",
                    new_m.merge_pair_checks,
                    all_pairs_merge_bound(&locals)
                );
            }
        }
    }

    #[test]
    fn sorted_merge_is_thread_and_plan_invariant() {
        let t = to_only_table(150);
        let mut baseline: Option<Vec<RecordId>> = None;
        for shards in [1usize, 2, 4, 8] {
            let locals = brute_locals(&t, &[], shards);
            let (r1, m1) = merge_shard_skylines(&t, &[], &locals, 1);
            for threads in [2usize, 4] {
                let (rt, mt) = merge_shard_skylines(&t, &[], &locals, threads);
                assert_eq!(rt, r1, "shards={shards} threads={threads}");
                assert_eq!(mt, m1, "metrics invariant to merge threads");
            }
            // Emission order is (score, id): identical across shard plans.
            match &baseline {
                None => baseline = Some(r1),
                Some(b) => assert_eq!(&r1, b, "plan-independent emission, shards={shards}"),
            }
        }
    }

    #[test]
    fn sorted_merge_beats_all_pairs_on_anti_correlated_locals() {
        // Everything is skyline: the all-pairs fold hits its worst case
        // while the sorted filter only scans the smaller-score confirmed
        // prefix of the other shards.
        let t = anti_table(64);
        let locals = brute_locals(&t, &[], 8);
        let (old, old_m) = merge_shard_skylines_all_pairs(&t, &[], &locals);
        let (new, new_m) = merge_shard_skylines(&t, &[], &locals, 2);
        assert_eq!(old.len(), 64);
        assert_eq!(new.len(), 64);
        assert_eq!(old_m.merge_pair_checks, all_pairs_merge_bound(&locals));
        assert!(
            new_m.merge_pair_checks < old_m.merge_pair_checks,
            "sorted {} !< all-pairs {}",
            new_m.merge_pair_checks,
            old_m.merge_pair_checks
        );
    }

    #[test]
    fn cost_model_plans_follow_the_estimated_minimum() {
        // Anti-diagonal data: every tuple is skyline, so α fits to 1 and
        // k̂(x) = x. At one worker, run(s) = (len/s)²·s and the merge bound
        // s(s−1)(len/s)² sum to len² for every s — an exact wash, and ties
        // go to the smallest count: stay unsharded.
        let anti = anti_table(600);
        let plan = ShardPlan::adaptive(&anti, &[], 8, 1);
        assert!(plan.adaptive);
        assert_eq!(plan.sampled, PLAN_SAMPLE.min(600));
        assert_eq!(plan.sample_skyline, plan.sampled);
        assert_eq!((plan.sampled_half, plan.sample_skyline_half), (256, 256));
        assert_eq!(plan.shards, 1);
        assert_eq!(plan.est_run_checks + plan.est_merge_checks, 600 * 600);
        // With 8 workers the run phase parallelizes but the quadratic
        // merge term still punishes fan-out: two shards win.
        let plan8 = ShardPlan::adaptive(&anti, &[], 8, 8);
        assert_eq!(plan8.shards, 2);
        assert_eq!(plan8.est_run_checks, 300 * 300);
        assert_eq!(plan8.est_merge_checks, 2 * 300 * 300);
        // Dominance-heavy data: a chain has a single skyline point, so
        // k̂ ≡ 1 and merge costs only s(s−1). At one worker sharding buys
        // nothing (run(s) = len for every s) and merge overhead decides.
        let mut chain = Table::new(2, 0);
        for i in 0..600u32 {
            chain.push(&[i, i], &[]);
        }
        let plan = ShardPlan::adaptive(&chain, &[], 8, 1);
        assert_eq!(plan.sample_skyline, 1);
        assert_eq!(plan.shards, 1, "one worker: fan-out only adds merge");
        // At 8 workers the run phase splits across one wave; the optimum
        // trades a slightly ragged 7-way split (600/7 ≈ 86 checks + 42
        // merge) against the full budget (75 + 56).
        let plan8 = ShardPlan::adaptive(&chain, &[], 8, 8);
        assert_eq!(plan8.shards, 7);
        assert_eq!(plan8.est_run_checks, 86);
        assert_eq!(plan8.est_merge_checks, 42);
        // Determinism: same inputs, same plan.
        assert_eq!(plan8, ShardPlan::adaptive(&chain, &[], 8, 8));
        // Fixed plans never sample and never estimate.
        assert_eq!(
            ShardPlan::fixed(0),
            ShardPlan {
                shards: 1,
                adaptive: false,
                sampled: 0,
                sample_skyline: 0,
                sampled_half: 0,
                sample_skyline_half: 0,
                workers: 0,
                est_run_checks: 0,
                est_merge_checks: 0,
            }
        );
    }

    #[test]
    fn adaptive_executor_matches_fixed_byte_for_byte() {
        let t = to_only_table(200);
        let fixed = parallel_classic_skyline(&t, ClassicAlgo::Sfs, 5, 2).unwrap();
        let adaptive = sharded_skyline_with(
            &t,
            &[],
            ShardSpec::Adaptive { max: 8, workers: 2 },
            2,
            |_ctx, view: &ShardView<'_>| {
                let block = PointBlock::from_flat(t.to_dims(), view.to_block().to_vec());
                let engine = ClassicEngine::new(block, ClassicAlgo::Sfs);
                let (points, metrics) = engine.collect_skyline();
                (points.into_iter().map(|p| p.record).collect(), metrics)
            },
        )
        .unwrap();
        assert!(adaptive.plan.adaptive);
        assert!(!fixed.plan.adaptive);
        assert_eq!(fixed.plan.shards, 5);
        // The sorted merge's (score, id) emission order holds across plans:
        // the full record-id vectors agree, not just the sets.
        assert_eq!(adaptive.records, fixed.records);
    }

    #[test]
    fn sharded_stss_matches_the_po_oracle() {
        // The generic executor with a PO-aware engine per shard: sTSS over
        // the paper domain, sharded four ways.
        let dag = Dag::paper_example();
        let mut t = Table::new(1, 1);
        for i in 0..60u32 {
            t.push(&[(i * 7) % 23], &[i % 9]);
        }
        let domains = vec![PoDomain::new(dag.clone())];
        let mut expect = brute_force_po_skyline(&domains, &t);
        expect.sort_unstable();
        let run = sharded_skyline(&t, &domains, 4, 2, |_ctx, view| {
            let stss = Stss::build(view.to_store(), vec![dag.clone()], StssConfig::default())
                .expect("shard build");
            let r = stss.run();
            (r.skyline_records(), r.metrics)
        })
        .unwrap();
        let mut got = run.records.clone();
        got.sort_unstable();
        assert_eq!(got, expect);
    }
}

//! **Sharded parallel skyline execution** — the first scaling lever of the
//! ROADMAP north star.
//!
//! The skyline operator distributes over unions: the skyline of
//! `S₁ ∪ … ∪ Sₖ` is the skyline of the union of the per-shard skylines.
//! The columnar [`PointStore`] makes the partitioning free —
//! [`PointStore::shards`] hands out zero-copy [`ShardView`] windows over
//! the flat TO/PO blocks — so any exact engine can run per shard on scoped
//! OS threads ([`run_jobs`]; no extra dependencies, `std::thread::scope`
//! only) and the local skylines are folded back together by
//! [`merge_shard_skylines`] with the store's batched
//! [`t_dominated_by_any`](PointStore::t_dominated_by_any) kernels.
//!
//! # Determinism contract
//!
//! Everything observable is **invariant to the worker count**:
//!
//! * the shard boundaries depend only on `(len, shard_count)`, never on
//!   `threads`;
//! * each shard job is self-contained, so its result and [`Metrics`] are
//!   the same on any thread;
//! * the merge phase consumes shard results in shard order on the
//!   coordinating thread.
//!
//! Running the same store with the same shard count at 1, 2 or 4 threads
//! therefore produces byte-identical skyline record-id vectors and
//! identical `dominance_checks` / `dominance_batch_calls` — only the wall
//! clock changes. Per-shard metrics are combined with the exact
//! componentwise [`Metrics::merge`], so no count is ever estimated.
//!
//! # Duplicates across shards
//!
//! Exact duplicates never dominate each other, and every engine in the
//! workspace keeps all copies. Sharding preserves that end to end: each
//! copy is locally skyline in its own shard iff its tuple is globally
//! skyline, and the merge kernels ([`t_dominates`](crate::t_dominates)
//! semantics) treat equal tuples as non-dominating — so the final pass
//! over the concatenated local skylines retains every cross-shard copy of
//! a skyline tuple and no others.
//!
//! # When merge cost dominates
//!
//! Per-shard skylines are supersets of their global contribution (a shard
//! misses dominators living elsewhere), so total work grows with the shard
//! count: merge cost is `O(Σᵢ |localᵢ| · Σⱼ≠ᵢ |localⱼ|)` pair checks in the
//! worst case. Sharding pays off while local skylines are small relative
//! to the shard (independent / correlated data, low dimensionality); for
//! heavily anti-correlated workloads where almost every tuple is skyline,
//! prefer fewer shards.
//!
//! ```
//! use skyline::PointBlock;
//! use tss_core::parallel::parallel_classic_skyline;
//! use tss_core::{ClassicAlgo, Table};
//!
//! let mut t = Table::new(2, 0);
//! for (a, b) in [(5, 1), (1, 5), (3, 3), (4, 4), (2, 6), (6, 2)] {
//!     t.push(&[a, b], &[]);
//! }
//! let run = parallel_classic_skyline(&t, ClassicAlgo::Sfs, 3, 2);
//! let mut got = run.records.clone();
//! got.sort_unstable();
//! assert_eq!(got, vec![0, 1, 2]);
//! // The same shards at one worker produce the identical result and
//! // counts — threads only change the wall clock.
//! let serial = parallel_classic_skyline(&t, ClassicAlgo::Sfs, 3, 1);
//! assert_eq!(serial.records, run.records);
//! assert_eq!(serial.metrics().dominance_checks, run.metrics().dominance_checks);
//! ```

use crate::classic::{ClassicAlgo, ClassicEngine};
use crate::cursor::SkylineEngine;
use crate::store::{PointStore, RecordId, ShardView};
use crate::{Metrics, PoDomain};
use skyline::PointBlock;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Componentwise sum of a set of [`Metrics`] (exact, via
/// [`Metrics::merge`]).
pub fn sum_metrics<'a>(metrics: impl IntoIterator<Item = &'a Metrics>) -> Metrics {
    metrics
        .into_iter()
        .fold(Metrics::default(), |acc, m| acc.merge(m))
}

/// Runs independent jobs on up to `threads` scoped OS threads and returns
/// their results **in job order**. Work is claimed dynamically (an atomic
/// cursor), so uneven jobs balance; results are slotted by index, so the
/// output — unlike the schedule — is deterministic. `threads <= 1` (or a
/// single job) runs inline on the caller's thread.
pub fn run_jobs<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("each job runs exactly once");
                *results[i].lock().expect("result slot poisoned") = Some(job());
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every job completed")
        })
        .collect()
}

/// Minimum items per worker before [`map_slice`] bothers spawning.
const MIN_ITEMS_PER_THREAD: usize = 16;

/// Applies `f` to every item of a slice, fanning contiguous chunks out to
/// up to `threads` scoped threads, and returns the results in item order.
/// The chunking never changes what is computed — `f` sees each item
/// exactly once — so any per-item counting embedded in `R` is invariant to
/// the worker count. Small inputs run inline.
pub fn map_slice<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads
        .max(1)
        .min(items.len().div_ceil(MIN_ITEMS_PER_THREAD));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(|| c.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for h in handles {
            out.extend(h.join().expect("map_slice worker panicked"));
        }
        out
    })
}

/// Result of a sharded parallel skyline run.
#[derive(Debug, Clone)]
pub struct ParallelRun {
    /// Global record ids of the merged skyline, in shard-major order
    /// (shard 0's survivors in local emission order, then shard 1's, …) —
    /// deterministic for a fixed shard count, regardless of threads.
    pub records: Vec<RecordId>,
    /// Per-shard local skylines (global ids), before merging.
    pub locals: Vec<Vec<RecordId>>,
    /// Each shard run's own metrics, in shard order.
    pub shard_metrics: Vec<Metrics>,
    /// Metrics of the cross-shard merge phase alone.
    pub merge_metrics: Metrics,
}

impl ParallelRun {
    /// Total metrics: the exact componentwise sum of every shard's local
    /// metrics plus the merge phase, with two deliberate exceptions —
    /// `results` is the *final* merged skyline size (a plain sum would
    /// double-count every shard's local confirmations), and `cpu` is
    /// summed CPU *work* across workers, not wall time — measure wall
    /// clock around the call when reporting speedups.
    pub fn metrics(&self) -> Metrics {
        let mut m = sum_metrics(&self.shard_metrics).merge(&self.merge_metrics);
        m.results = self.records.len() as u64;
        m
    }
}

/// Folds per-shard local skylines into the global skyline: a candidate
/// survives iff no *other* shard's local skyline t-dominates it (its own
/// shard already guarantees that). One batched
/// [`t_dominated_by_any`](PointStore::t_dominated_by_any) kernel call per
/// `(candidate, other shard)` pair, early-exiting on the first dominating
/// shard; runs on the calling thread in shard order, so the returned
/// metrics are exact and schedule-independent. `locals` hold **global**
/// record ids.
pub fn merge_shard_skylines(
    store: &PointStore,
    domains: &[PoDomain],
    locals: &[Vec<RecordId>],
) -> (Vec<RecordId>, Metrics) {
    let mut m = Metrics::default();
    if locals.len() <= 1 {
        let records = locals.first().cloned().unwrap_or_default();
        m.results = records.len() as u64;
        return (records, m);
    }
    let mut records = Vec::new();
    for (i, local) in locals.iter().enumerate() {
        'candidates: for &r in local {
            let (to, po) = (store.to(r), store.po(r));
            for (j, other) in locals.iter().enumerate() {
                if j == i {
                    continue;
                }
                let (hit, examined) = store.t_dominated_by_any(domains, to, po, other);
                m.batch(examined);
                if hit {
                    continue 'candidates;
                }
            }
            records.push(r);
        }
    }
    m.results = records.len() as u64;
    (records, m)
}

/// The lower-level sharded executor: runs prepared per-shard jobs — each
/// already yielding its local skyline as **global** record ids plus its
/// metrics — on up to `threads` workers, then folds the locals with
/// [`merge_shard_skylines`]. [`sharded_skyline`] and the bench runners
/// are thin fronts over this.
pub fn merge_jobs<F>(
    store: &PointStore,
    domains: &[PoDomain],
    threads: usize,
    jobs: Vec<F>,
) -> ParallelRun
where
    F: FnOnce() -> (Vec<RecordId>, Metrics) + Send,
{
    let results = run_jobs(threads, jobs);
    let (locals, shard_metrics): (Vec<_>, Vec<_>) = results.into_iter().unzip();
    let (records, merge_metrics) = merge_shard_skylines(store, domains, &locals);
    ParallelRun {
        records,
        locals,
        shard_metrics,
        merge_metrics,
    }
}

/// Runs one exact skyline engine per shard on up to `threads` scoped
/// threads and merges the local skylines — the generic sharded executor
/// every engine-specific runner builds on.
///
/// `run_shard(i, view)` evaluates shard `i` and returns its local skyline
/// as **shard-local** record ids (`0..view.len()`, e.g. from an engine
/// built over [`ShardView::to_store`]) plus that run's metrics; ids are
/// translated back to global ones here. The shard partition is fixed by
/// `shards`, so the result is identical for every `threads` value — see
/// the module docs for the full determinism contract.
pub fn sharded_skyline<F>(
    store: &PointStore,
    domains: &[PoDomain],
    shards: usize,
    threads: usize,
    run_shard: F,
) -> ParallelRun
where
    F: Fn(usize, &ShardView<'_>) -> (Vec<RecordId>, Metrics) + Sync,
{
    let views = store.shards(shards);
    let run_shard = &run_shard;
    let jobs: Vec<_> = views
        .iter()
        .enumerate()
        .map(|(i, &view)| {
            move || {
                let (local, metrics) = run_shard(i, &view);
                let global: Vec<RecordId> = local.into_iter().map(|r| r + view.start()).collect();
                (global, metrics)
            }
        })
        .collect();
    merge_jobs(store, domains, threads, jobs)
}

/// Sharded parallel run of a classic totally ordered algorithm
/// (brute/BNL/SFS/SaLSa/BBS/…): each shard's window of the flat TO block
/// becomes one [`PointBlock`], a [`ClassicEngine`] computes its local
/// skyline, and the locals are merged with the TO-only dominance kernels.
/// The store must be TO-only (`po_dims == 0`).
pub fn parallel_classic_skyline(
    store: &PointStore,
    algo: ClassicAlgo,
    shards: usize,
    threads: usize,
) -> ParallelRun {
    assert_eq!(
        store.po_dims(),
        0,
        "classic algorithms are totally ordered; use sharded_skyline with \
         a PO-aware engine for mixed stores"
    );
    sharded_skyline(store, &[], shards, threads, |_, view| {
        let block = PointBlock::from_flat(store.to_dims(), view.to_block().to_vec());
        let engine = ClassicEngine::new(block, algo);
        let (points, metrics) = engine.collect_skyline();
        (points.into_iter().map(|p| p.record).collect(), metrics)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::brute_force_po_skyline;
    use crate::{Stss, StssConfig, Table};
    use poset::Dag;

    fn to_only_table(n: u32) -> Table {
        let mut t = Table::new(2, 0);
        for i in 0..n {
            t.push(&[(i * 17) % 50, (i * 31) % 50], &[]);
        }
        t
    }

    #[test]
    fn run_jobs_preserves_order_and_runs_everything() {
        for threads in [1usize, 2, 4, 9] {
            let jobs: Vec<_> = (0..7u32).map(|i| move || i * i).collect();
            assert_eq!(
                run_jobs(threads, jobs),
                vec![0, 1, 4, 9, 16, 25, 36],
                "threads={threads}"
            );
        }
        assert!(run_jobs::<u32, fn() -> u32>(4, vec![]).is_empty());
    }

    #[test]
    fn map_slice_matches_serial_map() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1usize, 2, 4, 32] {
            assert_eq!(
                map_slice(threads, &items, |&x| x * 3 + 1),
                expect,
                "threads={threads}"
            );
        }
        assert!(map_slice(4, &[] as &[u64], |&x| x).is_empty());
    }

    #[test]
    fn classic_sharded_equals_whole_run() {
        let t = to_only_table(120);
        let block = PointBlock::from_flat(2, t.to_block().to_vec());
        let mut expect = skyline::brute_force(&block);
        expect.sort_unstable();
        for algo in [
            ClassicAlgo::Brute,
            ClassicAlgo::Bnl { window: 8 },
            ClassicAlgo::Sfs,
            ClassicAlgo::Salsa,
            ClassicAlgo::Bbs { node_capacity: 8 },
        ] {
            for shards in [1usize, 2, 3, 8] {
                let run = parallel_classic_skyline(&t, algo, shards, 2);
                let mut got = run.records.clone();
                got.sort_unstable();
                assert_eq!(got, expect, "{algo:?} shards={shards}");
                assert_eq!(run.locals.len(), shards.min(t.len()));
            }
        }
    }

    #[test]
    fn thread_count_never_changes_results_or_counts() {
        let t = to_only_table(200);
        let baseline = parallel_classic_skyline(&t, ClassicAlgo::Sfs, 5, 1);
        for threads in [2usize, 3, 4, 8] {
            let run = parallel_classic_skyline(&t, ClassicAlgo::Sfs, 5, threads);
            assert_eq!(run.records, baseline.records, "threads={threads}");
            assert_eq!(run.locals, baseline.locals);
            let (a, b) = (run.metrics(), baseline.metrics());
            assert_eq!(a.dominance_checks, b.dominance_checks);
            assert_eq!(a.dominance_batch_calls, b.dominance_batch_calls);
            assert_eq!(a.io_reads, b.io_reads);
            assert_eq!(a.heap_pops, b.heap_pops);
            assert_eq!(a.results, b.results);
        }
    }

    #[test]
    fn total_metrics_are_the_exact_shard_sum() {
        let t = to_only_table(90);
        let run = parallel_classic_skyline(&t, ClassicAlgo::Salsa, 4, 3);
        let total = run.metrics();
        let mut by_hand = run
            .shard_metrics
            .iter()
            .fold(Metrics::default(), |acc, m| acc.merge(m))
            .merge(&run.merge_metrics);
        // `results` alone reports the final skyline, not the double-counting
        // shard sum.
        by_hand.results = run.records.len() as u64;
        assert_eq!(total, by_hand);
        assert_eq!(total.results, run.records.len() as u64);
        assert!(total.dominance_checks > run.merge_metrics.dominance_checks);
        assert_eq!(run.merge_metrics.results, run.records.len() as u64);
    }

    #[test]
    fn cross_shard_duplicates_all_survive() {
        // The same skyline tuple in every shard, plus per-shard fodder it
        // dominates: every copy must come back, nothing else.
        let mut t = Table::new(2, 0);
        for _ in 0..4 {
            t.push(&[1, 1], &[]); // skyline, duplicated across shards
            t.push(&[3, 3], &[]); // dominated
        }
        let run = parallel_classic_skyline(&t, ClassicAlgo::Sfs, 4, 2);
        let mut got = run.records.clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 2, 4, 6]);
    }

    #[test]
    fn sharded_stss_matches_the_po_oracle() {
        // The generic executor with a PO-aware engine per shard: sTSS over
        // the paper domain, sharded four ways.
        let dag = Dag::paper_example();
        let mut t = Table::new(1, 1);
        for i in 0..60u32 {
            t.push(&[(i * 7) % 23], &[i % 9]);
        }
        let domains = vec![PoDomain::new(dag.clone())];
        let mut expect = brute_force_po_skyline(&domains, &t);
        expect.sort_unstable();
        let run = sharded_skyline(&t, &domains, 4, 2, |_, view| {
            let stss = Stss::build(view.to_store(), vec![dag.clone()], StssConfig::default())
                .expect("shard build");
            let r = stss.run();
            (r.skyline_records(), r.metrics)
        });
        let mut got = run.records.clone();
        got.sort_unstable();
        assert_eq!(got, expect);
    }
}

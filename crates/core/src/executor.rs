//! **Fault-tolerant shard execution** — the robustness layer between the
//! sharded fronts in [`parallel`](crate::parallel) and the per-shard
//! engine runs.
//!
//! A shard job used to be an infallible closure: one worker panic tore
//! down the whole query. Here every job runs behind the [`ShardExecutor`]
//! trait and returns `Result<ShardOutcome, ShardError>` instead, with the
//! in-process [`ThreadShardExecutor`] recovering failures through a
//! deterministic ladder:
//!
//! 1. **Panic isolation** — each attempt runs under
//!    [`std::panic::catch_unwind`] (this module is the only place in the
//!    workspace allowed to call it — `cargo run -p xtask -- lint` fences
//!    it), so a panicking shard becomes a [`ShardError::Panicked`] value,
//!    not a process abort.
//! 2. **Bounded retries** — a failed attempt is retried up to
//!    [`ExecPolicy::retries`] times on the store's configured kernel.
//! 3. **Scalar-oracle fallback** — a shard that failed every regular
//!    attempt is recomputed once more with [`ShardCtx::kernel`] forced to
//!    [`Kernel::Scalar`], the reference path. Kernel equivalence (PR 7's
//!    bit-identity contract) guarantees the fallback's records *and
//!    counters* match what the regular path would have produced, so
//!    recovery is invisible to every byte-identity invariant.
//!
//! Recovery is observable through three [`Metrics`] counters —
//! [`shard_retries`](Metrics::shard_retries),
//! [`shard_fallbacks`](Metrics::shard_fallbacks),
//! [`faults_injected`](Metrics::faults_injected) — folded into the
//! successful attempt's metrics. Failed attempts' work counters are
//! discarded, which is what keeps `dominance_checks` et al. identical to
//! a fault-free run.
//!
//! # Deterministic fault injection
//!
//! A seeded [`FaultPlan`] (env `TSS_FAULTS=seed:rate`, plumbed like
//! `TSS_KERNEL`; or passed explicitly through [`ExecPolicy`]) decides —
//! by hashing `(seed, shard, attempt)` with the pinned
//! [`poset::Fnv64`] — whether a given attempt is sabotaged and how:
//! an **injected panic**, or a **corrupted local skyline** (a
//! deterministically chosen dominated record appended to the local
//! result). Corruption is caught by the merge-side validation pass: a
//! minimality spot-check of the local skyline against the scalar oracle
//! kernel ([`PointStore::t_dominated_by_any_oracle`]), on whose failure
//! the attempt is treated exactly like a panic. The plan never injects
//! into the fallback attempt, so a fault-injected run always terminates
//! with the fault-free answer. No clock is consulted anywhere (the xtask
//! time-fencing lint holds), so the same plan on the same store produces
//! the same injections, retries and counters at any thread count.
//!
//! Validation pair work is deliberately **not** charged to
//! [`Metrics::dominance_checks`]: it is recovery overhead, not query
//! work, and charging it would break the byte-identity contract between
//! fault-injected and fault-free runs that CI enforces.

use crate::error::ShardError;
use crate::store::{PointStore, RecordId};
use crate::{Metrics, PoDomain};
use skyline::Kernel;
use std::hash::Hasher;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What a planned fault does to its attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The attempt panics before producing a result.
    Panic,
    /// The attempt's local skyline is corrupted (a dominated record is
    /// appended), exercising the merge-side validation path.
    Corrupt,
}

/// A seeded, rate-controlled schedule of injected faults.
///
/// The plan is a pure function: whether `(shard, attempt)` is sabotaged —
/// and how — depends only on `(seed, rate, shard, attempt)` via the
/// pinned FNV-1a hash, never on scheduling, thread count or clock. Two
/// runs under the same plan inject identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every site hash.
    pub seed: u64,
    /// Injection probability in parts-per-million of sites (`1_000_000`
    /// saturates every site).
    pub rate_ppm: u32,
}

impl FaultPlan {
    /// A plan from a seed and a rate in `[0, 1]` (clamped).
    pub fn new(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rate_ppm: (rate.clamp(0.0, 1.0) * 1e6).round() as u32,
        }
    }

    /// Parses the `TSS_FAULTS` format `seed:rate` (e.g. `"7:0.35"`):
    /// integer seed, `:`, fraction of sites to sabotage. Returns `None`
    /// on malformed input or a rate outside `[0, 1]`.
    pub fn parse(s: &str) -> Option<FaultPlan> {
        let (seed, rate) = s.split_once(':')?;
        let seed: u64 = seed.trim().parse().ok()?;
        let rate: f64 = rate.trim().parse().ok()?;
        if !(0.0..=1.0).contains(&rate) {
            return None;
        }
        Some(FaultPlan::new(seed, rate))
    }

    /// The process-wide plan from the `TSS_FAULTS` environment variable
    /// (`seed:rate`), read once per process like `TSS_KERNEL`; `None`
    /// when unset or malformed. Per-run overrides go through
    /// [`ExecPolicy`].
    pub fn active() -> Option<FaultPlan> {
        static ACTIVE: OnceLock<Option<FaultPlan>> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            std::env::var("TSS_FAULTS")
                .ok()
                .as_deref()
                .and_then(FaultPlan::parse)
        })
    }

    /// The injection rate as a fraction in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        f64::from(self.rate_ppm) / 1e6
    }

    /// The pinned site hash: FNV-1a over `(seed, shard, attempt, salt)`.
    pub(crate) fn site_hash(&self, shard: usize, attempt: u32, salt: u64) -> u64 {
        let mut h = poset::Fnv64::new();
        h.write_u64(self.seed);
        h.write_u64(shard as u64);
        h.write_u32(attempt);
        h.write_u64(salt);
        h.finish()
    }

    /// Whether this plan sabotages `(shard, attempt)`, and how. The
    /// fault kind comes from an independent hash bit, so panics and
    /// corruptions interleave across sites.
    pub fn injects(&self, shard: usize, attempt: u32) -> Option<FaultKind> {
        let h = self.site_hash(shard, attempt, 0);
        if (h % 1_000_000) as u32 >= self.rate_ppm {
            return None;
        }
        Some(if (h >> 32) & 1 == 0 {
            FaultKind::Panic
        } else {
            FaultKind::Corrupt
        })
    }

    /// Whether this plan sabotages the **remote** execution of
    /// `(shard, attempt)`, and how. Process-level sites hash with their
    /// own salt, independent of the in-process [`injects`](Self::injects)
    /// sites, so the same `TSS_FAULTS` plan exercises both ladders; the
    /// kind cycles through all three process failure modes. Only the
    /// out-of-process executor's remote attempts consult this — in-process
    /// attempts (including its degraded mode and fallback) see the
    /// in-process sites, keeping degraded runs byte-identical to
    /// [`ThreadShardExecutor`](crate::ThreadShardExecutor) ones.
    pub fn injects_process(&self, shard: usize, attempt: u32) -> Option<ProcessFaultKind> {
        let h = self.site_hash(shard, attempt, 2);
        if (h % 1_000_000) as u32 >= self.rate_ppm {
            return None;
        }
        Some(match (h >> 32) % 3 {
            0 => ProcessFaultKind::Kill,
            1 => ProcessFaultKind::Stall,
            _ => ProcessFaultKind::CorruptFrame,
        })
    }
}

/// What a planned **process-level** fault makes a worker subprocess do to
/// its attempt (the out-of-process counterpart of [`FaultKind`]). The
/// supervisor computes the site deterministically and instructs the worker
/// over the request frame, so injection is invariant to pool size and
/// scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessFaultKind {
    /// The worker exits without replying — exercises crash detection
    /// (EOF) and the respawn path.
    Kill,
    /// The worker parks forever — exercises the attempt deadline and
    /// kill-on-timeout.
    Stall,
    /// The worker flips one byte of its response payload while keeping
    /// the stale checksum — exercises frame-corruption detection.
    CorruptFrame,
}

/// Everything a shard job may condition on: which shard it is, which
/// attempt of the ladder this is, and which dominance kernel the executor
/// wants the attempt computed with (the store's configured kernel on
/// regular attempts, [`Kernel::Scalar`] on the fallback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCtx {
    /// Index of the shard being evaluated.
    pub shard: usize,
    /// Zero-based attempt number; `retries + 1` is the fallback.
    pub attempt: u32,
    /// Kernel variant the job should compute with. Honoring it is what
    /// makes the fallback a genuine oracle recompute; kernel equivalence
    /// keeps results and counters identical either way.
    pub kernel: Kernel,
}

/// A successful shard evaluation: the local skyline as **global** record
/// ids plus the metrics of the successful attempt (with the recovery
/// counters folded in by the executor).
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Local skyline of the shard, global record ids.
    pub records: Vec<RecordId>,
    /// Metrics of the successful attempt only — failed attempts' work is
    /// discarded so fault-injected totals match fault-free ones — plus
    /// `shard_retries` / `shard_fallbacks` / `faults_injected`.
    pub metrics: Metrics,
}

/// One shard's work as the executor sees it: a re-runnable closure (it
/// may be invoked several times, once per attempt, with different
/// [`ShardCtx`]s) plus the global record-id range the shard covers — the
/// scope fault injection corrupts within and validation checks against.
///
/// A job may additionally carry a **wire payload** — a lazy encoder of
/// self-contained task bytes a worker *process* can recompute the same
/// `(records, metrics)` from (see [`crate::ipc`]). Closures cannot cross
/// process boundaries, so the payload is what the out-of-process executor
/// ships; the closure stays as the in-process path every executor falls
/// back to (fallback attempts, degraded mode, jobs without a payload).
pub struct ShardJob<'a> {
    run: Box<dyn Fn(ShardCtx) -> (Vec<RecordId>, Metrics) + Send + Sync + 'a>,
    wire: Option<Box<dyn Fn() -> Vec<u8> + Send + Sync + 'a>>,
    range: Range<RecordId>,
}

impl<'a> ShardJob<'a> {
    /// Wraps a shard evaluation closure. `run` must be deterministic per
    /// `ShardCtx` and return **global** record ids.
    pub fn new(
        range: Range<RecordId>,
        run: impl Fn(ShardCtx) -> (Vec<RecordId>, Metrics) + Send + Sync + 'a,
    ) -> Self {
        ShardJob {
            run: Box::new(run),
            wire: None,
            range,
        }
    }

    /// Attaches a lazy wire-payload encoder. The bytes must describe a
    /// task whose worker-side evaluation (see [`crate::ipc::worker`])
    /// returns byte-identical records and metrics to the closure at the
    /// same [`ShardCtx`] — that equivalence is what the subprocess
    /// equivalence proptests pin.
    pub fn with_wire(mut self, encode: impl Fn() -> Vec<u8> + Send + Sync + 'a) -> Self {
        self.wire = Some(Box::new(encode));
        self
    }

    /// Encodes the wire payload, if the job carries one.
    pub fn wire_bytes(&self) -> Option<Vec<u8>> {
        self.wire.as_ref().map(|encode| encode())
    }

    /// The global record-id range this shard covers.
    pub fn range(&self) -> Range<RecordId> {
        self.range.clone()
    }
}

/// Retry and fault-injection policy of an executor.
#[derive(Debug, Clone, Copy)]
pub struct ExecPolicy {
    /// Regular-path retry attempts after the first (the ladder runs
    /// `retries + 1` regular attempts, then one scalar-oracle fallback).
    pub retries: u32,
    /// Active fault plan, if any.
    pub faults: Option<FaultPlan>,
    /// Run the merge-side local-skyline minimality validation on every
    /// attempt. Forced on whenever faults are injected (corruption would
    /// otherwise go unnoticed); off by default on fault-free runs, where
    /// it would only add oracle pair work.
    pub validate: bool,
    /// Per-attempt deadline of the out-of-process executor: a remote
    /// attempt that has not answered within it is killed and retried
    /// (counted in [`Metrics::worker_timeouts`]). `None` uses the
    /// supervisor's generous default. The deadline must never influence
    /// results or counters — only *which recovery path ran* — which is
    /// why in-process executors ignore it entirely and the supervisor's
    /// clock is confined to its own module.
    pub deadline: Option<Duration>,
}

impl ExecPolicy {
    /// Default bounded retry count.
    pub const DEFAULT_RETRIES: u32 = 2;

    /// A policy with the default retry budget and the given plan;
    /// validation follows the plan (on iff faults are injected).
    pub fn with_faults(faults: Option<FaultPlan>) -> ExecPolicy {
        ExecPolicy {
            retries: Self::DEFAULT_RETRIES,
            faults,
            validate: faults.is_some(),
            deadline: None,
        }
    }

    /// The same policy with an explicit per-attempt deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> ExecPolicy {
        self.deadline = Some(deadline);
        self
    }

    /// The policy with no injection and no validation — what fault-free
    /// production runs use when `TSS_FAULTS` is unset.
    pub fn fault_free() -> ExecPolicy {
        ExecPolicy::with_faults(None)
    }
}

impl Default for ExecPolicy {
    /// Follows the process environment: the [`FaultPlan::active`] plan
    /// when `TSS_FAULTS` is set, fault-free otherwise.
    fn default() -> Self {
        ExecPolicy::with_faults(FaultPlan::active())
    }
}

/// The executor seam of the sharded fronts: evaluates a batch of shard
/// jobs and reports per-shard `Result`s. The in-process implementation is
/// [`ThreadShardExecutor`]; the ROADMAP's distributed backend implements
/// the same trait over worker processes.
pub trait ShardExecutor {
    /// Evaluates every job (order-preserving: result `i` belongs to job
    /// `i`). Implementations must be deterministic — results and metrics
    /// independent of scheduling — and must not let a job's panic escape.
    fn execute(
        &self,
        store: &PointStore,
        domains: &[PoDomain],
        jobs: &[ShardJob<'_>],
    ) -> Vec<Result<ShardOutcome, ShardError>>;
}

/// The in-process [`ShardExecutor`]: scoped OS threads claim shards off
/// an atomic cursor, and each claimed shard runs its full recovery ladder
/// (catch_unwind attempts → bounded retries → scalar-oracle fallback) on
/// the claiming worker. Results are slotted by shard index, so the output
/// — unlike the schedule — is deterministic.
#[derive(Debug, Clone, Copy)]
pub struct ThreadShardExecutor {
    threads: usize,
    policy: ExecPolicy,
}

impl ThreadShardExecutor {
    /// An executor on up to `threads` workers under the environment
    /// policy ([`ExecPolicy::default`]).
    pub fn new(threads: usize) -> ThreadShardExecutor {
        ThreadShardExecutor::with_policy(threads, ExecPolicy::default())
    }

    /// An executor with an explicit policy (tests and the fault-injection
    /// proptests drive plans through here).
    pub fn with_policy(threads: usize, policy: ExecPolicy) -> ThreadShardExecutor {
        ThreadShardExecutor {
            threads: threads.max(1),
            policy,
        }
    }

    /// The policy this executor runs shards under.
    pub fn policy(&self) -> &ExecPolicy {
        &self.policy
    }

    /// The full per-shard recovery ladder; never panics, never loses the
    /// shard silently.
    fn run_ladder(
        &self,
        store: &PointStore,
        domains: &[PoDomain],
        shard: usize,
        job: &ShardJob<'_>,
    ) -> Result<ShardOutcome, ShardError> {
        run_ladder(&self.policy, store, domains, shard, job)
    }
}

/// The full in-process per-shard recovery ladder — `retries + 1` regular
/// attempts on the store's kernel, then one scalar-oracle fallback; never
/// panics, never loses the shard silently. Shared by
/// [`ThreadShardExecutor`] and the out-of-process executor's degraded
/// mode, which is what keeps degraded runs byte-identical to in-process
/// ones (same attempts, same fault sites, same counters).
pub(crate) fn run_ladder(
    policy: &ExecPolicy,
    store: &PointStore,
    domains: &[PoDomain],
    shard: usize,
    job: &ShardJob<'_>,
) -> Result<ShardOutcome, ShardError> {
    let mut retries = 0u64;
    let mut injected = 0u64;
    for attempt in 0..=policy.retries {
        let ctx = ShardCtx {
            shard,
            attempt,
            kernel: store.kernel(),
        };
        let fault = policy
            .faults
            .as_ref()
            .and_then(|p| p.injects(shard, attempt));
        match attempt_shard(store, domains, policy, job, ctx, fault, &mut injected) {
            Ok((records, metrics)) => return Ok(outcome(records, metrics, retries, 0, injected)),
            Err(_) => retries += 1,
        }
    }
    // Last resort: one recompute on the scalar oracle kernel, never
    // injected — a fault-injected run always terminates exactly.
    let ctx = ShardCtx {
        shard,
        attempt: policy.retries + 1,
        kernel: Kernel::Scalar,
    };
    let (records, metrics) = attempt_shard(store, domains, policy, job, ctx, None, &mut injected)?;
    Ok(outcome(records, metrics, retries, 1, injected))
}

impl ShardExecutor for ThreadShardExecutor {
    fn execute(
        &self,
        store: &PointStore,
        domains: &[PoDomain],
        jobs: &[ShardJob<'_>],
    ) -> Vec<Result<ShardOutcome, ShardError>> {
        let n = jobs.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return jobs
                .iter()
                .enumerate()
                .map(|(i, job)| self.run_ladder(store, domains, i, job))
                .collect();
        }
        let results: Vec<Mutex<Option<Result<ShardOutcome, ShardError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // The ladder is panic-free, so this write always
                        // happens; poisoning is impossible but handled
                        // anyway (a poisoned lock still owns its data).
                        let r = self.run_ladder(store, domains, i, &jobs[i]);
                        *results[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(r);
                    })
                })
                .collect();
            for h in handles {
                // Joining explicitly keeps an (impossible) worker panic
                // from propagating out of the scope; an abandoned shard
                // is recomputed inline below instead.
                let _ = h.join();
            }
        });
        results
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .unwrap_or_else(|p| p.into_inner())
                    .unwrap_or_else(|| self.run_ladder(store, domains, i, &jobs[i]))
            })
            .collect()
    }
}

/// Folds the ladder's recovery bookkeeping into the successful attempt's
/// metrics.
pub(crate) fn outcome(
    records: Vec<RecordId>,
    mut metrics: Metrics,
    retries: u64,
    fallbacks: u64,
    injected: u64,
) -> ShardOutcome {
    metrics.shard_retries += retries;
    metrics.shard_fallbacks += fallbacks;
    metrics.faults_injected += injected;
    ShardOutcome { records, metrics }
}

/// One attempt of one shard: inject the planned fault (if any), run the
/// job under `catch_unwind`, then validate the local skyline when the
/// policy asks for it.
pub(crate) fn attempt_shard(
    store: &PointStore,
    domains: &[PoDomain],
    policy: &ExecPolicy,
    job: &ShardJob<'_>,
    ctx: ShardCtx,
    fault: Option<FaultKind>,
    injected: &mut u64,
) -> Result<(Vec<RecordId>, Metrics), ShardError> {
    let ShardCtx { shard, attempt, .. } = ctx;
    if fault.is_some() {
        // Both kinds always fire (corruption degrades to a panic on
        // all-skyline shards), so the site counts up front.
        *injected += 1;
    }
    let plan = policy.faults;
    // The closure only touches its own locals and `Fn` (immutable) state;
    // on a panic everything it produced is discarded and the attempt is
    // rerun from scratch, so broken invariants cannot leak.
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if matches!(fault, Some(FaultKind::Panic)) {
            injected_panic(shard, attempt);
        }
        let (mut records, metrics) = (job.run)(ctx);
        if matches!(fault, Some(FaultKind::Corrupt)) {
            match plan.and_then(|p| corruption_target(&p, shard, attempt, &job.range, &records)) {
                Some(bogus) => records.push(bogus),
                // Every shard record is locally skyline: no detectably
                // corrupt append exists, degrade to a panic so the
                // planned site still fires.
                None => injected_panic(shard, attempt),
            }
        }
        (records, metrics)
    }));
    let (records, metrics) = match run {
        Ok(out) => out,
        Err(payload) => {
            return Err(
                ShardError::panicked(shard, attempt, panic_message(payload.as_ref()))
                    .with_range(job.range()),
            )
        }
    };
    if policy.validate {
        if let Some(offender) = validate_minimal(store, domains, &records) {
            return Err(ShardError::corrupted(shard, attempt, offender).with_range(job.range()));
        }
    }
    Ok((records, metrics))
}

/// The single deliberate panic site of the workspace's fault injection.
fn injected_panic(shard: usize, attempt: u32) -> ! {
    // lint:allow(panic-path): deliberate fault-injection site — reachable only under an active FaultPlan and always caught by the executor's catch_unwind one frame up
    panic!("injected fault: shard {shard} attempt {attempt}")
}

/// Picks the record the corruption fault appends: a deterministic,
/// hash-chosen member of the shard that is **not** in the local skyline.
/// Any such record is dominated by some local member (dominance is a
/// strict partial order, so every non-maximal record has a maximal — i.e.
/// locally skyline — dominator by transitivity), which is exactly what
/// makes the corruption always detectable by [`validate_minimal`].
/// Returns `None` when the whole shard is skyline.
fn corruption_target(
    plan: &FaultPlan,
    shard: usize,
    attempt: u32,
    range: &Range<RecordId>,
    records: &[RecordId],
) -> Option<RecordId> {
    let len = (range.end - range.start) as usize;
    let mut members: Vec<RecordId> = records
        .iter()
        .copied()
        .filter(|r| range.contains(r))
        .collect();
    members.sort_unstable();
    members.dedup();
    let non_members = len.checked_sub(members.len())?;
    if non_members == 0 {
        return None;
    }
    let pick = (plan.site_hash(shard, attempt, 1) % non_members as u64) as usize;
    let mut seen = 0usize;
    for r in range.clone() {
        if members.binary_search(&r).is_err() {
            if seen == pick {
                return Some(r);
            }
            seen += 1;
        }
    }
    None
}

/// Merge-side validation: a local skyline must be *minimal* — no member
/// dominated by another member. Checked record by record against the
/// scalar oracle kernel (a record never dominates its own equal self, so
/// the full list is a valid reference set). Returns the first dominated
/// member found. The oracle pair work is deliberately uncounted — see the
/// module docs.
pub(crate) fn validate_minimal(
    store: &PointStore,
    domains: &[PoDomain],
    records: &[RecordId],
) -> Option<RecordId> {
    for &r in records {
        let (hit, _) = store.t_dominated_by_any_oracle(domains, store.to(r), store.po(r), records);
        if hit {
            return Some(r);
        }
    }
    None
}

/// Renders a caught panic payload for [`ShardError::Panicked`].
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::brute_force_po_skyline;
    use crate::Table;

    fn table(n: u32) -> Table {
        let mut t = Table::new(2, 0);
        for i in 0..n {
            t.push(&[(i * 17) % 50, (i * 31) % 50], &[]);
        }
        t
    }

    /// Brute-force shard jobs over the store's shard views, honoring the
    /// ctx kernel (brute force is kernel-independent, which is fine: the
    /// contract is identical results either way).
    fn brute_jobs<'a>(
        store: &'a Table,
        domains: &'a [PoDomain],
        shards: usize,
    ) -> Vec<ShardJob<'a>> {
        store
            .shards(shards)
            .into_iter()
            .map(|view| {
                ShardJob::new(view.range(), move |_ctx| {
                    let sub = view.to_store();
                    let local: Vec<RecordId> = brute_force_po_skyline(domains, &sub)
                        .into_iter()
                        .map(|r| r + view.start())
                        .collect();
                    let m = Metrics {
                        results: local.len() as u64,
                        ..Metrics::default()
                    };
                    (local, m)
                })
            })
            .collect()
    }

    fn collect(results: Vec<Result<ShardOutcome, ShardError>>) -> (Vec<Vec<RecordId>>, Metrics) {
        let mut locals = Vec::new();
        let mut m = Metrics::default();
        for r in results {
            let o = r.expect("shard recovered");
            m = m.merge(&o.metrics);
            locals.push(o.records);
        }
        (locals, m)
    }

    #[test]
    fn fault_plan_parses_the_env_format() {
        assert_eq!(
            FaultPlan::parse("7:0.35"),
            Some(FaultPlan {
                seed: 7,
                rate_ppm: 350_000
            })
        );
        assert_eq!(FaultPlan::parse("0:1"), Some(FaultPlan::new(0, 1.0)));
        assert_eq!(
            FaultPlan::parse(" 12 : 0.5 "),
            Some(FaultPlan::new(12, 0.5))
        );
        for bad in ["", "7", "x:0.5", "7:1.5", "7:-0.1", "7:zz"] {
            assert_eq!(FaultPlan::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn injection_is_deterministic_and_rate_bounded() {
        let plan = FaultPlan::new(42, 0.5);
        let mut fired = 0usize;
        for shard in 0..64 {
            for attempt in 0..4 {
                let a = plan.injects(shard, attempt);
                assert_eq!(a, plan.injects(shard, attempt), "pure function");
                fired += usize::from(a.is_some());
            }
        }
        // 256 sites at rate 0.5: the pinned hash gives a fixed count in
        // a comfortably wide band.
        assert!((64..=192).contains(&fired), "{fired} of 256 sites fired");
        assert!(FaultPlan::new(7, 0.0).injects(3, 0).is_none());
        assert!(FaultPlan::new(7, 1.0).injects(3, 0).is_some());
        // Both kinds occur.
        let kinds: Vec<FaultKind> = (0..64)
            .filter_map(|s| FaultPlan::new(9, 1.0).injects(s, 0))
            .collect();
        assert!(kinds.contains(&FaultKind::Panic));
        assert!(kinds.contains(&FaultKind::Corrupt));
    }

    #[test]
    fn saturated_faults_recover_to_the_fault_free_answer() {
        let t = table(120);
        let jobs = brute_jobs(&t, &[], 4);
        let clean = ThreadShardExecutor::with_policy(1, ExecPolicy::fault_free());
        let (clean_locals, clean_m) = collect(clean.execute(&t, &[], &jobs));
        // Rate 1.0: every regular attempt of every shard is sabotaged, so
        // every shard walks the whole ladder and lands on the fallback.
        let policy = ExecPolicy::with_faults(Some(FaultPlan::new(1234, 1.0)));
        for threads in [1usize, 2, 4] {
            let exec = ThreadShardExecutor::with_policy(threads, policy);
            let (locals, m) = collect(exec.execute(&t, &[], &jobs));
            assert_eq!(locals, clean_locals, "threads={threads}");
            assert_eq!(m.results, clean_m.results);
            assert_eq!(m.dominance_checks, clean_m.dominance_checks);
            assert_eq!(
                m.shard_retries,
                4 * u64::from(ExecPolicy::DEFAULT_RETRIES + 1)
            );
            assert_eq!(m.shard_fallbacks, 4);
            assert_eq!(m.faults_injected, m.shard_retries);
        }
    }

    #[test]
    fn fault_free_runs_count_nothing() {
        let t = table(60);
        let jobs = brute_jobs(&t, &[], 3);
        let exec = ThreadShardExecutor::with_policy(2, ExecPolicy::fault_free());
        let (_, m) = collect(exec.execute(&t, &[], &jobs));
        assert_eq!(m.shard_retries, 0);
        assert_eq!(m.shard_fallbacks, 0);
        assert_eq!(m.faults_injected, 0);
    }

    #[test]
    fn corruption_is_always_detected() {
        let t = table(90);
        // Forge corrupt jobs directly: a shard job that appends a
        // dominated record on regular attempts but behaves on the
        // fallback kernel — validation must catch every regular attempt.
        let domains: &[PoDomain] = &[];
        let jobs: Vec<ShardJob<'_>> = t
            .shards(3)
            .into_iter()
            .map(|view| {
                ShardJob::new(view.range(), move |ctx: ShardCtx| {
                    let sub = view.to_store();
                    let mut local: Vec<RecordId> = brute_force_po_skyline(domains, &sub)
                        .into_iter()
                        .map(|r| r + view.start())
                        .collect();
                    if ctx.kernel != Kernel::Scalar {
                        // Sneak in some dominated record of the shard.
                        if let Some(bad) = view.record_ids().find(|r| !local.contains(r)) {
                            local.push(bad);
                        }
                    }
                    (local, Metrics::default())
                })
            })
            .collect();
        let mut policy = ExecPolicy::fault_free();
        policy.validate = true;
        let exec = ThreadShardExecutor::with_policy(2, policy);
        let results = exec.execute(&t, &[], &jobs);
        let clean = ThreadShardExecutor::with_policy(1, ExecPolicy::fault_free());
        let (clean_locals, _) = collect(clean.execute(&t, &[], &brute_jobs(&t, &[], 3)));
        for (r, clean_local) in results.into_iter().zip(clean_locals) {
            let o = r.expect("fallback recovers");
            assert_eq!(o.records, clean_local);
            assert_eq!(o.metrics.shard_fallbacks, 1);
            assert_eq!(
                o.metrics.shard_retries,
                u64::from(ExecPolicy::DEFAULT_RETRIES + 1)
            );
        }
    }

    #[test]
    fn unrecoverable_jobs_surface_a_shard_error() {
        let t = table(30);
        let jobs: Vec<ShardJob<'_>> = t
            .shards(2)
            .into_iter()
            .enumerate()
            .map(|(i, view)| {
                ShardJob::new(view.range(), move |_ctx| {
                    if i == 1 {
                        // lint:allow(panic-path): test-only deterministic failure (cfg(test) is ratchet-exempt anyway)
                        panic!("shard {i} is broken on every kernel");
                    }
                    (view.record_ids().collect(), Metrics::default())
                })
            })
            .collect();
        let exec = ThreadShardExecutor::with_policy(2, ExecPolicy::fault_free());
        let results = exec.execute(&t, &[], &jobs);
        assert!(results[0].is_ok());
        match &results[1] {
            Err(e) => {
                assert_eq!(e.shard(), 1);
                assert_eq!(
                    e.attempt(),
                    ExecPolicy::DEFAULT_RETRIES + 1,
                    "failed the fallback too"
                );
                assert_eq!(e.range(), jobs[1].range(), "the error names the shard span");
                match e.kind() {
                    crate::error::ShardErrorKind::Panicked(message) => {
                        assert!(message.contains("broken on every kernel"))
                    }
                    other => unreachable!("expected Panicked, got {other:?}"),
                }
            }
            other => unreachable!("expected Err, got {other:?}"),
        }
    }

    #[test]
    fn corruption_target_is_a_dominated_non_member() {
        let t = table(40);
        let view = t.shards(1)[0];
        let local: Vec<RecordId> = brute_force_po_skyline(&[], &t);
        let plan = FaultPlan::new(5, 1.0);
        let bogus = corruption_target(&plan, 0, 0, &view.range(), &local)
            .expect("mixed shard has non-members");
        assert!(!local.contains(&bogus));
        let (dominated, _) = t.t_dominated_by_any_oracle(&[], t.to(bogus), t.po(bogus), &local);
        assert!(dominated, "appended record must be detectable");
        // All-skyline shard: no target exists.
        let mut anti = Table::new(2, 0);
        for i in 0..10u32 {
            anti.push(&[i, 10 - i], &[]);
        }
        let all: Vec<RecordId> = (0..10).collect();
        assert_eq!(
            corruption_target(&plan, 0, 0, &(0..10), &all),
            None,
            "degrades to a panic upstream"
        );
    }
}

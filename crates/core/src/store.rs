//! The columnar tuple store every engine computes on.
//!
//! A [`PointStore`] keeps the totally ordered coordinates and the partially
//! ordered value ids of all tuples in two flat `Vec<u32>` blocks with fixed
//! strides (`to_dims` / `po_dims`), indexed by [`RecordId`]. There are zero
//! per-tuple allocations: multi-million-tuple workloads cost two
//! allocations total, slice access by record id is `O(1)`, and a dominance
//! scan over a candidate list walks memory linearly.
//!
//! The batched kernels below test one candidate against a whole block of
//! records: the TO comparison is branch-free per pair (flag accumulation
//! instead of per-dimension exits), rows early-exit on the first dominator,
//! and every kernel returns `(answer, pairs_examined)` where one examined
//! pair equals one scalar [`t_dominates`] call of the seed implementation —
//! so the batched counts are never larger than the scalar loop's.
//!
//! Like [`skyline::PointBlock`], each kernel exists in a scalar and a
//! lane-chunked variant behind one signature, selected by the store's
//! [`Kernel`]: the lane path gathers [`LANES`] TO rows per iteration into a
//! dimension-major scratch and resolves the `le`/`lt` masks vectorially,
//! while the PO part of each surviving lane runs through the exact scalar
//! tail in record order — results *and* examined-pair counts are identical
//! across variants on every input.
//!
//! `Table` (the facade name the paper-facing API keeps) is an alias of this
//! type.

use crate::dominance::{po_tail, t_dominates};
use crate::{CoreError, PoDomain};
use skyline::{Kernel, LANES};

/// Widest TO stride the id-gather lane kernels transpose through their
/// stack scratch (matches the `PointBlock` limit); wider stores take the
/// scalar path.
const LANE_MAX_DIMS: usize = 16;

/// Index of a tuple in a [`PointStore`] — the currency engines trade in.
pub type RecordId = u32;

/// Digest of one tuple's attribute values, the key of the engines'
/// duplicate-detection multimaps (hash -> records, resolved against the
/// store by slice comparison).
///
/// Hashed with [`poset::Fnv64`] — fixed published constants — rather than
/// `DefaultHasher`, whose algorithm is explicitly unspecified across rustc
/// releases: the digest *values* must survive toolchain bumps so that
/// anything derived from them (golden numbers, persisted fingerprints) is
/// stable. Note the maps keyed on these digests are probe-only — never
/// iterate one expecting a deterministic order; `HashMap`'s iteration
/// order stays randomized per instance regardless of the hasher used for
/// the key values.
pub(crate) fn row_hash(to: &[u32], po: &[u32]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = poset::Fnv64::new();
    to.hash(&mut h);
    po.hash(&mut h);
    h.finish()
}

/// A skyline input relation: `n` tuples with `to_dims` totally ordered
/// integer attributes (smaller is better) and `po_dims` partially ordered
/// attributes stored as value ids into their domain DAGs, both held as
/// flat row-major blocks.
/// # Epoch-versioned mutation
///
/// The store doubles as the mutable substrate of
/// [`StreamingSkyline`](crate::StreamingSkyline): [`insert`](Self::insert)
/// appends to the flat blocks (record ids are append-only, never reused),
/// [`expire`](Self::expire) retires a record into a tombstone bitmap
/// without moving a byte, and [`compact`](Self::compact) rewrites the
/// blocks densely when the tombstone fraction warrants it. Every mutation
/// bumps a [`generation`](Self::generation) counter, so readers can
/// snapshot a generation and detect staleness instead of observing torn
/// state. All index-addressed accessors ([`to`](Self::to),
/// [`po`](Self::po), the batched kernels, [`shards`](Self::shards)) keep
/// operating on *physical* rows — tombstoned rows stay addressable until
/// compaction — and the streaming layer passes explicitly live id lists,
/// so `RecordId` windows, lane kernels and [`ShardView`]s work unchanged
/// on live data.
#[derive(Debug, Clone, Default)]
pub struct PointStore {
    n: usize,
    to_dims: usize,
    po_dims: usize,
    to: Vec<u32>,
    po: Vec<u32>,
    kernel: Kernel,
    /// Tombstone bitmap, one bit per physical row; may be shorter than
    /// `n.div_ceil(64)` words — missing bits mean live.
    tombstones: Vec<u64>,
    /// Tombstoned rows (`n - dead` rows are live).
    dead: usize,
    /// Epoch counter: bumped by every mutation (insert, expire, compact).
    generation: u64,
}

impl PointStore {
    /// An empty store with the given dimensionality.
    pub fn new(to_dims: usize, po_dims: usize) -> Self {
        PointStore {
            n: 0,
            to_dims,
            po_dims,
            to: Vec::new(),
            po: Vec::new(),
            kernel: Kernel::default(),
            tombstones: Vec::new(),
            dead: 0,
            generation: 0,
        }
    }

    /// The dominance-kernel variant the batched kernels dispatch to
    /// (inherited by engine-internal [`skyline::PointBlock`]s built from
    /// this store).
    #[inline]
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Returns the store with the given kernel variant forced (tests and
    /// the bench harness's in-process scalar-vs-lanes cross-checks).
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Forces the kernel variant in place.
    pub fn set_kernel(&mut self, kernel: Kernel) {
        self.kernel = kernel;
    }

    /// Wraps pre-generated flattened matrices (e.g. from `datagen`) without
    /// copying them.
    pub fn from_parts(
        to_dims: usize,
        po_dims: usize,
        to: Vec<u32>,
        po: Vec<u32>,
    ) -> Result<Self, CoreError> {
        if to_dims == 0 && po_dims == 0 {
            return Err(CoreError::NoDimensions);
        }
        let n = to
            .len()
            .checked_div(to_dims)
            .unwrap_or(po.len() / po_dims.max(1));
        if to_dims > 0 && to.len() != n * to_dims {
            return Err(CoreError::RaggedMatrix {
                what: "TO",
                len: to.len(),
                n,
                dims: to_dims,
            });
        }
        if po.len() != n * po_dims {
            return Err(CoreError::RaggedMatrix {
                what: "PO",
                len: po.len(),
                n,
                dims: po_dims,
            });
        }
        Ok(PointStore {
            n,
            to_dims,
            po_dims,
            to,
            po,
            kernel: Kernel::default(),
            tombstones: Vec::new(),
            dead: 0,
            generation: 0,
        })
    }

    /// Appends one tuple.
    pub fn push(&mut self, to_row: &[u32], po_row: &[u32]) {
        assert_eq!(to_row.len(), self.to_dims, "TO row width");
        assert_eq!(po_row.len(), self.po_dims, "PO row width");
        self.to.extend_from_slice(to_row);
        self.po.extend_from_slice(po_row);
        self.n += 1;
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the store holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of totally ordered attributes.
    #[inline]
    pub fn to_dims(&self) -> usize {
        self.to_dims
    }

    /// Number of partially ordered attributes.
    #[inline]
    pub fn po_dims(&self) -> usize {
        self.po_dims
    }

    /// The TO coordinates of record `id`.
    #[inline]
    pub fn to(&self, id: RecordId) -> &[u32] {
        let i = id as usize;
        &self.to[i * self.to_dims..(i + 1) * self.to_dims]
    }

    /// The PO value ids of record `id`.
    #[inline]
    pub fn po(&self, id: RecordId) -> &[u32] {
        let i = id as usize;
        &self.po[i * self.po_dims..(i + 1) * self.po_dims]
    }

    /// The TO coordinates of tuple `i` (index-typed convenience).
    #[inline]
    pub fn to_row(&self, i: usize) -> &[u32] {
        &self.to[i * self.to_dims..(i + 1) * self.to_dims]
    }

    /// The PO value ids of tuple `i` (index-typed convenience).
    #[inline]
    pub fn po_row(&self, i: usize) -> &[u32] {
        &self.po[i * self.po_dims..(i + 1) * self.po_dims]
    }

    /// The flat row-major TO block.
    #[inline]
    pub fn to_block(&self) -> &[u32] {
        &self.to
    }

    /// The flat row-major PO block.
    #[inline]
    pub fn po_block(&self) -> &[u32] {
        &self.po
    }

    /// One bounds check per TO row instead of two: split the flat matrix
    /// at the row start, then take the stride window off the tail.
    #[inline]
    fn to_window(&self, id: RecordId) -> &[u32] {
        let (_, tail) = self.to.split_at(id as usize * self.to_dims);
        &tail[..self.to_dims]
    }

    /// Validates every PO value id against per-dimension domain sizes.
    pub fn check_domains(&self, sizes: &[u32]) -> Result<(), CoreError> {
        if sizes.len() != self.po_dims {
            return Err(CoreError::DomainCountMismatch {
                dags: sizes.len(),
                po_dims: self.po_dims,
            });
        }
        for i in 0..self.n {
            let row = self.po_row(i);
            for (d, (&v, &s)) in row.iter().zip(sizes.iter()).enumerate() {
                if v >= s {
                    return Err(CoreError::PoValueOutOfRange {
                        row: i,
                        dim: d,
                        value: v,
                        domain: s,
                    });
                }
            }
        }
        Ok(())
    }

    // --- Batched dominance kernels --------------------------------------

    /// Does any of the listed records t-dominate the candidate tuple
    /// `(cand_to, cand_po)`? One linear walk over the flat blocks with
    /// early exit; each examined pair is one exact [`t_dominates`] check.
    /// Returns `(dominated, pairs_examined)`.
    #[inline]
    pub fn t_dominated_by_any(
        &self,
        domains: &[PoDomain],
        cand_to: &[u32],
        cand_po: &[u32],
        ids: &[RecordId],
    ) -> (bool, u64) {
        debug_assert_eq!(cand_to.len(), self.to_dims);
        debug_assert_eq!(cand_po.len(), self.po_dims);
        match self.kernel {
            Kernel::Scalar => self.t_dominated_by_any_scalar(domains, cand_to, cand_po, ids),
            Kernel::Lanes => self.t_dominated_by_any_lanes(domains, cand_to, cand_po, ids),
        }
    }

    /// [`t_dominated_by_any`](Self::t_dominated_by_any) forced onto the
    /// scalar oracle path, ignoring the store's configured kernel — the
    /// reference check the fault-tolerant executor's merge-side validation
    /// uses, so corruption detection never depends on the kernel variant
    /// under suspicion. Returns `(dominated, pairs_examined)`; callers that
    /// must stay counter-identical to a validation-free run deliberately
    /// do **not** feed the pair count into their [`Metrics`](crate::Metrics).
    #[inline]
    pub fn t_dominated_by_any_oracle(
        &self,
        domains: &[PoDomain],
        cand_to: &[u32],
        cand_po: &[u32],
        ids: &[RecordId],
    ) -> (bool, u64) {
        self.t_dominated_by_any_scalar(domains, cand_to, cand_po, ids)
    }

    fn t_dominated_by_any_scalar(
        &self,
        domains: &[PoDomain],
        cand_to: &[u32],
        cand_po: &[u32],
        ids: &[RecordId],
    ) -> (bool, u64) {
        let mut examined = 0u64;
        for &id in ids {
            examined += 1;
            if t_dominates(domains, self.to_window(id), self.po(id), cand_to, cand_po) {
                return (true, examined);
            }
        }
        (false, examined)
    }

    /// Lane-chunked t-dominance: each group of [`LANES`] listed records
    /// transposes its TO rows into a stack scratch and resolves the TO
    /// `le`/`lt` masks vectorially; a lane whose TO part survives finishes
    /// through the exact scalar [`po_tail`] in record order, so results and
    /// examined-pair counts match the scalar walk bit for bit (pairs are
    /// counted per record, with or without a PO evaluation — exactly as
    /// [`t_dominates`] early-outs on a failed TO part).
    fn t_dominated_by_any_lanes(
        &self,
        domains: &[PoDomain],
        cand_to: &[u32],
        cand_po: &[u32],
        ids: &[RecordId],
    ) -> (bool, u64) {
        let dims = self.to_dims;
        if dims > LANE_MAX_DIMS {
            return self.t_dominated_by_any_scalar(domains, cand_to, cand_po, ids);
        }
        let mut scratch = [0u32; LANES * LANE_MAX_DIMS];
        let mut examined = 0u64;
        let groups = ids.chunks_exact(LANES);
        let tail = groups.remainder();
        for group in groups {
            for (l, &id) in group.iter().enumerate() {
                let row = self.to_window(id);
                for d in 0..dims {
                    scratch[d * LANES + l] = row[d];
                }
            }
            let mut le = [1u32; LANES];
            let mut lt = [0u32; LANES];
            for (col, &cd) in scratch[..dims * LANES]
                .chunks_exact(LANES)
                .zip(cand_to.iter())
            {
                for l in 0..LANES {
                    le[l] &= (col[l] <= cd) as u32;
                    lt[l] |= (col[l] < cd) as u32;
                }
                if dims > 4 && le.iter().fold(0u32, |a, &x| a | x) == 0 {
                    break;
                }
            }
            let any_le = le.iter().fold(0u32, |a, &x| a | x);
            if any_le != 0 {
                for (l, &id) in group.iter().enumerate() {
                    if le[l] != 0 && po_tail(domains, self.po(id), cand_po, lt[l] != 0) {
                        return (true, examined + l as u64 + 1);
                    }
                }
            }
            examined += LANES as u64;
        }
        for &id in tail {
            examined += 1;
            if t_dominates(domains, self.to_window(id), self.po(id), cand_to, cand_po) {
                return (true, examined);
            }
        }
        (false, examined)
    }

    /// Strictness-precomputed kernel for same-key groups: all candidates
    /// share one PO value combination, so whether a skyline record's PO part
    /// is at-least-as-good — and whether it is *strictly* better — has been
    /// decided once per group. Each entry is `(record, po_strict)`; the
    /// record dominates the candidate TO row iff its own TO row is `<=`
    /// everywhere and (PO-strict, or the TO rows differ). Returns
    /// `(dominated, pairs_examined)`.
    #[inline]
    pub fn to_dominated_with_strictness(
        &self,
        entries: &[(RecordId, bool)],
        cand_to: &[u32],
    ) -> (bool, u64) {
        debug_assert_eq!(cand_to.len(), self.to_dims);
        match self.kernel {
            Kernel::Scalar => self.to_dominated_with_strictness_scalar(entries, cand_to),
            Kernel::Lanes => self.to_dominated_with_strictness_lanes(entries, cand_to),
        }
    }

    fn to_dominated_with_strictness_scalar(
        &self,
        entries: &[(RecordId, bool)],
        cand_to: &[u32],
    ) -> (bool, u64) {
        let mut examined = 0u64;
        for &(id, po_strict) in entries {
            examined += 1;
            let mut le = true;
            let mut lt = false;
            for (&a, &b) in self.to_window(id).iter().zip(cand_to.iter()) {
                le &= a <= b;
                lt |= a < b;
            }
            if le && (po_strict || lt) {
                return (true, examined);
            }
        }
        (false, examined)
    }

    /// Lane-chunked strictness kernel: gathered TO rows resolve their
    /// `le`/`lt` masks per lane; a lane dominates iff `le` holds and
    /// either its PO part was strict group-wide or some TO coordinate is
    /// strictly smaller. Any-lane early exit, first-set-lane resolution in
    /// record order, scalar sub-[`LANES`] tail.
    fn to_dominated_with_strictness_lanes(
        &self,
        entries: &[(RecordId, bool)],
        cand_to: &[u32],
    ) -> (bool, u64) {
        let dims = self.to_dims;
        if dims > LANE_MAX_DIMS {
            return self.to_dominated_with_strictness_scalar(entries, cand_to);
        }
        let mut scratch = [0u32; LANES * LANE_MAX_DIMS];
        let mut examined = 0u64;
        let groups = entries.chunks_exact(LANES);
        let tail = groups.remainder();
        for group in groups {
            let mut strict = [0u32; LANES];
            for (l, &(id, s)) in group.iter().enumerate() {
                strict[l] = s as u32;
                let row = self.to_window(id);
                for d in 0..dims {
                    scratch[d * LANES + l] = row[d];
                }
            }
            let mut le = [1u32; LANES];
            let mut lt = [0u32; LANES];
            for (col, &cd) in scratch[..dims * LANES]
                .chunks_exact(LANES)
                .zip(cand_to.iter())
            {
                for l in 0..LANES {
                    le[l] &= (col[l] <= cd) as u32;
                    lt[l] |= (col[l] < cd) as u32;
                }
                if dims > 4 && le.iter().fold(0u32, |a, &x| a | x) == 0 {
                    break;
                }
            }
            let mut any = 0u32;
            for l in 0..LANES {
                any |= le[l] & (strict[l] | lt[l]);
            }
            if any != 0 {
                for l in 0..LANES {
                    if le[l] & (strict[l] | lt[l]) != 0 {
                        return (true, examined + l as u64 + 1);
                    }
                }
            }
            examined += LANES as u64;
        }
        for &(id, po_strict) in tail {
            examined += 1;
            let mut le = true;
            let mut lt = false;
            for (&a, &b) in self.to_window(id).iter().zip(cand_to.iter()) {
                le &= a <= b;
                lt |= a < b;
            }
            if le && (po_strict || lt) {
                return (true, examined);
            }
        }
        (false, examined)
    }

    /// A **monotone score** of one record under t-dominance: the sum of
    /// its TO coordinates plus one topological ordinal per PO attribute.
    ///
    /// If `a` t-dominates `b` then `score(a) < score(b)` *strictly*: every
    /// TO coordinate of `a` is `<=` with at least one `<`, or some PO value
    /// is strictly preferred — and a strictly preferred value precedes in
    /// the topological sort, so its ordinal is strictly smaller (the same
    /// argument that gives sTSS its precedence theorem). Two consequences
    /// the sorted merge in [`parallel`](crate::parallel) builds on:
    ///
    /// * scanning candidates in ascending score order sees every dominator
    ///   before its dominatees (an SFS/SaLSa-style filter needs only the
    ///   already-confirmed prefix), and
    /// * equal-score records can never dominate each other, so an
    ///   equal-score stratum is checkable against a frozen prefix in any
    ///   order — or concurrently.
    #[inline]
    pub fn monotone_score(&self, domains: &[PoDomain], id: RecordId) -> u64 {
        let to_sum: u64 = self.to(id).iter().map(|&x| x as u64).sum();
        let po_sum: u64 = self
            .po(id)
            .iter()
            .zip(domains.iter())
            .map(|(&v, d)| d.ordinal(v) as u64)
            .sum();
        to_sum + po_sum
    }

    /// Estimates the local-skyline ratio from the store's prefix: computes
    /// the exact skyline of the first `min(len, sample)` records with a
    /// sorted filter over [`monotone_score`](Self::monotone_score) and
    /// returns `(records_sampled, sample_skyline_size)`.
    ///
    /// Deterministic (no RNG — the rows of the generated and real-world
    /// workloads this repo targets are row-order independent, so a prefix
    /// is an unbiased sample) and cheap: `O(s log s)` to sort plus one
    /// early-exiting batched kernel scan per sampled record. This is the
    /// measurement behind [`ShardPlan`](crate::parallel::ShardPlan).
    pub fn prefix_skyline_sample(&self, domains: &[PoDomain], sample: usize) -> (usize, usize) {
        let s = self.n.min(sample);
        let mut ids: Vec<RecordId> = (0..s as RecordId).collect();
        ids.sort_unstable_by_key(|&r| (self.monotone_score(domains, r), r));
        let mut confirmed: Vec<RecordId> = Vec::new();
        for &r in &ids {
            let (hit, _) = self.t_dominated_by_any(domains, self.to(r), self.po(r), &confirmed);
            if !hit {
                confirmed.push(r);
            }
        }
        (s, confirmed.len())
    }

    // --- Sharding -------------------------------------------------------

    /// Splits the store into `n` disjoint, contiguous record-id ranges —
    /// the substrate of the data-parallel executors in
    /// [`parallel`](crate::parallel). Zero-copy: every [`ShardView`] is a
    /// window over the existing flat TO/PO blocks, record ids stay global,
    /// and the shard boundaries depend only on `(len, n)` — never on a
    /// worker count — so any execution schedule over the same shards does
    /// the same work.
    ///
    /// Shard sizes differ by at most one record (the first `len % n` shards
    /// are one longer). Empty shards are not returned, so the result holds
    /// `min(n, len)` views for a non-empty store (and none for an empty
    /// one). `n = 0` is treated as `1`.
    pub fn shards(&self, n: usize) -> Vec<ShardView<'_>> {
        let n = n.max(1);
        let base = self.n / n;
        let extra = self.n % n;
        let mut views = Vec::with_capacity(n.min(self.n));
        let mut start = 0usize;
        for i in 0..n {
            let len = base + usize::from(i < extra);
            if len == 0 {
                break;
            }
            views.push(ShardView {
                store: self,
                start: start as RecordId,
                end: (start + len) as RecordId,
            });
            start += len;
        }
        views
    }

    // --- Epoch-versioned mutation ---------------------------------------

    /// Word index and mask of one record's tombstone bit.
    #[inline]
    fn tomb_bit(id: RecordId) -> (usize, u64) {
        ((id as usize) / 64, 1u64 << ((id as usize) % 64))
    }

    /// The epoch counter: bumped by every [`insert`](Self::insert),
    /// successful [`expire`](Self::expire) and [`compact`](Self::compact).
    /// Readers snapshot it to detect staleness — equal generations imply
    /// byte-identical store contents.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True iff physical record `id` has not been tombstoned.
    #[inline]
    pub fn is_live(&self, id: RecordId) -> bool {
        debug_assert!((id as usize) < self.n);
        let (w, m) = Self::tomb_bit(id);
        self.tombstones.get(w).is_none_or(|&x| x & m == 0)
    }

    /// Number of live (non-tombstoned) records; [`len`](Self::len) keeps
    /// counting physical rows until [`compact`](Self::compact).
    #[inline]
    pub fn live_len(&self) -> usize {
        self.n - self.dead
    }

    /// True iff any record has been tombstoned since the last compaction.
    #[inline]
    pub fn has_tombstones(&self) -> bool {
        self.dead > 0
    }

    /// Iterates the live record ids in ascending physical order.
    pub fn live_ids(&self) -> impl Iterator<Item = RecordId> + '_ {
        (0..self.n as RecordId).filter(|&id| self.is_live(id))
    }

    /// Appends one tuple as a new epoch: [`push`](Self::push) plus a
    /// generation bump. Returns the new record's id — append-only, never
    /// a reused tombstone slot, so ids handed out earlier stay valid.
    pub fn insert(&mut self, to_row: &[u32], po_row: &[u32]) -> RecordId {
        let id = self.n as RecordId;
        self.push(to_row, po_row);
        self.generation += 1;
        id
    }

    /// Retires record `id` into the tombstone bitmap without moving any
    /// coordinate data. Returns `true` (and bumps the generation) iff the
    /// record was live; expiring a tombstone is a no-op reporting `false`.
    pub fn expire(&mut self, id: RecordId) -> bool {
        assert!((id as usize) < self.n, "expire: record {id} out of range");
        let (w, m) = Self::tomb_bit(id);
        if self.tombstones.len() <= w {
            self.tombstones.resize(w + 1, 0);
        }
        if self.tombstones[w] & m != 0 {
            return false;
        }
        self.tombstones[w] |= m;
        self.dead += 1;
        self.generation += 1;
        true
    }

    /// Rewrites the flat blocks densely, dropping tombstoned rows and
    /// renumbering the survivors `0..live_len()`. Returns the surviving
    /// *old* ids in ascending order — survivor `i` of the result is the
    /// new record `i`, so callers translate any ids they kept. Bumps the
    /// generation (compaction invalidates every outstanding id window).
    pub fn compact(&mut self) -> Vec<RecordId> {
        let mut survivors = Vec::with_capacity(self.live_len());
        let (td, pd) = (self.to_dims, self.po_dims);
        let mut w = 0usize;
        for r in 0..self.n {
            if !self.is_live(r as RecordId) {
                continue;
            }
            if w != r {
                self.to.copy_within(r * td..(r + 1) * td, w * td);
                self.po.copy_within(r * pd..(r + 1) * pd, w * pd);
            }
            survivors.push(r as RecordId);
            w += 1;
        }
        self.to.truncate(w * td);
        self.po.truncate(w * pd);
        self.n = w;
        self.dead = 0;
        self.tombstones.clear();
        self.generation += 1;
        survivors
    }
}

/// A zero-copy window over a contiguous record-id range of a
/// [`PointStore`] — what one worker of a sharded skyline run computes on.
///
/// The view hands out sub-slices of the parent's flat TO/PO blocks and
/// keeps **global** record ids, so per-shard results merge without any id
/// translation. Materialize an owned sub-store with
/// [`to_store`](Self::to_store) when an engine needs to own its input
/// (index builds); the view itself never copies.
#[derive(Debug, Clone, Copy)]
pub struct ShardView<'a> {
    store: &'a PointStore,
    start: RecordId,
    end: RecordId,
}

impl<'a> ShardView<'a> {
    /// The parent store.
    #[inline]
    pub fn store(&self) -> &'a PointStore {
        self.store
    }

    /// The global record-id range this shard covers.
    #[inline]
    pub fn range(&self) -> std::ops::Range<RecordId> {
        self.start..self.end
    }

    /// First global record id of the shard.
    #[inline]
    pub fn start(&self) -> RecordId {
        self.start
    }

    /// Number of records in the shard.
    #[inline]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// True iff the shard holds no records (never produced by
    /// [`PointStore::shards`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The shard's window of the flat row-major TO block.
    #[inline]
    pub fn to_block(&self) -> &'a [u32] {
        let d = self.store.to_dims;
        &self.store.to[self.start as usize * d..self.end as usize * d]
    }

    /// The shard's window of the flat row-major PO block.
    #[inline]
    pub fn po_block(&self) -> &'a [u32] {
        let d = self.store.po_dims;
        &self.store.po[self.start as usize * d..self.end as usize * d]
    }

    /// Iterates the shard's global record ids.
    pub fn record_ids(&self) -> impl Iterator<Item = RecordId> {
        self.start..self.end
    }

    /// An owned copy of the shard as a standalone store (records renumbered
    /// `0..len`) — the one deliberate copy, for engines that take ownership
    /// of their input. Translate local ids back with
    /// `local + self.start()`.
    pub fn to_store(&self) -> PointStore {
        PointStore {
            n: self.len(),
            to_dims: self.store.to_dims,
            po_dims: self.store.po_dims,
            to: self.to_block().to_vec(),
            po: self.po_block().to_vec(),
            kernel: self.store.kernel,
            // The copy is a fresh epoch over the shard's physical rows:
            // tombstones do not travel (shard runs are snapshot-level).
            tombstones: Vec::new(),
            dead: 0,
            generation: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dominance;
    use poset::Dag;
    use proptest::prelude::*;

    #[test]
    fn push_and_access() {
        let mut t = PointStore::new(2, 1);
        t.push(&[1, 2], &[0]);
        t.push(&[3, 4], &[5]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.to_row(0), &[1, 2]);
        assert_eq!(t.to(1), &[3, 4]);
        assert_eq!(t.po(1), &[5]);
        assert_eq!((t.to_dims(), t.po_dims()), (2, 1));
        assert_eq!(t.to_block(), &[1, 2, 3, 4]);
        assert_eq!(t.po_block(), &[0, 5]);
    }

    #[test]
    fn from_parts_validates_shape() {
        assert!(PointStore::from_parts(2, 1, vec![1, 2, 3, 4], vec![0, 0]).is_ok());
        assert!(matches!(
            PointStore::from_parts(2, 1, vec![1, 2, 3], vec![0, 0]),
            Err(CoreError::RaggedMatrix { .. })
        ));
        assert!(matches!(
            PointStore::from_parts(2, 1, vec![1, 2, 3, 4], vec![0]),
            Err(CoreError::RaggedMatrix { .. })
        ));
        assert!(matches!(
            PointStore::from_parts(0, 0, vec![], vec![]),
            Err(CoreError::NoDimensions)
        ));
    }

    #[test]
    fn po_only_store() {
        let t = PointStore::from_parts(0, 2, vec![], vec![1, 2, 3, 4]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.po_row(0), &[1, 2]);
        assert!(t.to_row(0).is_empty());
    }

    #[test]
    fn domain_check() {
        let t = PointStore::from_parts(1, 2, vec![5, 6], vec![0, 3, 1, 2]).unwrap();
        assert!(t.check_domains(&[2, 4]).is_ok());
        assert!(matches!(
            t.check_domains(&[2, 3]),
            Err(CoreError::PoValueOutOfRange {
                row: 0,
                dim: 1,
                value: 3,
                domain: 3
            })
        ));
        assert!(matches!(
            t.check_domains(&[2]),
            Err(CoreError::DomainCountMismatch { .. })
        ));
    }

    #[test]
    fn batched_kernel_counts_and_early_exits() {
        let doms = vec![PoDomain::new(Dag::paper_example())];
        for kernel in [Kernel::Scalar, Kernel::Lanes] {
            let mut t = PointStore::new(1, 1).with_kernel(kernel);
            t.push(&[9], &[8]); // dominates nothing relevant
            t.push(&[2], &[2]); // c at cost 2: dominates (3, f)
            t.push(&[0], &[0]); // never reached once a dominator is found
            let (hit, examined) = t.t_dominated_by_any(&doms, &[3], &[5], &[0, 1, 2]);
            assert!(hit, "{kernel:?}");
            assert_eq!(examined, 2, "{kernel:?}: early exit after record two");
            let (miss, examined) = t.t_dominated_by_any(&doms, &[0], &[0], &[0, 1, 2]);
            assert!(!miss, "{kernel:?}: duplicates of record 2 not dominated");
            assert_eq!(examined, 3, "{kernel:?}");
        }
    }

    #[test]
    fn strictness_kernel_handles_equal_rows() {
        for kernel in [Kernel::Scalar, Kernel::Lanes] {
            let mut t = PointStore::new(2, 1).with_kernel(kernel);
            t.push(&[5, 5], &[0]);
            // Equal TO rows dominate only when the PO part was strictly
            // better.
            assert!(!t.to_dominated_with_strictness(&[(0, false)], &[5, 5]).0);
            assert!(t.to_dominated_with_strictness(&[(0, true)], &[5, 5]).0);
            // Strictly better TO needs no PO strictness.
            assert!(t.to_dominated_with_strictness(&[(0, false)], &[6, 5]).0);
            // Worse TO never dominates.
            assert!(!t.to_dominated_with_strictness(&[(0, true)], &[4, 9]).0);
        }
    }

    #[test]
    fn lane_kernel_matches_scalar_past_the_chunk_boundary() {
        // Enough records that the lane path processes whole chunks plus a
        // ragged tail, with a dominator planted inside a middle chunk so the
        // early-exit pair count crosses kernel variants exactly.
        let doms = vec![PoDomain::new(Dag::paper_example())];
        let mut scalar = PointStore::new(2, 1).with_kernel(Kernel::Scalar);
        for i in 0..21u32 {
            let po = if i == 11 { 0 } else { 7 }; // record 11 holds `a`
            scalar.push(&[i % 4 + 1, 3], &[po]);
        }
        let lanes = scalar.clone().with_kernel(Kernel::Lanes);
        let ids: Vec<RecordId> = (0..21).collect();
        for cand in [([1u32, 3], 2u32), ([0, 0], 0), ([4, 3], 7)] {
            let s = scalar.t_dominated_by_any(&doms, &cand.0, &[cand.1], &ids);
            let l = lanes.t_dominated_by_any(&doms, &cand.0, &[cand.1], &ids);
            assert_eq!(s, l, "cand {cand:?}");
        }
    }

    #[test]
    fn shards_partition_the_store() {
        let mut t = PointStore::new(2, 1);
        for i in 0..10u32 {
            t.push(&[i, 10 - i], &[i % 3]);
        }
        for n in [1usize, 2, 3, 4, 7, 10, 15] {
            let views = t.shards(n);
            assert_eq!(views.len(), n.min(10), "n={n}");
            // Contiguous, disjoint, covering, balanced within one record.
            let mut next = 0u32;
            let (mut lo, mut hi) = (usize::MAX, 0usize);
            for v in &views {
                assert_eq!(v.start(), next);
                next = v.range().end;
                lo = lo.min(v.len());
                hi = hi.max(v.len());
                assert_eq!(v.to_block().len(), v.len() * 2);
                assert_eq!(v.po_block().len(), v.len());
                // Zero-copy: the window aliases the parent block.
                assert_eq!(v.to_block().as_ptr(), t.to_row(v.start() as usize).as_ptr());
                // The owned copy round-trips row for row.
                let owned = v.to_store();
                for (local, global) in v.record_ids().enumerate() {
                    assert_eq!(owned.to_row(local), t.to(global));
                    assert_eq!(owned.po_row(local), t.po(global));
                }
            }
            assert_eq!(next, 10);
            assert!(hi - lo <= 1, "n={n}: shard sizes {lo}..{hi}");
        }
        assert!(PointStore::new(1, 0).shards(4).is_empty());
        assert_eq!(t.shards(0).len(), 1, "0 shards clamps to 1");
    }

    #[test]
    fn monotone_score_is_strict_under_dominance() {
        let doms = vec![PoDomain::new(Dag::paper_example())];
        let oracle = Dominance::new(&doms);
        let mut t = PointStore::new(2, 1);
        for a in 0..4u32 {
            for b in 0..4u32 {
                for v in 0..9u32 {
                    t.push(&[a, b], &[v]);
                }
            }
        }
        let n = t.len() as u32;
        for i in 0..n {
            for j in 0..n {
                if oracle.dominates_oracle(t.to(i), t.po(i), t.to(j), t.po(j)) {
                    assert!(
                        t.monotone_score(&doms, i) < t.monotone_score(&doms, j),
                        "dominator must score strictly lower ({i} vs {j})"
                    );
                }
            }
        }
    }

    #[test]
    fn prefix_skyline_sample_is_exact_on_the_prefix() {
        let doms = vec![PoDomain::new(Dag::paper_example())];
        let mut t = PointStore::new(2, 1);
        for i in 0..40u32 {
            t.push(&[(i * 13) % 17, (i * 5) % 11], &[i % 9]);
        }
        // Sample covering everything == the brute-force skyline size.
        let (sampled, k) = t.prefix_skyline_sample(&doms, 1000);
        assert_eq!(sampled, 40);
        assert_eq!(k, crate::dominance::brute_force_po_skyline(&doms, &t).len());
        // A shorter prefix is the exact skyline of that prefix.
        let mut head = PointStore::new(2, 1);
        for i in 0..16usize {
            head.push(t.to_row(i), t.po_row(i));
        }
        let (sampled, k) = t.prefix_skyline_sample(&doms, 16);
        assert_eq!(sampled, 16);
        assert_eq!(
            k,
            crate::dominance::brute_force_po_skyline(&doms, &head).len()
        );
        assert_eq!(PointStore::new(1, 0).prefix_skyline_sample(&[], 64), (0, 0));
    }

    #[test]
    fn epoch_mutation_tracks_generations_and_tombstones() {
        let mut t = PointStore::new(1, 1);
        assert_eq!(t.generation(), 0);
        let a = t.insert(&[1], &[0]);
        let b = t.insert(&[2], &[1]);
        let c = t.insert(&[3], &[2]);
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(t.generation(), 3);
        assert_eq!((t.len(), t.live_len()), (3, 3));
        assert!(!t.has_tombstones());

        assert!(t.expire(b), "first expiry succeeds");
        assert!(!t.expire(b), "double expiry is a no-op");
        assert_eq!(t.generation(), 4, "the no-op did not bump the epoch");
        assert_eq!((t.len(), t.live_len()), (3, 2));
        assert!(t.has_tombstones());
        assert!(t.is_live(a) && !t.is_live(b) && t.is_live(c));
        assert_eq!(t.live_ids().collect::<Vec<_>>(), vec![0, 2]);
        // Physical accessors still address the tombstoned row.
        assert_eq!(t.to(b), &[2]);

        let survivors = t.compact();
        assert_eq!(survivors, vec![0, 2]);
        assert_eq!(t.generation(), 5);
        assert_eq!((t.len(), t.live_len()), (2, 2));
        assert!(!t.has_tombstones());
        assert_eq!(t.to_block(), &[1, 3]);
        assert_eq!(t.po_block(), &[0, 2]);
    }

    #[test]
    fn expire_past_word_boundaries() {
        let mut t = PointStore::new(1, 0);
        for i in 0..130u32 {
            t.insert(&[i], &[]);
        }
        for id in [0u32, 63, 64, 127, 128, 129] {
            assert!(t.expire(id));
        }
        assert_eq!(t.live_len(), 124);
        assert!(!t.is_live(129) && t.is_live(65));
        let survivors = t.compact();
        assert_eq!(survivors.len(), 124);
        assert!(!survivors.contains(&64));
        // New id 0 is old id 1 after compaction.
        assert_eq!(t.to(0), &[1]);
    }

    #[test]
    fn row_hash_is_toolchain_stable() {
        // FNV-1a over the attribute slices: pinned so duplicate-map layout
        // and derived digests survive toolchain bumps.
        assert_eq!(row_hash(&[1, 2], &[3]), row_hash(&[1, 2], &[3]));
        assert_ne!(row_hash(&[1, 2], &[3]), row_hash(&[1, 2], &[4]));
        assert_ne!(row_hash(&[1, 2], &[3]), row_hash(&[1], &[2, 3]));
        assert_eq!(row_hash(&[], &[]), 0x8820_1fb9_60ff_6465);
    }

    proptest! {
        /// Satellite acceptance: for random mixed TO/PO tuples, the batched
        /// kernel agrees with `Dominance::dominates_oracle` on every pair —
        /// including duplicate-tuple non-domination.
        #[test]
        fn batched_kernel_agrees_with_oracle(
            rows in proptest::collection::vec(
                (proptest::collection::vec(0u32..5, 2), 0u32..9), 1..24),
            cand_to in proptest::collection::vec(0u32..5, 2),
            cand_po in 0u32..9,
            dup in proptest::bool::ANY,
        ) {
            let doms = vec![PoDomain::new(Dag::paper_example())];
            let oracle = Dominance::new(&doms);
            let mut store = PointStore::new(2, 1);
            for (to, po) in &rows {
                store.push(to, &[*po]);
            }
            // Optionally make the candidate an exact duplicate of a stored
            // tuple: it must never be reported as dominated by its copy.
            let (cand_to, cand_po) = if dup {
                (store.to(0).to_vec(), store.po(0).to_vec())
            } else {
                (cand_to, vec![cand_po])
            };
            let ids: Vec<RecordId> = (0..store.len() as u32).collect();
            let mut whole_list = Vec::new();
            for kernel in [Kernel::Scalar, Kernel::Lanes] {
                let store = store.clone().with_kernel(kernel);
                // Pairwise agreement (singleton batches).
                for &id in &ids {
                    let (got, examined) =
                        store.t_dominated_by_any(&doms, &cand_to, &cand_po, &[id]);
                    prop_assert_eq!(examined, 1);
                    prop_assert_eq!(
                        got,
                        oracle.dominates_oracle(store.to(id), store.po(id), &cand_to, &cand_po)
                    );
                }
                // Whole-list agreement.
                let (got, examined) =
                    store.t_dominated_by_any(&doms, &cand_to, &cand_po, &ids);
                let expect = ids.iter().any(|&id| {
                    oracle.dominates_oracle(store.to(id), store.po(id), &cand_to, &cand_po)
                });
                prop_assert_eq!(got, expect);
                whole_list.push((got, examined));
                // Strictness kernel agrees with a scalar re-derivation.
                let flagged: Vec<(RecordId, bool)> =
                    ids.iter().map(|&id| (id, id % 3 == 0)).collect();
                let got = store.to_dominated_with_strictness(&flagged, &cand_to);
                let expect_hit = flagged.iter().position(|&(id, strict)| {
                    let row = store.to(id);
                    let le = row.iter().zip(&cand_to).all(|(a, b)| a <= b);
                    let lt = row.iter().zip(&cand_to).any(|(a, b)| a < b);
                    le && (strict || lt)
                });
                let expect = match expect_hit {
                    Some(i) => (true, i as u64 + 1),
                    None => (false, flagged.len() as u64),
                };
                prop_assert_eq!(got, expect, "strictness under {:?}", kernel);
            }
            // Kernel variants agree on the answer AND the examined count.
            prop_assert_eq!(whole_list[0], whole_list[1]);
        }
    }
}

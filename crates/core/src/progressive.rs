use crate::{CostModel, Metrics};
use std::time::Duration;

/// State of a run at the moment one skyline point was emitted — the raw
/// material of the paper's progressiveness study (Fig. 11).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgressSample {
    /// Results emitted so far (including this one).
    pub results: u64,
    /// CPU time elapsed since the run started.
    pub elapsed_cpu: Duration,
    /// Page reads so far.
    pub io_reads: u64,
    /// Dominance checks so far.
    pub dominance_checks: u64,
}

impl ProgressSample {
    /// Simulated elapsed time under the IO-charging model.
    pub fn elapsed_total(&self, model: CostModel) -> Duration {
        self.elapsed_cpu + model.io_cost * (self.io_reads as u32)
    }
}

/// The full emission timeline of a run.
#[derive(Debug, Clone, Default)]
pub struct ProgressLog {
    /// One sample per emitted skyline point, in emission order.
    pub samples: Vec<ProgressSample>,
    /// Metrics at termination.
    pub final_metrics: Metrics,
}

impl ProgressLog {
    /// Simulated time needed to retrieve `frac` of the final result set —
    /// the y-axis of Fig. 11. `frac = 0.0` asks for nothing and costs
    /// [`Duration::ZERO`]; an empty skyline or `frac = 1` returns the
    /// full-run time.
    ///
    /// The function is total: out-of-range fractions are clamped into
    /// `[0, 1]` and `NaN` is treated as `0.0` (asking for nothing), so a
    /// stray division in bench post-processing can never abort a grid run
    /// mid-flight.
    pub fn time_to_fraction(&self, frac: f64, model: CostModel) -> Duration {
        let frac = if frac.is_nan() {
            0.0
        } else {
            frac.clamp(0.0, 1.0)
        };
        if frac == 0.0 {
            return Duration::ZERO;
        }
        if self.samples.is_empty() {
            return model.total_time(&self.final_metrics);
        }
        let needed =
            ((self.samples.len() as f64 * frac).ceil() as usize).clamp(1, self.samples.len());
        if needed == self.samples.len() && frac >= 1.0 {
            return model.total_time(&self.final_metrics);
        }
        self.samples[needed - 1].elapsed_total(model)
    }

    /// Results emitted within the first `frac` of the run's simulated time —
    /// an inverse view of the same curve.
    pub fn results_within(&self, time: Duration, model: CostModel) -> u64 {
        self.samples
            .iter()
            .rev()
            .find(|s| s.elapsed_total(model) <= time)
            .map_or(0, |s| s.results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> ProgressLog {
        let mk = |results, ms, io| ProgressSample {
            results,
            elapsed_cpu: Duration::from_millis(ms),
            io_reads: io,
            dominance_checks: results * 3,
        };
        ProgressLog {
            samples: vec![mk(1, 10, 1), mk(2, 20, 2), mk(3, 30, 3), mk(4, 100, 20)],
            final_metrics: Metrics {
                results: 4,
                io_reads: 25,
                cpu: Duration::from_millis(120),
                ..Default::default()
            },
        }
    }

    #[test]
    fn fraction_lookup() {
        let model = CostModel {
            io_cost: Duration::from_millis(5),
        };
        let l = log();
        // 25% -> first sample: 10ms + 1*5ms.
        assert_eq!(l.time_to_fraction(0.25, model), Duration::from_millis(15));
        // 50% -> second sample: 20 + 10.
        assert_eq!(l.time_to_fraction(0.5, model), Duration::from_millis(30));
        // 100% -> full run: 120 + 125.
        assert_eq!(l.time_to_fraction(1.0, model), Duration::from_millis(245));
    }

    #[test]
    fn inverse_lookup() {
        let model = CostModel {
            io_cost: Duration::from_millis(5),
        };
        let l = log();
        assert_eq!(l.results_within(Duration::from_millis(14), model), 0);
        assert_eq!(l.results_within(Duration::from_millis(31), model), 2);
        assert_eq!(l.results_within(Duration::from_secs(10), model), 4);
    }

    #[test]
    fn zero_fraction_costs_nothing() {
        let model = CostModel {
            io_cost: Duration::from_millis(5),
        };
        // Retrieving 0% of the result set takes no time at all — even on an
        // empty log, where the full-run fallback must not kick in.
        assert_eq!(log().time_to_fraction(0.0, model), Duration::ZERO);
        let empty = ProgressLog {
            samples: vec![],
            final_metrics: Metrics {
                cpu: Duration::from_millis(9),
                ..Default::default()
            },
        };
        assert_eq!(empty.time_to_fraction(0.0, model), Duration::ZERO);
    }

    #[test]
    fn out_of_range_fractions_are_clamped_not_panics() {
        let model = CostModel {
            io_cost: Duration::from_millis(5),
        };
        let l = log();
        // NaN asks for nothing.
        assert_eq!(l.time_to_fraction(f64::NAN, model), Duration::ZERO);
        // Negative clamps to 0, over-unity clamps to the full run.
        assert_eq!(l.time_to_fraction(-0.5, model), Duration::ZERO);
        assert_eq!(l.time_to_fraction(-f64::INFINITY, model), Duration::ZERO);
        assert_eq!(
            l.time_to_fraction(1.5, model),
            l.time_to_fraction(1.0, model)
        );
        assert_eq!(
            l.time_to_fraction(f64::INFINITY, model),
            Duration::from_millis(245)
        );
        // An empty log stays total on garbage input too.
        let empty = ProgressLog::default();
        assert_eq!(empty.time_to_fraction(f64::NAN, model), Duration::ZERO);
        assert_eq!(
            empty.time_to_fraction(7.0, model),
            empty.time_to_fraction(1.0, model)
        );
    }

    #[test]
    fn empty_log_falls_back_to_final() {
        let model = CostModel::default();
        let l = ProgressLog {
            samples: vec![],
            final_metrics: Metrics {
                cpu: Duration::from_millis(7),
                ..Default::default()
            },
        };
        assert_eq!(l.time_to_fraction(0.5, model), Duration::from_millis(7));
    }
}

use std::fmt;

/// Errors raised when assembling skyline inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Flattened matrix length is not `n × dims`.
    RaggedMatrix {
        what: &'static str,
        len: usize,
        n: usize,
        dims: usize,
    },
    /// A PO value id exceeds its domain cardinality.
    PoValueOutOfRange {
        row: usize,
        dim: usize,
        value: u32,
        domain: u32,
    },
    /// Number of DAGs supplied does not match the table's PO dimensionality.
    DomainCountMismatch { dags: usize, po_dims: usize },
    /// A query supplied a partial order over a domain of the wrong size.
    QueryDomainMismatch {
        dim: usize,
        expected: usize,
        got: usize,
    },
    /// The table needs at least one TO or PO dimension.
    NoDimensions,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::RaggedMatrix { what, len, n, dims } => write!(
                f,
                "{what} matrix has {len} entries, expected n×dims = {n}×{dims}"
            ),
            CoreError::PoValueOutOfRange {
                row,
                dim,
                value,
                domain,
            } => write!(
                f,
                "tuple {row}, PO dim {dim}: value id {value} outside domain of {domain} values"
            ),
            CoreError::DomainCountMismatch { dags, po_dims } => {
                write!(f, "{dags} DAG(s) supplied for {po_dims} PO dimension(s)")
            }
            CoreError::QueryDomainMismatch { dim, expected, got } => write!(
                f,
                "query partial order for PO dim {dim} has {got} values, data uses {expected}"
            ),
            CoreError::NoDimensions => write!(f, "table must have at least one dimension"),
        }
    }
}

impl std::error::Error for CoreError {}

/// What went wrong on a shard attempt — the variant half of a
/// [`ShardError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardErrorKind {
    /// The shard job panicked; the payload is the rendered panic message
    /// (`"<non-string panic payload>"` when it is not a string).
    Panicked(String),
    /// The shard's local skyline failed the merge-side minimality
    /// validation: the carried record id is dominated by another local
    /// member, so the local result cannot be a skyline.
    Corrupted(u32),
    /// An out-of-process worker died mid-attempt (nonzero exit, EOF on its
    /// pipe, a truncated frame, or a failed spawn/write); the payload
    /// names the observation.
    WorkerDied(String),
    /// An out-of-process worker blew its attempt deadline and was killed
    /// by the supervisor.
    WorkerTimeout,
    /// A response frame arrived but could not be trusted: checksum
    /// mismatch, undecodable payload, or a decoded record outside the
    /// shard's range; the payload names the defect.
    FrameCorrupted(String),
}

impl ShardErrorKind {
    /// Stable variant name for logs and diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            ShardErrorKind::Panicked(_) => "panicked",
            ShardErrorKind::Corrupted(_) => "corrupted",
            ShardErrorKind::WorkerDied(_) => "worker-died",
            ShardErrorKind::WorkerTimeout => "worker-timeout",
            ShardErrorKind::FrameCorrupted(_) => "frame-corrupted",
        }
    }
}

/// Failures surfaced by the fault-tolerant shard executors
/// ([`ShardExecutor`](crate::parallel::ShardExecutor)): what went wrong on
/// the shard's **final** attempt, after the bounded retry ladder and the
/// scalar-oracle fallback of last resort were both exhausted.
///
/// A `ShardError` escaping [`sharded_skyline`](crate::sharded_skyline)
/// therefore means the shard failed deterministically on every path — a
/// real engine bug, not a transient fault (or crashed worker process).
/// The error is structured — variant, shard index, the shard's global
/// record-id range, attempt — so supervisor logs and test diagnostics
/// name the failing shard instead of a debug blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardError {
    shard: usize,
    attempt: u32,
    range: std::ops::Range<u32>,
    kind: ShardErrorKind,
}

impl ShardError {
    /// An error of arbitrary kind. The range defaults to empty (unknown);
    /// executors that know the shard's record span attach it with
    /// [`with_range`](Self::with_range).
    pub fn new(shard: usize, attempt: u32, kind: ShardErrorKind) -> ShardError {
        ShardError {
            shard,
            attempt,
            range: 0..0,
            kind,
        }
    }

    /// A panicked attempt with the rendered panic payload.
    pub fn panicked(shard: usize, attempt: u32, message: impl Into<String>) -> ShardError {
        ShardError::new(shard, attempt, ShardErrorKind::Panicked(message.into()))
    }

    /// A corrupted local skyline, proven by the dominated `offender`.
    pub fn corrupted(shard: usize, attempt: u32, offender: u32) -> ShardError {
        ShardError::new(shard, attempt, ShardErrorKind::Corrupted(offender))
    }

    /// A dead worker process, with the observation that revealed it.
    pub fn worker_died(shard: usize, attempt: u32, detail: impl Into<String>) -> ShardError {
        ShardError::new(shard, attempt, ShardErrorKind::WorkerDied(detail.into()))
    }

    /// A worker killed for blowing its attempt deadline.
    pub fn worker_timeout(shard: usize, attempt: u32) -> ShardError {
        ShardError::new(shard, attempt, ShardErrorKind::WorkerTimeout)
    }

    /// An untrustworthy response frame, with the defect that condemned it.
    pub fn frame_corrupted(shard: usize, attempt: u32, detail: impl Into<String>) -> ShardError {
        ShardError::new(
            shard,
            attempt,
            ShardErrorKind::FrameCorrupted(detail.into()),
        )
    }

    /// Attaches the shard's global record-id range.
    pub fn with_range(mut self, range: std::ops::Range<u32>) -> ShardError {
        self.range = range;
        self
    }

    /// The shard the error originated on.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Zero-based attempt the failure was observed on (the scalar-oracle
    /// fallback attempt is `retries + 1`).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The global record-id range the shard covers (empty when the
    /// reporting executor did not know it).
    pub fn range(&self) -> std::ops::Range<u32> {
        self.range.clone()
    }

    /// The failure variant.
    pub fn kind(&self) -> &ShardErrorKind {
        &self.kind
    }
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {}", self.shard)?;
        if !self.range.is_empty() {
            write!(f, " [{}..{})", self.range.start, self.range.end)?;
        }
        write!(f, " attempt {}: {}", self.attempt, self.kind.name())?;
        match &self.kind {
            ShardErrorKind::Panicked(msg) => write!(f, ": {msg}"),
            ShardErrorKind::Corrupted(offender) => write!(
                f,
                ": record {offender} is dominated by another local member"
            ),
            ShardErrorKind::WorkerDied(detail) => write!(f, ": {detail}"),
            ShardErrorKind::WorkerTimeout => Ok(()),
            ShardErrorKind::FrameCorrupted(detail) => write!(f, ": {detail}"),
        }
    }
}

impl std::error::Error for ShardError {}

#[cfg(test)]
mod shard_error_tests {
    use super::*;

    #[test]
    fn display_names_variant_range_and_attempt() {
        let e = ShardError::panicked(3, 2, "boom").with_range(30..60);
        let s = e.to_string();
        assert!(s.contains("shard 3"), "{s}");
        assert!(s.contains("[30..60)"), "{s}");
        assert!(s.contains("attempt 2"), "{s}");
        assert!(s.contains("panicked"), "{s}");
        assert!(s.contains("boom"), "{s}");
    }

    #[test]
    fn empty_range_is_omitted() {
        let e = ShardError::worker_timeout(1, 0);
        let s = e.to_string();
        assert_eq!(s, "shard 1 attempt 0: worker-timeout");
        assert!(ShardError::worker_died(0, 4, "EOF")
            .to_string()
            .contains("worker-died: EOF"));
        assert!(ShardError::frame_corrupted(0, 1, "checksum mismatch")
            .to_string()
            .contains("frame-corrupted: checksum mismatch"));
        assert!(ShardError::corrupted(2, 1, 17)
            .to_string()
            .contains("record 17"));
    }
}

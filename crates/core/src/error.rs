use std::fmt;

/// Errors raised when assembling skyline inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Flattened matrix length is not `n × dims`.
    RaggedMatrix {
        what: &'static str,
        len: usize,
        n: usize,
        dims: usize,
    },
    /// A PO value id exceeds its domain cardinality.
    PoValueOutOfRange {
        row: usize,
        dim: usize,
        value: u32,
        domain: u32,
    },
    /// Number of DAGs supplied does not match the table's PO dimensionality.
    DomainCountMismatch { dags: usize, po_dims: usize },
    /// A query supplied a partial order over a domain of the wrong size.
    QueryDomainMismatch {
        dim: usize,
        expected: usize,
        got: usize,
    },
    /// The table needs at least one TO or PO dimension.
    NoDimensions,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::RaggedMatrix { what, len, n, dims } => write!(
                f,
                "{what} matrix has {len} entries, expected n×dims = {n}×{dims}"
            ),
            CoreError::PoValueOutOfRange {
                row,
                dim,
                value,
                domain,
            } => write!(
                f,
                "tuple {row}, PO dim {dim}: value id {value} outside domain of {domain} values"
            ),
            CoreError::DomainCountMismatch { dags, po_dims } => {
                write!(f, "{dags} DAG(s) supplied for {po_dims} PO dimension(s)")
            }
            CoreError::QueryDomainMismatch { dim, expected, got } => write!(
                f,
                "query partial order for PO dim {dim} has {got} values, data uses {expected}"
            ),
            CoreError::NoDimensions => write!(f, "table must have at least one dimension"),
        }
    }
}

impl std::error::Error for CoreError {}

use std::fmt;

/// Errors raised when assembling skyline inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Flattened matrix length is not `n × dims`.
    RaggedMatrix {
        what: &'static str,
        len: usize,
        n: usize,
        dims: usize,
    },
    /// A PO value id exceeds its domain cardinality.
    PoValueOutOfRange {
        row: usize,
        dim: usize,
        value: u32,
        domain: u32,
    },
    /// Number of DAGs supplied does not match the table's PO dimensionality.
    DomainCountMismatch { dags: usize, po_dims: usize },
    /// A query supplied a partial order over a domain of the wrong size.
    QueryDomainMismatch {
        dim: usize,
        expected: usize,
        got: usize,
    },
    /// The table needs at least one TO or PO dimension.
    NoDimensions,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::RaggedMatrix { what, len, n, dims } => write!(
                f,
                "{what} matrix has {len} entries, expected n×dims = {n}×{dims}"
            ),
            CoreError::PoValueOutOfRange {
                row,
                dim,
                value,
                domain,
            } => write!(
                f,
                "tuple {row}, PO dim {dim}: value id {value} outside domain of {domain} values"
            ),
            CoreError::DomainCountMismatch { dags, po_dims } => {
                write!(f, "{dags} DAG(s) supplied for {po_dims} PO dimension(s)")
            }
            CoreError::QueryDomainMismatch { dim, expected, got } => write!(
                f,
                "query partial order for PO dim {dim} has {got} values, data uses {expected}"
            ),
            CoreError::NoDimensions => write!(f, "table must have at least one dimension"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Failures surfaced by the fault-tolerant shard executor
/// ([`ShardExecutor`](crate::parallel::ShardExecutor)): what went wrong on
/// the shard's **final** attempt, after the bounded retry ladder and the
/// scalar-oracle fallback of last resort were both exhausted.
///
/// A `ShardError` escaping [`sharded_skyline`](crate::sharded_skyline)
/// therefore means the shard failed deterministically on every path — a
/// real engine bug, not a transient fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The shard job panicked; `message` is the rendered panic payload of
    /// the failing attempt.
    Panicked {
        /// Index of the failing shard.
        shard: usize,
        /// Zero-based attempt the failure was observed on (the fallback
        /// attempt is `retries + 1`).
        attempt: u32,
        /// Rendered panic payload (`"<non-string panic payload>"` when the
        /// payload is not a string).
        message: String,
    },
    /// The shard's local skyline failed the merge-side minimality
    /// validation: `offender` is dominated by another local member, so the
    /// local result cannot be a skyline.
    Corrupted {
        /// Index of the failing shard.
        shard: usize,
        /// Zero-based attempt the corruption was detected on.
        attempt: u32,
        /// The dominated record id that proves the corruption.
        offender: u32,
    },
}

impl ShardError {
    /// The shard the error originated on.
    pub fn shard(&self) -> usize {
        match self {
            ShardError::Panicked { shard, .. } | ShardError::Corrupted { shard, .. } => *shard,
        }
    }
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Panicked {
                shard,
                attempt,
                message,
            } => write!(f, "shard {shard} panicked on attempt {attempt}: {message}"),
            ShardError::Corrupted {
                shard,
                attempt,
                offender,
            } => write!(
                f,
                "shard {shard} produced a corrupt local skyline on attempt {attempt}: \
                 record {offender} is dominated by another local member"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

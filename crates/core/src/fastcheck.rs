//! The main-memory R-tree fast t-dominance check of §IV-B / §V-A.
//!
//! Every discovered skyline point is expanded into *virtual points* in the
//! space `TO × (I1, I2)^|PO|`: one per combination of its interval-label
//! runs across the PO dimensions. A candidate is then checked with Boolean
//! range queries — "is there any virtual point at least as good as this
//! corner that covers this interval?" — which the R-tree answers with early
//! exit, without scanning the skyline list.
//!
//! # Why the point check is exact
//!
//! For a *candidate point* with PO values `v_d`, domination by the skyline
//! is equivalent to one Boolean query on the degenerate runs
//! `[post(v_d), post(v_d)]`: a virtual point matching
//! `I1 <= post(v_d) <= I2` carries an interval containing `post(v_d)`,
//! i.e. its owner reaches `v_d`, hence t-prefers `v_d` outright (its
//! interval set covers the whole reachable set of `v_d`). Conversely a
//! dominating skyline point obviously matches. One query per candidate,
//! instead of the paper's one per candidate interval — strictly cheaper and
//! still exact.
//!
//! For an *MBB* with merged run set `R_d` per PO dimension, we issue one
//! query per combination of runs in `∏ R_d`. If every combination is
//! covered, each value combination `(v_1 … v_k)` inside the MBB's ordinal
//! ranges is dominated: the combination of runs containing the own posts
//! `post(v_d)` is covered by some single virtual point whose owner then
//! reaches every `v_d`. Pruning is therefore sound; it errs (conservatively)
//! only by demanding a single owner per combination.
//!
//! # Duplicates
//!
//! A Boolean query with closed bounds also matches a virtual point of an
//! *identical* tuple, which must not count as a dominator under
//! duplicates-survive semantics. [`Stss`](crate::Stss) guards point checks
//! with an exact-key set; MBB pruning keeps the closed bound (coalescing
//! exact duplicates of skyline points, like every published BBS variant —
//! DESIGN.md §1.2).

use crate::PoDomain;
use poset::IntervalSet;
use rtree::RTree;

/// Index of skyline virtual points supporting Boolean-range t-dominance
/// checks (the `Tm` tree of the paper).
#[derive(Debug)]
pub struct VirtualPointIndex {
    to_dims: usize,
    po_dims: usize,
    /// Per PO dimension: the largest post number (= domain cardinality).
    max_post: Vec<u32>,
    tree: RTree,
    virtual_points: usize,
}

impl VirtualPointIndex {
    /// An empty index over `to_dims` TO dimensions and the given PO domains.
    pub fn new(to_dims: usize, domains: &[PoDomain], node_capacity: usize) -> Self {
        let po_dims = domains.len();
        let dims = to_dims + 2 * po_dims;
        VirtualPointIndex {
            to_dims,
            po_dims,
            max_post: domains.iter().map(|d| d.len() as u32).collect(),
            tree: RTree::new(dims.max(1), node_capacity),
            virtual_points: 0,
        }
    }

    /// Number of virtual points stored.
    #[inline]
    pub fn virtual_count(&self) -> usize {
        self.virtual_points
    }

    /// Inserts a skyline point: its TO coordinates plus one interval set per
    /// PO dimension (the labels of its values). Generates the cross-product
    /// of runs as virtual points.
    pub fn insert(&mut self, to: &[u32], interval_sets: &[&IntervalSet], record: u32) {
        debug_assert_eq!(to.len(), self.to_dims);
        debug_assert_eq!(interval_sets.len(), self.po_dims);
        let mut coords = vec![0u32; self.to_dims + 2 * self.po_dims];
        coords[..self.to_dims].copy_from_slice(to);
        let mut combo = vec![0usize; self.po_dims];
        loop {
            for (d, &set) in interval_sets.iter().enumerate() {
                let iv = set.intervals()[combo[d]];
                coords[self.to_dims + 2 * d] = iv.lo;
                coords[self.to_dims + 2 * d + 1] = iv.hi;
            }
            self.tree.insert(&coords, record);
            self.virtual_points += 1;
            // Advance the mixed-radix combination counter.
            let mut d = 0;
            loop {
                if d == self.po_dims {
                    return;
                }
                combo[d] += 1;
                if combo[d] < interval_sets[d].len() {
                    break;
                }
                combo[d] = 0;
                d += 1;
            }
        }
    }

    /// Exact point check: is a candidate with TO coordinates `to` and PO
    /// values whose posts are `posts` dominated-or-equalled by some stored
    /// skyline point? One Boolean query. Returns `(answer, queries_issued)`.
    ///
    /// "Equalled" matters: an exact duplicate of a skyline point also
    /// matches; the caller must screen duplicates first (see module docs).
    pub fn covers_value(&self, to: &[u32], posts: &[u32]) -> (bool, u64) {
        let (lo, hi) = self.query_box(to, posts.iter().map(|&p| (p, p)));
        (self.tree.range_nonempty(&lo, &hi), 1)
    }

    /// Sound MBB check: `run_sets[d]` is the merged interval set of the
    /// MBB's ordinal range on PO dimension `d`; `to` is the MBB's lower
    /// corner on the TO dimensions. Returns `(prunable, queries_issued)`.
    pub fn covers_runs(&self, to: &[u32], run_sets: &[&IntervalSet]) -> (bool, u64) {
        debug_assert_eq!(run_sets.len(), self.po_dims);
        if run_sets.iter().any(|s| s.is_empty()) {
            return (false, 0);
        }
        let mut combo = vec![0usize; self.po_dims];
        let mut queries = 0u64;
        loop {
            let runs = combo
                .iter()
                .zip(run_sets.iter())
                .map(|(&i, set)| {
                    let iv = set.intervals()[i];
                    (iv.lo, iv.hi)
                })
                .collect::<Vec<_>>();
            let (lo, hi) = self.query_box(to, runs.into_iter());
            queries += 1;
            if !self.tree.range_nonempty(&lo, &hi) {
                return (false, queries);
            }
            let mut d = 0;
            loop {
                if d == self.po_dims {
                    return (true, queries);
                }
                combo[d] += 1;
                if combo[d] < run_sets[d].len() {
                    break;
                }
                combo[d] = 0;
                d += 1;
            }
        }
    }

    /// Builds the Boolean query box: TO dims `[0, to_d]`; per PO dim
    /// `I1 ∈ [0, run.lo]`, `I2 ∈ [run.hi, max_post]`.
    fn query_box(
        &self,
        to: &[u32],
        runs: impl Iterator<Item = (u32, u32)>,
    ) -> (Vec<u32>, Vec<u32>) {
        let dims = self.to_dims + 2 * self.po_dims;
        let mut lo = vec![0u32; dims];
        let mut hi = vec![0u32; dims];
        hi[..self.to_dims].copy_from_slice(to);
        for (d, (run_lo, run_hi)) in runs.enumerate() {
            // I1 <= run.lo
            hi[self.to_dims + 2 * d] = run_lo;
            // run.hi <= I2 <= max_post
            lo[self.to_dims + 2 * d + 1] = run_hi;
            hi[self.to_dims + 2 * d + 1] = self.max_post[d];
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poset::{Dag, SpanningTree, TssLabeling};

    fn paper_setup() -> (Dag, Vec<PoDomain>, TssLabeling) {
        // Use the paper's hand-drawn spanning tree so the Fig. 2(d)/Fig. 4
        // interval values come out verbatim.
        let dag = Dag::paper_example();
        let lab = TssLabeling::build(&dag, SpanningTree::paper_example(&dag));
        let dom = PoDomain::with_tree(dag.clone(), SpanningTree::paper_example(&dag));
        (dag, vec![dom], lab)
    }

    #[test]
    fn fig4_walkthrough() {
        // §IV-B: skyline p1 = (2, c) with interval [1,5]; MBB N4 spans f..g
        // with merged runs {[1,1],[3,5]}; both queries hit p1 -> prune.
        let (dag, doms, _) = paper_setup();
        let mut vpi = VirtualPointIndex::new(1, &doms, 8);
        let c = dag.id_of("c").unwrap().0;
        vpi.insert(&[2], &[doms[0].intervals(c)], 1);
        assert_eq!(vpi.virtual_count(), 1);

        let lo_f = doms[0].ordinal(dag.id_of("f").unwrap().0);
        let hi_g = doms[0].ordinal(dag.id_of("g").unwrap().0);
        let runs = doms[0].range_intervals(lo_f, hi_g);
        assert_eq!(runs.to_string(), "{[1,1] [3,5]}");
        let (pruned, queries) = vpi.covers_runs(&[2], &[&runs]);
        assert!(pruned, "N4 must be t-dominated by p1");
        assert_eq!(queries, 2, "one Boolean query per run");
        // With a smaller A1 bound than p1's, no pruning.
        let (pruned, _) = vpi.covers_runs(&[1], &[&runs]);
        assert!(!pruned);
    }

    #[test]
    fn point_check_single_query_is_exact() {
        let (dag, doms, lab) = paper_setup();
        // Build the skyline {p1=(2,c), p2=(3,d)} as in Table II.
        let mut vpi = VirtualPointIndex::new(1, &doms, 8);
        for (to, label, rec) in [(2u32, "c", 1u32), (3, "d", 2)] {
            let v = dag.id_of(label).unwrap().0;
            vpi.insert(&[to], &[doms[0].intervals(v)], rec);
        }
        // Every pair (to, value): the query must equal the list-based truth.
        for to in 0u32..6 {
            for v in dag.values() {
                let posts = [lab.post(v)];
                let (got, q) = vpi.covers_value(&[to], &posts);
                assert_eq!(q, 1);
                let c = dag.id_of("c").unwrap();
                let d = dag.id_of("d").unwrap();
                let expect = (2 <= to && lab.t_pref_or_equal(c, v))
                    || (3 <= to && lab.t_pref_or_equal(d, v));
                assert_eq!(got, expect, "to={to}, v={}", dag.label(v));
            }
        }
    }

    #[test]
    fn multi_po_dimension_cross_product() {
        // Two copies of the paper domain; a skyline point with value f on
        // both dims has 2x2 = 4 virtual points ({[1,1],[3,3]} each).
        let dag = Dag::paper_example();
        let doms = vec![PoDomain::new(dag.clone()), PoDomain::new(dag.clone())];
        let f = dag.id_of("f").unwrap().0;
        let h = dag.id_of("h").unwrap().0;
        let a = dag.id_of("a").unwrap().0;
        let mut vpi = VirtualPointIndex::new(1, &doms, 8);
        vpi.insert(&[5], &[doms[0].intervals(f), doms[1].intervals(f)], 0);
        assert_eq!(vpi.virtual_count(), 4);
        let lab = doms[0].labeling();
        let post = |raw: u32| lab.post(poset::ValueId(raw));
        // (h, h) is reached by (f, f): dominated.
        assert!(vpi.covers_value(&[5], &[post(h), post(h)]).0);
        // (h, a): second dim not reached by f: not dominated.
        assert!(!vpi.covers_value(&[5], &[post(h), post(a)]).0);
        // Better TO bound excludes the skyline point.
        assert!(!vpi.covers_value(&[4], &[post(h), post(h)]).0);
    }

    #[test]
    fn empty_index_covers_nothing() {
        let (_, doms, _) = paper_setup();
        let vpi = VirtualPointIndex::new(2, &doms, 8);
        assert!(!vpi.covers_value(&[9, 9], &[3]).0);
        let set = doms[0].range_intervals(1, 9);
        assert!(!vpi.covers_runs(&[9, 9], &[&set]).0);
    }
}

//! **sTSS** — the static TSS skyline algorithm of §IV.
//!
//! Build phase: each PO attribute is topologically sorted; tuples are mapped
//! into `TO × A_TO^|PO|` (original TO coordinates plus one ordinal per PO
//! attribute) and STR-bulk-loaded into a disk-style R-tree.
//!
//! Query phase: a BBS-style best-first traversal by L1 mindist. Precedence
//! holds because dominance implies a strictly smaller mindist (ordinals
//! extend the partial orders; ties only between exact duplicates, which do
//! not dominate). Every check uses the exact interval labels, so a point
//! that survives is immediately — and permanently — a skyline point:
//! optimal progressiveness.

use crate::cursor::{SkylineCursor, SkylineEngine};
use crate::progressive::{ProgressLog, ProgressSample};
use crate::store::RecordId;
use crate::{CoreError, Metrics, PoDomain, Table, VirtualPointIndex};
use poset::{Dag, FullRangeIndex, IntervalSet};
use rtree::{BestFirst, Mbb, PageConfig, Popped, RTree};
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// How the merged interval set of an MBB's ordinal range is obtained —
/// the space/time trade-off of §IV-B's first optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RangeStrategy {
    /// Merge the per-value sets on the fly: `O(|range|)` time, no space.
    Naive,
    /// Precomputed dyadic ranges: `O(log |range|)` time, linear space — the
    /// paper's recommended middle ground (default).
    #[default]
    Dyadic,
    /// Precompute *every* range in a table: `O(1)` time, quadratic space —
    /// the paper's first, discarded-for-space solution, kept for ablations.
    Full,
}

/// Tuning knobs for [`Stss`]. The defaults reproduce the configuration the
/// paper benchmarks ("for fairness we implement TSS without the main memory
/// R-tree optimization"): dyadic range index on, fast check off,
/// single-dominator MBB checks.
#[derive(Debug, Clone, Copy)]
pub struct StssConfig {
    /// Page model used to derive the node capacity.
    pub page: PageConfig,
    /// Explicit node capacity override (else derived from `page`).
    pub node_capacity: Option<usize>,
    /// Range-set lookup strategy for MBB checks (§IV-B first optimization).
    pub range_strategy: RangeStrategy,
    /// Use the main-memory virtual-point R-tree for dominance checks
    /// (§IV-B second optimization). Off = scan the skyline list.
    pub fast_check: bool,
    /// MBB pruning flavor when `fast_check` is off: `false` = the paper's
    /// single-dominator check (one skyline point must cover every run);
    /// `true` = allow different skyline points to cover different run
    /// combinations (strictly more pruning, still sound).
    pub multi_cover_mbb: bool,
    /// Optional LRU page buffer (in pages) on the disk R-tree — the paper's
    /// "IO cost can be mitigated using buffers" remark; `None` (default)
    /// matches the paper's no-buffer benchmark setting.
    pub buffer_pages: Option<usize>,
    /// Parallel stratum-evaluation mode: `0` (default) keeps the classic
    /// serial traversal; `>= 1` switches the cursor to frozen-stratum
    /// batched evaluation with up to that many worker threads.
    ///
    /// A *stratum* is the maximal run of heap entries sharing one mindist.
    /// Precedence guarantees entries of a stratum cannot dominate (or
    /// prune) each other, so each batch is checked against the skyline
    /// *frozen at batch start* — concurrently, but with outcomes and
    /// counts that depend only on the batch partition, never on the worker
    /// count: `eval_threads = 1` and `eval_threads = 8` produce the
    /// identical emission sequence and identical metrics. (The batched
    /// counts can be *lower* than serial mode's, which also scans
    /// same-stratum confirmations that can never dominate.)
    ///
    /// Ignored when [`fast_check`](Self::fast_check) is on — the
    /// virtual-point index mutates at each confirmation, so that
    /// configuration stays on the serial path.
    pub eval_threads: usize,
}

impl Default for StssConfig {
    fn default() -> Self {
        StssConfig {
            page: PageConfig::default(),
            node_capacity: None,
            range_strategy: RangeStrategy::Dyadic,
            fast_check: false,
            multi_cover_mbb: false,
            buffer_pages: None,
            eval_threads: 0,
        }
    }
}

/// One skyline result: the record index plus its attribute values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkylinePoint {
    /// Row index into the input [`Table`].
    pub record: u32,
    /// TO coordinates.
    pub to: Vec<u32>,
    /// PO value ids.
    pub po: Vec<u32>,
}

/// The sTSS operator: an immutable index over a table, runnable any number
/// of times.
#[derive(Debug)]
pub struct Stss {
    table: Table,
    domains: Vec<PoDomain>,
    tree: RTree,
    cfg: StssConfig,
    /// Quadratic-space range tables, built only under
    /// [`RangeStrategy::Full`].
    full_ranges: Option<Vec<FullRangeIndex>>,
}

/// Result of a full [`Stss::run`].
#[derive(Debug, Clone)]
pub struct StssRun {
    /// Skyline points in emission (mindist) order.
    pub skyline: Vec<SkylinePoint>,
    /// Execution metrics.
    pub metrics: Metrics,
}

impl StssRun {
    /// Record indices of the skyline, in emission order.
    pub fn skyline_records(&self) -> Vec<u32> {
        self.skyline.iter().map(|p| p.record).collect()
    }
}

impl Stss {
    /// Builds the operator: validates the table against the DAGs, labels
    /// every domain, maps tuples to the transformed space and bulk-loads the
    /// R-tree.
    pub fn build(table: Table, dags: Vec<Dag>, cfg: StssConfig) -> Result<Self, CoreError> {
        if dags.len() != table.po_dims() {
            return Err(CoreError::DomainCountMismatch {
                dags: dags.len(),
                po_dims: table.po_dims(),
            });
        }
        let sizes: Vec<u32> = dags.iter().map(|d| d.len() as u32).collect();
        table.check_domains(&sizes)?;
        let domains: Vec<PoDomain> = dags.into_iter().map(PoDomain::new).collect();
        let dims = table.to_dims() + table.po_dims();
        if dims == 0 {
            return Err(CoreError::NoDimensions);
        }
        let cap = cfg.node_capacity.unwrap_or_else(|| cfg.page.capacity(dims));
        // Transformed coordinates, materialized columnar: TO values then one
        // topological ordinal per PO attribute — no per-point rows.
        let mut coords = Vec::with_capacity(table.len() * dims);
        for i in 0..table.len() {
            coords.extend_from_slice(table.to_row(i));
            for (dom, &v) in domains.iter().zip(table.po_row(i)) {
                coords.push(dom.ordinal(v));
            }
        }
        let ids: Vec<u32> = (0..table.len() as u32).collect();
        let mut tree = RTree::bulk_load_flat(dims, cap, &coords, &ids);
        if let Some(pages) = cfg.buffer_pages {
            tree.enable_buffer(pages);
        }
        let full_ranges = Self::build_full_ranges(&domains, cfg);
        Ok(Stss {
            table,
            domains,
            tree,
            cfg,
            full_ranges,
        })
    }

    fn build_full_ranges(domains: &[PoDomain], cfg: StssConfig) -> Option<Vec<FullRangeIndex>> {
        (cfg.range_strategy == RangeStrategy::Full).then(|| {
            domains
                .iter()
                .map(|d| FullRangeIndex::build(d.labeling()))
                .collect()
        })
    }

    /// Builds over an explicitly structured tree (tests reproducing the
    /// paper's hand-drawn Fig. 3 index).
    pub fn with_tree(
        table: Table,
        dags: Vec<Dag>,
        tree: RTree,
        cfg: StssConfig,
    ) -> Result<Self, CoreError> {
        if dags.len() != table.po_dims() {
            return Err(CoreError::DomainCountMismatch {
                dags: dags.len(),
                po_dims: table.po_dims(),
            });
        }
        let sizes: Vec<u32> = dags.iter().map(|d| d.len() as u32).collect();
        table.check_domains(&sizes)?;
        let domains: Vec<PoDomain> = dags.into_iter().map(PoDomain::new).collect();
        let full_ranges = Self::build_full_ranges(&domains, cfg);
        Ok(Stss {
            table,
            domains,
            tree,
            cfg,
            full_ranges,
        })
    }

    /// The input table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The precomputed PO domains.
    pub fn domains(&self) -> &[PoDomain] {
        &self.domains
    }

    /// The disk R-tree in the transformed space.
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// Opens a pull-based cursor over a fresh traversal: skyline points are
    /// confirmed lazily, one [`StssCursor::next`] call at a time.
    ///
    /// Pulling a `k`-prefix and dropping the cursor leaves the unexpanded
    /// subtrees unread, so top-k consumption performs strictly fewer page
    /// accesses than a full run. The tree's IO counter is shared, so open
    /// one cursor at a time if the per-run IO metrics matter.
    pub fn cursor(&self) -> StssCursor<'_> {
        StssCursor::new(self)
    }

    /// Full run: collects the skyline and metrics.
    pub fn run(&self) -> StssRun {
        let mut c = self.cursor();
        let mut skyline = Vec::new();
        while let Some(p) = c.next() {
            skyline.push(p);
        }
        StssRun {
            skyline,
            metrics: c.metrics(),
        }
    }

    /// Budgeted run: confirms points until the skyline completes or the
    /// pair-check allowance runs out — the remaining allowance always
    /// buys a *sound confirmed prefix* of the exact skyline (see
    /// [`BudgetedCursor`](crate::BudgetedCursor)).
    pub fn run_budgeted(&self, budget: crate::Budget) -> crate::BudgetOutcome {
        crate::BudgetedCursor::run(self.cursor(), budget)
    }

    /// Full run that also records the emission timeline for progressiveness
    /// studies (Fig. 11).
    pub fn run_progressive(&self) -> (StssRun, ProgressLog) {
        let mut c = self.cursor();
        let mut skyline = Vec::new();
        let mut samples = Vec::new();
        while let Some(p) = c.next() {
            samples.push(c.progress());
            skyline.push(p);
        }
        let metrics = c.metrics();
        (
            StssRun { skyline, metrics },
            ProgressLog {
                samples,
                final_metrics: metrics,
            },
        )
    }

    /// Streaming run: `emit` fires the instant a skyline point is confirmed
    /// (optimal progressiveness), with a snapshot of the run state.
    pub fn run_with(&self, mut emit: impl FnMut(&SkylinePoint, ProgressSample)) -> Metrics {
        let mut c = self.cursor();
        while let Some(p) = c.next() {
            emit(&p, c.progress());
        }
        c.metrics()
    }

    /// The thread-shareable context of the dominance checks: everything a
    /// worker needs except the (interior-mutable, hence single-threaded)
    /// disk R-tree and virtual-point index.
    fn checks(&self) -> StssChecks<'_> {
        StssChecks {
            table: &self.table,
            domains: &self.domains,
            cfg: self.cfg,
            full_ranges: self.full_ranges.as_deref(),
        }
    }
}

/// The pure-data slice of an [`Stss`] operator that dominance checks run
/// on. `Copy` and `Sync`: the frozen-stratum parallel mode hands one to
/// every worker thread.
#[derive(Clone, Copy)]
struct StssChecks<'a> {
    table: &'a Table,
    domains: &'a [PoDomain],
    cfg: StssConfig,
    full_ranges: Option<&'a [FullRangeIndex]>,
}

impl StssChecks<'_> {
    /// Is the candidate point t-dominated by the current skyline (given as
    /// record ids; attribute values are fetched from the store)?
    ///
    /// `posts` is caller-owned scratch for the fast-check path's folded
    /// post coordinates — reused across candidates so the probe really
    /// allocates nothing; the scan path never touches it.
    #[allow(clippy::too_many_arguments)]
    fn point_dominated(
        &self,
        to: &[u32],
        po: &[u32],
        skyline: &[RecordId],
        vpi: Option<&VirtualPointIndex>,
        keys: &HashMap<u64, Vec<RecordId>>,
        posts: &mut Vec<u32>,
        m: &mut Metrics,
    ) -> bool {
        if let Some(vpi) = vpi {
            // Exact duplicates of skyline points are never dominated. The
            // key set is a row-hash multimap resolved against the store, so
            // the per-candidate probe allocates nothing.
            if let Some(cands) = keys.get(&crate::store::row_hash(to, po)) {
                if cands
                    .iter()
                    .any(|&r| self.table.to(r) == to && self.table.po(r) == po)
                {
                    return false;
                }
            }
            posts.clear();
            posts.extend(
                po.iter()
                    .enumerate()
                    .map(|(d, &v)| self.domains[d].labeling().post(poset::ValueId(v))),
            );
            let (hit, queries) = vpi.covers_value(to, posts);
            m.dominance_checks += queries;
            return hit;
        }
        let (hit, examined) = self.table.t_dominated_by_any(self.domains, to, po, skyline);
        m.batch(examined);
        hit
    }

    /// Can the whole MBB be pruned?
    fn mbb_dominated(
        &self,
        mbb: &Mbb,
        skyline: &[u32],
        vpi: Option<&VirtualPointIndex>,
        m: &mut Metrics,
    ) -> bool {
        if skyline.is_empty() && vpi.is_none() {
            return false;
        }
        let to_dims = self.table.to_dims();
        let to_min = &mbb.lo()[..to_dims];
        // Merged interval sets of the MBB's ordinal ranges, per PO dim.
        let run_sets: Vec<IntervalSet> = (0..self.domains.len())
            .map(|d| {
                let lo = mbb.lo()[to_dims + d];
                let hi = mbb.hi()[to_dims + d];
                match self.cfg.range_strategy {
                    RangeStrategy::Naive => self.domains[d].labeling().range_intervals(lo, hi),
                    RangeStrategy::Dyadic => self.domains[d].range_intervals(lo, hi),
                    RangeStrategy::Full => self
                        .full_ranges
                        .as_ref()
                        .expect("built under RangeStrategy::Full")[d]
                        .range(lo, hi)
                        .clone(),
                }
            })
            .collect();
        if let Some(vpi) = vpi {
            let refs: Vec<&IntervalSet> = run_sets.iter().collect();
            let (hit, queries) = vpi.covers_runs(to_min, &refs);
            m.dominance_checks += queries;
            return hit;
        }
        if self.cfg.multi_cover_mbb {
            return self.mbb_multi_cover(to_min, &run_sets, skyline, m);
        }
        // Paper-faithful single-dominator check: one skyline point must be
        // at least as good on every TO dim and cover every run on every PO
        // dim (§IV-A step 7).
        'outer: for &r in skyline {
            m.dominance_checks += 1;
            let s_to = self.table.to_row(r as usize);
            let s_po = self.table.po_row(r as usize);
            if s_to.iter().zip(to_min.iter()).any(|(sv, mv)| sv > mv) {
                continue;
            }
            for (d, runs) in run_sets.iter().enumerate() {
                if !self.domains[d].intervals(s_po[d]).covers_set(runs) {
                    continue 'outer;
                }
            }
            return true;
        }
        false
    }

    /// Multi-cover MBB check: every combination of runs must be covered by
    /// *some* skyline point (different points may cover different
    /// combinations). Sound by the own-post argument in `fastcheck.rs`.
    fn mbb_multi_cover(
        &self,
        to_min: &[u32],
        run_sets: &[IntervalSet],
        skyline: &[u32],
        m: &mut Metrics,
    ) -> bool {
        if run_sets.iter().any(|s| s.is_empty()) {
            return false;
        }
        let k = run_sets.len();
        let mut combo = vec![0usize; k];
        loop {
            let covered = skyline.iter().any(|&r| {
                m.dominance_checks += 1;
                let s_to = self.table.to_row(r as usize);
                let s_po = self.table.po_row(r as usize);
                if s_to.iter().zip(to_min.iter()).any(|(sv, mv)| sv > mv) {
                    return false;
                }
                combo
                    .iter()
                    .zip(run_sets.iter())
                    .enumerate()
                    .all(|(d, (&i, runs))| {
                        self.domains[d]
                            .intervals(s_po[d])
                            .covers_interval(&runs.intervals()[i])
                    })
            });
            if !covered {
                return false;
            }
            let mut d = 0;
            loop {
                if d == k {
                    return true;
                }
                combo[d] += 1;
                if combo[d] < run_sets[d].len() {
                    break;
                }
                combo[d] = 0;
                d += 1;
            }
        }
    }
}

impl SkylineEngine for Stss {
    fn name(&self) -> &str {
        "sTSS"
    }

    fn open(&self) -> Box<dyn SkylineCursor + '_> {
        Box::new(self.cursor())
    }
}

/// Pull-based sTSS executor: the best-first traversal of §IV-A as an
/// explicit-state iterator. Each [`next`](SkylineCursor::next) call resumes
/// the heap walk exactly where the previous confirmation left it, so
/// consumers control how much of the skyline — and of the index — is ever
/// touched.
///
/// Two phases: the live traversal, then the duplicate-completion scan (exact
/// copies of skyline points coalesced by closed-bound MBB pruning are
/// restored from one table pass — see DESIGN.md §1.2).
pub struct StssCursor<'a> {
    stss: &'a Stss,
    bf: BestFirst<'a>,
    start: Instant,
    m: Metrics,
    /// Confirmed skyline records in emission order; attribute values are
    /// fetched from the table on demand, so confirmation allocates exactly
    /// one owned [`SkylinePoint`] — the one handed to the caller.
    skyline: Vec<RecordId>,
    vpi: Option<VirtualPointIndex>,
    /// Exact-key multimap (row hash -> skyline records with that hash):
    /// keeps duplicate handling exact under fast checks, with candidate
    /// probes resolved against the store instead of owned key tuples.
    keys: HashMap<u64, Vec<RecordId>>,
    /// `Some` once the traversal is exhausted and the duplicate-completion
    /// queue has been computed.
    extras: Option<VecDeque<SkylinePoint>>,
    /// Confirmed-but-not-yet-yielded records (frozen-stratum mode only —
    /// one batch can confirm several points, the stream hands them out one
    /// per [`next`](SkylineCursor::next) call).
    ready: VecDeque<RecordId>,
    /// Reused scratch for the fast-check path's per-candidate folded post
    /// coordinates (grown once, never reallocated per candidate).
    posts_scratch: Vec<u32>,
    last_sample: ProgressSample,
    finished: bool,
}

impl<'a> StssCursor<'a> {
    fn new(stss: &'a Stss) -> Self {
        stss.tree.reset_io();
        let to_dims = stss.table.to_dims();
        let vpi = stss.cfg.fast_check.then(|| {
            VirtualPointIndex::new(
                to_dims,
                &stss.domains,
                stss.cfg.page.capacity(to_dims + 2 * stss.domains.len()),
            )
        });
        StssCursor {
            stss,
            bf: stss.tree.best_first(),
            // lint:allow(time-source): Metrics.cpu timing site — cursor wall clock
            start: Instant::now(),
            m: Metrics::default(),
            skyline: Vec::new(),
            vpi,
            keys: HashMap::new(),
            extras: None,
            ready: VecDeque::new(),
            posts_scratch: Vec::new(),
            last_sample: ProgressSample::default(),
            finished: false,
        }
    }

    /// True iff this cursor runs the frozen-stratum batched evaluation
    /// (see [`StssConfig::eval_threads`]); the fast-check configuration
    /// always stays serial.
    fn batched(&self) -> bool {
        self.stss.cfg.eval_threads >= 1 && self.vpi.is_none()
    }

    /// Resumes the best-first traversal until the next confirmation.
    fn advance_traversal(&mut self) -> Option<SkylinePoint> {
        if self.batched() {
            return self.advance_batched();
        }
        let stss = self.stss;
        let checks = stss.checks();
        let to_dims = stss.table.to_dims();
        while let Some(popped) = self.bf.pop() {
            self.m.heap_pops += 1;
            match popped {
                Popped::Node { id, mbb, .. } => {
                    if !checks.mbb_dominated(mbb, &self.skyline, self.vpi.as_ref(), &mut self.m) {
                        self.bf.expand(id);
                    }
                }
                Popped::Record { point, record, .. } => {
                    let to = &point[..to_dims];
                    let po = stss.table.po_row(record as usize);
                    if !checks.point_dominated(
                        to,
                        po,
                        &self.skyline,
                        self.vpi.as_ref(),
                        &self.keys,
                        &mut self.posts_scratch,
                        &mut self.m,
                    ) {
                        if let Some(vpi) = self.vpi.as_mut() {
                            let sets: Vec<&IntervalSet> = po
                                .iter()
                                .enumerate()
                                .map(|(d, &v)| stss.domains[d].intervals(v))
                                .collect();
                            vpi.insert(to, &sets, record);
                            self.keys
                                .entry(crate::store::row_hash(to, po))
                                .or_default()
                                .push(record);
                        }
                        self.skyline.push(record);
                        self.m.results += 1;
                        self.m.io_reads = stss.tree.io_count();
                        self.last_sample = ProgressSample {
                            results: self.m.results,
                            elapsed_cpu: self.start.elapsed(),
                            io_reads: self.m.io_reads,
                            dominance_checks: self.m.dominance_checks,
                        };
                        return Some(SkylinePoint {
                            record,
                            to: to.to_vec(),
                            po: po.to_vec(),
                        });
                    }
                }
            }
        }
        None
    }

    /// Yields one record confirmed by the frozen-stratum batched
    /// evaluation, processing further strata on demand.
    fn advance_batched(&mut self) -> Option<SkylinePoint> {
        while self.ready.is_empty() {
            self.bf.peek_mindist()?;
            self.process_stratum();
        }
        let record = self.ready.pop_front().expect("non-empty ready queue");
        self.m.results += 1;
        self.m.io_reads = self.stss.tree.io_count();
        self.last_sample = ProgressSample {
            results: self.m.results,
            elapsed_cpu: self.start.elapsed(),
            io_reads: self.m.io_reads,
            dominance_checks: self.m.dominance_checks,
        };
        Some(SkylinePoint {
            record,
            to: self.stss.table.to_row(record as usize).to_vec(),
            po: self.stss.table.po_row(record as usize).to_vec(),
        })
    }

    /// Processes one mindist stratum: all heap entries at the current
    /// minimum, evaluated in parallel against the skyline frozen at batch
    /// start. Sound because dominance implies a strictly smaller mindist
    /// (the precedence theorem), so entries of a stratum can neither
    /// dominate nor prune each other; deterministic because batches are
    /// collected and applied in heap (FIFO-tied) order and each entry's
    /// check depends only on the frozen state — never on the worker count.
    /// Node expansions can enqueue children at the same mindist; they form
    /// the next sub-batch of the same stratum.
    fn process_stratum(&mut self) {
        let stss = self.stss;
        let checks = stss.checks();
        let to_dims = stss.table.to_dims();
        let threads = stss.cfg.eval_threads.max(1);
        let Some(d0) = self.bf.peek_mindist() else {
            return;
        };
        loop {
            let mut batch: Vec<Popped<'_>> = Vec::new();
            while self.bf.peek_mindist() == Some(d0) {
                batch.push(self.bf.pop().expect("peeked entry"));
                self.m.heap_pops += 1;
            }
            if batch.is_empty() {
                break;
            }
            // Fan the frozen checks out; results come back in batch order.
            let table = &stss.table;
            let frozen: &[RecordId] = &self.skyline;
            let keys = &self.keys;
            let verdicts = crate::parallel::map_slice(threads, &batch, |popped| {
                let mut local = Metrics::default();
                // The batched mode never runs under fast checks (vpi is
                // None), so the posts scratch is untouched — an empty Vec
                // costs nothing here.
                let mut posts = Vec::new();
                let dominated = match popped {
                    Popped::Node { mbb, .. } => checks.mbb_dominated(mbb, frozen, None, &mut local),
                    Popped::Record { point, record, .. } => checks.point_dominated(
                        &point[..to_dims],
                        table.po_row(*record as usize),
                        frozen,
                        None,
                        keys,
                        &mut posts,
                        &mut local,
                    ),
                };
                (dominated, local)
            });
            // Apply in batch order: counts first, then expansions and
            // confirmations — the emission sequence equals the serial one.
            for (popped, (dominated, local)) in batch.iter().zip(&verdicts) {
                self.m = self.m.merge(local);
                if *dominated {
                    continue;
                }
                match popped {
                    Popped::Node { id, .. } => self.bf.expand(*id),
                    Popped::Record { record, .. } => {
                        self.skyline.push(*record);
                        self.ready.push_back(*record);
                    }
                }
            }
            if self.bf.peek_mindist() != Some(d0) {
                break;
            }
        }
    }

    /// Duplicate completion: exact copies of skyline points whose leaves
    /// were pruned are skyline iff their representative is. One table scan
    /// finds the missing copies.
    fn compute_extras(&self) -> VecDeque<SkylinePoint> {
        let stss = self.stss;
        let mut extras = VecDeque::new();
        if self.m.results == 0 {
            return extras;
        }
        let mut emitted = vec![false; stss.table.len()];
        let mut by_hash: std::collections::HashMap<u64, Vec<u32>> =
            std::collections::HashMap::new();
        for &r in &self.skyline {
            emitted[r as usize] = true;
            by_hash
                .entry(crate::store::row_hash(
                    stss.table.to_row(r as usize),
                    stss.table.po_row(r as usize),
                ))
                .or_default()
                .push(r);
        }
        for (i, &done) in emitted.iter().enumerate() {
            if done {
                continue;
            }
            let (to, po) = (stss.table.to_row(i), stss.table.po_row(i));
            let Some(cands) = by_hash.get(&crate::store::row_hash(to, po)) else {
                continue;
            };
            let is_dup = cands.iter().any(|&r| {
                stss.table.to_row(r as usize) == to && stss.table.po_row(r as usize) == po
            });
            if is_dup {
                extras.push_back(SkylinePoint {
                    record: i as u32,
                    to: to.to_vec(),
                    po: po.to_vec(),
                });
            }
        }
        extras
    }
}

impl SkylineCursor for StssCursor<'_> {
    fn next(&mut self) -> Option<SkylinePoint> {
        if self.finished {
            return None;
        }
        if self.extras.is_none() {
            if let Some(p) = self.advance_traversal() {
                return Some(p);
            }
            self.extras = Some(self.compute_extras());
        }
        if let Some(sp) = self.extras.as_mut().and_then(VecDeque::pop_front) {
            self.m.results += 1;
            self.last_sample = ProgressSample {
                results: self.m.results,
                elapsed_cpu: self.start.elapsed(),
                io_reads: self.stss.tree.io_count(),
                dominance_checks: self.m.dominance_checks,
            };
            return Some(sp);
        }
        self.m.io_reads = self.stss.tree.io_count();
        self.m.cpu = self.start.elapsed();
        self.finished = true;
        None
    }

    fn metrics(&self) -> Metrics {
        let mut m = self.m;
        if !self.finished {
            m.io_reads = self.stss.tree.io_count();
            m.cpu = self.start.elapsed();
        }
        m
    }

    fn progress(&self) -> ProgressSample {
        self.last_sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::brute_force_po_skyline;
    use poset::Dag;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The Fig. 3 example: 13 points over (A1, A2) with the paper domain.
    /// Ids: a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8.
    fn fig3_table() -> Table {
        let mut t = Table::new(1, 1);
        for (a1, a2) in [
            (2u32, 2u32), // p1  c
            (3, 3),       // p2  d
            (1, 7),       // p3  h
            (8, 0),       // p4  a
            (6, 4),       // p5  e
            (7, 2),       // p6  c
            (9, 1),       // p7  b
            (4, 8),       // p8  i
            (2, 5),       // p9  f
            (3, 6),       // p10 g
            (5, 6),       // p11 g
            (7, 5),       // p12 f
            (9, 7),       // p13 h
        ] {
            t.push(&[a1], &[a2]);
        }
        t
    }

    fn run_config(cfg: StssConfig) -> Vec<u32> {
        let stss = Stss::build(fig3_table(), vec![Dag::paper_example()], cfg).unwrap();
        let mut r = stss.run().skyline_records();
        r.sort_unstable();
        r
    }

    #[test]
    fn fig3_skyline_all_configs() {
        // Table II: final skyline = {p1..p5} = records 0..=4.
        let expect: Vec<u32> = (0..5).collect();
        for strategy in [
            RangeStrategy::Naive,
            RangeStrategy::Dyadic,
            RangeStrategy::Full,
        ] {
            for fast_check in [false, true] {
                for multi in [false, true] {
                    let cfg = StssConfig {
                        range_strategy: strategy,
                        fast_check,
                        multi_cover_mbb: multi,
                        node_capacity: Some(3),
                        ..Default::default()
                    };
                    assert_eq!(
                        run_config(cfg),
                        expect,
                        "{strategy:?} fast={fast_check} multi={multi}"
                    );
                }
            }
        }
    }

    #[test]
    fn emission_order_is_progressive() {
        // Emission follows mindist order in the transformed space; for the
        // Fig. 3 data that is exactly p1, p2, p3, p4, p5 (Table II).
        let stss = Stss::build(
            fig3_table(),
            vec![Dag::paper_example()],
            StssConfig {
                node_capacity: Some(3),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(stss.run().skyline_records(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn progress_log_is_monotone() {
        let stss = Stss::build(
            fig3_table(),
            vec![Dag::paper_example()],
            StssConfig::default(),
        )
        .unwrap();
        let (run, log) = stss.run_progressive();
        assert_eq!(log.samples.len(), run.skyline.len());
        for w in log.samples.windows(2) {
            assert!(w[0].results < w[1].results);
            assert!(w[0].io_reads <= w[1].io_reads);
            assert!(w[0].dominance_checks <= w[1].dominance_checks);
        }
    }

    /// Regression (found by proptest): exact duplicates of a skyline point
    /// sitting in a *different leaf* used to be coalesced by the
    /// closed-bound MBB pruning; the duplicate-completion pass must restore
    /// them under keep-all semantics — in every configuration.
    #[test]
    fn duplicates_across_pruned_leaves_are_completed() {
        let mut t = Table::new(2, 1);
        // Seven copies of (0,0,c) scattered across tiny (cap=2) leaves, plus
        // fillers ensuring multiple nodes.
        for _ in 0..7 {
            t.push(&[0, 0], &[2]);
        }
        for (a, b, v) in [(0, 2, 0), (0, 1, 1), (10, 0, 3), (2, 8, 8), (8, 5, 8)] {
            t.push(&[a, b], &[v]);
        }
        let dag = Dag::paper_example();
        let domains = vec![PoDomain::new(dag.clone())];
        let mut expect = brute_force_po_skyline(&domains, &t);
        expect.sort_unstable();
        for fast in [false, true] {
            for multi in [false, true] {
                let cfg = StssConfig {
                    fast_check: fast,
                    multi_cover_mbb: multi,
                    node_capacity: Some(2),
                    ..Default::default()
                };
                let stss = Stss::build(t.clone(), vec![dag.clone()], cfg).unwrap();
                let mut got = stss.run().skyline_records();
                got.sort_unstable();
                assert_eq!(got, expect, "fast={fast} multi={multi}");
            }
        }
    }

    #[test]
    fn duplicate_tuples_all_reported() {
        let mut t = Table::new(1, 1);
        t.push(&[5], &[2]);
        t.push(&[5], &[2]); // exact duplicate
        t.push(&[9], &[2]); // dominated
        for fast_check in [false, true] {
            let stss = Stss::build(
                t.clone(),
                vec![Dag::paper_example()],
                StssConfig {
                    fast_check,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut r = stss.run().skyline_records();
            r.sort_unstable();
            assert_eq!(r, vec![0, 1], "fast_check={fast_check}");
        }
    }

    #[test]
    fn build_rejects_bad_inputs() {
        let t = Table::from_parts(1, 1, vec![1, 2], vec![0, 99]).unwrap();
        assert!(matches!(
            Stss::build(t, vec![Dag::paper_example()], StssConfig::default()),
            Err(CoreError::PoValueOutOfRange { .. })
        ));
        let t2 = Table::new(1, 2);
        assert!(matches!(
            Stss::build(t2, vec![Dag::paper_example()], StssConfig::default()),
            Err(CoreError::DomainCountMismatch { .. })
        ));
    }

    #[test]
    fn empty_table_runs() {
        let stss = Stss::build(
            Table::new(2, 1),
            vec![Dag::paper_example()],
            StssConfig::default(),
        )
        .unwrap();
        let run = stss.run();
        assert!(run.skyline.is_empty());
        assert_eq!(run.metrics.results, 0);
    }

    #[test]
    fn po_only_table() {
        // No TO attributes at all: the skyline is the set of maximal values.
        let mut t = Table::new(0, 1);
        for v in 0..9u32 {
            t.push(&[], &[v]);
        }
        let stss = Stss::build(t, vec![Dag::paper_example()], StssConfig::default()).unwrap();
        let mut r = stss.run().skyline_records();
        r.sort_unstable();
        // Only "a" (id 0) is maximal in the paper domain.
        assert_eq!(r, vec![0]);
    }

    #[test]
    fn frozen_stratum_mode_matches_serial_exactly() {
        // The batched evaluator must reproduce the serial emission
        // *sequence* (not just the set), and its metrics must not depend
        // on the worker count — only the batch partition, which is fixed
        // by the data, decides what is examined.
        let mut t = fig3_table();
        t.push(&[2], &[2]); // duplicate of p1, exercises keep-all
        t.push(&[0], &[8]); // extra cheap point on the worst PO value
        let dag = Dag::paper_example();
        for (strategy, multi) in [
            (RangeStrategy::Dyadic, false),
            (RangeStrategy::Naive, true),
            (RangeStrategy::Full, false),
        ] {
            let base = StssConfig {
                range_strategy: strategy,
                multi_cover_mbb: multi,
                node_capacity: Some(3),
                ..Default::default()
            };
            let serial = Stss::build(t.clone(), vec![dag.clone()], base).unwrap();
            let serial_run = serial.run();
            let mut reference: Option<(Vec<u32>, Metrics)> = None;
            for threads in [1usize, 2, 4] {
                let cfg = StssConfig {
                    eval_threads: threads,
                    ..base
                };
                let stss = Stss::build(t.clone(), vec![dag.clone()], cfg).unwrap();
                let run = stss.run();
                assert_eq!(
                    run.skyline_records(),
                    serial_run.skyline_records(),
                    "emission order: {strategy:?} multi={multi} threads={threads}"
                );
                assert_eq!(run.metrics.results, serial_run.metrics.results);
                assert_eq!(run.metrics.io_reads, serial_run.metrics.io_reads);
                assert_eq!(run.metrics.heap_pops, serial_run.metrics.heap_pops);
                match &reference {
                    None => reference = Some((run.skyline_records(), run.metrics)),
                    Some((records, metrics)) => {
                        assert_eq!(&run.skyline_records(), records, "threads={threads}");
                        assert_eq!(
                            run.metrics.dominance_checks, metrics.dominance_checks,
                            "thread-count-invariant checks: threads={threads}"
                        );
                        assert_eq!(
                            run.metrics.dominance_batch_calls,
                            metrics.dominance_batch_calls
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn frozen_stratum_mode_streams_prefixes() {
        let cfg = StssConfig {
            eval_threads: 2,
            node_capacity: Some(3),
            ..Default::default()
        };
        let stss = Stss::build(fig3_table(), vec![Dag::paper_example()], cfg).unwrap();
        let full = stss.run().skyline_records();
        let mut c = stss.cursor();
        let mut prefix = Vec::new();
        for _ in 0..3 {
            prefix.push(c.next().unwrap().record);
        }
        assert_eq!(prefix, full[..3]);
        assert_eq!(c.metrics().results, 3);
    }

    #[test]
    fn fast_check_ignores_eval_threads() {
        // fast_check keeps the serial path (the virtual-point index is
        // interior-mutable); results must stay correct either way.
        let cfg = StssConfig {
            fast_check: true,
            eval_threads: 4,
            ..Default::default()
        };
        let stss = Stss::build(fig3_table(), vec![Dag::paper_example()], cfg).unwrap();
        let mut got = stss.run().skyline_records();
        got.sort_unstable();
        assert_eq!(got, (0..5).collect::<Vec<u32>>());
    }

    fn random_table(
        n: usize,
        to_dims: usize,
        po_dims: usize,
        domain: u32,
        v: u32,
        seed: u64,
    ) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Table::new(to_dims, po_dims);
        for _ in 0..n {
            let to: Vec<u32> = (0..to_dims).map(|_| rng.gen_range(0..domain)).collect();
            let po: Vec<u32> = (0..po_dims).map(|_| rng.gen_range(0..v)).collect();
            t.push(&to, &po);
        }
        t
    }

    #[test]
    fn matches_oracle_on_random_data_two_po_dims() {
        let dag1 = Dag::paper_example();
        let dag2 = poset::generator::subset_lattice(poset::generator::LatticeParams {
            height: 4,
            density: 0.8,
            seed: 5,
            mode: poset::generator::DensityMode::Literal,
        })
        .unwrap();
        let v2 = dag2.len() as u32;
        for seed in 0..3u64 {
            let table = random_table(400, 2, 2, 30, 9.min(v2), seed);
            let domains = vec![PoDomain::new(dag1.clone()), PoDomain::new(dag2.clone())];
            let mut expect = brute_force_po_skyline(&domains, &table);
            expect.sort_unstable();
            for cfg in [
                StssConfig::default(),
                StssConfig {
                    fast_check: true,
                    ..Default::default()
                },
                StssConfig {
                    multi_cover_mbb: true,
                    range_strategy: RangeStrategy::Naive,
                    ..Default::default()
                },
                StssConfig {
                    range_strategy: RangeStrategy::Full,
                    ..Default::default()
                },
            ] {
                let stss =
                    Stss::build(table.clone(), vec![dag1.clone(), dag2.clone()], cfg).unwrap();
                let mut got = stss.run().skyline_records();
                got.sort_unstable();
                assert_eq!(got, expect, "seed={seed} cfg={cfg:?}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// sTSS equals the ground-truth oracle on random tables over the
        /// paper domain, across configurations.
        #[test]
        fn equals_oracle(
            rows in proptest::collection::vec((0u32..12, 0u32..12, 0u32..9), 1..80),
            fast in proptest::bool::ANY,
            cap in 2usize..8,
        ) {
            let mut t = Table::new(2, 1);
            for &(a, b, v) in &rows {
                t.push(&[a, b], &[v]);
            }
            let dag = Dag::paper_example();
            let domains = vec![PoDomain::new(dag.clone())];
            let mut expect = brute_force_po_skyline(&domains, &t);
            expect.sort_unstable();
            let cfg = StssConfig { fast_check: fast, node_capacity: Some(cap), ..Default::default() };
            let stss = Stss::build(t, vec![dag], cfg).unwrap();
            let mut got = stss.run().skyline_records();
            got.sort_unstable();
            prop_assert_eq!(got, expect);
        }

        /// The frozen-stratum parallel mode reproduces the serial emission
        /// sequence on random tables, for any worker count.
        #[test]
        fn frozen_stratum_equals_serial(
            rows in proptest::collection::vec((0u32..10, 0u32..10, 0u32..9), 1..60),
            threads in 1usize..5,
            cap in 2usize..8,
        ) {
            let mut t = Table::new(2, 1);
            for &(a, b, v) in &rows {
                t.push(&[a, b], &[v]);
            }
            let dag = Dag::paper_example();
            let base = StssConfig { node_capacity: Some(cap), ..Default::default() };
            let serial = Stss::build(t.clone(), vec![dag.clone()], base).unwrap().run();
            let cfg = StssConfig { eval_threads: threads, ..base };
            let batched = Stss::build(t, vec![dag], cfg).unwrap().run();
            prop_assert_eq!(batched.skyline_records(), serial.skyline_records());
            prop_assert_eq!(batched.metrics.heap_pops, serial.metrics.heap_pops);
            prop_assert_eq!(batched.metrics.io_reads, serial.metrics.io_reads);
        }
    }
}

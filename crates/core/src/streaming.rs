//! **Streaming skyline maintenance** — delta repair over the
//! epoch-versioned [`PointStore`] instead of recomputation.
//!
//! The paper's engines are one-shot: they assume a frozen relation. A
//! monitoring deployment sees a *stream* — tuples arrive, old tuples leave
//! a sliding window — and recomputing the skyline per update wastes almost
//! all of its work: one arrival or departure perturbs the skyline locally.
//! [`StreamingSkyline`] maintains the exact skyline of the live window
//! under both mutations:
//!
//! * **Insert** ([`insert`](StreamingSkyline::insert)) screens the arrival
//!   against the current skyline with one batched dominance kernel call
//!   (the same [`Kernel`]-dispatched kernels every engine uses). An
//!   undominated arrival *demotes* the members it dominates — only members
//!   scoring strictly above it can be dominated, by the
//!   [`monotone_score`](PointStore::monotone_score) argument, so the
//!   stratum bound skips the rest without a pair check — and joins the
//!   skyline.
//! * **Expiry** ([`expire`](StreamingSkyline::expire)) tombstones the
//!   record in place. A *non-member* leaving never changes the skyline: by
//!   transitivity every non-skyline live record has a skyline dominator,
//!   so nothing was dominated *exclusively* through the departed record. A
//!   *member* leaving triggers a **delta repair**: only records the
//!   expired member t-dominated can be promoted, and a dominator scores
//!   strictly lower, so the candidate search is bounded to the live
//!   non-members scoring strictly above the expired member (the stratum
//!   bound) that fall inside its dominance region — counted in
//!   [`Metrics::repair_candidates`], the number a from-scratch recompute's
//!   `dominance_checks` is compared against.
//!
//! # The repair algorithm
//!
//! Expiring member `e` promotes exactly the live records whose *only*
//! skyline dominator was `e`:
//!
//! 1. **Candidates** — live non-members `p` with
//!    `score(p) > score(e)` that `e` t-dominates. (Complete: a promoted
//!    record was non-skyline before, so it had a skyline dominator; after
//!    the removal it has none, so that dominator was `e`.)
//! 2. **Phase A** (parallel) — screen each candidate against the fixed
//!    post-removal skyline. Candidates are sorted by `(score, id)`,
//!    partitioned into [`StreamingConfig::repair_shards`] chunks (a pure
//!    function of the candidate set — never of the thread count), and each
//!    chunk runs as a [`ShardJob`] through the [`ThreadShardExecutor`], so
//!    repairs inherit the fault ladder (catch_unwind isolation, bounded
//!    retries, scalar-oracle fallback) of every other sharded run.
//! 3. **Phase B** (sequential, deterministic) — walk the surviving
//!    candidates in global `(score, id)` order and screen each against the
//!    previously promoted only; a survivor dominated by an
//!    earlier-promoted record is discarded. (Sound: dominators sort
//!    strictly earlier, so the order sees every promoted dominator before
//!    its dominatees.)
//!
//! Failed attempts' counters are discarded by the executor and the chunk
//! partition is thread-independent, so every counter — including the four
//! `stream_*` counters — is byte-identical across thread counts, shard
//! plans, kernel variants, and fault plans.
//!
//! # Fault injection
//!
//! Repair jobs run with the executor's *minimality validation off*: their
//! results are promotion candidates, not local skylines, so the
//! merge-side minimality check does not apply. Instead, when a fault plan
//! is active, the merge side re-verifies every returned record against the
//! repair predicate with the scalar oracle (membership, liveness,
//! dominance region, post-removal screen) — uncounted, like
//! `validate_minimal` — so an injected corruption can never promote a
//! wrong record *and* never perturbs the counted work.
//!
//! # Budget bounding
//!
//! The [`Budget`] (e.g. from `TSS_BUDGET`, via
//! [`StreamingConfig::from_env`]) is an **admission-control bound**, in
//! the same pair-check currency as [`BudgetedCursor`](crate::BudgetedCursor):
//! once the accumulated `dominance_checks` spend crosses the allowance,
//! [`budget_exhausted`](StreamingSkyline::budget_exhausted) latches
//! (sticky, like an exhausted cursor). Mutations keep repairing — a repair
//! is an unsplittable unit of correctness, so truncating it would corrupt
//! the maintained skyline — which means the final unit of work may
//! overshoot, exactly as one `next()` may under a budgeted cursor.
//!
//! # Reading the skyline
//!
//! [`cursor`](StreamingSkyline::cursor) materializes a [`StreamingCursor`]
//! that owns a snapshot of the skyline points *and* the store
//! [`generation`](PointStore::generation) it was taken at — iterator
//! invalidation is impossible by construction: later mutations touch the
//! store, never the snapshot, and the stamped generation tells the reader
//! exactly which epoch it is looking at.

use crate::budget::Budget;
use crate::cursor::{SkylineCursor, SkylineEngine};
use crate::dominance::t_dominates;
use crate::executor::{ExecPolicy, ShardExecutor, ShardJob, ThreadShardExecutor};
use crate::ipc::tasks::{encode_screen, screen_part};
use crate::store::{PointStore, RecordId};
use crate::stss::SkylinePoint;
use crate::{Metrics, PoDomain, ProgressSample};
use skyline::Kernel;
use std::sync::Arc;

/// When the maintained window retires tuples automatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowPolicy {
    /// No automatic expiry: tuples leave only through explicit
    /// [`expire`](StreamingSkyline::expire) calls.
    Unbounded,
    /// Count-based sliding window: after each insert, the oldest live
    /// tuples are expired until at most `n` remain (`window_n` in the
    /// bench grid's vocabulary).
    Count(usize),
}

/// Configuration of a [`StreamingSkyline`].
#[derive(Debug, Clone, Copy)]
pub struct StreamingConfig {
    /// Automatic-expiry policy.
    pub window: WindowPolicy,
    /// Worker threads repair jobs run on. Results and counters are
    /// identical at any value — this is purely a wall-clock knob.
    pub threads: usize,
    /// Number of chunks a repair's candidate list is partitioned into —
    /// part of the deterministic work plan (like a
    /// [`ShardPlan`](crate::parallel::ShardPlan)'s shard count), fixed
    /// independently of `threads`.
    pub repair_shards: usize,
    /// Admission-control pair-check allowance — see the module docs.
    pub budget: Budget,
    /// Retry/fault policy repair jobs inherit (the executor's validation
    /// flag is ignored; repairs bring their own merge-side verification).
    pub exec: ExecPolicy,
}

impl Default for StreamingConfig {
    /// Unbounded window, single-threaded repairs in 4 chunks, no budget,
    /// the environment's fault policy (`TSS_FAULTS`).
    fn default() -> Self {
        StreamingConfig {
            window: WindowPolicy::Unbounded,
            threads: 1,
            repair_shards: 4,
            budget: Budget::UNLIMITED,
            exec: ExecPolicy::default(),
        }
    }
}

impl StreamingConfig {
    /// The default configuration with the `TSS_BUDGET` pair-check
    /// allowance applied when the variable is set to an integer (the
    /// bench runner rejects malformed values loudly; here a malformed
    /// value degrades to [`Budget::UNLIMITED`] so library users cannot be
    /// aborted by a stray environment variable).
    pub fn from_env() -> StreamingConfig {
        let budget = std::env::var("TSS_BUDGET")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map_or(Budget::UNLIMITED, Budget::pair_checks);
        StreamingConfig {
            budget,
            ..StreamingConfig::default()
        }
    }
}

/// Exact skyline maintenance over a mutable window — see the module docs
/// for the algorithm and its invariants.
///
/// The maintained skyline is kept sorted by ascending [`RecordId`];
/// [`skyline_records`](Self::skyline_records) exposes it directly, so the
/// byte-identity contract with a from-scratch recompute on the surviving
/// window is checkable with one slice comparison.
pub struct StreamingSkyline {
    store: PointStore,
    domains: Vec<PoDomain>,
    /// Current skyline of the live window, ascending record ids.
    skyline: Vec<RecordId>,
    /// Cached `monotone_score` per physical record (same indexing as the
    /// store's rows; rebuilt on compaction).
    scores: Vec<u64>,
    /// Skip cursor for [`expire_oldest`](Self::expire_oldest): every
    /// record below it is dead (arrival order equals id order, ids are
    /// append-only).
    oldest: RecordId,
    config: StreamingConfig,
    /// Repair jobs run through this executor when set (e.g. a
    /// [`SubprocessExecutor`](crate::SubprocessExecutor)); the built-in
    /// [`ThreadShardExecutor`] pool otherwise.
    executor: Option<Arc<dyn ShardExecutor + Send + Sync>>,
    metrics: Metrics,
    exhausted: bool,
}

/// Compaction trigger: at least this many tombstones *and* more dead than
/// live rows. Deterministic — a pure function of the operation sequence.
const COMPACT_MIN_DEAD: usize = 64;

impl StreamingSkyline {
    /// An empty maintained skyline over `to_dims` totally ordered
    /// attributes and one partially ordered attribute per domain in
    /// `domains`. The dominance kernel follows the process default
    /// (`TSS_KERNEL`); use [`with_kernel`](Self::with_kernel) to force a
    /// variant.
    pub fn new(to_dims: usize, domains: Vec<PoDomain>, config: StreamingConfig) -> Self {
        StreamingSkyline {
            store: PointStore::new(to_dims, domains.len()),
            domains,
            skyline: Vec::new(),
            scores: Vec::new(),
            oldest: 0,
            config,
            executor: None,
            metrics: Metrics::default(),
            exhausted: false,
        }
    }

    /// Routes repair shard jobs through `executor` instead of the
    /// built-in in-process pool — how streaming maintenance rides the
    /// out-of-process backend. The jobs carry candidate-screen wire
    /// payloads (see [`crate::ipc::tasks`]), so any executor honoring
    /// the [`ShardExecutor`] contract yields byte-identical skylines and
    /// counters. The executor's own policy applies; it should have
    /// minimality validation **off** (repair results are promotion
    /// candidates, not local skylines — the built-in path disables it
    /// the same way) — repairs bring their own merge-side verification.
    pub fn with_executor(mut self, executor: Arc<dyn ShardExecutor + Send + Sync>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Forces the dominance-kernel variant (results and counters are
    /// identical either way; tests cross-check the variants).
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.store.set_kernel(kernel);
        self
    }

    /// The underlying epoch-versioned store (live *and* tombstoned rows).
    pub fn store(&self) -> &PointStore {
        &self.store
    }

    /// The PO domains the maintained dominance is evaluated under.
    pub fn domains(&self) -> &[PoDomain] {
        &self.domains
    }

    /// The store's epoch counter — stamped onto every
    /// [`StreamingCursor`].
    pub fn generation(&self) -> u64 {
        self.store.generation()
    }

    /// Number of live tuples in the window.
    pub fn live_len(&self) -> usize {
        self.store.live_len()
    }

    /// The maintained skyline, ascending record ids.
    pub fn skyline_records(&self) -> &[RecordId] {
        &self.skyline
    }

    /// Maintenance metrics accumulated so far (`results` mirrors the
    /// current skyline size).
    pub fn metrics(&self) -> Metrics {
        Metrics {
            results: self.skyline.len() as u64,
            ..self.metrics
        }
    }

    /// True once the accumulated pair-check spend has crossed the
    /// configured [`Budget`] — sticky, see the module docs.
    pub fn budget_exhausted(&self) -> bool {
        self.exhausted
    }

    /// The monotone score of a not-yet-stored row.
    fn score_of(&self, to_row: &[u32], po_row: &[u32]) -> u64 {
        let to_sum: u64 = to_row.iter().map(|&x| x as u64).sum();
        let po_sum: u64 = po_row
            .iter()
            .zip(self.domains.iter())
            .map(|(&v, d)| d.ordinal(v) as u64)
            .sum();
        to_sum + po_sum
    }

    /// Latches the budget flag once the spend crosses the allowance.
    fn note_spend(&mut self) {
        if self
            .config
            .budget
            .exhausted_by(self.metrics.dominance_checks)
        {
            self.exhausted = true;
        }
    }

    /// Appends one tuple, maintains the skyline, and applies the window
    /// policy. Returns the new record's id.
    ///
    /// PO values are validated against their domains up front — an
    /// out-of-range id would silently corrupt dominance decisions.
    pub fn insert(&mut self, to_row: &[u32], po_row: &[u32]) -> RecordId {
        for (d, (&v, dom)) in po_row.iter().zip(self.domains.iter()).enumerate() {
            assert!(
                (v as usize) < dom.len(),
                "insert: PO value {v} out of range for domain {d} (size {})",
                dom.len()
            );
        }
        let id = self.store.insert(to_row, po_row);
        self.scores.push(self.score_of(to_row, po_row));
        self.metrics.stream_inserts += 1;
        let (dominated, examined) =
            self.store
                .t_dominated_by_any(&self.domains, to_row, po_row, &self.skyline);
        self.metrics.batch(examined);
        if !dominated {
            // Demote the members the arrival dominates. Only members
            // scoring strictly higher can be dominated (the monotone-score
            // stratum bound), and those run through the exact scalar pair
            // primitive — identical under either kernel variant.
            let new_score = self.scores[id as usize];
            let (store, domains, scores) = (&self.store, &self.domains, &self.scores);
            let mut examined = 0u64;
            self.skyline.retain(|&m| {
                if scores[m as usize] <= new_score {
                    return true;
                }
                examined += 1;
                !t_dominates(domains, to_row, po_row, store.to(m), store.po(m))
            });
            self.metrics.batch(examined);
            // Ids are append-only, so the new id keeps the ascending order.
            self.skyline.push(id);
        }
        if let WindowPolicy::Count(n) = self.config.window {
            while self.store.live_len() > n {
                self.expire_oldest();
            }
        }
        self.note_spend();
        id
    }

    /// Expires the oldest live tuple (FIFO — arrival order is id order),
    /// returning its id, or `None` on an empty window.
    pub fn expire_oldest(&mut self) -> Option<RecordId> {
        while (self.oldest as usize) < self.store.len() && !self.store.is_live(self.oldest) {
            self.oldest += 1;
        }
        if (self.oldest as usize) >= self.store.len() {
            return None;
        }
        let id = self.oldest;
        self.expire(id);
        Some(id)
    }

    /// Tombstones record `id` and repairs the skyline if a member left.
    /// Returns `true` iff the record was live. A departing *non-member*
    /// never changes the skyline: its dominatees all keep a skyline
    /// dominator by transitivity, so no promotion search is needed.
    pub fn expire(&mut self, id: RecordId) -> bool {
        if !self.store.expire(id) {
            return false;
        }
        self.metrics.stream_expirations += 1;
        if let Ok(pos) = self.skyline.binary_search(&id) {
            self.skyline.remove(pos);
            self.metrics.stream_repairs += 1;
            self.repair(id);
        }
        self.maybe_compact();
        self.note_spend();
        true
    }

    /// Promotes the records whose only skyline dominator was the expired
    /// member `expired` — the module docs walk through phases and
    /// correctness.
    fn repair(&mut self, expired: RecordId) {
        let e_score = self.scores[expired as usize];
        // Tombstoned rows stay physically addressable until compaction,
        // so the expired member's coordinates are still readable; own
        // them, the store is about to be borrowed by the jobs.
        let e_to = self.store.to(expired).to_vec();
        let e_po = self.store.po(expired).to_vec();
        // 1. Stratum-bounded candidate discovery (counted: these are the
        //    candidates a recompute would not get to skip).
        let mut cands: Vec<RecordId> = Vec::new();
        let mut screened = 0u64;
        for p in self.store.live_ids() {
            if self.scores[p as usize] <= e_score || self.skyline.binary_search(&p).is_ok() {
                continue;
            }
            screened += 1;
            if t_dominates(
                &self.domains,
                &e_to,
                &e_po,
                self.store.to(p),
                self.store.po(p),
            ) {
                cands.push(p);
            }
        }
        self.metrics.repair_candidates += screened;
        self.metrics.batch(screened);
        if cands.is_empty() {
            return;
        }
        // 2. Phase A: deterministic chunks over the (score, id)-sorted
        //    candidates, one executor job per chunk — the partition is a
        //    pure function of the candidate set, never of `threads`.
        cands.sort_unstable_by_key(|&p| (self.scores[p as usize], p));
        let shards = self.config.repair_shards.clamp(1, cands.len());
        let parts: Vec<&[RecordId]> = cands.chunks(cands.len().div_ceil(shards)).collect();
        let (store, domains, skyline) = (&self.store, &self.domains, &self.skyline);
        let jobs: Vec<ShardJob<'_>> = parts
            .iter()
            .map(|&part| {
                // The id span is the scope fault injection corrupts within.
                let lo = part.iter().copied().min().unwrap_or(0);
                let hi = part.iter().copied().max().unwrap_or(0);
                // The closure honors the attempt's kernel (the fallback
                // runs the scalar oracle path; kernel equivalence keeps
                // records and counters identical); the wire payload ships
                // the same screen to a worker process — both sides call
                // `screen_one` on the same rows, in the same order.
                ShardJob::new(lo..hi + 1, move |ctx| {
                    screen_part(store, domains, ctx.kernel, skyline, part)
                })
                .with_wire(move || encode_screen(store, domains, skyline, part))
            })
            .collect();
        // Repairs bring their own merge-side verification (below), so the
        // executor's local-skyline minimality validation — wrong for
        // promotion-candidate results — is disabled.
        let policy = ExecPolicy {
            validate: false,
            ..self.config.exec
        };
        let faults_active = policy.faults.is_some();
        let pool = ThreadShardExecutor::with_policy(self.config.threads, policy);
        let exec: &dyn ShardExecutor = match self.executor.as_deref() {
            Some(e) => e,
            None => &pool,
        };
        let results = exec.execute(&self.store, &self.domains, &jobs);
        drop(jobs);
        let mut survivors: Vec<RecordId> = Vec::new();
        let mut gathered = Metrics::default();
        for (r, part) in results.into_iter().zip(parts) {
            match r {
                Ok(o) => {
                    gathered = gathered.merge(&o.metrics);
                    survivors.extend(o.records);
                }
                Err(_) => {
                    // Unreachable with the in-process executor (the
                    // uninjected scalar fallback of a panic-free job always
                    // succeeds), but a remote executor may lose a worker:
                    // recompute the chunk inline so no repair is ever
                    // dropped.
                    let (alive, m) = screen_part(store, domains, Kernel::Scalar, skyline, part);
                    gathered = gathered.merge(&m);
                    survivors.extend(alive);
                }
            }
        }
        self.metrics = self.metrics.merge(&gathered);
        if faults_active {
            // Merge-side verification under fault injection: an injected
            // corruption appends an arbitrary in-range record, so re-check
            // the full repair predicate with the scalar oracle. Uncounted,
            // like the executor's own validation — recovery overhead must
            // not perturb the byte-identity contract with fault-free runs.
            let (store, domains, skyline) = (&self.store, &self.domains, &self.skyline);
            survivors.retain(|&p| {
                (p as usize) < store.len()
                    && store.is_live(p)
                    && skyline.binary_search(&p).is_err()
                    && t_dominates(domains, &e_to, &e_po, store.to(p), store.po(p))
                    && !store
                        .t_dominated_by_any_oracle(domains, store.to(p), store.po(p), skyline)
                        .0
            });
        }
        // 3. Phase B: global (score, id) order; the sort also restores the
        //    order and dedups anything a corruption duplicated.
        survivors.sort_unstable_by_key(|&p| (self.scores[p as usize], p));
        survivors.dedup();
        let mut promoted: Vec<RecordId> = Vec::new();
        for &p in &survivors {
            let (hit, ex) = self.store.t_dominated_by_any(
                &self.domains,
                self.store.to(p),
                self.store.po(p),
                &promoted,
            );
            self.metrics.batch(ex);
            if !hit {
                promoted.push(p);
            }
        }
        self.skyline.extend(promoted);
        self.skyline.sort_unstable();
    }

    /// Compacts the store once tombstones outnumber live rows (and exceed
    /// [`COMPACT_MIN_DEAD`]), translating every id the maintainer holds
    /// through the survivor map. Live order is preserved, so the skyline
    /// stays ascending.
    fn maybe_compact(&mut self) {
        let dead = self.store.len() - self.store.live_len();
        if dead < COMPACT_MIN_DEAD || dead * 2 < self.store.len() {
            return;
        }
        let survivors = self.store.compact();
        // Both lists ascend, so one merge walk renumbers the skyline.
        let mut si = 0usize;
        for m in &mut self.skyline {
            while si < survivors.len() && survivors[si] < *m {
                si += 1;
            }
            debug_assert!(
                si < survivors.len() && survivors[si] == *m,
                "skyline id live"
            );
            *m = si as RecordId;
        }
        self.scores = survivors
            .iter()
            .map(|&old| self.scores[old as usize])
            .collect();
        self.oldest = survivors.partition_point(|&s| s < self.oldest) as RecordId;
    }

    /// Materializes a generation-stamped snapshot cursor over the current
    /// skyline. The cursor owns its points: later mutations cannot
    /// invalidate it, by construction.
    pub fn cursor(&self) -> StreamingCursor {
        let points = self
            .skyline
            .iter()
            .map(|&r| SkylinePoint {
                record: r,
                to: self.store.to(r).to_vec(),
                po: self.store.po(r).to_vec(),
            })
            .collect();
        StreamingCursor {
            points,
            pos: 0,
            generation: self.store.generation(),
            maintenance: self.metrics(),
        }
    }
}

impl SkylineEngine for StreamingSkyline {
    fn name(&self) -> &str {
        "streaming"
    }

    fn open(&self) -> Box<dyn SkylineCursor + '_> {
        Box::new(self.cursor())
    }
}

/// A snapshot cursor over one epoch of a [`StreamingSkyline`].
///
/// Owns its points and the [`generation`](Self::generation) they were
/// taken at; emits them in ascending record-id order. `metrics()` reports
/// the *maintenance* metrics at snapshot time with `results` counting the
/// points emitted so far — reading a maintained skyline does no dominance
/// work of its own, the maintenance already paid for it.
pub struct StreamingCursor {
    points: Vec<SkylinePoint>,
    pos: usize,
    generation: u64,
    maintenance: Metrics,
}

impl StreamingCursor {
    /// The store epoch this snapshot was taken at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of points in the snapshot (independent of the read
    /// position).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff the snapshot holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

impl SkylineCursor for StreamingCursor {
    fn next(&mut self) -> Option<SkylinePoint> {
        let p = self.points.get(self.pos).cloned();
        self.pos += usize::from(p.is_some());
        p
    }

    fn metrics(&self) -> Metrics {
        Metrics {
            results: self.pos as u64,
            ..self.maintenance
        }
    }

    fn progress(&self) -> ProgressSample {
        ProgressSample {
            results: self.pos as u64,
            elapsed_cpu: std::time::Duration::ZERO,
            io_reads: self.maintenance.io_reads,
            dominance_checks: self.maintenance.dominance_checks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::brute_force_po_skyline;
    use crate::parallel::FaultPlan;
    use crate::Table;
    use poset::Dag;

    fn domains() -> Vec<PoDomain> {
        vec![PoDomain::new(Dag::paper_example())]
    }

    /// The maintained skyline must equal a from-scratch recompute on the
    /// surviving window — compared by *rank in live order*, so the check
    /// is compaction-proof (compaction renumbers but preserves order).
    fn assert_matches_recompute(s: &StreamingSkyline) {
        let mut window = Table::new(s.store().to_dims(), s.store().po_dims());
        let live: Vec<RecordId> = s.store().live_ids().collect();
        for &id in &live {
            window.push(s.store().to(id), s.store().po(id));
        }
        let expect: Vec<RecordId> = brute_force_po_skyline(s.domains(), &window)
            .into_iter()
            .map(|local| live[local as usize])
            .collect();
        assert_eq!(s.skyline_records(), &expect[..]);
        assert_eq!(s.metrics().results, expect.len() as u64);
    }

    /// A deterministic pseudo-random row (no RNG in tests either).
    fn row(i: u32) -> ([u32; 2], [u32; 1]) {
        ([(i * 17) % 23, (i * 31) % 19], [(i * 7) % 9])
    }

    #[test]
    fn inserts_maintain_the_exact_skyline() {
        let mut s = StreamingSkyline::new(2, domains(), StreamingConfig::default());
        for i in 0..40u32 {
            let (to, po) = row(i);
            let id = s.insert(&to, &po);
            assert_eq!(id, i);
            assert_matches_recompute(&s);
        }
        assert_eq!(s.metrics().stream_inserts, 40);
        assert_eq!(s.metrics().stream_expirations, 0);
        assert_eq!(s.generation(), 40, "one epoch per insert");
    }

    #[test]
    fn expiries_repair_instead_of_recomputing() {
        let mut s = StreamingSkyline::new(2, domains(), StreamingConfig::default());
        for i in 0..30u32 {
            let (to, po) = row(i);
            s.insert(&to, &po);
        }
        // Expire everything in a scrambled but deterministic order.
        let mut repairs = 0u64;
        for k in 0..30u32 {
            let id = (k * 11) % 30;
            let was_member = s.skyline_records().binary_search(&id).is_ok();
            assert!(s.expire(id));
            assert!(!s.expire(id), "double expiry is a no-op");
            repairs += u64::from(was_member);
            assert_matches_recompute(&s);
        }
        assert_eq!(s.live_len(), 0);
        assert!(s.skyline_records().is_empty());
        assert_eq!(s.metrics().stream_expirations, 30);
        assert_eq!(s.metrics().stream_repairs, repairs);
        assert!(repairs > 0, "some expiry must have hit a member");
    }

    #[test]
    fn non_member_expiry_is_counter_free() {
        let mut s = StreamingSkyline::new(1, domains(), StreamingConfig::default());
        s.insert(&[1], &[0]); // member
        s.insert(&[5], &[0]); // dominated
        let before = s.metrics();
        assert!(s.expire(1));
        let after = s.metrics();
        assert_eq!(after.stream_repairs, 0);
        assert_eq!(after.repair_candidates, 0);
        assert_eq!(
            after.dominance_checks, before.dominance_checks,
            "a departing non-member needs no promotion search at all"
        );
        assert_matches_recompute(&s);
    }

    #[test]
    fn sliding_window_policy_evicts_fifo() {
        let cfg = StreamingConfig {
            window: WindowPolicy::Count(8),
            ..StreamingConfig::default()
        };
        let mut s = StreamingSkyline::new(2, domains(), cfg);
        for i in 0..50u32 {
            let (to, po) = row(i);
            s.insert(&to, &po);
            assert!(s.live_len() <= 8);
            assert_matches_recompute(&s);
        }
        assert_eq!(s.live_len(), 8);
        assert_eq!(s.metrics().stream_expirations, 42, "50 arrivals, window 8");
        // Oldest live record is arrival 42.
        assert!(s
            .store()
            .live_ids()
            .next()
            .is_some_and(|id| { s.store().to(id) == row(42).0 && s.store().po(id) == row(42).1 }));
    }

    #[test]
    fn results_and_counters_are_invariant_across_threads_shards_and_kernels() {
        let run = |threads: usize, shards: usize, kernel: Kernel| {
            let cfg = StreamingConfig {
                window: WindowPolicy::Count(12),
                threads,
                repair_shards: shards,
                ..StreamingConfig::default()
            };
            let mut s = StreamingSkyline::new(2, domains(), cfg).with_kernel(kernel);
            for i in 0..90u32 {
                let (to, po) = row(i);
                s.insert(&to, &po);
            }
            (s.skyline_records().to_vec(), s.metrics())
        };
        let reference = run(1, 1, Kernel::Scalar);
        for threads in [1usize, 2, 4] {
            for shards in [1usize, 3, 8] {
                for kernel in [Kernel::Scalar, Kernel::Lanes] {
                    assert_eq!(
                        run(threads, shards, kernel),
                        reference,
                        "threads={threads} shards={shards} {kernel:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn fault_injection_is_invisible_to_the_maintained_state() {
        let run = |faults: Option<FaultPlan>, threads: usize| {
            let cfg = StreamingConfig {
                window: WindowPolicy::Count(10),
                threads,
                repair_shards: 3,
                exec: ExecPolicy::with_faults(faults),
                ..StreamingConfig::default()
            };
            let mut s = StreamingSkyline::new(2, domains(), cfg);
            for i in 0..70u32 {
                let (to, po) = row(i);
                s.insert(&to, &po);
            }
            assert_matches_recompute(&s);
            (s.skyline_records().to_vec(), s.metrics())
        };
        let (clean_sky, clean_m) = run(None, 1);
        for threads in [1usize, 3] {
            let (sky, m) = run(Some(FaultPlan::new(7, 1.0)), threads);
            assert_eq!(sky, clean_sky, "threads={threads}");
            // Work counters match the fault-free run bit for bit; only the
            // recovery counters report what the ladder absorbed.
            assert_eq!(m.dominance_checks, clean_m.dominance_checks);
            assert_eq!(m.dominance_batch_calls, clean_m.dominance_batch_calls);
            assert_eq!(m.repair_candidates, clean_m.repair_candidates);
            assert_eq!(m.stream_repairs, clean_m.stream_repairs);
            assert!(m.faults_injected > 0, "the saturated plan must fire");
        }
    }

    #[test]
    fn compaction_translates_every_held_id() {
        // Window 40 over 200 arrivals: 160 expiries, so the half-dead
        // trigger fires repeatedly; the recompute check is rank-based and
        // must stay exact across every renumbering.
        let cfg = StreamingConfig {
            window: WindowPolicy::Count(40),
            ..StreamingConfig::default()
        };
        let mut s = StreamingSkyline::new(2, domains(), cfg);
        for i in 0..200u32 {
            let (to, po) = row(i);
            s.insert(&to, &po);
            assert_matches_recompute(&s);
        }
        assert!(
            s.store().len() < 200,
            "compaction must have dropped tombstones (physical rows: {})",
            s.store().len()
        );
        // FIFO expiry still works after renumbering.
        let before = s.live_len();
        s.expire_oldest();
        assert_eq!(s.live_len(), before - 1);
        assert_matches_recompute(&s);
    }

    #[test]
    fn budget_flag_is_sticky_and_never_truncates_repairs() {
        let cfg = StreamingConfig {
            window: WindowPolicy::Count(6),
            budget: Budget::pair_checks(10),
            ..StreamingConfig::default()
        };
        let mut s = StreamingSkyline::new(2, domains(), cfg);
        for i in 0..40u32 {
            let (to, po) = row(i);
            s.insert(&to, &po);
            // Correctness is never traded for the allowance.
            assert_matches_recompute(&s);
        }
        assert!(s.budget_exhausted(), "10 pair checks cannot cover 40 rows");
        assert!(
            s.metrics().dominance_checks >= 10,
            "the flag latches at the crossing"
        );
    }

    #[test]
    fn snapshot_cursor_survives_later_mutations() {
        let mut s = StreamingSkyline::new(2, domains(), StreamingConfig::default());
        for i in 0..25u32 {
            let (to, po) = row(i);
            s.insert(&to, &po);
        }
        let gen = s.generation();
        let mut cur = s.cursor();
        assert_eq!(cur.generation(), gen);
        let frozen: Vec<RecordId> = s.skyline_records().to_vec();
        // Mutate heavily underneath the open cursor.
        for i in 25..60u32 {
            let (to, po) = row(i);
            s.insert(&to, &po);
            s.expire_oldest();
        }
        assert_ne!(s.generation(), gen, "the store moved on");
        let read: Vec<RecordId> = std::iter::from_fn(|| cur.next())
            .map(|p| p.record)
            .collect();
        assert_eq!(read, frozen, "the snapshot is immune by construction");
        assert!(cur.next().is_none(), "exhausted cursors stay exhausted");
        assert_eq!(cur.metrics().results, frozen.len() as u64);
    }

    #[test]
    fn engine_trait_reads_a_snapshot() {
        let mut s = StreamingSkyline::new(2, domains(), StreamingConfig::default());
        for i in 0..15u32 {
            let (to, po) = row(i);
            s.insert(&to, &po);
        }
        assert_eq!(s.name(), "streaming");
        let (pts, m) = s.collect_skyline();
        let records: Vec<RecordId> = pts.iter().map(|p| p.record).collect();
        assert_eq!(records, s.skyline_records());
        assert_eq!(m.results, records.len() as u64);
        for p in &pts {
            assert_eq!(p.to, s.store().to(p.record));
            assert_eq!(p.po, s.store().po(p.record));
        }
    }

    #[test]
    fn repair_candidates_stay_below_a_recompute() {
        // Even on this small stream, the stratum + dominance-region bound
        // must examine strictly fewer candidates than from-scratch
        // recomputes at every skyline-changing expiry would check.
        let cfg = StreamingConfig {
            window: WindowPolicy::Count(16),
            ..StreamingConfig::default()
        };
        let mut s = StreamingSkyline::new(2, domains(), cfg);
        let mut recompute_checks = 0u64;
        for i in 0..120u32 {
            let (to, po) = row(i);
            let repairs_before = s.metrics().stream_repairs;
            s.insert(&to, &po);
            if s.metrics().stream_repairs > repairs_before {
                // What a recompute engine would pay at this step: one
                // sorted-filter pass over the surviving window.
                let mut window = Table::new(2, 1);
                for id in s.store().live_ids() {
                    window.push(s.store().to(id), s.store().po(id));
                }
                let doms = domains();
                let mut ids: Vec<RecordId> = (0..window.len() as RecordId).collect();
                ids.sort_unstable_by_key(|&r| (window.monotone_score(&doms, r), r));
                let mut confirmed: Vec<RecordId> = Vec::new();
                for &r in &ids {
                    let (hit, ex) =
                        window.t_dominated_by_any(&doms, window.to(r), window.po(r), &confirmed);
                    recompute_checks += ex;
                    if !hit {
                        confirmed.push(r);
                    }
                }
            }
        }
        let m = s.metrics();
        assert!(m.stream_repairs > 0, "the stream must exercise repairs");
        assert!(
            m.repair_candidates < recompute_checks,
            "delta repair examined {} candidates, recomputing would have checked {}",
            m.repair_candidates,
            recompute_checks
        );
    }
}

//! The **query-session cache** for the dynamic workload (§V): a
//! fingerprint-keyed store of per-attribute topological sorts and TSS
//! interval labelings, shared across the many [`Dtss`] queries one user (or
//! one connection) issues.
//!
//! Every dTSS query must topologically sort and interval-label each of its
//! partial orders before the group walk can start (§V-A). The paper argues
//! this is cheap *relative to the data* — but a serving system evaluating
//! millions of per-user preference DAGs pays it on every query, and real
//! preference DAGs repeat: the same user queries again, different users
//! share canned preference templates. A [`QuerySession`] memoizes the
//! labeling work by [`Dag::fingerprint`], so a repeated DAG skips the
//! relabeling entirely; the [`Metrics::label_cache_hits`] /
//! [`Metrics::label_cache_misses`] counters on every run report what the
//! cache did.
//!
//! The session is deliberately separate from [`DtssConfig::cache`] (the
//! §V-B result-digest cache): results are only reusable when *every*
//! attribute's order repeats exactly, while labelings are reusable
//! per-attribute — a query mixing one new DAG with three seen ones still
//! skips 3/4 of the labeling work.
//!
//! ```
//! use poset::PartialOrderBuilder;
//! use tss_core::{Dtss, DtssConfig, PoQuery, QuerySession, Table};
//!
//! let mut table = Table::new(1, 1);
//! table.push(&[3], &[0]);
//! table.push(&[1], &[1]);
//! let dtss = Dtss::build(table, vec![2], DtssConfig::default()).unwrap();
//!
//! let mut session = QuerySession::new(&dtss);
//! let mut order = PartialOrderBuilder::new();
//! order.values(["a", "b"]);
//! order.prefer("a", "b").unwrap();
//! let q = PoQuery::new(vec![order.build().unwrap()]);
//!
//! let cold = session.query(&q).unwrap();
//! assert_eq!(cold.metrics.label_cache_misses, 1);
//!
//! // The same preference DAG again: the labeling is served from the
//! // session cache instead of being recomputed.
//! let warm = session.query(&q).unwrap();
//! assert_eq!(warm.metrics.label_cache_hits, 1);
//! assert_eq!(warm.metrics.label_cache_misses, 0);
//! assert_eq!(cold.skyline_records(), warm.skyline_records());
//! ```

use crate::dtss::PreparedDomains;
use crate::{CoreError, Dtss, DtssCursor, DtssRun, PoDomain, PoQuery};
use poset::Dag;
use std::collections::HashMap;

/// Aggregate statistics of one [`QuerySession`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Labelings served from the cache across the session's lifetime.
    pub hits: u64,
    /// Labelings computed (and cached) across the session's lifetime.
    pub misses: u64,
    /// Distinct DAG fingerprints currently cached.
    pub entries: usize,
}

/// A per-user (or per-connection) context over a [`Dtss`] operator that
/// caches DAG labelings across queries — see the module-level docs for the
/// rationale and an example.
pub struct QuerySession<'a> {
    dtss: &'a Dtss,
    labelings: HashMap<u64, PoDomain>,
    hits: u64,
    misses: u64,
    /// The data epoch ([`PointStore::generation`](crate::PointStore::generation))
    /// this session's caches were stamped under.
    data_generation: u64,
}

impl<'a> QuerySession<'a> {
    /// Opens a session over `dtss` with an empty labeling cache, stamped
    /// with the operator table's current epoch.
    pub fn new(dtss: &'a Dtss) -> Self {
        QuerySession {
            dtss,
            labelings: HashMap::new(),
            hits: 0,
            misses: 0,
            data_generation: dtss.table().generation(),
        }
    }

    /// The underlying operator.
    pub fn dtss(&self) -> &'a Dtss {
        self.dtss
    }

    /// The data epoch the session's caches are stamped under.
    pub fn data_generation(&self) -> u64 {
        self.data_generation
    }

    /// Re-stamps the session onto a new data epoch, dropping every
    /// epoch-scoped cache entry if the epoch actually moved. Returns
    /// `true` iff caches were invalidated.
    ///
    /// Streaming deployments rebuild their [`Dtss`] operator periodically
    /// from a [`StreamingSkyline`](crate::StreamingSkyline)'s mutable
    /// store; the session outlives those rebuilds, so the rebuilding
    /// caller hands the new store's generation here. The contract is that
    /// no cached entry outlives the data epoch it was stamped under —
    /// today the labeling cache is data-independent (DAG labelings depend
    /// only on the DAG), making the clear purely conservative, but any
    /// future data-dependent session cache (result digests, selectivity
    /// summaries) inherits the invalidation for free.
    pub fn sync_to_generation(&mut self, generation: u64) -> bool {
        if generation == self.data_generation {
            return false;
        }
        self.labelings.clear();
        self.data_generation = generation;
        true
    }

    /// Session-lifetime cache statistics.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.labelings.len(),
        }
    }

    /// Looks every query DAG up in the cache, labeling (and caching) the
    /// ones never seen before. A fingerprint hit is verified against the
    /// cached DAG's actual structure, so a 64-bit collision degrades to a
    /// miss instead of a silently wrong labeling.
    fn prepare(&mut self, q: &PoQuery) -> PreparedDomains {
        let mut domains = Vec::with_capacity(q.dags().len());
        let (mut hits, mut misses) = (0u64, 0u64);
        for dag in q.dags() {
            let fp = dag.fingerprint();
            match self.labelings.get(&fp) {
                Some(dom) if dom.dag().same_structure(dag) => {
                    hits += 1;
                    domains.push(dom.clone());
                }
                Some(_) => {
                    // Fingerprint collision: label fresh, keep the slot's
                    // first owner.
                    misses += 1;
                    domains.push(PoDomain::new(dag.clone()));
                }
                None => {
                    misses += 1;
                    let dom = PoDomain::new(dag.clone());
                    self.labelings.insert(fp, dom.clone());
                    domains.push(dom);
                }
            }
        }
        self.hits += hits;
        self.misses += misses;
        PreparedDomains {
            domains,
            hits,
            misses,
        }
    }

    /// Evaluates a dynamic skyline query, reusing cached labelings. The
    /// run's [`Metrics`](crate::Metrics) report this query's cache hits and
    /// misses; labeling is skipped entirely (both counters zero) when the
    /// operator serves the result from its digest cache.
    pub fn query(&mut self, q: &PoQuery) -> Result<DtssRun, CoreError> {
        let dtss = self.dtss;
        dtss.query_inner(q, None, Some(&mut || self.prepare(q)))
    }

    /// Fully dynamic variant (§V-B): TO dominance is folded around
    /// `reference`, labelings still come from the session cache.
    pub fn query_fully_dynamic(
        &mut self,
        q: &PoQuery,
        reference: &[u32],
    ) -> Result<DtssRun, CoreError> {
        assert_eq!(
            reference.len(),
            self.dtss.table().to_dims(),
            "reference must name one ideal value per TO attribute"
        );
        let dtss = self.dtss;
        dtss.query_inner(q, Some(reference), Some(&mut || self.prepare(q)))
    }

    /// Opens a pull-based cursor for `q`, reusing cached labelings. The
    /// cursor borrows only the operator, so it outlives later calls on the
    /// session.
    pub fn cursor(&mut self, q: &PoQuery) -> Result<DtssCursor<'a>, CoreError> {
        let dtss = self.dtss;
        dtss.cursor_inner(q, None, Some(&mut || self.prepare(q)))
    }

    /// Pre-warms the cache with a DAG (e.g. a canned preference template)
    /// without running a query. Returns `true` if the DAG was new.
    pub fn preload(&mut self, dag: &Dag) -> bool {
        let fp = dag.fingerprint();
        if let Some(dom) = self.labelings.get(&fp) {
            if dom.dag().same_structure(dag) {
                return false;
            }
        }
        self.misses += 1;
        self.labelings.insert(fp, PoDomain::new(dag.clone()));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DtssConfig;
    use crate::Table;
    use poset::PartialOrderBuilder;

    fn fig5_table() -> Table {
        let mut t = Table::new(2, 1);
        for (a1, a2, a3) in [
            (1, 2, 0),
            (3, 1, 0),
            (3, 4, 0),
            (4, 5, 0),
            (2, 2, 1),
            (1, 5, 1),
            (2, 5, 2),
            (3, 4, 2),
            (4, 4, 2),
            (5, 2, 2),
        ] {
            t.push(&[a1, a2], &[a3]);
        }
        t
    }

    fn order_b_over_c() -> Dag {
        let mut b = PartialOrderBuilder::new();
        b.values(["a", "b", "c"]);
        b.prefer("b", "c").unwrap();
        b.build().unwrap()
    }

    fn order_a_c_over_b() -> Dag {
        let mut b = PartialOrderBuilder::new();
        b.values(["a", "b", "c"]);
        b.prefer("a", "b").unwrap();
        b.prefer("c", "b").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn repeated_dag_hits_the_labeling_cache() {
        let dtss = Dtss::build(fig5_table(), vec![3], DtssConfig::default()).unwrap();
        let mut s = QuerySession::new(&dtss);
        let q = PoQuery::new(vec![order_b_over_c()]);

        let cold = s.query(&q).unwrap();
        assert_eq!(cold.metrics.label_cache_misses, 1);
        assert_eq!(cold.metrics.label_cache_hits, 0);

        // A *structurally equal* DAG built from scratch also hits.
        let warm = s.query(&PoQuery::new(vec![order_b_over_c()])).unwrap();
        assert_eq!(warm.metrics.label_cache_hits, 1);
        assert_eq!(warm.metrics.label_cache_misses, 0);
        assert_eq!(cold.skyline_records(), warm.skyline_records());

        // A different order misses and is cached in turn.
        let other = s.query(&PoQuery::new(vec![order_a_c_over_b()])).unwrap();
        assert_eq!(other.metrics.label_cache_misses, 1);
        assert_eq!(
            s.stats(),
            SessionStats {
                hits: 1,
                misses: 2,
                entries: 2
            }
        );
    }

    #[test]
    fn session_results_match_plain_queries() {
        let dtss = Dtss::build(fig5_table(), vec![3], DtssConfig::default()).unwrap();
        let mut s = QuerySession::new(&dtss);
        for dag_fn in [order_b_over_c as fn() -> Dag, order_a_c_over_b] {
            let q = PoQuery::new(vec![dag_fn()]);
            let plain = dtss.query(&q).unwrap();
            let via_session = s.query(&q).unwrap();
            assert_eq!(plain.skyline_records(), via_session.skyline_records());
            assert_eq!(plain.groups_skipped, via_session.groups_skipped);
        }
    }

    #[test]
    fn fully_dynamic_queries_share_the_cache() {
        let dtss = Dtss::build(fig5_table(), vec![3], DtssConfig::default()).unwrap();
        let mut s = QuerySession::new(&dtss);
        let q = PoQuery::new(vec![order_b_over_c()]);
        let a = s.query(&q).unwrap();
        assert_eq!(a.metrics.label_cache_misses, 1);
        // Same DAG, folded query: the labeling is reused across query kinds.
        let b = s.query_fully_dynamic(&q, &[3, 3]).unwrap();
        assert_eq!(b.metrics.label_cache_hits, 1);
        let plain = dtss.query_fully_dynamic(&q, &[3, 3]).unwrap();
        assert_eq!(plain.skyline_records(), b.skyline_records());
    }

    #[test]
    fn preload_warms_the_cache() {
        let dtss = Dtss::build(fig5_table(), vec![3], DtssConfig::default()).unwrap();
        let mut s = QuerySession::new(&dtss);
        assert!(s.preload(&order_b_over_c()));
        assert!(!s.preload(&order_b_over_c()), "second preload is a no-op");
        let run = s.query(&PoQuery::new(vec![order_b_over_c()])).unwrap();
        assert_eq!(run.metrics.label_cache_hits, 1);
        assert_eq!(run.metrics.label_cache_misses, 0);
    }

    #[test]
    fn fingerprint_collision_degrades_to_a_miss() {
        // Forge a 64-bit collision: plant a *structurally different* DAG's
        // labeling under the fingerprint of the order we are about to
        // query. A key-only cache would silently reuse the wrong labeling
        // and corrupt every dominance answer; the structural guard must
        // label afresh instead (and leave the slot's first owner in place).
        let dtss = Dtss::build(fig5_table(), vec![3], DtssConfig::default()).unwrap();
        let mut s = QuerySession::new(&dtss);
        let good = order_b_over_c();
        let wrong = order_a_c_over_b();
        assert!(!good.same_structure(&wrong));
        s.labelings
            .insert(good.fingerprint(), PoDomain::new(wrong.clone()));

        let q = PoQuery::new(vec![good]);
        let run = s.query(&q).unwrap();
        assert_eq!(run.metrics.label_cache_misses, 1, "collision is a miss");
        assert_eq!(run.metrics.label_cache_hits, 0);
        let plain = dtss.query(&q).unwrap();
        assert_eq!(run.skyline_records(), plain.skyline_records());
        // The forged entry keeps its slot (first owner wins)...
        assert!(s.labelings.values().any(|d| d.dag().same_structure(&wrong)));
        // ...so the same query misses again rather than ever serving it.
        let again = s.query(&q).unwrap();
        assert_eq!(again.metrics.label_cache_misses, 1);
    }

    #[test]
    fn generation_sync_invalidates_epoch_scoped_caches() {
        let dtss = Dtss::build(fig5_table(), vec![3], DtssConfig::default()).unwrap();
        let mut s = QuerySession::new(&dtss);
        assert_eq!(s.data_generation(), dtss.table().generation());
        let q = PoQuery::new(vec![order_b_over_c()]);
        s.query(&q).unwrap();
        // Same epoch: nothing is dropped, the cache stays warm.
        assert!(!s.sync_to_generation(s.data_generation()));
        assert_eq!(s.query(&q).unwrap().metrics.label_cache_hits, 1);
        // A new epoch drops every cached labeling and re-stamps.
        assert!(s.sync_to_generation(s.data_generation() + 1));
        assert_eq!(s.stats().entries, 0);
        assert_eq!(s.query(&q).unwrap().metrics.label_cache_misses, 1);
    }

    #[test]
    fn invalid_queries_leave_the_cache_untouched() {
        let dtss = Dtss::build(fig5_table(), vec![3], DtssConfig::default()).unwrap();
        let mut s = QuerySession::new(&dtss);
        let wrong = Dag::from_edges(5, &[]).unwrap();
        assert!(s.query(&PoQuery::new(vec![wrong])).is_err());
        assert!(s.query(&PoQuery::new(vec![])).is_err());
        assert_eq!(s.stats(), SessionStats::default());
    }
}

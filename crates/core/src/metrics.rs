use std::time::Duration;

/// Execution metrics common to all paper algorithms: the efficiency measures
/// of §III-A plus wall-clock CPU time, combined by the paper's IO charging
/// model (§VI-B "after charging 5 msec for each IO").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Pairwise dominance / containment checks.
    pub dominance_checks: u64,
    /// Invocations of a batched dominance kernel (each call examines zero
    /// or more pairs, all counted in `dominance_checks`).
    pub dominance_batch_calls: u64,
    /// [`LANES`](skyline::LANES)-wide chunk iterations the examined pairs
    /// amount to (`Σ ⌈examined/LANES⌉` per batch call). Derived from the
    /// pair counts alone, so it is identical across kernel variants.
    pub kernel_chunks: u64,
    /// Disk-page reads (R-tree node accesses plus, for rebuild-style
    /// baselines, sequential data passes).
    pub io_reads: u64,
    /// Disk-page writes (index rebuilds of the dynamic baselines).
    pub io_writes: u64,
    /// Heap pops performed by best-first traversals.
    pub heap_pops: u64,
    /// Skyline points emitted.
    pub results: u64,
    /// Per-attribute DAG labelings served from a query-session cache
    /// instead of being recomputed (dTSS §V-A through
    /// [`QuerySession`](crate::QuerySession)).
    pub label_cache_hits: u64,
    /// Per-attribute DAG labelings that had to be computed from scratch.
    pub label_cache_misses: u64,
    /// Pairs examined by the cross-shard merge phase alone (a subset of
    /// `dominance_checks`; the quantity the README's merge-cost bound
    /// `Σᵢ |localᵢ| · Σⱼ≠ᵢ |localⱼ|` bounds).
    pub merge_pair_checks: u64,
    /// Equal-score strata processed by the sorted merge (the units of its
    /// frozen-prefix parallelism).
    pub merge_strata: u64,
    /// Failed shard attempts the fault-tolerant executor retried (each
    /// regular-path attempt that panicked or failed validation counts
    /// once). Deterministic under a seeded
    /// [`FaultPlan`](crate::parallel::FaultPlan), so thread-count
    /// invariant like every other counter.
    pub shard_retries: u64,
    /// Shards recomputed on the scalar-oracle kernel path after exhausting
    /// their regular retry budget — the recovery ladder's last resort.
    pub shard_fallbacks: u64,
    /// Faults the active [`FaultPlan`](crate::parallel::FaultPlan)
    /// actually fired (injected panics + injected corruptions, across all
    /// attempts). Zero on fault-free runs.
    pub faults_injected: u64,
    /// Tuples appended through
    /// [`StreamingSkyline::insert`](crate::StreamingSkyline::insert).
    pub stream_inserts: u64,
    /// Tuples retired from the live window — explicit
    /// [`expire`](crate::StreamingSkyline::expire) calls plus automatic
    /// sliding-window evictions.
    pub stream_expirations: u64,
    /// Expirations that removed a skyline member and therefore triggered a
    /// delta repair (promotion search) instead of a no-op retirement.
    pub stream_repairs: u64,
    /// Candidates examined by repair promotion searches — the live,
    /// non-skyline records inside the expired member's dominance region
    /// that a repair had to screen. The delta-maintenance win is this
    /// staying far below a from-scratch recompute's `dominance_checks`.
    pub repair_candidates: u64,
    /// Worker processes the out-of-process executor observed dying
    /// mid-attempt (nonzero exit, EOF, truncated frame) — each death
    /// counts once and triggers a respawn plus a retry. Deterministic
    /// under a seeded process-fault plan, so invariant across thread
    /// counts *and* worker-pool sizes; always zero in-process.
    pub worker_crashes: u64,
    /// Workers killed by the supervisor for blowing the
    /// [`ExecPolicy`](crate::ExecPolicy) attempt deadline. The deadline
    /// only selects the recovery path — results never depend on it.
    pub worker_timeouts: u64,
    /// Response frames rejected as untrustworthy: checksum mismatch,
    /// undecodable payload, or decoded records outside the shard range.
    pub frames_corrupted: u64,
    /// Bytes of complete IPC frames exchanged with worker processes
    /// (requests written + responses fully read, across all attempts).
    /// A pure function of the jobs and the fault plan — pool-size- and
    /// thread-invariant like every other counter.
    pub ipc_bytes: u64,
    /// Measured CPU time (single-threaded wall clock of the run).
    pub cpu: Duration,
}

impl Metrics {
    /// Total IOs, reads plus writes.
    pub fn io_total(&self) -> u64 {
        self.io_reads + self.io_writes
    }

    /// Componentwise sum.
    pub fn merge(&self, other: &Metrics) -> Metrics {
        Metrics {
            dominance_checks: self.dominance_checks + other.dominance_checks,
            dominance_batch_calls: self.dominance_batch_calls + other.dominance_batch_calls,
            kernel_chunks: self.kernel_chunks + other.kernel_chunks,
            io_reads: self.io_reads + other.io_reads,
            io_writes: self.io_writes + other.io_writes,
            heap_pops: self.heap_pops + other.heap_pops,
            results: self.results + other.results,
            label_cache_hits: self.label_cache_hits + other.label_cache_hits,
            label_cache_misses: self.label_cache_misses + other.label_cache_misses,
            merge_pair_checks: self.merge_pair_checks + other.merge_pair_checks,
            merge_strata: self.merge_strata + other.merge_strata,
            shard_retries: self.shard_retries + other.shard_retries,
            shard_fallbacks: self.shard_fallbacks + other.shard_fallbacks,
            faults_injected: self.faults_injected + other.faults_injected,
            stream_inserts: self.stream_inserts + other.stream_inserts,
            stream_expirations: self.stream_expirations + other.stream_expirations,
            stream_repairs: self.stream_repairs + other.stream_repairs,
            repair_candidates: self.repair_candidates + other.repair_candidates,
            worker_crashes: self.worker_crashes + other.worker_crashes,
            worker_timeouts: self.worker_timeouts + other.worker_timeouts,
            frames_corrupted: self.frames_corrupted + other.frames_corrupted,
            ipc_bytes: self.ipc_bytes + other.ipc_bytes,
            cpu: self.cpu + other.cpu,
        }
    }

    /// Accounts one batched-kernel invocation that examined `examined`
    /// pairs.
    #[inline]
    pub fn batch(&mut self, examined: u64) {
        self.dominance_checks += examined;
        self.dominance_batch_calls += 1;
        self.kernel_chunks += examined.div_ceil(skyline::LANES as u64);
    }
}

/// The paper's cost model: total time = CPU + `io_cost` per page IO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Charged cost of one page IO (the paper uses 5 ms).
    pub io_cost: Duration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            io_cost: Duration::from_millis(5),
        }
    }
}

impl CostModel {
    /// Simulated total time of a run under this model.
    pub fn total_time(&self, m: &Metrics) -> Duration {
        m.cpu + self.io_cost * (m.io_total() as u32)
    }

    /// CPU share of the simulated total (the percentages annotated on
    /// Fig. 7).
    pub fn cpu_fraction(&self, m: &Metrics) -> f64 {
        let total = self.total_time(m).as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            m.cpu.as_secs_f64() / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let a = Metrics {
            dominance_checks: 1,
            dominance_batch_calls: 8,
            kernel_chunks: 11,
            io_reads: 2,
            io_writes: 3,
            heap_pops: 4,
            results: 5,
            label_cache_hits: 6,
            label_cache_misses: 7,
            merge_pair_checks: 9,
            merge_strata: 10,
            shard_retries: 11,
            shard_fallbacks: 12,
            faults_injected: 13,
            stream_inserts: 14,
            stream_expirations: 15,
            stream_repairs: 16,
            repair_candidates: 17,
            worker_crashes: 18,
            worker_timeouts: 19,
            frames_corrupted: 20,
            ipc_bytes: 21,
            cpu: Duration::from_millis(10),
        };
        let b = a;
        let m = a.merge(&b);
        assert_eq!(m.dominance_checks, 2);
        assert_eq!(m.dominance_batch_calls, 16);
        assert_eq!(m.kernel_chunks, 22);
        assert_eq!(m.io_total(), 10);
        assert_eq!(m.label_cache_hits, 12);
        assert_eq!(m.label_cache_misses, 14);
        assert_eq!(m.merge_pair_checks, 18);
        assert_eq!(m.merge_strata, 20);
        assert_eq!(m.shard_retries, 22);
        assert_eq!(m.shard_fallbacks, 24);
        assert_eq!(m.faults_injected, 26);
        assert_eq!(m.stream_inserts, 28);
        assert_eq!(m.stream_expirations, 30);
        assert_eq!(m.stream_repairs, 32);
        assert_eq!(m.repair_candidates, 34);
        assert_eq!(m.worker_crashes, 36);
        assert_eq!(m.worker_timeouts, 38);
        assert_eq!(m.frames_corrupted, 40);
        assert_eq!(m.ipc_bytes, 42);
        assert_eq!(m.cpu, Duration::from_millis(20));
    }

    #[test]
    fn batch_accounts_pairs_and_calls() {
        let mut m = Metrics::default();
        m.batch(9);
        m.batch(0);
        assert_eq!(m.dominance_checks, 9);
        assert_eq!(m.dominance_batch_calls, 2);
        assert_eq!(m.kernel_chunks, 2, "9 pairs span two 8-lane chunks");
    }

    #[test]
    fn cost_model_charges_ios() {
        let m = Metrics {
            io_reads: 100,
            cpu: Duration::from_millis(500),
            ..Default::default()
        };
        let model = CostModel::default();
        assert_eq!(model.total_time(&m), Duration::from_millis(1000));
        assert!((model.cpu_fraction(&m) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_run_has_zero_fraction() {
        let model = CostModel::default();
        assert_eq!(model.cpu_fraction(&Metrics::default()), 0.0);
    }
}

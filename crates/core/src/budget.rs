//! **Work budgets and graceful degradation** — the anytime layer of the
//! cursor model.
//!
//! A [`Budget`] is an allowance of **pair checks**
//! ([`Metrics::dominance_checks`] units) — the same clock-free,
//! machine-independent currency the [`ShardPlan`](crate::ShardPlan) cost
//! model estimates in — so admission control can bound a query's work
//! deterministically: the same budget on the same data always confirms
//! the same records, at any thread count, on any machine.
//!
//! [`BudgetedCursor`] wraps any [`SkylineCursor`]. Before each
//! confirmation it compares the cursor's accumulated `dominance_checks`
//! against the allowance and stops — permanently — once the allowance is
//! spent. The last confirmation may overshoot (one `next()` is the unit
//! of work and is never split); the budget bounds *when the cursor stops
//! asking for more*, which is the bound admission control needs.
//!
//! # The anytime guarantee
//!
//! Every point a cursor in this workspace emits is **confirmed**: proven
//! undominated at emission time and never retracted (the paper's
//! progressiveness property, §IV). Stopping early therefore yields a
//! *sound prefix* of the exact skyline — every returned record is truly
//! skyline, none is ever wrong — and the prefix equals the first `k`
//! entries of the untruncated emission sequence. [`BudgetOutcome`] makes
//! the distinction explicit: [`Complete`](BudgetOutcome::Complete) when
//! the skyline finished inside the allowance,
//! [`Exhausted`](BudgetOutcome::Exhausted) with the confirmed prefix
//! otherwise.

use crate::cursor::SkylineCursor;
use crate::stss::SkylinePoint;
use crate::{Metrics, ProgressSample};

/// An allowance of pair-check work ([`Metrics::dominance_checks`] units).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    limit: Option<u64>,
}

impl Budget {
    /// No limit: budgeted runs behave exactly like unbudgeted ones.
    pub const UNLIMITED: Budget = Budget { limit: None };

    /// An allowance of `limit` pair checks.
    pub fn pair_checks(limit: u64) -> Budget {
        Budget { limit: Some(limit) }
    }

    /// The allowance, `None` for [`UNLIMITED`](Self::UNLIMITED).
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    /// True iff `spent` pair checks exhaust this allowance.
    pub fn exhausted_by(&self, spent: u64) -> bool {
        self.limit.is_some_and(|l| spent >= l)
    }
}

impl From<Option<u64>> for Budget {
    fn from(limit: Option<u64>) -> Budget {
        Budget { limit }
    }
}

/// How a budgeted run ended.
#[derive(Debug, Clone)]
pub enum BudgetOutcome {
    /// The full skyline was confirmed within the allowance.
    Complete {
        /// The complete skyline, in the cursor's emission order.
        skyline: Vec<SkylinePoint>,
        /// Final run metrics.
        metrics: Metrics,
    },
    /// The allowance ran out first. `confirmed_prefix` is a *sound*
    /// prefix of the exact skyline: exactly the first
    /// `confirmed_prefix.len()` points the untruncated cursor would have
    /// emitted, each one a true skyline member.
    Exhausted {
        /// The confirmed points emitted before the budget was spent.
        confirmed_prefix: Vec<SkylinePoint>,
        /// Metrics at the moment the cursor stopped (the final
        /// confirmation may overshoot the allowance — see the module
        /// docs).
        metrics: Metrics,
    },
}

impl BudgetOutcome {
    /// The confirmed points, whole skyline or prefix.
    pub fn points(&self) -> &[SkylinePoint] {
        match self {
            BudgetOutcome::Complete { skyline, .. } => skyline,
            BudgetOutcome::Exhausted {
                confirmed_prefix, ..
            } => confirmed_prefix,
        }
    }

    /// The run's metrics.
    pub fn metrics(&self) -> &Metrics {
        match self {
            BudgetOutcome::Complete { metrics, .. } | BudgetOutcome::Exhausted { metrics, .. } => {
                metrics
            }
        }
    }

    /// True iff the skyline completed within the allowance.
    pub fn is_complete(&self) -> bool {
        matches!(self, BudgetOutcome::Complete { .. })
    }
}

/// A [`SkylineCursor`] decorator that stops confirming once its inner
/// cursor's `dominance_checks` spend exhausts a [`Budget`]. Works over
/// every cursor family in the workspace — sTSS, dTSS, the SDC baselines
/// and the classic engines all stream through the same trait.
pub struct BudgetedCursor<C> {
    inner: C,
    budget: Budget,
    exhausted: bool,
}

impl<C: SkylineCursor> BudgetedCursor<C> {
    /// Wraps `inner` under `budget`.
    pub fn new(inner: C, budget: Budget) -> BudgetedCursor<C> {
        BudgetedCursor {
            inner,
            budget,
            exhausted: false,
        }
    }

    /// True iff the budget stopped the cursor before the inner skyline
    /// completed (stays `false` for runs that finish in allowance).
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Drains the cursor and reports how the run ended.
    pub fn into_outcome(mut self) -> BudgetOutcome {
        let points = self.take_k(usize::MAX);
        let metrics = self.inner.metrics();
        if self.exhausted {
            BudgetOutcome::Exhausted {
                confirmed_prefix: points,
                metrics,
            }
        } else {
            BudgetOutcome::Complete {
                skyline: points,
                metrics,
            }
        }
    }

    /// One-shot convenience: run `inner` to completion or exhaustion.
    pub fn run(inner: C, budget: Budget) -> BudgetOutcome {
        BudgetedCursor::new(inner, budget).into_outcome()
    }
}

impl<C: SkylineCursor> SkylineCursor for BudgetedCursor<C> {
    /// Confirms the next point unless the allowance is already spent.
    /// The check happens *before* each confirmation: work inside one
    /// `next()` is never split, so the final confirmation may overshoot,
    /// after which the cursor reports `None` forever.
    fn next(&mut self) -> Option<SkylinePoint> {
        if self.exhausted {
            return None;
        }
        if self
            .budget
            .exhausted_by(self.inner.metrics().dominance_checks)
        {
            self.exhausted = true;
            return None;
        }
        self.inner.next()
    }

    fn metrics(&self) -> Metrics {
        self.inner.metrics()
    }

    fn progress(&self) -> ProgressSample {
        self.inner.progress()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SkylineEngine, Stss, StssConfig, Table};
    use poset::Dag;

    fn engine() -> Stss {
        // Anti-correlated TO pair: every record is skyline on the TO
        // attributes alone, so the run has a long emission sequence with
        // plenty of pair-check spend to ration.
        let mut t = Table::new(2, 1);
        for i in 0..60u32 {
            t.push(&[i, 59 - i], &[i % 9]);
        }
        Stss::build(t, vec![Dag::paper_example()], StssConfig::default()).expect("build")
    }

    #[test]
    fn unlimited_budget_changes_nothing() {
        let e = engine();
        let (full, full_m) = e.collect_skyline();
        let out = BudgetedCursor::run(e.open(), Budget::UNLIMITED);
        assert!(out.is_complete());
        assert_eq!(out.points(), &full[..]);
        assert_eq!(out.metrics().dominance_checks, full_m.dominance_checks);
    }

    #[test]
    fn every_exhausted_outcome_is_a_true_prefix() {
        let e = engine();
        let (full, full_m) = e.collect_skyline();
        assert!(full.len() > 2, "need a non-trivial skyline");
        for limit in [
            0,
            1,
            full_m.dominance_checks / 3,
            full_m.dominance_checks / 2,
        ] {
            let out = BudgetedCursor::run(e.open(), Budget::pair_checks(limit));
            let got = out.points();
            assert_eq!(
                got,
                &full[..got.len()],
                "limit={limit}: prefix of the exact emission sequence"
            );
            if !out.is_complete() {
                assert!(got.len() < full.len());
            }
        }
        // A budget at least the full cost completes.
        let out = BudgetedCursor::run(e.open(), Budget::pair_checks(full_m.dominance_checks + 1));
        assert!(out.is_complete());
        assert_eq!(out.points().len(), full.len());
    }

    #[test]
    fn zero_budget_confirms_nothing() {
        let e = engine();
        let out = BudgetedCursor::run(e.open(), Budget::pair_checks(0));
        match out {
            BudgetOutcome::Exhausted {
                confirmed_prefix, ..
            } => assert!(confirmed_prefix.is_empty()),
            BudgetOutcome::Complete { .. } => {
                unreachable!("zero allowance cannot complete a non-empty run")
            }
        }
    }

    #[test]
    fn exhausted_cursor_stays_exhausted() {
        let e = engine();
        let mut c = BudgetedCursor::new(e.open(), Budget::pair_checks(1));
        while c.next().is_some() {}
        assert!(c.exhausted());
        assert!(c.next().is_none(), "no resurrection after exhaustion");
    }
}

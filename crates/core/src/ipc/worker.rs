//! **Worker side** of the out-of-process executor: a blocking
//! frame-serve loop over stdin/stdout.
//!
//! A worker process is deliberately dumb — read a request frame, act out
//! any injected fault instruction, compute, reply, repeat until stdin
//! closes. All supervision (deadlines, respawns, retry ladders, metrics)
//! lives on the other side of the pipe: a worker that panics simply dies
//! with the default abortive exit, which the supervisor observes as EOF
//! and maps onto the recovery ladder. That keeps `catch_unwind` fenced
//! to the in-process executor and makes worker crashes *real* crashes —
//! the whole point of the out-of-process robustness surface.
//!
//! Fault instructions arrive on the request frame (the supervisor
//! computes the deterministic site; the worker only obeys):
//!
//! * [`Kill`](ProcessFaultKind::Kill) — exit immediately with status 2,
//!   before computing anything.
//! * [`Stall`](ProcessFaultKind::Stall) — park forever; the supervisor's
//!   attempt deadline fires and kills the process.
//! * [`CorruptFrame`](ProcessFaultKind::CorruptFrame) — compute
//!   honestly, then reply with one payload byte flipped under the stale
//!   checksum ([`encode_frame_corrupted`]).

use super::protocol::{
    decode_request, encode_err, encode_frame, encode_frame_corrupted, encode_ok, read_frame,
    FrameError,
};
use super::tasks::dispatch_builtin;
use crate::executor::{ProcessFaultKind, ShardCtx};
use crate::store::RecordId;
use crate::Metrics;
use std::io::Write;

/// How a worker interprets the opaque task bytes of a request: returns
/// the records and metrics of the attempt, or a message the serve loop
/// reports as a `RESP_ERR` frame. Panics are *not* caught — a panicking
/// dispatch kills the process, which is exactly the crash signal the
/// supervisor recovers from.
pub type TaskDispatch = fn(&[u8], ShardCtx) -> Result<(Vec<RecordId>, Metrics), String>;

/// Serves frames from `input` to `output` until `input` reaches a clean
/// end-of-stream (the supervisor dropping the pipe is the shutdown
/// signal). Returns `Err` on a malformed input stream or a broken output
/// pipe — worker `main`s turn that into a nonzero exit.
pub fn serve_io(
    input: &mut impl std::io::Read,
    output: &mut impl Write,
    dispatch: TaskDispatch,
) -> std::io::Result<()> {
    loop {
        let payload = match read_frame(input) {
            Ok(p) => p,
            Err(FrameError::Eof) => return Ok(()),
            Err(e) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("request stream: {e}"),
                ))
            }
        };
        let frame = match decode_request(&payload) {
            Ok(req) => {
                match req.fault {
                    Some(ProcessFaultKind::Kill) => std::process::exit(2),
                    Some(ProcessFaultKind::Stall) => loop {
                        // Park forever (spurious unparks just re-park):
                        // the supervisor's deadline kills the process.
                        std::thread::park();
                    },
                    Some(ProcessFaultKind::CorruptFrame) | None => {}
                }
                let ctx = ShardCtx {
                    shard: req.shard,
                    attempt: req.attempt,
                    kernel: req.kernel,
                };
                let resp = match dispatch(req.task, ctx) {
                    Ok((records, metrics)) => encode_ok(&records, &metrics),
                    Err(msg) => encode_err(&msg),
                };
                if req.fault == Some(ProcessFaultKind::CorruptFrame) {
                    encode_frame_corrupted(&resp)
                } else {
                    encode_frame(&resp)
                }
            }
            Err(e) => encode_frame(&encode_err(&format!("bad request: {e}"))),
        };
        output.write_all(&frame)?;
        output.flush()?;
    }
}

/// Serves the builtin task codecs over the process's stdin/stdout — the
/// body of every `tss-worker` entry point. Bench binaries that add their
/// own codecs call [`serve_io`] with a composed dispatch instead.
pub fn serve_builtin() -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_io(&mut stdin.lock(), &mut stdout.lock(), dispatch_builtin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipc::protocol::{decode_response, encode_request, Response};
    use crate::ipc::tasks::encode_local_skyline;
    use crate::Table;
    use skyline::Kernel;

    fn request(fault: Option<ProcessFaultKind>) -> Vec<u8> {
        let mut t = Table::new(2, 0);
        for i in 0..20u32 {
            t.push(&[i % 7, (i * 3) % 7], &[]);
        }
        let task = encode_local_skyline(&t.shards(1)[0], &[]);
        encode_frame(&encode_request(0, 0, Kernel::Scalar, fault, &task))
    }

    #[test]
    fn serves_requests_until_eof() {
        let input = [request(None), request(None)].concat();
        let mut output = Vec::new();
        serve_io(&mut &input[..], &mut output, dispatch_builtin).expect("clean serve");
        let mut cursor = &output[..];
        for _ in 0..2 {
            let payload = read_frame(&mut cursor).expect("response frame");
            match decode_response(&payload).expect("decodes") {
                Response::Ok(records, m) => {
                    assert!(!records.is_empty());
                    assert_eq!(m.results, records.len() as u64);
                }
                Response::Err(e) => unreachable!("{e}"),
            }
        }
        assert_eq!(read_frame(&mut cursor), Err(FrameError::Eof));
    }

    #[test]
    fn corrupt_frame_instruction_breaks_the_checksum() {
        let input = request(Some(ProcessFaultKind::CorruptFrame));
        let mut output = Vec::new();
        serve_io(&mut &input[..], &mut output, dispatch_builtin).expect("clean serve");
        let mut cursor = &output[..];
        assert!(
            matches!(read_frame(&mut cursor), Err(FrameError::BadChecksum { .. })),
            "the corrupted response must fail its checksum"
        );
    }

    #[test]
    fn undecodable_tasks_become_error_responses() {
        let input = encode_frame(&encode_request(0, 0, Kernel::Scalar, None, &[99, 1, 2]));
        let mut output = Vec::new();
        serve_io(&mut &input[..], &mut output, dispatch_builtin).expect("clean serve");
        let payload = read_frame(&mut &output[..]).expect("response frame");
        match decode_response(&payload).expect("decodes") {
            Response::Err(e) => assert!(e.contains("unknown builtin task codec"), "{e}"),
            Response::Ok(..) => unreachable!("garbage task must not succeed"),
        }
    }

    #[test]
    fn torn_request_streams_error_out() {
        let input = request(None);
        let mut output = Vec::new();
        let r = serve_io(
            &mut &input[..input.len() - 2],
            &mut output,
            dispatch_builtin,
        );
        assert!(r.is_err(), "mid-frame EOF is not a clean shutdown");
    }
}

//! **Wire protocol** of the out-of-process executor — hand-rolled
//! length-prefixed little-endian framing with a per-frame FNV-1a
//! checksum. No serde, no external dependencies: every encoder writes
//! plain `u32`/`u64` LE words into a `Vec<u8>`, every decoder reads them
//! back through a bounds-checked [`Reader`].
//!
//! ```text
//! frame   := [payload_len: u32 LE] [payload: payload_len bytes]
//!            [checksum: u64 LE]           (checksum = FNV-1a(payload))
//! payload := [kind: u8] kind-specific body
//! kind    := REQ (1) | RESP_OK (2) | RESP_ERR (3)
//! ```
//!
//! * `REQ` — shard index, attempt, kernel byte, fault-instruction byte,
//!   then opaque task bytes (first task byte selects a codec — see
//!   [`tasks`](super::tasks)).
//! * `RESP_OK` — the record-id list plus the **full** [`Metrics`] struct,
//!   every field in declaration order (`cpu` as nanoseconds). The metrics
//!   exhaustiveness lint pins [`put_metrics`] as a sink, so a new counter
//!   cannot silently vanish across the process boundary.
//! * `RESP_ERR` — a UTF-8 error message from the worker.
//!
//! Corruption is detected at two independent layers: the frame checksum
//! (flipped bytes, torn writes) and the supervisor's merge-side
//! validation (a well-formed frame carrying a wrong local skyline).
//! [`encode_frame_corrupted`] deliberately produces the first kind — one
//! hash-picked payload byte flipped under a stale checksum — for the
//! deterministic `CorruptFrame` fault injection.

use crate::executor::ProcessFaultKind;
use crate::Metrics;
use skyline::Kernel;
use std::hash::Hasher;
use std::io::Read;
use std::time::Duration;

/// Payload kind byte of a request frame.
pub const REQ: u8 = 1;
/// Payload kind byte of a successful response.
pub const RESP_OK: u8 = 2;
/// Payload kind byte of a worker-reported failure.
pub const RESP_ERR: u8 = 3;

/// Upper bound on a frame payload — anything larger is a corrupt length
/// prefix, not a real task (the whole bench corpus is megabytes).
pub const MAX_FRAME: u32 = 1 << 30;

/// Fixed framing overhead: the length prefix plus the checksum.
pub const FRAME_OVERHEAD: u64 = 4 + 8;

/// The pinned payload checksum: FNV-1a over the raw bytes.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = poset::Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Why a frame could not be read off a worker pipe. The supervisor maps
/// these onto [`ShardErrorKind`](crate::error::ShardErrorKind)s:
/// end-of-stream and truncation mean the
/// worker died, a checksum mismatch means the frame cannot be trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Clean end of stream before any byte of a frame.
    Eof,
    /// The stream ended mid-frame.
    Truncated,
    /// The payload does not match its checksum. Carries the total on-wire
    /// size of the (completely read) frame so `ipc_bytes` accounting
    /// stays exact even for rejected frames.
    BadChecksum {
        /// Total bytes the corrupt frame occupied on the wire.
        frame_bytes: u64,
    },
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge(u32),
    /// An I/O error other than end-of-stream.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "end of stream"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::BadChecksum { frame_bytes } => {
                write!(f, "checksum mismatch on a {frame_bytes}-byte frame")
            }
            FrameError::TooLarge(len) => {
                write!(f, "length prefix {len} exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

/// Frames a payload: length prefix, bytes, FNV-1a checksum.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD as usize);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out
}

/// Frames a payload with exactly one hash-picked byte flipped under the
/// **stale** checksum of the original — the deterministic
/// [`CorruptFrame`](ProcessFaultKind::CorruptFrame) injection. The
/// receiver must reject the frame as [`FrameError::BadChecksum`].
pub fn encode_frame_corrupted(payload: &[u8]) -> Vec<u8> {
    let checksum = fnv64(payload);
    let mut bytes = payload.to_vec();
    if !bytes.is_empty() {
        let ix = (checksum as usize) % bytes.len();
        bytes[ix] ^= 0x55;
    }
    let mut out = Vec::with_capacity(bytes.len() + FRAME_OVERHEAD as usize);
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&bytes);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Reads exactly `buf.len()` bytes; `Eof` only when the stream ends
/// before the first byte *and* the caller said a clean end is possible
/// here (`at_boundary`).
fn read_full(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<(), FrameError> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if got == 0 && at_boundary {
                    FrameError::Eof
                } else {
                    FrameError::Truncated
                })
            }
            Ok(k) => got += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    Ok(())
}

/// Reads one frame and verifies its checksum, returning the payload.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut len_buf = [0u8; 4];
    read_full(r, &mut len_buf, true)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_full(r, &mut payload, false)?;
    let mut sum_buf = [0u8; 8];
    read_full(r, &mut sum_buf, false)?;
    if fnv64(&payload) != u64::from_le_bytes(sum_buf) {
        return Err(FrameError::BadChecksum {
            frame_bytes: u64::from(len) + FRAME_OVERHEAD,
        });
    }
    Ok(payload)
}

// --- Little-endian buffer primitives ------------------------------------

/// Appends a `u32` LE.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` LE.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed `u32` slice.
pub fn put_u32s(buf: &mut Vec<u8>, vs: &[u32]) {
    put_u32(buf, vs.len() as u32);
    for &v in vs {
        put_u32(buf, v);
    }
}

/// Bounds-checked sequential decoder over a payload. Every getter
/// returns `Err` on underflow instead of panicking — a corrupt frame
/// must surface as
/// [`FrameCorrupted`](crate::error::ShardErrorKind::FrameCorrupted),
/// never as a supervisor crash.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Decode failure: what the reader expected when the payload ran out (or
/// carried an invalid discriminant).
pub type DecodeError = &'static str;

impl<'a> Reader<'a> {
    /// A reader over the whole payload.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: DecodeError) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(what);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Next byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Next `u32` LE.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let s = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Next `u64` LE.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let s = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    /// Next length-prefixed `u32` slice.
    pub fn u32s(&mut self) -> Result<Vec<u32>, DecodeError> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    /// Everything left.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }
}

// --- Kernel and fault bytes ---------------------------------------------

/// One-byte kernel encoding (`0` scalar, `1` lanes).
pub fn kernel_byte(k: Kernel) -> u8 {
    match k {
        Kernel::Scalar => 0,
        Kernel::Lanes => 1,
    }
}

/// Inverse of [`kernel_byte`].
pub fn kernel_from_byte(b: u8) -> Result<Kernel, DecodeError> {
    match b {
        0 => Ok(Kernel::Scalar),
        1 => Ok(Kernel::Lanes),
        _ => Err("kernel byte"),
    }
}

fn fault_byte(f: Option<ProcessFaultKind>) -> u8 {
    match f {
        None => 0,
        Some(ProcessFaultKind::Kill) => 1,
        Some(ProcessFaultKind::Stall) => 2,
        Some(ProcessFaultKind::CorruptFrame) => 3,
    }
}

fn fault_from_byte(b: u8) -> Result<Option<ProcessFaultKind>, DecodeError> {
    match b {
        0 => Ok(None),
        1 => Ok(Some(ProcessFaultKind::Kill)),
        2 => Ok(Some(ProcessFaultKind::Stall)),
        3 => Ok(Some(ProcessFaultKind::CorruptFrame)),
        _ => Err("fault byte"),
    }
}

// --- Requests ------------------------------------------------------------

/// A decoded request frame: which shard attempt to run, under which
/// kernel, with which injected fault (the supervisor computes the fault
/// site deterministically and *instructs* the worker, so injection is
/// invariant to pool size and scheduling), plus the opaque task bytes.
pub struct Request<'a> {
    /// Shard index of the attempt.
    pub shard: usize,
    /// Zero-based attempt number.
    pub attempt: u32,
    /// Kernel the attempt must compute with.
    pub kernel: Kernel,
    /// Fault the worker must act out before/while responding.
    pub fault: Option<ProcessFaultKind>,
    /// Codec-tagged task bytes (see [`tasks`](super::tasks)).
    pub task: &'a [u8],
}

/// Encodes a request payload (kind byte included).
pub fn encode_request(
    shard: usize,
    attempt: u32,
    kernel: Kernel,
    fault: Option<ProcessFaultKind>,
    task: &[u8],
) -> Vec<u8> {
    let mut p = Vec::with_capacity(1 + 4 + 4 + 1 + 1 + task.len());
    p.push(REQ);
    put_u32(&mut p, shard as u32);
    put_u32(&mut p, attempt);
    p.push(kernel_byte(kernel));
    p.push(fault_byte(fault));
    p.extend_from_slice(task);
    p
}

/// Decodes a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request<'_>, DecodeError> {
    let mut r = Reader::new(payload);
    if r.u8()? != REQ {
        return Err("request kind byte");
    }
    let shard = r.u32()? as usize;
    let attempt = r.u32()?;
    let kernel = kernel_from_byte(r.u8()?)?;
    let fault = fault_from_byte(r.u8()?)?;
    Ok(Request {
        shard,
        attempt,
        kernel,
        fault,
        task: r.rest(),
    })
}

// --- Responses -----------------------------------------------------------

/// A decoded response payload.
pub enum Response {
    /// The attempt succeeded: local records plus the attempt's metrics.
    Ok(Vec<u32>, Metrics),
    /// The worker reported a failure (undecodable task, unknown codec).
    Err(String),
}

/// Encodes a successful response payload.
pub fn encode_ok(records: &[u32], metrics: &Metrics) -> Vec<u8> {
    let mut p = Vec::with_capacity(1 + 4 + records.len() * 4 + 23 * 8);
    p.push(RESP_OK);
    put_u32s(&mut p, records);
    put_metrics(&mut p, metrics);
    p
}

/// Encodes a worker-failure response payload.
pub fn encode_err(msg: &str) -> Vec<u8> {
    let mut p = Vec::with_capacity(1 + msg.len());
    p.push(RESP_ERR);
    p.extend_from_slice(msg.as_bytes());
    p
}

/// Decodes a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, DecodeError> {
    let mut r = Reader::new(payload);
    match r.u8()? {
        RESP_OK => {
            let records = r.u32s()?;
            let metrics = get_metrics(&mut r)?;
            if r.remaining() != 0 {
                return Err("trailing response bytes");
            }
            Ok(Response::Ok(records, metrics))
        }
        RESP_ERR => Ok(Response::Err(
            String::from_utf8_lossy(r.rest()).into_owned(),
        )),
        _ => Err("response kind byte"),
    }
}

/// Serializes the **entire** [`Metrics`] struct, every field in
/// declaration order, `cpu` as nanoseconds. Pinned as a sink by the
/// metrics-exhaustiveness lint: adding a counter without plumbing it
/// through the wire fails `cargo run -p xtask -- lint`.
pub fn put_metrics(buf: &mut Vec<u8>, m: &Metrics) {
    put_u64(buf, m.dominance_checks);
    put_u64(buf, m.dominance_batch_calls);
    put_u64(buf, m.kernel_chunks);
    put_u64(buf, m.io_reads);
    put_u64(buf, m.io_writes);
    put_u64(buf, m.heap_pops);
    put_u64(buf, m.results);
    put_u64(buf, m.label_cache_hits);
    put_u64(buf, m.label_cache_misses);
    put_u64(buf, m.merge_pair_checks);
    put_u64(buf, m.merge_strata);
    put_u64(buf, m.shard_retries);
    put_u64(buf, m.shard_fallbacks);
    put_u64(buf, m.faults_injected);
    put_u64(buf, m.stream_inserts);
    put_u64(buf, m.stream_expirations);
    put_u64(buf, m.stream_repairs);
    put_u64(buf, m.repair_candidates);
    put_u64(buf, m.worker_crashes);
    put_u64(buf, m.worker_timeouts);
    put_u64(buf, m.frames_corrupted);
    put_u64(buf, m.ipc_bytes);
    put_u64(buf, m.cpu.as_nanos() as u64);
}

/// Inverse of [`put_metrics`].
pub fn get_metrics(r: &mut Reader<'_>) -> Result<Metrics, DecodeError> {
    Ok(Metrics {
        dominance_checks: r.u64()?,
        dominance_batch_calls: r.u64()?,
        kernel_chunks: r.u64()?,
        io_reads: r.u64()?,
        io_writes: r.u64()?,
        heap_pops: r.u64()?,
        results: r.u64()?,
        label_cache_hits: r.u64()?,
        label_cache_misses: r.u64()?,
        merge_pair_checks: r.u64()?,
        merge_strata: r.u64()?,
        shard_retries: r.u64()?,
        shard_fallbacks: r.u64()?,
        faults_injected: r.u64()?,
        stream_inserts: r.u64()?,
        stream_expirations: r.u64()?,
        stream_repairs: r.u64()?,
        repair_candidates: r.u64()?,
        worker_crashes: r.u64()?,
        worker_timeouts: r.u64()?,
        frames_corrupted: r.u64()?,
        ipc_bytes: r.u64()?,
        cpu: Duration::from_nanos(r.u64()?),
    })
}

// --- Shared store-window / DAG codecs (reused by the bench codecs) -------

/// Appends a record window: dims, then the flat TO and PO blocks.
pub fn put_window(buf: &mut Vec<u8>, to_dims: usize, po_dims: usize, to: &[u32], po: &[u32]) {
    put_u32(buf, to_dims as u32);
    put_u32(buf, po_dims as u32);
    put_u32s(buf, to);
    put_u32s(buf, po);
}

/// Inverse of [`put_window`]: rebuilds a standalone store (records
/// renumbered `0..n`, default kernel — callers apply the request's).
pub fn get_window(r: &mut Reader<'_>) -> Result<crate::PointStore, DecodeError> {
    let to_dims = r.u32()? as usize;
    let po_dims = r.u32()? as usize;
    let to = r.u32s()?;
    let po = r.u32s()?;
    crate::PointStore::from_parts(to_dims, po_dims, to, po).map_err(|_| "window blocks")
}

/// Appends the PO domain DAGs (vertex count + edge pairs each). Labels do
/// not travel: dominance is a pure function of the structure, and the
/// receiving side regenerates placeholder labels.
pub fn put_dags(buf: &mut Vec<u8>, domains: &[crate::PoDomain]) {
    put_u32(buf, domains.len() as u32);
    for d in domains {
        let dag = d.dag();
        put_u32(buf, dag.len() as u32);
        put_u32(buf, dag.num_edges() as u32);
        for (u, v) in dag.edges() {
            put_u32(buf, u.idx() as u32);
            put_u32(buf, v.idx() as u32);
        }
    }
}

/// Inverse of [`put_dags`]: rebuilds the domains (labelings, dyadic
/// indexes and reachability are recomputed deterministically from the
/// structure, so dominance decisions — and examined-pair counts — are
/// identical to the sender's).
pub fn get_dags(r: &mut Reader<'_>) -> Result<Vec<crate::PoDomain>, DecodeError> {
    let count = r.u32()? as usize;
    let mut domains = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        let n = r.u32()?;
        let edges = r.u32()? as usize;
        let mut pairs = Vec::with_capacity(edges.min(1 << 20));
        for _ in 0..edges {
            let u = r.u32()?;
            let v = r.u32()?;
            pairs.push((u, v));
        }
        let dag = poset::Dag::from_edges(n, &pairs).map_err(|_| "dag edges")?;
        domains.push(crate::PoDomain::new(dag));
    }
    Ok(domains)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        for payload in [&b""[..], &b"x"[..], &[1u8, 2, 3, 250, 0, 7][..]] {
            let frame = encode_frame(payload);
            assert_eq!(frame.len() as u64, payload.len() as u64 + FRAME_OVERHEAD);
            let mut cursor = &frame[..];
            assert_eq!(read_frame(&mut cursor), Ok(payload.to_vec()));
            assert_eq!(read_frame(&mut cursor), Err(FrameError::Eof));
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let frame = encode_frame(&[9u8, 8, 7, 6, 5]);
        for cut in 1..frame.len() {
            let mut cursor = &frame[..cut];
            let e = read_frame(&mut cursor);
            assert!(matches!(e, Err(FrameError::Truncated)), "cut={cut}: {e:?}");
        }
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let payload = [3u8, 1, 4, 1, 5, 9, 2, 6];
        let frame = encode_frame(&payload);
        for byte in 0..frame.len() {
            for bit in 0..8u8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                let mut cursor = &bad[..];
                let got = read_frame(&mut cursor);
                // Flips in the length prefix may also read as truncation
                // or an oversized frame; flips in payload or checksum must
                // be checksum failures. A flipped frame never decodes to
                // the original payload.
                assert_ne!(got, Ok(payload.to_vec()), "byte={byte} bit={bit}");
            }
        }
    }

    #[test]
    fn corrupted_frames_fail_their_checksum_deterministically() {
        let payload = encode_ok(&[1, 2, 3], &Metrics::default());
        let a = encode_frame_corrupted(&payload);
        let b = encode_frame_corrupted(&payload);
        assert_eq!(a, b, "injection is deterministic");
        assert_ne!(a, encode_frame(&payload));
        let mut cursor = &a[..];
        assert_eq!(
            read_frame(&mut cursor),
            Err(FrameError::BadChecksum {
                frame_bytes: payload.len() as u64 + FRAME_OVERHEAD
            })
        );
    }

    #[test]
    fn requests_round_trip() {
        let task = [7u8, 1, 2, 3];
        let p = encode_request(5, 2, Kernel::Lanes, Some(ProcessFaultKind::Stall), &task);
        let req = decode_request(&p).unwrap();
        assert_eq!(req.shard, 5);
        assert_eq!(req.attempt, 2);
        assert_eq!(req.kernel, Kernel::Lanes);
        assert_eq!(req.fault, Some(ProcessFaultKind::Stall));
        assert_eq!(req.task, &task);
        assert!(decode_request(&[RESP_OK, 0, 0]).is_err(), "wrong kind");
        assert!(decode_request(&[REQ, 0]).is_err(), "underflow");
    }

    #[test]
    fn responses_round_trip_the_full_metrics() {
        let m = Metrics {
            dominance_checks: 1,
            dominance_batch_calls: 2,
            kernel_chunks: 3,
            io_reads: 4,
            io_writes: 5,
            heap_pops: 6,
            results: 7,
            label_cache_hits: 8,
            label_cache_misses: 9,
            merge_pair_checks: 10,
            merge_strata: 11,
            shard_retries: 12,
            shard_fallbacks: 13,
            faults_injected: 14,
            stream_inserts: 15,
            stream_expirations: 16,
            stream_repairs: 17,
            repair_candidates: 18,
            worker_crashes: 19,
            worker_timeouts: 20,
            frames_corrupted: 21,
            ipc_bytes: 22,
            cpu: Duration::from_nanos(23),
        };
        match decode_response(&encode_ok(&[4, 5], &m)).unwrap() {
            Response::Ok(records, got) => {
                assert_eq!(records, vec![4, 5]);
                assert_eq!(got, m);
            }
            Response::Err(e) => unreachable!("{e}"),
        }
        match decode_response(&encode_err("boom")).unwrap() {
            Response::Err(e) => assert_eq!(e, "boom"),
            Response::Ok(..) => unreachable!(),
        }
        assert!(decode_response(&[RESP_OK, 1]).is_err(), "underflow");
        assert!(decode_response(&[42]).is_err(), "unknown kind");
    }

    #[test]
    fn windows_and_dags_round_trip() {
        let mut t = crate::PointStore::new(2, 1);
        t.push(&[1, 2], &[0]);
        t.push(&[3, 4], &[2]);
        let dag = poset::Dag::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        let domains = vec![crate::PoDomain::new(dag)];
        let mut buf = Vec::new();
        put_window(&mut buf, 2, 1, t.to_block(), t.po_block());
        put_dags(&mut buf, &domains);
        let mut r = Reader::new(&buf);
        let t2 = get_window(&mut r).unwrap();
        let d2 = get_dags(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(t2.len(), 2);
        assert_eq!(t2.to_block(), t.to_block());
        assert_eq!(t2.po_block(), t.po_block());
        assert_eq!(d2.len(), 1);
        assert_eq!(d2[0].dag().len(), 3);
        assert_eq!(d2[0].dag().num_edges(), 2);
        assert!(d2[0].pref(0, 1) == domains[0].pref(0, 1));
    }
}

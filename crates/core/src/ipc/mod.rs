//! **Out-of-process shard execution** — a supervised subprocess worker
//! pool behind the same [`ShardExecutor`](crate::ShardExecutor) seam the
//! in-process executor implements.
//!
//! PR 8's fault ladder simulated failure; this module makes it real:
//! workers are separate OS processes that can actually crash, hang and
//! corrupt frames, and the query survives all three. The module splits
//! along the pipe:
//!
//! * [`protocol`] — hand-rolled length-prefixed LE framing with a
//!   per-frame FNV-1a checksum, plus the request/response and
//!   store-window codecs (no serde, no new dependencies);
//! * [`tasks`] — the builtin task codecs and the shared compute
//!   functions both sides call (byte identity by construction);
//! * [`worker`] — the blocking serve loop a `tss-worker` entry runs;
//! * [`supervisor`] — [`SubprocessExecutor`]: pool management,
//!   per-attempt deadlines, crash/timeout/corruption detection mapped
//!   onto [`ShardError`](crate::ShardError), graceful degradation to
//!   fully in-process execution.
//!
//! This is the only module in the workspace (together with the harness
//! worker entry) allowed to touch [`std::process`] — the xtask `process`
//! rule fences it.

pub mod protocol;
pub mod supervisor;
pub mod tasks;
pub mod worker;

pub use supervisor::{SubprocessExecutor, WorkerSpec, DEFAULT_DEADLINE};
pub use tasks::{encode_local_skyline, encode_screen, local_skyline_job};
pub use worker::{serve_builtin, serve_io};

//! **Supervisor side** of the out-of-process executor:
//! [`SubprocessExecutor`], a supervised pool of worker subprocesses
//! behind the [`ShardExecutor`] trait.
//!
//! # Supervision ladder
//!
//! Each shard walks the same ladder shape as the in-process executor —
//! `retries + 1` regular attempts, then one never-injected fallback —
//! but the regular attempts run **remotely**: the supervisor ships the
//! job's wire payload to a worker process and maps everything that can
//! go wrong onto [`ShardError`]s, so worker crashes ride the exact
//! recovery machinery PR 8 built for injected panics:
//!
//! * **worker death** (nonzero exit, EOF, truncated frame, failed
//!   spawn/write) → [`WorkerDied`](ShardErrorKind::WorkerDied), counted
//!   in [`Metrics::worker_crashes`], worker respawned, attempt retried;
//! * **deadline blown** (no response within [`ExecPolicy::deadline`],
//!   default [`DEFAULT_DEADLINE`]) →
//!   [`WorkerTimeout`](ShardErrorKind::WorkerTimeout), counted in
//!   [`Metrics::worker_timeouts`], worker killed, attempt retried;
//! * **untrusted frame** (checksum mismatch, undecodable payload,
//!   records outside the shard range) →
//!   [`FrameCorrupted`](ShardErrorKind::FrameCorrupted), counted in
//!   [`Metrics::frames_corrupted`], worker killed, attempt retried;
//! * **exhausted retries** → one in-process scalar-oracle fallback
//!   attempt ([`Metrics::shard_fallbacks`]), which cannot involve a
//!   worker at all.
//!
//! # Degradation order
//!
//! A job without a wire payload, or a pool whose very first spawn fails,
//! degrades to the in-process ladder (`run_ladder`) — same attempts,
//! same (salt-0) fault sites, same counters as
//! [`ThreadShardExecutor`](crate::ThreadShardExecutor) — so a query
//! issued with zero spawnable workers still completes byte-identically,
//! with all four IPC counters zero.
//!
//! # Determinism
//!
//! Process faults are injected by *instruction*: the supervisor computes
//! [`FaultPlan::injects_process`](crate::FaultPlan::injects_process) per
//! `(shard, attempt)` — salt-2 sites, independent of the in-process
//! salt-0 sites — and tells the worker what to do, so injections,
//! retries and all IPC counters are pure functions of the jobs and the
//! plan: invariant across pool sizes, thread schedules and reruns.
//! `ipc_bytes` counts complete frames only (requests written, responses
//! fully read — including complete-but-corrupt ones), which keeps it a
//! pure function too. The deadline never influences results or counters
//! — only which recovery path ran — and this module is the only place
//! in `tss_core` allowed to read the clock (`cargo run -p xtask -- lint`
//! fences it).

use super::protocol::{
    decode_response, encode_frame, encode_request, read_frame, FrameError, Response, FRAME_OVERHEAD,
};
use crate::error::{ShardError, ShardErrorKind};
use crate::executor::{
    attempt_shard, outcome, run_ladder, validate_minimal, ExecPolicy, ProcessFaultKind, ShardCtx,
    ShardExecutor, ShardJob, ShardOutcome,
};
use crate::store::{PointStore, RecordId};
use crate::{Metrics, PoDomain};
use skyline::Kernel;
use std::io::Write;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-attempt deadline when [`ExecPolicy::deadline`] is `None` —
/// generous on purpose: a production shard attempt is milliseconds, so
/// only a genuinely wedged worker ever trips it.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(30);

/// How to launch one worker process: a program plus its arguments. The
/// process must speak the frame protocol on stdin/stdout (see
/// [`worker`](super::worker)).
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    program: PathBuf,
    args: Vec<String>,
}

impl WorkerSpec {
    /// A spec launching `program` with `args`.
    pub fn new(
        program: impl Into<PathBuf>,
        args: impl IntoIterator<Item = impl Into<String>>,
    ) -> WorkerSpec {
        WorkerSpec {
            program: program.into(),
            args: args.into_iter().map(Into::into).collect(),
        }
    }

    /// A spec re-executing the current binary with `args` — the usual
    /// shape: the host binary hides a worker entry behind a sentinel
    /// first argument (the harness's `tss-worker` subcommand, the
    /// facade's `tss-worker` bin).
    pub fn current_exe(
        args: impl IntoIterator<Item = impl Into<String>>,
    ) -> std::io::Result<WorkerSpec> {
        Ok(WorkerSpec::new(std::env::current_exe()?, args))
    }

    /// The program the spec launches.
    pub fn program(&self) -> &Path {
        &self.program
    }

    /// The arguments the program is launched with.
    pub fn args(&self) -> &[String] {
        &self.args
    }
}

/// One live worker: the child process, its request pipe, and the
/// receiving end of a detached reader thread that turns the response
/// pipe into frames (`recv_timeout` is what gives the supervisor a
/// deadline over a blocking pipe read). Respawns build a fresh
/// `Worker`, so a stale frame from a killed process can never be
/// attributed to a later attempt.
struct Worker {
    child: Child,
    stdin: ChildStdin,
    frames: Receiver<Result<Vec<u8>, FrameError>>,
}

impl Worker {
    fn spawn(spec: &WorkerSpec) -> Result<Worker, String> {
        let mut child = Command::new(&spec.program)
            .args(&spec.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", spec.program.display()))?;
        let Some(stdin) = child.stdin.take() else {
            let _ = child.kill();
            let _ = child.wait();
            return Err("worker stdin pipe missing".to_string());
        };
        let Some(mut stdout) = child.stdout.take() else {
            let _ = child.kill();
            let _ = child.wait();
            return Err("worker stdout pipe missing".to_string());
        };
        let (tx, frames) = std::sync::mpsc::channel();
        // Detached on purpose: the thread ends at the first read error
        // (EOF included) or when the receiver is dropped with its
        // Worker; either way it holds no locks and owns only the pipe.
        std::thread::spawn(move || loop {
            let r = read_frame(&mut stdout);
            let done = r.is_err();
            if tx.send(r).is_err() || done {
                break;
            }
        });
        Ok(Worker {
            child,
            stdin,
            frames,
        })
    }

    /// Kills (a healthy worker sees EOF first and exits on its own; a
    /// wedged one is killed) and reaps the process.
    fn shutdown(self) {
        let Worker {
            mut child,
            stdin,
            frames,
        } = self;
        drop(stdin);
        let _ = child.kill();
        let _ = child.wait();
        drop(frames);
    }
}

/// Retires the slot's worker, if any.
fn retire(slot: &mut Option<Worker>) {
    if let Some(w) = slot.take() {
        w.shutdown();
    }
}

/// Everything one remote attempt needs besides the worker.
struct RemoteCall<'a> {
    shard: usize,
    attempt: u32,
    fault: Option<ProcessFaultKind>,
    wire: &'a [u8],
    range: Range<RecordId>,
    deadline: Duration,
}

/// The out-of-process [`ShardExecutor`]: a supervised pool of worker
/// subprocesses launched from a [`WorkerSpec`], scheduling shards over
/// an atomic cursor exactly like the in-process executor, under the
/// byte-identity contract — identical records and non-fault, non-IPC
/// [`Metrics`] columns as
/// [`ThreadShardExecutor`](crate::ThreadShardExecutor) at any worker
/// count. See the module docs for the supervision ladder and the
/// degradation order.
pub struct SubprocessExecutor {
    spec: WorkerSpec,
    workers: usize,
    policy: ExecPolicy,
}

impl SubprocessExecutor {
    /// A pool of up to `workers` processes under the environment policy
    /// ([`ExecPolicy::default`]).
    pub fn new(spec: WorkerSpec, workers: usize) -> SubprocessExecutor {
        SubprocessExecutor::with_policy(spec, workers, ExecPolicy::default())
    }

    /// A pool with an explicit policy.
    pub fn with_policy(spec: WorkerSpec, workers: usize, policy: ExecPolicy) -> SubprocessExecutor {
        SubprocessExecutor {
            spec,
            workers: workers.max(1),
            policy,
        }
    }

    /// The policy shards run under.
    pub fn policy(&self) -> &ExecPolicy {
        &self.policy
    }

    /// The worker-pool size cap.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The per-shard supervision ladder: remote attempts with
    /// crash/timeout/corruption recovery, then the in-process
    /// scalar-oracle fallback. Jobs without a wire payload run the
    /// plain in-process ladder.
    fn remote_ladder(
        &self,
        slot: &mut Option<Worker>,
        store: &PointStore,
        domains: &[PoDomain],
        shard: usize,
        job: &ShardJob<'_>,
    ) -> Result<ShardOutcome, ShardError> {
        let Some(wire) = job.wire_bytes() else {
            return run_ladder(&self.policy, store, domains, shard, job);
        };
        let deadline = self.policy.deadline.unwrap_or(DEFAULT_DEADLINE);
        let mut retries = 0u64;
        let mut injected = 0u64;
        let mut crashes = 0u64;
        let mut timeouts = 0u64;
        let mut corrupted = 0u64;
        let mut bytes = 0u64;
        fn deliver(
            mut o: ShardOutcome,
            crashes: u64,
            timeouts: u64,
            corrupted: u64,
            bytes: u64,
        ) -> ShardOutcome {
            o.metrics.worker_crashes += crashes;
            o.metrics.worker_timeouts += timeouts;
            o.metrics.frames_corrupted += corrupted;
            o.metrics.ipc_bytes += bytes;
            o
        }
        for attempt in 0..=self.policy.retries {
            let fault = self
                .policy
                .faults
                .as_ref()
                .and_then(|p| p.injects_process(shard, attempt));
            if fault.is_some() {
                injected += 1;
            }
            let call = RemoteCall {
                shard,
                attempt,
                fault,
                wire: &wire,
                range: job.range(),
                deadline,
            };
            match self.remote_attempt(slot, store, domains, &call, &mut bytes) {
                Ok((records, metrics)) => {
                    return Ok(deliver(
                        outcome(records, metrics, retries, 0, injected),
                        crashes,
                        timeouts,
                        corrupted,
                        bytes,
                    ))
                }
                Err(e) => {
                    match e.kind() {
                        ShardErrorKind::WorkerDied(_) => crashes += 1,
                        ShardErrorKind::WorkerTimeout => timeouts += 1,
                        ShardErrorKind::FrameCorrupted(_) => corrupted += 1,
                        ShardErrorKind::Panicked(_) | ShardErrorKind::Corrupted(_) => {}
                    }
                    retries += 1;
                }
            }
        }
        // Last resort, like the in-process ladder: one scalar-oracle
        // recompute, never injected, no worker involved.
        let ctx = ShardCtx {
            shard,
            attempt: self.policy.retries + 1,
            kernel: Kernel::Scalar,
        };
        let mut fallback_injected = 0u64;
        let (records, metrics) = attempt_shard(
            store,
            domains,
            &self.policy,
            job,
            ctx,
            None,
            &mut fallback_injected,
        )?;
        Ok(deliver(
            outcome(records, metrics, retries, 1, injected),
            crashes,
            timeouts,
            corrupted,
            bytes,
        ))
    }

    /// One remote attempt: ship the request, await the response within
    /// the deadline, distrust everything.
    fn remote_attempt(
        &self,
        slot: &mut Option<Worker>,
        store: &PointStore,
        domains: &[PoDomain],
        call: &RemoteCall<'_>,
        bytes: &mut u64,
    ) -> Result<(Vec<RecordId>, Metrics), ShardError> {
        let RemoteCall { shard, attempt, .. } = *call;
        let started = Instant::now();
        let worker = match slot {
            Some(w) => w,
            None => match Worker::spawn(&self.spec) {
                Ok(w) => slot.insert(w),
                Err(e) => {
                    return Err(
                        ShardError::worker_died(shard, attempt, e).with_range(call.range.clone())
                    )
                }
            },
        };
        let frame = encode_frame(&encode_request(
            shard,
            attempt,
            store.kernel(),
            call.fault,
            call.wire,
        ));
        if let Err(e) = worker
            .stdin
            .write_all(&frame)
            .and_then(|()| worker.stdin.flush())
        {
            retire(slot);
            return Err(ShardError::worker_died(
                shard,
                attempt,
                format!("request write failed: {e}"),
            )
            .with_range(call.range.clone()));
        }
        *bytes += frame.len() as u64;
        let left = call.deadline.saturating_sub(started.elapsed());
        let received = worker.frames.recv_timeout(left);
        let err = |e: ShardError| Err(e.with_range(call.range.clone()));
        match received {
            Ok(Ok(payload)) => {
                *bytes += payload.len() as u64 + FRAME_OVERHEAD;
                match decode_response(&payload) {
                    Ok(Response::Ok(records, metrics)) => {
                        if let Some(&out) = records.iter().find(|r| !call.range.contains(r)) {
                            retire(slot);
                            return err(ShardError::frame_corrupted(
                                shard,
                                attempt,
                                format!("record {out} outside the shard range"),
                            ));
                        }
                        if self.policy.validate {
                            if let Some(offender) = validate_minimal(store, domains, &records) {
                                return err(ShardError::corrupted(shard, attempt, offender));
                            }
                        }
                        Ok((records, metrics))
                    }
                    Ok(Response::Err(msg)) => {
                        // The worker is healthy but refused the task
                        // (undecodable payload, unknown codec) — retries
                        // will exhaust into the in-process fallback.
                        err(ShardError::panicked(
                            shard,
                            attempt,
                            format!("worker reported: {msg}"),
                        ))
                    }
                    Err(defect) => {
                        retire(slot);
                        err(ShardError::frame_corrupted(
                            shard,
                            attempt,
                            format!("undecodable response: {defect}"),
                        ))
                    }
                }
            }
            Ok(Err(FrameError::BadChecksum { frame_bytes })) => {
                // The frame was read completely — it still counts as
                // exchanged bytes — but its payload cannot be trusted.
                *bytes += frame_bytes;
                retire(slot);
                err(ShardError::frame_corrupted(
                    shard,
                    attempt,
                    "response checksum mismatch",
                ))
            }
            Ok(Err(e)) => {
                retire(slot);
                err(ShardError::worker_died(
                    shard,
                    attempt,
                    format!("response stream: {e}"),
                ))
            }
            Err(RecvTimeoutError::Timeout) => {
                retire(slot);
                err(ShardError::worker_timeout(shard, attempt))
            }
            Err(RecvTimeoutError::Disconnected) => {
                retire(slot);
                err(ShardError::worker_died(
                    shard,
                    attempt,
                    "response reader ended",
                ))
            }
        }
    }
}

impl ShardExecutor for SubprocessExecutor {
    fn execute(
        &self,
        store: &PointStore,
        domains: &[PoDomain],
        jobs: &[ShardJob<'_>],
    ) -> Vec<Result<ShardOutcome, ShardError>> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        // Probe spawn. A pool that cannot start at all degrades the
        // whole batch to the in-process ladder — byte-identical to
        // ThreadShardExecutor, IPC counters all zero.
        let probe = match Worker::spawn(&self.spec) {
            Ok(w) => w,
            Err(_) => {
                return jobs
                    .iter()
                    .enumerate()
                    .map(|(i, job)| run_ladder(&self.policy, store, domains, i, job))
                    .collect();
            }
        };
        let pool = self.workers.min(n);
        if pool <= 1 {
            let mut slot = Some(probe);
            let out = jobs
                .iter()
                .enumerate()
                .map(|(i, job)| self.remote_ladder(&mut slot, store, domains, i, job))
                .collect();
            retire(&mut slot);
            return out;
        }
        let results: Vec<Mutex<Option<Result<ShardOutcome, ShardError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let probe_slot = Mutex::new(Some(probe));
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..pool)
                .map(|_| {
                    s.spawn(|| {
                        // Each pool thread owns one worker process; the
                        // probe is handed to whichever thread gets there
                        // first, the rest spawn on demand.
                        let mut slot: Option<Worker> =
                            probe_slot.lock().unwrap_or_else(|p| p.into_inner()).take();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let r = self.remote_ladder(&mut slot, store, domains, i, &jobs[i]);
                            *results[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(r);
                        }
                        retire(&mut slot);
                    })
                })
                .collect();
            for h in handles {
                // The ladder is panic-free; an (impossible) abandoned
                // shard is recomputed inline below.
                let _ = h.join();
            }
        });
        retire(&mut probe_slot.lock().unwrap_or_else(|p| p.into_inner()));
        results
            .into_iter()
            .enumerate()
            .map(|(i, m)| {
                m.into_inner()
                    .unwrap_or_else(|p| p.into_inner())
                    .unwrap_or_else(|| run_ladder(&self.policy, store, domains, i, &jobs[i]))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipc::tasks::local_skyline_job;
    use crate::{Table, ThreadShardExecutor};

    fn table(n: u32) -> Table {
        let mut t = Table::new(2, 0);
        for i in 0..n {
            t.push(&[(i * 17) % 50, (i * 31) % 50], &[]);
        }
        t
    }

    #[test]
    fn unspawnable_pools_degrade_to_in_process_byte_identity() {
        let t = table(100);
        let jobs: Vec<ShardJob<'_>> = t
            .shards(4)
            .into_iter()
            .map(|v| local_skyline_job(v, &[]))
            .collect();
        let spec = WorkerSpec::new(
            "/nonexistent/tss-worker-definitely-not-here",
            Vec::<String>::new(),
        );
        let policy = ExecPolicy::with_faults(Some(crate::FaultPlan::new(77, 0.6)));
        let sub = SubprocessExecutor::with_policy(spec, 3, policy);
        let inproc = ThreadShardExecutor::with_policy(1, policy);
        let got = sub.execute(&t, &[], &jobs);
        let want = inproc.execute(&t, &[], &jobs);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            let (g, w) = (g.as_ref().expect("recovers"), w.as_ref().expect("recovers"));
            assert_eq!(g.records, w.records);
            assert_eq!(g.metrics, w.metrics, "degraded mode replays salt-0 sites");
            assert_eq!(g.metrics.worker_crashes, 0);
            assert_eq!(g.metrics.ipc_bytes, 0);
        }
    }

    #[test]
    fn jobs_without_wire_payloads_run_in_process() {
        let t = table(40);
        // Plain closure jobs (no wire): even with a live-looking spec
        // the executor must not need it — but use an unspawnable one so
        // this test cannot accidentally depend on a real binary.
        let jobs: Vec<ShardJob<'_>> = t
            .shards(2)
            .into_iter()
            .map(|v| {
                ShardJob::new(v.range(), move |_ctx| {
                    (v.record_ids().collect(), Metrics::default())
                })
            })
            .collect();
        let spec = WorkerSpec::new("/nonexistent/worker", Vec::<String>::new());
        let sub = SubprocessExecutor::with_policy(spec, 2, ExecPolicy::fault_free());
        for (i, r) in sub.execute(&t, &[], &jobs).into_iter().enumerate() {
            let o = r.expect("in-process path");
            assert_eq!(o.records, jobs[i].range().collect::<Vec<_>>());
            assert_eq!(o.metrics.ipc_bytes, 0);
        }
    }

    #[test]
    fn worker_spec_exposes_its_launch_shape() {
        let spec = WorkerSpec::new("/bin/echo", ["tss-worker"]);
        assert_eq!(spec.program(), Path::new("/bin/echo"));
        assert_eq!(spec.args(), ["tss-worker".to_string()]);
        let exe = WorkerSpec::current_exe(["tss-worker"]).expect("current exe resolves");
        assert!(exe.program().is_absolute());
    }
}

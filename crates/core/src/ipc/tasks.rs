//! **Builtin task codecs** — the self-contained task payloads `tss_core`
//! itself knows how to ship across the process boundary, plus the shared
//! compute functions both sides call.
//!
//! Byte identity between the in-process closure and the worker
//! interpretation is **by construction**: the closure attached to a
//! [`ShardJob`] and the worker's [`dispatch_builtin`] decode path call
//! the *same* function on the *same* inputs (a standalone store rebuilt
//! from the identical flat blocks, the same kernel, structurally
//! identical domains), so records and every [`Metrics`] counter agree no
//! matter which side ran the attempt.
//!
//! Two codecs ship today (first task byte):
//!
//! * `0` — **local skyline**: a shard window's flat TO/PO blocks plus
//!   the domain DAGs; the answer is the window's skyline as global ids.
//!   [`local_skyline_job`] builds the matching [`ShardJob`].
//! * `1` — **candidate screen**: the streaming repair's Phase A — screen
//!   candidate rows against a fixed member list (the post-removal
//!   skyline). Candidate and member rows travel; the answer is the
//!   surviving candidates' global ids.
//!
//! Bench engine tasks use codec bytes ≥ 16, interpreted by the harness
//! worker only (see `tss_bench`).

use super::protocol::{get_dags, get_window, put_dags, put_u32s, put_window, DecodeError, Reader};
use crate::executor::{ShardCtx, ShardJob};
use crate::store::{PointStore, RecordId, ShardView};
use crate::{Metrics, PoDomain};
use skyline::Kernel;

/// Task byte of the local-skyline codec.
pub const TASK_LOCAL_SKYLINE: u8 = 0;
/// Task byte of the candidate-screen codec.
pub const TASK_SCREEN: u8 = 1;

/// Is the candidate row t-dominated by any listed record? One batched
/// kernel call, honoring the attempt's kernel: the scalar-oracle path on
/// fallback attempts, the store's configured variant otherwise — the
/// exact branch the in-process repair screen uses. Returns
/// `(dominated, pairs_examined)`.
pub(crate) fn screen_one(
    store: &PointStore,
    domains: &[PoDomain],
    kernel: Kernel,
    cand_to: &[u32],
    cand_po: &[u32],
    members: &[RecordId],
) -> (bool, u64) {
    if kernel == Kernel::Scalar {
        store.t_dominated_by_any_oracle(domains, cand_to, cand_po, members)
    } else {
        store.t_dominated_by_any(domains, cand_to, cand_po, members)
    }
}

/// The local skyline of a standalone window store: every record screened
/// against the full window with one batched kernel call (a record never
/// dominates its own equal self, so the full id list is a valid
/// reference set). Returns **global** ids (`local + start`) and the
/// attempt's metrics. Both the in-process closure and the worker call
/// this — that shared body is the byte-identity proof.
pub(crate) fn local_skyline_of(
    store: &PointStore,
    domains: &[PoDomain],
    kernel: Kernel,
    start: RecordId,
) -> (Vec<RecordId>, Metrics) {
    let ids: Vec<RecordId> = (0..store.len() as RecordId).collect();
    let mut m = Metrics::default();
    let mut local = Vec::new();
    for r in 0..store.len() as RecordId {
        let (hit, ex) = screen_one(store, domains, kernel, store.to(r), store.po(r), &ids);
        m.batch(ex);
        if !hit {
            local.push(start + r);
        }
    }
    m.results = local.len() as u64;
    (local, m)
}

/// Screens candidates (resolvable in `store`) against a fixed member
/// list, in order; survivors keep their ids. The streaming repair's
/// Phase A runs through this.
pub(crate) fn screen_part(
    store: &PointStore,
    domains: &[PoDomain],
    kernel: Kernel,
    members: &[RecordId],
    part: &[RecordId],
) -> (Vec<RecordId>, Metrics) {
    let mut m = Metrics::default();
    let mut alive = Vec::new();
    for &p in part {
        let (hit, ex) = screen_one(store, domains, kernel, store.to(p), store.po(p), members);
        m.batch(ex);
        if !hit {
            alive.push(p);
        }
    }
    (alive, m)
}

/// Encodes a local-skyline task over a shard window.
pub fn encode_local_skyline(view: &ShardView<'_>, domains: &[PoDomain]) -> Vec<u8> {
    let store = view.store();
    let mut t = Vec::new();
    t.push(TASK_LOCAL_SKYLINE);
    super::protocol::put_u32(&mut t, view.start());
    put_window(
        &mut t,
        store.to_dims(),
        store.po_dims(),
        view.to_block(),
        view.po_block(),
    );
    put_dags(&mut t, domains);
    t
}

fn run_local_skyline(body: &[u8], ctx: ShardCtx) -> Result<(Vec<RecordId>, Metrics), DecodeError> {
    let mut r = Reader::new(body);
    let start = r.u32()?;
    let store = get_window(&mut r)?.with_kernel(ctx.kernel);
    let domains = get_dags(&mut r)?;
    if r.remaining() != 0 {
        return Err("trailing task bytes");
    }
    Ok(local_skyline_of(&store, &domains, ctx.kernel, start))
}

/// A [`ShardJob`] computing the window's local skyline, carrying both
/// the in-process closure and the matching wire payload — the job the
/// subprocess-equivalence proptests fan across executors.
pub fn local_skyline_job<'a>(view: ShardView<'a>, domains: &'a [PoDomain]) -> ShardJob<'a> {
    ShardJob::new(view.range(), move |ctx: ShardCtx| {
        let sub = view.to_store().with_kernel(ctx.kernel);
        local_skyline_of(&sub, domains, ctx.kernel, view.start())
    })
    .with_wire(move || encode_local_skyline(&view, domains))
}

/// Encodes a candidate-screen task: the candidates' global ids and rows,
/// the member rows (in member-list order — examined-pair counts depend
/// on it), and the domain DAGs.
pub fn encode_screen(
    store: &PointStore,
    domains: &[PoDomain],
    members: &[RecordId],
    part: &[RecordId],
) -> Vec<u8> {
    let mut t = Vec::new();
    t.push(TASK_SCREEN);
    put_u32s(&mut t, part);
    let mut cand_to = Vec::with_capacity(part.len() * store.to_dims());
    let mut cand_po = Vec::with_capacity(part.len() * store.po_dims());
    for &p in part {
        cand_to.extend_from_slice(store.to(p));
        cand_po.extend_from_slice(store.po(p));
    }
    put_u32s(&mut t, &cand_to);
    put_u32s(&mut t, &cand_po);
    let mut mem_to = Vec::with_capacity(members.len() * store.to_dims());
    let mut mem_po = Vec::with_capacity(members.len() * store.po_dims());
    for &m in members {
        mem_to.extend_from_slice(store.to(m));
        mem_po.extend_from_slice(store.po(m));
    }
    put_window(&mut t, store.to_dims(), store.po_dims(), &mem_to, &mem_po);
    put_dags(&mut t, domains);
    t
}

fn run_screen(body: &[u8], ctx: ShardCtx) -> Result<(Vec<RecordId>, Metrics), DecodeError> {
    let mut r = Reader::new(body);
    let part = r.u32s()?;
    let cand_to = r.u32s()?;
    let cand_po = r.u32s()?;
    let member_store = get_window(&mut r)?.with_kernel(ctx.kernel);
    let domains = get_dags(&mut r)?;
    if r.remaining() != 0 {
        return Err("trailing task bytes");
    }
    let to_dims = member_store.to_dims();
    let po_dims = member_store.po_dims();
    if cand_to.len() != part.len() * to_dims || cand_po.len() != part.len() * po_dims {
        return Err("candidate blocks");
    }
    let member_ids: Vec<RecordId> = (0..member_store.len() as RecordId).collect();
    let mut m = Metrics::default();
    let mut alive = Vec::new();
    for (i, &p) in part.iter().enumerate() {
        let (hit, ex) = screen_one(
            &member_store,
            &domains,
            ctx.kernel,
            &cand_to[i * to_dims..(i + 1) * to_dims],
            &cand_po[i * po_dims..(i + 1) * po_dims],
            &member_ids,
        );
        m.batch(ex);
        if !hit {
            alive.push(p);
        }
    }
    Ok((alive, m))
}

/// Interprets a builtin task payload (first byte selects the codec) —
/// the dispatch the `tss-worker` binaries serve. Errors name the defect;
/// the worker reports them as `RESP_ERR` frames.
pub fn dispatch_builtin(task: &[u8], ctx: ShardCtx) -> Result<(Vec<RecordId>, Metrics), String> {
    let Some((&codec, body)) = task.split_first() else {
        return Err("empty task".to_string());
    };
    let run = match codec {
        TASK_LOCAL_SKYLINE => run_local_skyline(body, ctx),
        TASK_SCREEN => run_screen(body, ctx),
        other => return Err(format!("unknown builtin task codec {other}")),
    };
    run.map_err(|e| format!("task codec {codec}: bad payload: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::brute_force_po_skyline;
    use crate::Table;

    fn table(n: u32) -> Table {
        let mut t = Table::new(2, 0);
        for i in 0..n {
            t.push(&[(i * 13) % 40, (i * 29) % 40], &[]);
        }
        t
    }

    #[test]
    fn local_skyline_codec_matches_the_closure_and_brute_force() {
        let t = table(80);
        let domains: Vec<PoDomain> = Vec::new();
        for shards in [1usize, 3] {
            for view in t.shards(shards) {
                let job = local_skyline_job(view, &domains);
                for kernel in [Kernel::Scalar, Kernel::Lanes] {
                    let ctx = ShardCtx {
                        shard: 0,
                        attempt: 0,
                        kernel,
                    };
                    let wire = job.wire_bytes().expect("job carries a payload");
                    let (inproc, m_in) = {
                        let sub = view.to_store().with_kernel(kernel);
                        local_skyline_of(&sub, &domains, kernel, view.start())
                    };
                    let (remote, m_out) = dispatch_builtin(&wire, ctx).expect("decodes");
                    assert_eq!(remote, inproc, "shards={shards} kernel={kernel:?}");
                    assert_eq!(m_out, m_in);
                    let brute: Vec<RecordId> = brute_force_po_skyline(&domains, &view.to_store())
                        .into_iter()
                        .map(|r| r + view.start())
                        .collect();
                    assert_eq!(remote, brute, "matches the oracle");
                }
            }
        }
    }

    #[test]
    fn screen_codec_matches_the_in_store_screen() {
        let t = table(60);
        let domains: Vec<PoDomain> = Vec::new();
        let members: Vec<RecordId> = vec![3, 10, 25];
        let part: Vec<RecordId> = vec![5, 17, 40, 55];
        let wire = encode_screen(&t, &domains, &members, &part);
        for kernel in [Kernel::Scalar, Kernel::Lanes] {
            let ctx = ShardCtx {
                shard: 0,
                attempt: 0,
                kernel,
            };
            let (remote, m_out) = dispatch_builtin(&wire, ctx).expect("decodes");
            let mut t2 = t.clone();
            t2.set_kernel(kernel);
            let (inproc, m_in) = screen_part(&t2, &domains, kernel, &members, &part);
            assert_eq!(remote, inproc, "kernel={kernel:?}");
            assert_eq!(m_out, m_in);
        }
    }

    #[test]
    fn malformed_tasks_are_reported_not_panicked() {
        let ctx = ShardCtx {
            shard: 0,
            attempt: 0,
            kernel: Kernel::Scalar,
        };
        assert!(dispatch_builtin(&[], ctx).is_err(), "empty");
        assert!(dispatch_builtin(&[99], ctx).is_err(), "unknown codec");
        assert!(
            dispatch_builtin(&[TASK_LOCAL_SKYLINE, 1, 2], ctx).is_err(),
            "underflow"
        );
        let t = table(10);
        let good = encode_local_skyline(&t.shards(1)[0], &[]);
        assert!(dispatch_builtin(&good[..good.len() - 3], ctx).is_err());
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(dispatch_builtin(&trailing, ctx).is_err(), "trailing bytes");
    }
}
